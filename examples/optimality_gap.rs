//! Optimality gap in miniature: how far do the heuristics sit from the
//! exact branch-and-bound oracle (DESIGN.md §15)?
//!
//! Runs the gap experiment on a single small layout — baseline, rotation
//! and the health-aware scan against `exact` — across the default injected
//! fault densities, and prints each policy's worst-FU duty as a multiple
//! of the proven optimum. `results/gap.json` (via `cargo run --release -p
//! bench --bin gap`) is the full-grid version of this table.
//!
//! ```sh
//! cargo run --release --example optimality_gap [seed]
//! ```

use bench::{gap, ExperimentContext};
use uaware::PolicySpec;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0xDAC2020u64))
}

/// Runs the miniature gap grid with an explicit seed (the smoke test
/// enters here, so libtest's own CLI arguments can never leak in as a
/// seed).
pub fn run(seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    let mut ctx = ExperimentContext { seed, ..ExperimentContext::default() };
    ctx.fabrics = vec!["2x8".parse()?];
    ctx.policies = vec![PolicySpec::rotation(), PolicySpec::HealthAware];
    let report = gap(&ctx);

    println!("seed {seed}; dutygap = worst-FU duty / the {} oracle's", report.exact_policy);
    println!(
        "{:>8} {:>8} {:>6} {:<24} {:>10} {:>8} {:>8}",
        "fabric", "density", "dead", "policy", "worstduty", "dutygap", "starved"
    );
    for row in &report.rows {
        assert!(row.verified, "{} failed verification under {}", row.fabric, row.policy);
        println!(
            "{:>8} {:>7.1}% {:>6} {:<24} {:>9.1}% {:>8.3} {:>8}",
            row.fabric,
            100.0 * row.fault_density,
            row.dead_fus,
            row.policy,
            100.0 * row.worst_utilization,
            row.duty_gap,
            row.offloads_starved,
        );
        // The oracle is a true bound: no policy's gap may dip below 1
        // (modulo the degenerate all-starved rows, which report 0 duty).
        assert!(
            row.duty_gap >= 1.0 || row.worst_utilization == 0.0,
            "{} beat the exact oracle on {} at density {}",
            row.policy,
            row.fabric,
            row.fault_density
        );
    }
    Ok(())
}
