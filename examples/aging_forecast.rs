//! Aging forecast: plan the deployment lifetime of a CGRA product running a
//! known workload mix, comparing allocation policies — the decision the
//! paper's Table I supports.
//!
//! ```sh
//! cargo run --release -p transrec --example aging_forecast
//! ```

use cgra::Fabric;
use nbti::CalibratedAging;
use transrec::{run_suite, EnergyParams};
use uaware::{
    evaluate_aging, AllocationPolicy, BaselinePolicy, HealthAwarePolicy, PolicyFactory,
    RandomPolicy, RotationPolicy, Snake,
};

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = Fabric::be();
    let workloads = mibench::suite(42);
    let energy = EnergyParams::default();
    let aging = CalibratedAging::default();

    println!("deployment forecast, {}x{} fabric, ten-benchmark mix", fabric.rows, fabric.cols);
    println!(
        "{:<14} {:>10} {:>10} {:>12} {:>14}",
        "policy", "worst-FU", "CoV", "lifetime[y]", "10y delay[%]"
    );

    let policies: Vec<(&str, PolicyFactory)> = vec![
        ("baseline", Box::new(|| Box::new(BaselinePolicy) as Box<dyn AllocationPolicy>)),
        (
            "rotation",
            Box::new(|| Box::new(RotationPolicy::new(Snake)) as Box<dyn AllocationPolicy>),
        ),
        ("random", Box::new(|| Box::new(RandomPolicy::seeded(7)) as Box<dyn AllocationPolicy>)),
        ("health-aware", Box::new(|| Box::new(HealthAwarePolicy) as Box<dyn AllocationPolicy>)),
    ];

    for (name, factory) in &policies {
        let run = run_suite(fabric, &workloads, &energy, factory.as_ref())?;
        assert!(run.all_verified(), "oracle failure under {name}");
        let grid = run.tracker.utilization();
        let eval = evaluate_aging(&aging, &grid, 10.0, 101);
        let at_10y = aging.delay_increase(10.0, eval.worst_utilization);
        println!(
            "{:<14} {:>9.1}% {:>10.3} {:>12.2} {:>13.2}%",
            name,
            100.0 * eval.worst_utilization,
            grid.cov(),
            eval.lifetime_years,
            100.0 * at_10y,
        );
    }

    println!();
    println!(
        "(end of life = {:.0}% delay degradation; paper anchor: u=100% dies in 3 years)",
        100.0 * aging.eol_delay_frac
    );
    Ok(())
}
