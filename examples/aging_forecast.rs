//! Aging forecast: plan the deployment lifetime of a CGRA product running a
//! known workload mix, comparing allocation policies — the decision the
//! paper's Table I supports.
//!
//! ```sh
//! cargo run --release -p transrec --example aging_forecast
//! ```

use cgra::Fabric;
use nbti::CalibratedAging;
use transrec::{run_suite, EnergyParams};
use uaware::{evaluate_aging, PolicySpec};

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = Fabric::be();
    let workloads = mibench::suite(42);
    let energy = EnergyParams::default();
    let aging = CalibratedAging::default();

    println!("deployment forecast, {}x{} fabric, ten-benchmark mix", fabric.rows, fabric.cols);
    println!(
        "{:<26} {:>10} {:>10} {:>12} {:>14}",
        "policy", "worst-FU", "CoV", "lifetime[y]", "10y delay[%]"
    );

    // The whole standard sweep, enumerated as data — every policy ×
    // pattern × granularity point the workspace knows about.
    for spec in PolicySpec::all_specs(&fabric) {
        let run = run_suite(fabric, &workloads, &energy, &spec)?;
        assert!(run.all_verified(), "oracle failure under {spec}");
        let grid = run.tracker.utilization();
        let eval = evaluate_aging(&aging, &grid, 10.0, 101);
        let at_10y = aging.delay_increase(10.0, eval.worst_utilization);
        println!(
            "{:<26} {:>9.1}% {:>10.3} {:>12.2} {:>13.2}%",
            spec.to_string(),
            100.0 * eval.worst_utilization,
            grid.cov(),
            eval.lifetime_years,
            100.0 * at_10y,
        );
    }

    println!();
    println!(
        "(end of life = {:.0}% delay degradation; paper anchor: u=100% dies in 3 years)",
        100.0 * aging.eol_delay_frac
    );
    Ok(())
}
