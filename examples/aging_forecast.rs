//! Aging forecast: plan the deployment lifetime of a CGRA product running a
//! known workload mix, comparing allocation policies — the decision the
//! paper's Table I supports, extended with the *temporal* view: a
//! `util-trace` probe samples the stress map during each run, so the
//! forecast also reports how fast every policy flattens worst-FU stress
//! (DESIGN.md §10).
//!
//! Two lifetime columns cross-check each other: `life[y]` is the one-shot
//! analytic projection from the final utilization grid, `wear[y]` replays
//! the same duty cycles through the persistent per-FU wear state
//! (DESIGN.md §11) — equivalent-age composition across missions must land
//! on the same worst-FU lifetime.
//!
//! The policy loop shares one precomputed GPP reference
//! ([`transrec::gpp_reference`] + [`transrec::run_suite_with_baseline`]):
//! the stand-alone GPP baseline is policy-independent, so it is simulated
//! once, not once per policy.
//!
//! ```sh
//! cargo run --release -p transrec --example aging_forecast
//! ```

use cgra::Fabric;
use lifetime::DeviceLifetime;
use nbti::CalibratedAging;
use transrec::telemetry::ProbeSpec;
use transrec::{gpp_reference, run_suite_with_baseline, EnergyParams, SystemConfig};
use uaware::{evaluate_aging, PolicySpec};

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let fabric = Fabric::be();
    let config = SystemConfig::new(fabric);
    let workloads = mibench::suite(42);
    let energy = EnergyParams::default();
    let aging = CalibratedAging::default();
    let probes = [ProbeSpec::util_trace(50_000)];

    // The policy-independent half of every run, computed exactly once.
    let gpp_cycles = gpp_reference(&config, &workloads)?;

    println!("deployment forecast, {}x{} fabric, ten-benchmark mix", fabric.rows, fabric.cols);
    println!(
        "{:<26} {:>10} {:>10} {:>9} {:>9} {:>14} {:>10}",
        "policy", "worst-FU", "CoV", "life[y]", "wear[y]", "10y delay[%]", "settle[%]"
    );

    // The whole standard sweep, enumerated as data — every policy ×
    // pattern × granularity point the workspace knows about.
    for spec in PolicySpec::all_specs(&fabric) {
        let run =
            run_suite_with_baseline(&config, &workloads, &energy, &spec, &gpp_cycles, &probes)?;
        assert!(run.all_verified(), "oracle failure under {spec}");
        let grid = run.tracker.utilization();
        let eval = evaluate_aging(&aging, &grid, 10.0, 101);
        let at_10y = aging.delay_increase(10.0, eval.worst_utilization);

        // The wear-state lifetime (DESIGN.md §11): fold the run's duty
        // cycles into a persistent per-FU wear grid, mission by mission,
        // and project the first end-of-life crossing. Equivalent-age
        // composition makes this agree with the analytic column.
        let total_cycles: u64 = run.benchmarks.iter().map(|b| b.stats.total_cycles()).sum();
        let duty = run.tracker.duty_cycles(total_cycles);
        let mut device = DeviceLifetime::new(&fabric, aging, false);
        for _ in 0..4 {
            device.advance_mission(&duty, 0.5); // two deployment years …
        }
        let wear_life = device.projected_first_failure(&duty);
        assert!(
            (wear_life - eval.lifetime_years).abs() < 1e-6,
            "wear-state and analytic lifetimes must agree ({wear_life} vs {})",
            eval.lifetime_years
        );

        // The temporal view: the suite-level epoch series, and where the
        // worst-FU stress settles to within 5% of its final value.
        let trace = run.util_trace().expect("util-trace probe attached");
        let total = trace.total_cycles();
        let settle = trace.settle_cycle(0.05);
        let settle_pct = if total == 0 { 0.0 } else { 100.0 * settle as f64 / total as f64 };

        println!(
            "{:<26} {:>9.1}% {:>10.3} {:>9.2} {:>9.2} {:>13.2}% {:>9.1}%",
            spec.to_string(),
            100.0 * eval.worst_utilization,
            grid.cov(),
            eval.lifetime_years,
            wear_life,
            100.0 * at_10y,
            settle_pct,
        );
    }

    println!();
    println!(
        "(end of life = {:.0}% delay degradation; paper anchor: u=100% dies in 3 years; \
         settle = fraction of the run after which worst-FU stress stays within 5% of final)",
        100.0 * aging.eol_delay_frac
    );
    Ok(())
}
