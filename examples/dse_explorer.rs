//! Layout explorer: sweep heterogeneous fabric mixes (DESIGN.md §14) and
//! print the speedup / wear / lifetime trade-off per layout.
//!
//! Each layout is a `FabricSpec` string — geometry plus capability-class
//! mix plus column-bandwidth budget — and the whole set ×
//! {baseline, rotation} is one `SweepPlan`, sharded across all cores by
//! `run_sweep` (DESIGN.md §9); the printed table is byte-identical to a
//! sequential run.
//!
//! ```sh
//! cargo run --release --example dse_explorer [seed]
//! ```

use cgra::FabricSpec;
use nbti::CalibratedAging;
use transrec::{run_sweep, SweepPlan};
use uaware::PolicySpec;

/// The explored layout mixes: the uniform Fig. 1 geometry, its
/// heterogeneous class mixes, and bandwidth-budgeted variants.
const LAYOUTS: [&str; 6] =
    ["4x8", "4x8:het-checker", "4x8:het-rows", "4x8:het-cols", "4x8+bw-2", "4x8:het-checker+bw-2"];

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0xDAC2020u64))
}

/// Runs the sweep with an explicit seed (the smoke test enters here, so
/// libtest's own CLI arguments can never leak in as a seed).
pub fn run(seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    let aging = CalibratedAging::default();

    let mut plan = SweepPlan::new(seed).policy(PolicySpec::Baseline).policy(PolicySpec::rotation());
    let specs: Vec<FabricSpec> = LAYOUTS.iter().map(|s| s.parse()).collect::<Result<_, _>>()?;
    for spec in &specs {
        plan = plan.fabric(spec.build()?);
    }
    let runs = run_sweep(&plan, 0)?; // 0 = all cores

    println!("seed {seed}; worst-FU duty folds in column-bandwidth stress (DESIGN.md §14)");
    println!(
        "{:>22} {:>9} {:>10} {:>9} {:>13} {:>12} {:>8}",
        "layout", "speedup", "duty-base", "duty-rot", "life-base[y]", "life-rot[y]", "starved"
    );

    for (ci, spec) in specs.iter().enumerate() {
        let base = &runs[plan.index_of(ci, 0, 0)];
        let rot = &runs[plan.index_of(ci, 0, 1)];
        assert!(base.all_verified() && rot.all_verified());
        let cycles = |run: &transrec::SuiteRun| -> u64 {
            run.benchmarks.iter().map(|b| b.system_cycles).sum()
        };
        let base_duty = base.tracker.duty_cycles(cycles(base));
        let rot_duty = rot.tracker.duty_cycles(cycles(rot));
        let starved: u64 = rot.benchmarks.iter().map(|b| b.stats.offloads_starved).sum();
        println!(
            "{:>22} {:>8.2}x {:>9.1}% {:>8.1}% {:>13.2} {:>12.2} {:>8}",
            spec.to_string(),
            rot.speedup(),
            100.0 * base_duty.max(),
            100.0 * rot_duty.max(),
            aging.lifetime_years(base_duty.max()),
            aging.lifetime_years(rot_duty.max()),
            starved,
        );
    }
    Ok(())
}
