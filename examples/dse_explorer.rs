//! Design-space explorer: sweep fabric geometries beyond the paper's grid
//! and print the speedup / energy / lifetime trade-off per design point.
//!
//! The whole grid — 12 geometries × {baseline, rotation} — is one
//! `SweepPlan`, sharded across all cores by `run_sweep` (DESIGN.md §9);
//! the printed table is byte-identical to a sequential run.
//!
//! ```sh
//! cargo run --release --example dse_explorer [seed]
//! ```

use cgra::Fabric;
use nbti::CalibratedAging;
use transrec::{run_sweep, SweepPlan};
use uaware::PolicySpec;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0xDAC2020u64))
}

/// Runs the sweep with an explicit seed (the smoke test enters here, so
/// libtest's own CLI arguments can never leak in as a seed).
pub fn run(seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    let aging = CalibratedAging::default();

    let mut plan = SweepPlan::new(seed).policy(PolicySpec::Baseline).policy(PolicySpec::rotation());
    let mut grid = Vec::new();
    for l in [8u32, 12, 16, 20, 24, 32] {
        for w in [2u32, 4] {
            grid.push((l, w));
            plan = plan.fabric(Fabric::new(w, l));
        }
    }
    let runs = run_sweep(&plan, 0)?; // 0 = all cores

    println!("seed {seed}; lifetime improvement = baseline worst-FU / rotated worst-FU");
    println!(
        "{:>10} {:>9} {:>10} {:>11} {:>13} {:>12}",
        "design", "speedup", "energy[x]", "occupation", "life-base[y]", "life-rot[y]"
    );

    for (ci, &(l, w)) in grid.iter().enumerate() {
        let base = &runs[plan.index_of(ci, 0, 0)];
        let rot = &runs[plan.index_of(ci, 0, 1)];
        assert!(base.all_verified() && rot.all_verified());
        println!(
            "{:>10} {:>8.2}x {:>10.3} {:>10.1}% {:>13.2} {:>12.2}",
            format!("(L{l},W{w})"),
            base.speedup(),
            base.relative_energy(),
            100.0 * base.avg_occupation(),
            aging.lifetime_years(base.tracker.utilization().max()),
            aging.lifetime_years(rot.tracker.utilization().max()),
        );
    }
    Ok(())
}
