//! Design-space explorer: sweep fabric geometries beyond the paper's grid
//! and print the speedup / energy / lifetime trade-off per design point.
//!
//! ```sh
//! cargo run --release -p transrec --example dse_explorer [seed]
//! ```

use cgra::Fabric;
use nbti::CalibratedAging;
use transrec::{run_suite, EnergyParams};
use uaware::PolicySpec;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    run(std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(0xDAC2020u64))
}

/// Runs the sweep with an explicit seed (the smoke test enters here, so
/// libtest's own CLI arguments can never leak in as a seed).
pub fn run(seed: u64) -> Result<(), Box<dyn std::error::Error>> {
    let workloads = mibench::suite(seed);
    let energy = EnergyParams::default();
    let aging = CalibratedAging::default();

    println!("seed {seed}; lifetime improvement = baseline worst-FU / rotated worst-FU");
    println!(
        "{:>10} {:>9} {:>10} {:>11} {:>13} {:>12}",
        "design", "speedup", "energy[x]", "occupation", "life-base[y]", "life-rot[y]"
    );

    let baseline = PolicySpec::Baseline;
    let rotation = PolicySpec::rotation();

    for l in [8u32, 12, 16, 20, 24, 32] {
        for w in [2u32, 4] {
            let fabric = Fabric::new(w, l);
            let base = run_suite(fabric, &workloads, &energy, &baseline)?;
            let rot = run_suite(fabric, &workloads, &energy, &rotation)?;
            assert!(base.all_verified() && rot.all_verified());
            println!(
                "{:>10} {:>8.2}x {:>10.3} {:>10.1}% {:>13.2} {:>12.2}",
                format!("(L{l},W{w})"),
                base.speedup(),
                base.relative_energy(),
                100.0 * base.avg_occupation(),
                aging.lifetime_years(base.tracker.utilization().max()),
                aging.lifetime_years(rot.tracker.utilization().max()),
            );
        }
    }
    Ok(())
}
