//! Quickstart: accelerate a RISC-V kernel on the CGRA and watch
//! utilization-aware allocation flatten the FU stress map.
//!
//! ```sh
//! cargo run --release -p transrec --example quickstart
//! ```

use cgra::Fabric;
use nbti::CalibratedAging;
use rv32::asm::assemble;
use transrec::{run_gpp_only, System};
use uaware::PolicySpec;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small fixed-point dot-product kernel, written like compiled -O3
    // code (bottom-tested loop).
    let program = assemble(
        "
        .data
    a:  .word 3, 1, 4, 1, 5, 9, 2, 6, 5, 3, 5, 8, 9, 7, 9, 3
    b:  .word 2, 7, 1, 8, 2, 8, 1, 8, 2, 8, 4, 5, 9, 0, 4, 5
    out:
        .word 0

        .text
        la   s0, a
        la   s1, b
        li   s2, 16
        li   a0, 0
    loop:
        lw   t0, 0(s0)
        lw   t1, 0(s1)
        mul  t2, t0, t1
        add  a0, a0, t2
        addi s0, s0, 4
        addi s1, s1, 4
        addi s2, s2, -1
        bnez s2, loop
        la   t3, out
        sw   a0, 0(t3)
        ebreak
    ",
    )?;

    // Reference: the stand-alone GPP.
    let gpp = run_gpp_only(&program, 1 << 20, Default::default(), 1_000_000)?;
    println!(
        "GPP alone:              {:>6} cycles, dot = {}",
        gpp.cycles(),
        gpp.reg(rv32::Reg::A0)
    );

    // The paper's BE design point (16 columns x 2 rows).
    let fabric = Fabric::be();

    // 1. Traditional corner-anchored allocation (the builder's default
    // policy is `baseline`).
    let mut baseline = System::builder(fabric).build()?;
    baseline.run(&program)?;
    println!(
        "TransRec (baseline):    {:>6} cycles ({:.2}x), {} offloads",
        baseline.cpu().cycles(),
        gpp.cycles() as f64 / baseline.cpu().cycles() as f64,
        baseline.stats().offloads,
    );

    // 2. The paper's utilization-aware rotation, selected as data — the
    // same spec could come from a CLI flag or a JSON sweep file.
    let mut rotated = System::builder(fabric).policy(PolicySpec::rotation()).build()?;
    rotated.run(&program)?;
    println!(
        "TransRec (rotation):    {:>6} cycles ({:.2}x), same result: {}",
        rotated.cpu().cycles(),
        gpp.cycles() as f64 / rotated.cpu().cycles() as f64,
        rotated.cpu().reg(rv32::Reg::A0) == gpp.reg(rv32::Reg::A0),
    );

    // The aging story: the hottest FU decides the lifetime.
    let aging = CalibratedAging::default();
    let base_grid = baseline.tracker().utilization();
    let rot_grid = rotated.tracker().utilization();
    println!("\nBaseline utilization (max {:.0}%):", 100.0 * base_grid.max());
    println!("{}", base_grid.render_heatmap());
    println!("Rotated utilization (max {:.0}%):", 100.0 * rot_grid.max());
    println!("{}", rot_grid.render_heatmap());
    println!(
        "lifetime: {:.1} years -> {:.1} years ({:.2}x improvement)",
        aging.lifetime_years(base_grid.max()),
        aging.lifetime_years(rot_grid.max()),
        aging.lifetime_improvement(base_grid.max(), rot_grid.max()),
    );
    Ok(())
}
