//! Fleet MTTF: simulate a small fleet of devices through multi-year
//! closed-loop deployments (DESIGN.md §11) — per-FU wear accumulates
//! mission by mission, end-of-life FUs drop out of the allocatable fabric,
//! and a device dies when its policy finds no legal placement — then
//! compare the mean time to failure of a corner-pinned baseline against
//! the health-aware oracle that routes around both stress *and* failures.
//!
//! ```sh
//! cargo run --release --example fleet_mttf
//! ```

use cgra::Fabric;
use transrec::fleet::{run_fleet, FleetPlan};
use transrec::sweep::SuiteSpec;
use uaware::PolicySpec;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A small fleet on the paper's BE scenario running bitcount (small
    // footprints, so reallocation has room to work): 3 devices per policy,
    // half-year missions, observed for 20 years.
    let plan = FleetPlan::new(0xDAC2020, Fabric::be())
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::HealthAware)
        .devices(3)
        .suite(SuiteSpec::subset("bitcount", vec![0]))
        .mission_years(0.5)
        .horizon_years(20.0);
    let report = run_fleet(&plan, 0)?; // 0 = all cores; byte-identical anyway

    println!(
        "fleet of {} devices/policy, {}x{} fabric, {} mix, {}y missions, {}y horizon",
        report.devices,
        report.rows,
        report.cols,
        report.suite,
        report.mission_years,
        report.horizon_years
    );
    println!(
        "{:<14} {:>8} {:>10} {:>14} {:>14}",
        "policy", "deaths", "MTTF[y]", "1st fail[y]", "alive@10y"
    );
    for fleet in &report.policies {
        let first = fleet
            .devices
            .iter()
            .filter_map(|d| d.first_failure_years)
            .fold(f64::INFINITY, f64::min);
        println!(
            "{:<14} {:>5}/{:<2} {:>10.2} {:>14} {:>13.0}%",
            fleet.policy,
            fleet.stats.deaths,
            fleet.stats.devices,
            fleet.stats.mttf_years,
            if first.is_finite() { format!("{first:.2}") } else { "-".into() },
            100.0 * fleet.survival.alive_at(10.0),
        );
    }

    let base = report.policy("baseline").expect("baseline fleet").stats.mttf_years;
    let oracle = report.policy("health-aware").expect("health-aware fleet").stats.mttf_years;
    let ratio = oracle / base;
    println!();
    println!(
        "health-aware MTTF ratio over baseline: {ratio:.2}x \
         (horizon-censored; survivors counted at {}y)",
        report.horizon_years
    );
    assert!(ratio > 1.0, "reallocation around failures must outlive the pinned corner");
    Ok(())
}
