//! Bring your own kernel: write RV32IM assembly, check it against a native
//! Rust oracle, and evaluate how allocation policies spread its FU stress.
//!
//! ```sh
//! cargo run --release -p transrec --example custom_kernel
//! ```

use cgra::Fabric;
use mibench::Workload;
use transrec::System;
use uaware::PolicySpec;

/// A Fibonacci-hash mixer over an array — the "user kernel".
fn kernel_source(n: usize, values: &[u32]) -> String {
    format!(
        "
    .data
{}
out:
    .space {}

    .text
    la   s0, input
    la   s1, out
    li   s2, {n}
loop:
    lw   t0, 0(s0)
    li   t1, 0x9e3779b9      # golden-ratio multiplier
    mul  t0, t0, t1
    srli t2, t0, 15
    xor  t0, t0, t2
    slli t2, t0, 7
    xor  t0, t0, t2
    sw   t0, 0(s1)
    addi s0, s0, 4
    addi s1, s1, 4
    addi s2, s2, -1
    bnez s2, loop
    ebreak
",
        mibench::workload::words_directive("input", values),
        n * 4,
        n = n,
    )
}

/// The oracle: the same mixing in Rust.
fn oracle(values: &[u32]) -> Vec<u8> {
    values
        .iter()
        .map(|v| {
            let mut x = v.wrapping_mul(0x9e37_79b9);
            x ^= x >> 15;
            x ^= x << 7;
            x
        })
        .flat_map(|x| x.to_le_bytes())
        .collect()
}

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    let values: Vec<u32> = (0..64u32).map(|i| i.wrapping_mul(2654435761)).collect();
    let workload = Workload::new(
        "fibmix",
        &kernel_source(values.len(), &values),
        100_000,
        vec![("out".into(), oracle(&values))],
    );

    // Sanity: the kernel is correct on the plain interpreter.
    workload.run_and_verify(1 << 20)?;
    println!("kernel verifies on the interpreter");

    // Now on the accelerated system under several movement granularities —
    // each policy written in the same compact string grammar the `--policy`
    // CLI flag accepts.
    let fabric = Fabric::be();
    let specs = [
        "baseline",
        "rotation:snake@per-exec",
        "rotation:snake@per-load",
        "rotation:snake@every-8",
    ];
    println!(
        "\n{:<26} {:>8} {:>10} {:>10} {:>8}",
        "policy", "cycles", "worst-FU", "mean-FU", "rot-cyc"
    );
    for s in specs {
        let spec: PolicySpec = s.parse()?;
        let mut sys = System::builder(fabric).policy(spec).build()?;
        sys.run(workload.program())?;
        workload.verify(sys.cpu())?;
        let grid = sys.tracker().utilization();
        println!(
            "{:<26} {:>8} {:>9.1}% {:>9.1}% {:>8}",
            s,
            sys.cpu().cycles(),
            100.0 * grid.max(),
            100.0 * grid.mean(),
            sys.stats().rotate_cycles,
        );
    }
    Ok(())
}
