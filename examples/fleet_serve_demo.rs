//! Live serving demo (DESIGN.md §13): a small fleet queues a diurnal
//! request stream — seeded Poisson arrivals thinned against the day curve
//! — through the utilization-aware backpressure path, first as a single
//! observed day (request telemetry plus a queue-depth probe), then as a
//! multi-day campaign where per-day wear feeds the lifetime engine, dead
//! devices are replaced at cost, and the corner-pinned baseline is
//! compared with the health-aware oracle on fleet MTTF *and* tail
//! latency.
//!
//! ```sh
//! cargo run --release --example fleet_serve_demo
//! ```

use cgra::Fabric;
use transrec::sweep::SuiteSpec;
use transrec::traffic::{run_serving, ServePlan, TrafficSpec};
use transrec::{ProbeReport, ProbeSpec};
use uaware::PolicySpec;

pub fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A deliberately small serving fleet that still shows the mechanics:
    // two devices sharing one workload/traffic lane on a 2x8 fabric, a
    // slow clock (few arrivals per day, so the demo stays fast) with the
    // request rate pinned so the diurnal peak saturates the fabric, and a
    // fast wear clock (each serving day models three deployment years).
    let traffic = TrafficSpec::Diurnal { per_hour: 300, swing_pct: 80 };
    let plan = ServePlan::new(0xDAC2020, Fabric::new(2, 8))
        .policy(PolicySpec::Baseline)
        .policy(PolicySpec::HealthAware)
        .traffic(traffic)
        .suite(SuiteSpec::subset("bitcount", vec![0]))
        .devices(2)
        .lanes(1)
        .clock_hz(2_000)
        .horizon_days(8)
        .pattern_days(2)
        .years_per_day(3.0);

    // One observed day on a pristine device: the request event stream
    // drives a queue-depth probe exactly as the campaign path runs it.
    let probes = vec!["queue-depth@every-20000000".parse::<ProbeSpec>()?];
    let (day, reports) =
        transrec::probe_service_day(&plan, &PolicySpec::Baseline, &traffic, 0, 0, &probes)?;
    println!(
        "day 0 under baseline: {} requests, {} on the fabric, {} deferred, {} shed, \
         p95 {:.1} ms",
        day.requests, day.served_cgra, day.served_gpp, day.shed, day.p95_ms
    );
    if let Some(ProbeReport::QueueDepth(series)) = reports.first() {
        let peak = series.samples.iter().map(|&(_, depth)| depth).max().unwrap_or(0);
        println!(
            "queue-depth probe: {} samples over the day, peak depth {}",
            series.samples.len(),
            peak
        );
    }

    // The campaign: same streams, every policy, wear and replacement on.
    let report = run_serving(&plan, 0)?; // 0 = all cores; byte-identical anyway
    println!();
    println!(
        "serving fleet of {} devices/cell, {}x{} fabric, {} days ({:.0}y deployed), {}",
        report.devices,
        report.rows,
        report.cols,
        report.horizon_days,
        report.horizon_years,
        traffic
    );
    println!(
        "{:<14} {:>9} {:>9} {:>9} {:>7} {:>6}",
        "policy", "MTTF[y]", "p95[ms]", "p99[ms]", "shed", "repl"
    );
    for cell in &report.cells {
        assert_eq!(
            cell.served_cgra + cell.served_gpp + cell.shed,
            cell.total_requests,
            "every request is served, deferred or shed"
        );
        println!(
            "{:<14} {:>9.2} {:>9.1} {:>9.1} {:>7} {:>6}",
            cell.policy,
            cell.stats.mttf_years,
            cell.p95_ms,
            cell.p99_ms,
            cell.shed,
            cell.replacements
        );
    }

    let spec = traffic.to_string();
    let base = report.cell(&spec, "baseline").expect("baseline cell");
    let aware = report.cell(&spec, "health-aware").expect("health-aware cell");
    println!();
    println!(
        "health-aware vs baseline: MTTF {:.2}x, p95 {:.1} -> {:.1} ms",
        aware.stats.mttf_years / base.stats.mttf_years,
        base.p95_ms,
        aware.p95_ms
    );
    assert!(
        aware.stats.mttf_years > base.stats.mttf_years,
        "spreading stress must outlive the pinned corner"
    );
    Ok(())
}
