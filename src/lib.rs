//! # uaware-cgra — workspace facade
//!
//! Reproduction of *"Proactive Aging Mitigation in CGRAs through
//! Utilization-Aware Allocation"* (Brandalero et al., DAC 2020). This thin
//! crate re-exports every workspace member so the root-level integration
//! tests (`tests/`) and runnable examples (`examples/`) have a single
//! package to hang off; the substance lives in the member crates:
//!
//! * [`rv32`] — RV32IM emulator (decoder, encoder, assembler, CPU).
//! * [`cgra`] — the reconfigurable fabric, bitstreams and area model.
//! * [`uaware`] — the paper's contribution: rotation policies, movement
//!   patterns, utilization tracking, lifetime evaluation.
//! * [`nbti`] — the NBTI aging model (paper Eq. 1) and persistent
//!   per-unit wear state.
//! * [`lifetime`] — the closed-loop lifetime engine: fabric wear grids,
//!   end-of-life events, fleet survival statistics (DESIGN.md §11).
//! * [`dbt`] — the dynamic-binary-translation module.
//! * [`mibench`] — the MiBench-derived workloads.
//! * [`transrec`] — the full-system GPP + DBT + CGRA simulator.
//! * [`bench`](../bench/index.html) — the experiment harness behind the
//!   paper's figures/tables.
//!
//! See `README.md` for the crate map and `DESIGN.md` for the modeling
//! assumptions.

#![warn(missing_docs)]

// `pub use bench;` would also re-export the built-in unstable `#[bench]`
// attribute macro from the extern prelude; an explicit extern crate only
// names the library.
pub extern crate bench;
pub use cgra;
pub use dbt;
pub use lifetime;
pub use mibench;
pub use nbti;
pub use rv32;
pub use transrec;
pub use uaware;
