//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]` macros for the
//! minimal serde stand-in under `vendor/serde`.
//!
//! The container has no network route to a crates registry, so this crate
//! parses the item token stream by hand (no `syn`/`quote`) and emits impls
//! of the Value-tree `serde::Serialize`/`serde::Deserialize` traits. It
//! supports the shapes the workspace actually uses: unit/tuple/named
//! structs and enums with unit, tuple and struct variants, all
//! non-generic. Serialization follows serde's JSON conventions so reports
//! match what the real serde would emit.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Field layout of a struct or enum variant.
enum Fields {
    Unit,
    Tuple(usize),
    Named(Vec<String>),
}

/// A parsed `struct` or `enum` item.
enum Item {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<(String, Fields)> },
}

/// Derives `serde::Serialize` for non-generic structs and enums.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_serialize(&item).parse().expect("generated Serialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

/// Derives `serde::Deserialize` for non-generic structs and enums.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    match parse_item(input) {
        Ok(item) => gen_deserialize(&item).parse().expect("generated Deserialize impl parses"),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().expect("compile_error parses")
}

/// Walks the item tokens up to the `struct`/`enum` keyword, then dispatches.
fn parse_item(input: TokenStream) -> Result<Item, String> {
    let mut tokens = input.into_iter().peekable();
    while let Some(tt) = tokens.next() {
        match tt {
            // Attribute or doc comment: `#` followed by a bracket group.
            TokenTree::Punct(p) if p.as_char() == '#' => {
                tokens.next();
            }
            TokenTree::Ident(id) if id.to_string() == "pub" => {
                // Skip a `(crate)`-style restriction if present.
                if let Some(TokenTree::Group(g)) = tokens.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        tokens.next();
                    }
                }
            }
            TokenTree::Ident(id) if id.to_string() == "struct" => {
                let name = expect_ident(&mut tokens)?;
                reject_generics(&mut tokens, &name)?;
                let fields = match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Fields::Named(parse_named_fields(g.stream())?)
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Fields::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Fields::Unit,
                    other => return Err(format!("unexpected token after struct name: {other:?}")),
                };
                return Ok(Item::Struct { name, fields });
            }
            TokenTree::Ident(id) if id.to_string() == "enum" => {
                let name = expect_ident(&mut tokens)?;
                reject_generics(&mut tokens, &name)?;
                match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        return Ok(Item::Enum { name, variants: parse_variants(g.stream())? });
                    }
                    other => return Err(format!("expected enum body, found {other:?}")),
                }
            }
            _ => {}
        }
    }
    Err("derive input contained no struct or enum".to_string())
}

fn expect_ident(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
) -> Result<String, String> {
    match tokens.next() {
        Some(TokenTree::Ident(id)) => Ok(id.to_string()),
        other => Err(format!("expected identifier, found {other:?}")),
    }
}

fn reject_generics(
    tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>,
    name: &str,
) -> Result<(), String> {
    if let Some(TokenTree::Punct(p)) = tokens.peek() {
        if p.as_char() == '<' {
            return Err(format!("cannot derive serde traits for generic type `{name}`"));
        }
    }
    Ok(())
}

/// Parses `name: Type, ...` field lists, returning the field names.
fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let mut names = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        // Skip attributes/doc comments and visibility.
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    tokens.next();
                    if let Some(TokenTree::Group(g)) = tokens.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            tokens.next();
                        }
                    }
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected field name, found {tt:?}"));
        };
        names.push(id.to_string());
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => return Err(format!("expected `:` after field name, found {other:?}")),
        }
        skip_type_until_comma(&mut tokens);
    }
    Ok(names)
}

/// Consumes a type, stopping after the angle-bracket-aware top-level comma.
fn skip_type_until_comma(tokens: &mut std::iter::Peekable<impl Iterator<Item = TokenTree>>) {
    let mut angle_depth = 0i32;
    let mut prev_dash = false;
    for tt in tokens.by_ref() {
        if let TokenTree::Punct(p) = &tt {
            match p.as_char() {
                '<' => angle_depth += 1,
                // `->` in `fn(..) -> T` types must not close an angle bracket.
                '>' if !prev_dash => angle_depth -= 1,
                ',' if angle_depth == 0 => return,
                _ => {}
            }
            prev_dash = p.as_char() == '-';
        } else {
            prev_dash = false;
        }
    }
}

/// Counts top-level comma-separated fields of a tuple struct/variant.
fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut tokens = stream.into_iter().peekable();
    let mut count = 0;
    while tokens.peek().is_some() {
        count += 1;
        skip_type_until_comma(&mut tokens);
    }
    count
}

/// Parses enum variants (unit, tuple, or struct-like; discriminants skipped).
fn parse_variants(stream: TokenStream) -> Result<Vec<(String, Fields)>, String> {
    let mut variants = Vec::new();
    let mut tokens = stream.into_iter().peekable();
    loop {
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    tokens.next();
                    tokens.next();
                }
                _ => break,
            }
        }
        let Some(tt) = tokens.next() else { break };
        let TokenTree::Ident(id) = tt else {
            return Err(format!("expected variant name, found {tt:?}"));
        };
        let name = id.to_string();
        let fields = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Fields::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let names = parse_named_fields(g.stream())?;
                tokens.next();
                Fields::Named(names)
            }
            _ => Fields::Unit,
        };
        // Skip an explicit discriminant and/or the trailing comma.
        skip_type_until_comma(&mut tokens);
        variants.push((name, fields));
    }
    Ok(variants)
}

fn gen_serialize(item: &Item) -> String {
    match item {
        Item::Struct { name, fields } => {
            let body = match fields {
                Fields::Unit => "::serde::Value::Null".to_string(),
                Fields::Tuple(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Fields::Tuple(n) => {
                    let elems: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                }
                Fields::Named(names) => {
                    let entries: Vec<String> = names
                        .iter()
                        .map(|f| {
                            format!("({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f}))")
                        })
                        .collect();
                    format!("::serde::Value::Object(vec![{}])", entries.join(", "))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{ {body} }}\n\
                 }}"
            )
        }
        Item::Enum { name, variants } => {
            let arms: Vec<String> = variants
                .iter()
                .map(|(vname, fields)| match fields {
                    Fields::Unit => format!(
                        "{name}::{vname} => ::serde::Value::String({vname:?}.to_string()),"
                    ),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            "::serde::Serialize::to_value(f0)".to_string()
                        } else {
                            let elems: Vec<String> = binds
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_value({b})"))
                                .collect();
                            format!("::serde::Value::Array(vec![{}])", elems.join(", "))
                        };
                        format!(
                            "{name}::{vname}({}) => ::serde::Value::Object(vec![({vname:?}.to_string(), {payload})]),",
                            binds.join(", ")
                        )
                    }
                    Fields::Named(fnames) => {
                        let entries: Vec<String> = fnames
                            .iter()
                            .map(|f| {
                                format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))")
                            })
                            .collect();
                        format!(
                            "{name}::{vname} {{ {} }} => ::serde::Value::Object(vec![({vname:?}.to_string(), ::serde::Value::Object(vec![{}]))]),",
                            fnames.join(", "),
                            entries.join(", ")
                        )
                    }
                })
                .collect();
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n\
                         match self {{\n{}\n}}\n\
                     }}\n\
                 }}",
                arms.join("\n")
            )
        }
    }
}

fn gen_deserialize(item: &Item) -> String {
    let body = match item {
        Item::Struct { name, fields } => match fields {
            Fields::Unit => format!(
                "match v {{\n\
                     ::serde::Value::Null => Ok({name}),\n\
                     _ => Err(::serde::Error::custom(\"expected null for unit struct {name}\")),\n\
                 }}"
            ),
            Fields::Tuple(1) => format!("Ok({name}(::serde::Deserialize::from_value(v)?))"),
            Fields::Tuple(n) => {
                let elems: Vec<String> = (0..*n)
                    .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                    .collect();
                format!(
                    "{{\n\
                         let a = v.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if a.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple length for {name}\")); }}\n\
                         Ok({name}({}))\n\
                     }}",
                    elems.join(", ")
                )
            }
            Fields::Named(names) => {
                let fields_src: Vec<String> =
                    names.iter().map(|f| format!("{f}: ::serde::de_field(obj, {f:?})?")).collect();
                format!(
                    "{{\n\
                         let obj = v.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         Ok({name} {{ {} }})\n\
                     }}",
                    fields_src.join(", ")
                )
            }
        },
        Item::Enum { name, variants } => {
            let unit_arms: Vec<String> = variants
                .iter()
                .filter(|(_, f)| matches!(f, Fields::Unit))
                .map(|(vname, _)| format!("{vname:?} => Ok({name}::{vname}),"))
                .collect();
            let data_arms: Vec<String> = variants
                .iter()
                .filter_map(|(vname, fields)| match fields {
                    Fields::Unit => None,
                    Fields::Tuple(1) => Some(format!(
                        "{vname:?} => Ok({name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                    )),
                    Fields::Tuple(n) => {
                        let elems: Vec<String> = (0..*n)
                            .map(|i| format!("::serde::Deserialize::from_value(&a[{i}])?"))
                            .collect();
                        Some(format!(
                            "{vname:?} => {{\n\
                                 let a = payload.as_array().ok_or_else(|| ::serde::Error::custom(\"expected array payload\"))?;\n\
                                 if a.len() != {n} {{ return Err(::serde::Error::custom(\"wrong payload length\")); }}\n\
                                 Ok({name}::{vname}({}))\n\
                             }}",
                            elems.join(", ")
                        ))
                    }
                    Fields::Named(fnames) => {
                        let fields_src: Vec<String> = fnames
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(obj, {f:?})?"))
                            .collect();
                        Some(format!(
                            "{vname:?} => {{\n\
                                 let obj = payload.as_object().ok_or_else(|| ::serde::Error::custom(\"expected object payload\"))?;\n\
                                 Ok({name}::{vname} {{ {} }})\n\
                             }}",
                            fields_src.join(", ")
                        ))
                    }
                })
                .collect();
            format!(
                "match v {{\n\
                     ::serde::Value::String(s) => match s.as_str() {{\n\
                         {}\n\
                         other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                     }},\n\
                     ::serde::Value::Object(pairs) if pairs.len() == 1 => {{\n\
                         let (tag, payload) = (&pairs[0].0, &pairs[0].1);\n\
                         let _ = payload;\n\
                         match tag.as_str() {{\n\
                             {}\n\
                             other => Err(::serde::Error::custom(format!(\"unknown variant `{{other}}` of {name}\"))),\n\
                         }}\n\
                     }}\n\
                     _ => Err(::serde::Error::custom(\"expected string or single-key object for enum {name}\")),\n\
                 }}",
                unit_arms.join("\n"),
                data_arms.join("\n")
            )
        }
    };
    let name = match item {
        Item::Struct { name, .. } | Item::Enum { name, .. } => name,
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> ::core::result::Result<Self, ::serde::Error> {{\n\
                 {body}\n\
             }}\n\
         }}"
    )
}
