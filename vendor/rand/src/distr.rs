//! Vendored minimal stand-in for the `rand_distr` distribution samplers,
//! following upstream's `rand::distr` module shape: a [`Distribution`]
//! trait plus the three continuous/discrete samplers the workspace's
//! traffic models need — [`Exp`]onential and [`Pareto`] inter-arrival
//! times and [`Poisson`] counts. Constructors validate their parameters
//! with upstream-shaped error enums; sampling uses the plain inverse-CDF
//! (and, for Poisson, Knuth-product) constructions, so streams are
//! deterministic per seed but not bit-identical with upstream.

use std::fmt;

use crate::{unit_f64, Rng};

/// Types (distributions) that can be used to create a random instance of
/// `T` — the upstream `Distribution` trait surface the workspace uses.
pub trait Distribution<T> {
    /// Generates one sample from the distribution using `rng`.
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
}

/// The exponential distribution `Exp(lambda)`: inter-arrival times of a
/// homogeneous Poisson process with rate `lambda` events per unit time.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Exp {
    /// `1 / lambda`, the mean inter-arrival time.
    lambda_inverse: f64,
}

/// Error type returned from [`Exp::new`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ExpError {
    /// `lambda <= 0` or `nan`.
    LambdaTooSmall,
}

impl fmt::Display for ExpError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("lambda is negative, zero or NaN in exponential distribution")
    }
}

impl std::error::Error for ExpError {}

impl Exp {
    /// Constructs `Exp(lambda)` with rate `lambda` (> 0).
    ///
    /// # Errors
    ///
    /// [`ExpError::LambdaTooSmall`] unless `lambda > 0` and finite.
    pub fn new(lambda: f64) -> Result<Exp, ExpError> {
        if !(lambda > 0.0 && lambda.is_finite()) {
            return Err(ExpError::LambdaTooSmall);
        }
        Ok(Exp { lambda_inverse: 1.0 / lambda })
    }
}

impl Distribution<f64> for Exp {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: -ln(1-U)/lambda with U in [0,1), so 1-U is in
        // (0,1] and the log is always finite.
        -(1.0 - unit_f64(rng)).ln() * self.lambda_inverse
    }
}

/// The Pareto distribution `Pareto(scale, shape)`: heavy-tailed samples
/// `>= scale`, with finite mean `scale * shape / (shape - 1)` only for
/// `shape > 1`.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Pareto {
    scale: f64,
    inv_neg_shape: f64,
}

/// Error type returned from [`Pareto::new`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ParetoError {
    /// `scale <= 0` or `nan`.
    ScaleTooSmall,
    /// `shape <= 0` or `nan`.
    ShapeTooSmall,
}

impl fmt::Display for ParetoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            ParetoError::ScaleTooSmall => "scale is negative, zero or NaN in Pareto distribution",
            ParetoError::ShapeTooSmall => "shape is negative, zero or NaN in Pareto distribution",
        })
    }
}

impl std::error::Error for ParetoError {}

impl Pareto {
    /// Constructs `Pareto(scale, shape)` (both > 0).
    ///
    /// # Errors
    ///
    /// [`ParetoError::ScaleTooSmall`] / [`ParetoError::ShapeTooSmall`]
    /// unless both parameters are positive and finite.
    pub fn new(scale: f64, shape: f64) -> Result<Pareto, ParetoError> {
        if !(scale > 0.0 && scale.is_finite()) {
            return Err(ParetoError::ScaleTooSmall);
        }
        if !(shape > 0.0 && shape.is_finite()) {
            return Err(ParetoError::ShapeTooSmall);
        }
        Ok(Pareto { scale, inv_neg_shape: -1.0 / shape })
    }
}

impl Distribution<f64> for Pareto {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        // Inverse CDF: scale * (1-U)^(-1/shape); 1-U in (0,1] keeps the
        // power finite and the sample >= scale.
        self.scale * (1.0 - unit_f64(rng)).powf(self.inv_neg_shape)
    }
}

/// The Poisson distribution `Poisson(lambda)`: event counts of a unit
/// interval at rate `lambda`. Samples are returned as `f64` (whole
/// numbers), matching the upstream `rand_distr` API shape.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

/// Error type returned from [`Poisson::new`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum PoissonError {
    /// `lambda <= 0`.
    ShapeTooSmall,
    /// `lambda` is infinite or `nan`.
    NonFinite,
}

impl fmt::Display for PoissonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            PoissonError::ShapeTooSmall => {
                "lambda is negative, zero or NaN in Poisson distribution"
            }
            PoissonError::NonFinite => "lambda is infinite in Poisson distribution",
        })
    }
}

impl std::error::Error for PoissonError {}

/// Largest per-round rate of the Knuth product method: `exp(-CHUNK)` must
/// stay comfortably above `f64` underflow. Larger rates split into rounds
/// of this size and sum (Poisson counts are additive over disjoint
/// intervals).
const POISSON_CHUNK: f64 = 256.0;

impl Poisson {
    /// Constructs `Poisson(lambda)` with rate `lambda` (> 0, finite).
    ///
    /// # Errors
    ///
    /// [`PoissonError::ShapeTooSmall`] unless `lambda > 0`;
    /// [`PoissonError::NonFinite`] for an infinite `lambda`.
    pub fn new(lambda: f64) -> Result<Poisson, PoissonError> {
        if lambda.is_infinite() {
            return Err(PoissonError::NonFinite);
        }
        if lambda.is_nan() || lambda <= 0.0 {
            return Err(PoissonError::ShapeTooSmall);
        }
        Ok(Poisson { lambda })
    }
}

impl Distribution<f64> for Poisson {
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let mut remaining = self.lambda;
        let mut total = 0u64;
        while remaining > 0.0 {
            let lambda = remaining.min(POISSON_CHUNK);
            remaining -= lambda;
            // Knuth's product method: multiply uniforms until the product
            // drops below exp(-lambda); the number of factors that stayed
            // above is the count.
            let floor = (-lambda).exp();
            let mut product = unit_f64(rng);
            while product > floor {
                total += 1;
                product *= unit_f64(rng);
            }
        }
        total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    /// Draws `n` samples from `dist` under the fixed test seed.
    fn stream<D: Distribution<f64>>(dist: &D, seed: u64, n: usize) -> Vec<f64> {
        let mut rng = SmallRng::seed_from_u64(seed);
        (0..n).map(|_| dist.sample(&mut rng)).collect()
    }

    #[test]
    fn constructors_validate_parameters() {
        assert_eq!(Exp::new(0.0).unwrap_err(), ExpError::LambdaTooSmall);
        assert_eq!(Exp::new(-1.0).unwrap_err(), ExpError::LambdaTooSmall);
        assert_eq!(Exp::new(f64::NAN).unwrap_err(), ExpError::LambdaTooSmall);
        assert_eq!(Exp::new(f64::INFINITY).unwrap_err(), ExpError::LambdaTooSmall);
        assert!(Exp::new(2.5).is_ok());

        assert_eq!(Pareto::new(0.0, 1.5).unwrap_err(), ParetoError::ScaleTooSmall);
        assert_eq!(Pareto::new(1.0, 0.0).unwrap_err(), ParetoError::ShapeTooSmall);
        assert_eq!(Pareto::new(f64::NAN, 1.5).unwrap_err(), ParetoError::ScaleTooSmall);
        assert_eq!(Pareto::new(1.0, f64::NAN).unwrap_err(), ParetoError::ShapeTooSmall);
        assert!(Pareto::new(1.0, 1.5).is_ok());

        assert_eq!(Poisson::new(0.0).unwrap_err(), PoissonError::ShapeTooSmall);
        assert_eq!(Poisson::new(-3.0).unwrap_err(), PoissonError::ShapeTooSmall);
        assert_eq!(Poisson::new(f64::NAN).unwrap_err(), PoissonError::ShapeTooSmall);
        assert_eq!(Poisson::new(f64::INFINITY).unwrap_err(), PoissonError::NonFinite);
        assert!(Poisson::new(1e6).is_ok());
    }

    #[test]
    fn same_seed_same_stream() {
        let exp = Exp::new(0.25).unwrap();
        assert_eq!(stream(&exp, 42, 64), stream(&exp, 42, 64));
        assert_ne!(stream(&exp, 42, 64), stream(&exp, 43, 64));
        let pareto = Pareto::new(2.0, 1.5).unwrap();
        assert_eq!(stream(&pareto, 42, 64), stream(&pareto, 42, 64));
        let poisson = Poisson::new(30.0).unwrap();
        assert_eq!(stream(&poisson, 42, 64), stream(&poisson, 42, 64));
    }

    #[test]
    fn exp_matches_its_mean_and_support() {
        let exp = Exp::new(0.5).unwrap(); // mean 2
        let samples = stream(&exp, 7, 20_000);
        assert!(samples.iter().all(|&x| x >= 0.0 && x.is_finite()));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 2.0).abs() < 0.05, "sample mean {mean} far from 2.0");
    }

    #[test]
    fn pareto_respects_scale_and_tail() {
        let pareto = Pareto::new(3.0, 2.0).unwrap(); // mean scale*a/(a-1) = 6
        let samples = stream(&pareto, 7, 20_000);
        assert!(samples.iter().all(|&x| x >= 3.0 && x.is_finite()));
        let mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((mean - 6.0).abs() < 0.5, "sample mean {mean} far from 6.0");
        // Heavy tail: some samples land far beyond the scale.
        assert!(samples.iter().any(|&x| x > 15.0));
    }

    #[test]
    fn poisson_matches_its_mean_for_small_and_split_rates() {
        for lambda in [0.5, 12.0, 300.0, 1000.0] {
            let poisson = Poisson::new(lambda).unwrap();
            let samples = stream(&poisson, 11, 4000);
            assert!(samples.iter().all(|&x| x >= 0.0 && x.fract() == 0.0));
            let mean = samples.iter().sum::<f64>() / samples.len() as f64;
            let tol = 3.0 * (lambda / 4000.0).sqrt().max(0.02);
            assert!((mean - lambda).abs() < tol, "lambda {lambda}: sample mean {mean}");
        }
    }

    /// Pins the seeded streams bit-exactly: any change to the samplers'
    /// arithmetic (or the generator underneath) is a determinism break for
    /// every recorded traffic artefact and must show up here first.
    #[test]
    fn seeded_streams_are_pinned() {
        let exp = Exp::new(1.0).unwrap();
        let got = stream(&exp, 0xDAC2020, 4);
        let want = [0.24141844823431718, 0.43272299166733513, 3.187377855671575, 1.561688429795933];
        assert_eq!(got, want, "Exp(1) stream drifted");

        let pareto = Pareto::new(1.0, 1.5).unwrap();
        let got = stream(&pareto, 0xDAC2020, 4);
        let want = [1.1746211054610585, 1.3344003226880428, 8.372215714592127, 2.8324034302324215];
        assert_eq!(got, want, "Pareto(1, 1.5) stream drifted");

        let poisson = Poisson::new(20.0).unwrap();
        let got = stream(&poisson, 0xDAC2020, 8);
        let want = [31.0, 25.0, 20.0, 22.0, 20.0, 24.0, 25.0, 25.0];
        assert_eq!(got, want, "Poisson(20) stream drifted");
    }
}
