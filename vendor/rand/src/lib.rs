//! Vendored minimal stand-in for the `rand` crate (0.9-style API).
//!
//! The build container has no route to a crates registry, so this crate
//! implements the surface the workspace uses: [`rngs::SmallRng`] (the same
//! xoshiro256++ generator real `rand` uses on 64-bit targets),
//! [`SeedableRng::seed_from_u64`] (SplitMix64 seeding, as upstream), and
//! [`Rng::random_range`] over integer ranges with unbiased rejection
//! sampling. Determinism per seed is all the workspace relies on; the
//! streams are not guaranteed to be bit-identical with upstream `rand`.

use std::ops::{Range, RangeInclusive};

pub mod distr;

/// The core source of randomness: raw 32/64-bit output.
pub trait RngCore {
    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

/// User-facing random-value methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range`. Panics on an empty range.
    fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A range that can produce a uniform sample.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draws a uniform value in `[0, span)` without modulo bias.
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Rejection sampling: draw until below the largest multiple of `span`.
    let zone = u64::MAX - (u64::MAX % span);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % span;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty => $wide:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as $wide).wrapping_sub(self.start as $wide) as u64;
                let v = uniform_u64(rng, span);
                (self.start as $wide).wrapping_add(v as $wide) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as $wide).wrapping_sub(start as $wide) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                let v = uniform_u64(rng, span + 1);
                (start as $wide).wrapping_add(v as $wide) as $t
            }
        }
    )*};
}

impl_sample_range!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

/// Draws a uniform `f64` in `[0, 1)` from the top 53 bits of one draw (the
/// standard mantissa construction upstream `rand` uses).
pub(crate) fn unit_f64<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                // The interpolation can round up onto the excluded end
                // (the f64→f32 cast of a unit sample just below 1, or the
                // final add rounding to `end`); rejection keeps the
                // half-open contract upstream rand guarantees.
                loop {
                    let v = self.start + (self.end - self.start) * unit_f64(rng) as $t;
                    if v < self.end {
                        return v;
                    }
                }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                // Linear interpolation over the closed interval; both ends
                // are reachable (u = 0 exactly, u → 1 up to rounding).
                start + (end - start) * unit_f64(rng) as $t
            }
        }
    )*};
}

impl_sample_range_float!(f32, f64);

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (SplitMix64 expansion).
    fn seed_from_u64(seed: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++, the same
    /// algorithm real `rand` uses for `SmallRng` on 64-bit platforms.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 per Vigna's reference implementation.
            let mut state = seed;
            let mut next = || {
                state = state.wrapping_add(0x9e3779b97f4a7c15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
                z ^ (z >> 31)
            };
            SmallRng { s: [next(), next(), next(), next()] }
        }
    }

    impl RngCore for SmallRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.random_range(0..10u32);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all cells of 0..10 reached in 1000 draws");
        for _ in 0..100 {
            let v = rng.random_range(-5i32..=5);
            assert!((-5..=5).contains(&v));
        }
        assert_eq!(rng.random_range(3..4u32), 3, "singleton range");
        let _ = rng.random_range(0..=u32::MAX);
    }

    #[test]
    fn float_ranges_stay_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(9);
        let (mut lo, mut hi) = (f64::MAX, f64::MIN);
        for _ in 0..1000 {
            let v = rng.random_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&v));
            lo = lo.min(v);
            hi = hi.max(v);
        }
        assert!(hi - lo > 0.5, "draws spread over the interval ({lo}..{hi})");
        for _ in 0..100 {
            let v = rng.random_range(-1.0f32..=1.0);
            assert!((-1.0..=1.0).contains(&v));
        }
        assert_eq!(rng.random_range(4.0f64..=4.0), 4.0, "degenerate closed range");
    }

    #[test]
    fn fill_bytes_fills_everything() {
        let mut rng = SmallRng::seed_from_u64(1);
        let mut buf = [0u8; 13];
        rng.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }
}
