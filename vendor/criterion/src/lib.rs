//! Vendored minimal stand-in for the `criterion` benchmark harness.
//!
//! The build container has no route to a crates registry, so this crate
//! implements the API surface the workspace's benches use —
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`],
//! [`BenchmarkId`], [`Bencher::iter`], [`criterion_group!`] and
//! [`criterion_main!`] — over a simple wall-clock measurement loop:
//! per-sample medians over a fixed sample count, with automatic
//! per-iteration batching, printed as `name  time: [median]`.
//!
//! Bench binaries accept the flags cargo passes (`--bench`) plus an
//! optional positional substring filter, like real criterion.
//!
//! Setting the `CRITERION_SNAPSHOT` environment variable to a file path
//! additionally records every benchmark's timings as machine-readable
//! JSON (merged into whatever the file already holds, so several bench
//! targets can share one snapshot) — the `results/BENCH_*.json` perf
//! trajectory CI emits.

use std::collections::BTreeMap;
use std::path::PathBuf;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};

pub use std::hint::black_box;

/// The environment variable naming the JSON snapshot file.
pub const SNAPSHOT_ENV: &str = "CRITERION_SNAPSHOT";

/// Collects one timing sample by running the routine repeatedly.
pub struct Bencher {
    iters_per_sample: u64,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Measures `routine`, retaining a per-iteration duration sample.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            black_box(routine());
        }
        self.samples.push(start.elapsed() / self.iters_per_sample as u32);
    }
}

/// Identifier for one benchmark within a group.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter, `name/param`.
    pub fn new<S: Into<String>, P: std::fmt::Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function_name.into(), parameter) }
    }

    /// An id that is just the parameter.
    pub fn from_parameter<P: std::fmt::Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<&&str> for BenchmarkId {
    fn from(s: &&str) -> Self {
        BenchmarkId { id: (*s).to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One benchmark's recorded timings inside a snapshot file (all times in
/// nanoseconds per iteration).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SnapshotEntry {
    /// Median per-iteration time.
    pub median_ns: u64,
    /// Fastest sample.
    pub low_ns: u64,
    /// Slowest sample.
    pub high_ns: u64,
    /// Samples taken.
    pub samples: usize,
    /// Iterations batched into each sample.
    pub iters_per_sample: u64,
}

/// The benchmark driver: owns the filter and measurement settings.
pub struct Criterion {
    filter: Option<String>,
    sample_size: usize,
    /// Wall-clock budget per benchmark (all samples together).
    target_time: Duration,
    /// Where recorded timings merge-write on drop, when snapshotting.
    snapshot: Option<(PathBuf, BTreeMap<String, SnapshotEntry>)>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            filter: None,
            sample_size: 20,
            target_time: Duration::from_millis(500),
            snapshot: std::env::var_os(SNAPSHOT_ENV).map(|p| (PathBuf::from(p), BTreeMap::new())),
        }
    }
}

impl Criterion {
    /// Restricts runs to benchmarks whose id contains `filter`.
    pub fn with_filter<S: Into<String>>(mut self, filter: S) -> Self {
        let f = filter.into();
        self.filter = if f.is_empty() { None } else { Some(f) };
        self
    }

    /// Overrides the per-benchmark sample count.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(2);
        self
    }

    /// Records timings into the JSON file at `path` when this driver
    /// drops, regardless of the `CRITERION_SNAPSHOT` environment variable
    /// (which [`Criterion::default`] consults).
    pub fn with_snapshot_path<P: Into<PathBuf>>(mut self, path: P) -> Self {
        self.snapshot = Some((path.into(), BTreeMap::new()));
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let recorded = run_bench(&self.filter.clone(), id, self.sample_size, self.target_time, f);
        self.record(id, recorded);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, group_name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: group_name.into(), sample_size: None }
    }

    fn record(&mut self, id: &str, entry: Option<SnapshotEntry>) {
        if let (Some((_, entries)), Some(entry)) = (self.snapshot.as_mut(), entry) {
            entries.insert(id.to_string(), entry);
        }
    }
}

impl Drop for Criterion {
    /// Merge-writes the recorded timings into the snapshot file: existing
    /// entries from other bench targets survive, entries re-measured in
    /// this run are replaced.
    fn drop(&mut self) {
        let Some((path, entries)) = self.snapshot.take() else { return };
        if entries.is_empty() {
            return;
        }
        let mut merged: BTreeMap<String, SnapshotEntry> = std::fs::read_to_string(&path)
            .ok()
            .and_then(|json| serde_json::from_str(&json).ok())
            .unwrap_or_default();
        merged.extend(entries);
        if let Some(dir) = path.parent() {
            let _ = std::fs::create_dir_all(dir);
        }
        let json = serde_json::to_string_pretty(&merged).expect("snapshot serializes");
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!("[criterion snapshot -> {}]", path.display()),
            Err(e) => eprintln!("[criterion snapshot write failed for {}: {e}]", path.display()),
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
}

impl BenchmarkGroup<'_> {
    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n.max(2));
        self
    }

    /// Runs `group_name/id`.
    pub fn bench_function<I: Into<BenchmarkId>, F: FnMut(&mut Bencher)>(
        &mut self,
        id: I,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let recorded = run_bench(
            &self.criterion.filter.clone(),
            &full,
            self.sample_size.unwrap_or(self.criterion.sample_size),
            self.criterion.target_time,
            f,
        );
        self.criterion.record(&full, recorded);
        self
    }

    /// Runs `group_name/id` with an input handed through to the routine.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        I: ?Sized,
        F: FnMut(&mut Bencher, &I),
    {
        self.bench_function(id, |b| f(b, input))
    }

    /// Ends the group (kept for API compatibility).
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    filter: &Option<String>,
    id: &str,
    sample_size: usize,
    target_time: Duration,
    mut f: F,
) -> Option<SnapshotEntry> {
    if let Some(needle) = filter {
        if !id.contains(needle.as_str()) {
            return None;
        }
    }
    // Calibration pass: one iteration, to size the batches.
    let mut calib = Bencher { iters_per_sample: 1, samples: Vec::new() };
    f(&mut calib);
    let once = calib.samples.last().copied().unwrap_or(Duration::ZERO);
    let budget_per_sample = target_time / sample_size as u32;
    let iters = if once.is_zero() {
        1000
    } else {
        (budget_per_sample.as_nanos() / once.as_nanos().max(1)).clamp(1, 100_000) as u64
    };
    let mut bencher = Bencher { iters_per_sample: iters, samples: Vec::new() };
    for _ in 0..sample_size {
        f(&mut bencher);
    }
    let mut samples = bencher.samples;
    if samples.is_empty() {
        println!("{id:<50} (no samples: routine never called Bencher::iter)");
        return None;
    }
    samples.sort();
    let median = samples[samples.len() / 2];
    let (lo, hi) = (samples[0], samples[samples.len() - 1]);
    println!(
        "{id:<50} time: [{} {} {}]  ({} samples x {} iters)",
        fmt_duration(lo),
        fmt_duration(median),
        fmt_duration(hi),
        samples.len(),
        iters,
    );
    Some(SnapshotEntry {
        median_ns: median.as_nanos() as u64,
        low_ns: lo.as_nanos() as u64,
        high_ns: hi.as_nanos() as u64,
        samples: samples.len(),
        iters_per_sample: iters,
    })
}

fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.3} µs", ns as f64 / 1_000.0)
    } else if ns < 1_000_000_000 {
        format!("{:.3} ms", ns as f64 / 1_000_000.0)
    } else {
        format!("{:.3} s", ns as f64 / 1_000_000_000.0)
    }
}

/// Parses the CLI arguments cargo passes to a `harness = false` bench
/// binary and builds the matching [`Criterion`] driver.
pub fn criterion_from_args() -> Criterion {
    criterion_from_arg_list(std::env::args().skip(1))
}

fn criterion_from_arg_list(args: impl Iterator<Item = String>) -> Criterion {
    let mut c = Criterion::default();
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        match arg.as_str() {
            // Flags cargo/criterion pass that this harness accepts and/or
            // ignores. `--bench` marks bench mode; the rest tune output.
            "--bench" | "--test" | "--verbose" | "--quiet" | "--noplot" | "--exact" => {}
            "--sample-size" => {
                if let Some(n) = args.next().and_then(|v| v.parse().ok()) {
                    c = c.sample_size(n);
                }
            }
            flag if flag.starts_with("--") => {
                // Unknown flag (e.g. real criterion's --measurement-time):
                // consume its value too, so the value is not mistaken for a
                // positional benchmark filter.
                if args.peek().is_some_and(|next| !next.starts_with('-')) {
                    args.next();
                }
            }
            positional => {
                c = c.with_filter(positional);
            }
        }
    }
    c
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group(c: &mut $crate::Criterion) {
            $( $target(c); )+
        }
    };
}

/// Declares the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            let mut c = $crate::criterion_from_args();
            $( $group(&mut c); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(3);
        c.target_time = Duration::from_millis(5);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            runs += 1;
            b.iter(|| black_box(2u64 + 2))
        });
        // Calibration + sample_size invocations of the closure.
        assert_eq!(runs, 4);
    }

    #[test]
    fn filter_skips_non_matching() {
        let mut c = Criterion::default().with_filter("nomatch");
        c.target_time = Duration::from_millis(1);
        let mut runs = 0u32;
        c.bench_function("smoke", |b| {
            runs += 1;
            b.iter(|| ())
        });
        assert_eq!(runs, 0);
    }

    #[test]
    fn unknown_value_flags_do_not_become_the_filter() {
        let args = ["--bench", "--measurement-time", "10", "--sample-size", "5"];
        let c = criterion_from_arg_list(args.iter().map(|s| s.to_string()));
        assert_eq!(c.filter, None, "'10' must be eaten as --measurement-time's value");
        assert_eq!(c.sample_size, 5);

        let args = ["--bench", "--warm-up-time", "3", "my_filter"];
        let c = criterion_from_arg_list(args.iter().map(|s| s.to_string()));
        assert_eq!(c.filter.as_deref(), Some("my_filter"));
    }

    #[test]
    fn snapshots_merge_write_on_drop() {
        let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
            .join("../../target/criterion_snapshot_test.json");
        let _ = std::fs::remove_file(&path);

        let mut c = Criterion::default().sample_size(2).with_snapshot_path(&path);
        c.target_time = Duration::from_millis(2);
        c.bench_function("snap/a", |b| b.iter(|| black_box(1u64 + 1)));
        drop(c);
        let first: BTreeMap<String, SnapshotEntry> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(first.contains_key("snap/a"));
        assert!(first["snap/a"].samples >= 2);

        // A second run measuring a different id merges, not overwrites.
        let mut c = Criterion::default().sample_size(2).with_snapshot_path(&path);
        c.target_time = Duration::from_millis(2);
        c.benchmark_group("snap").bench_function("b", |b| b.iter(|| black_box(2u64 * 2)));
        drop(c);
        let merged: BTreeMap<String, SnapshotEntry> =
            serde_json::from_str(&std::fs::read_to_string(&path).unwrap()).unwrap();
        assert!(merged.contains_key("snap/a") && merged.contains_key("snap/b"));

        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn groups_compose_ids() {
        let mut c = Criterion::default().sample_size(2);
        c.target_time = Duration::from_millis(2);
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group
            .bench_with_input(BenchmarkId::new("f", 3), &3u32, |b, &x| b.iter(|| black_box(x) * 2));
        group.bench_function(BenchmarkId::from_parameter("p"), |b| b.iter(|| ()));
        group.finish();
    }
}
