//! Vendored minimal stand-in for a `rayon`-style data-parallelism crate.
//!
//! The build container has no route to a crates registry, so this crate
//! implements exactly the fork/join surface the workspace's sweep engine
//! uses: scoped worker threads ([`scope`]/[`Scope::spawn`]), a fixed-size
//! [`ThreadPool`] whose indexed [`par_map`](ThreadPool::par_map) shards a
//! work list across workers and collects the results **in input order**,
//! and a worker-count default taken from
//! [`std::thread::available_parallelism`] with an environment
//! ([`NUM_THREADS_ENV`]) and API ([`ThreadPool::new`]) override.
//!
//! Determinism contract: `par_map(items, f)` returns exactly
//! `items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect()` — the
//! scheduling order of the workers is unobservable in the result, and a
//! 1-worker pool runs the closure inline on the caller's thread (no
//! spawning at all), making `jobs = 1` literally the sequential path.
//!
//! Panic contract: a panic inside `f` is captured, the remaining work is
//! abandoned as soon as every in-flight item finishes, and the original
//! panic payload is re-raised on the caller's thread once all workers have
//! been joined (mirroring `rayon`'s behaviour).

#![warn(missing_docs)]

use std::any::Any;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Environment variable overriding the default worker count (like
/// `RAYON_NUM_THREADS`). Ignored when unset, unparsable or zero.
pub const NUM_THREADS_ENV: &str = "THREADPOOL_NUM_THREADS";

/// The default worker count: the [`NUM_THREADS_ENV`] override when set to a
/// positive integer, otherwise [`std::thread::available_parallelism`]
/// (falling back to 1 when even that is unavailable).
pub fn default_workers() -> usize {
    workers_from(std::env::var(NUM_THREADS_ENV).ok().as_deref())
}

/// [`default_workers`] with the environment override injected — the pure
/// resolution logic (`None`/unparsable/zero fall through to
/// `available_parallelism`), testable without mutating the process
/// environment.
pub fn workers_from(env_override: Option<&str>) -> usize {
    if let Some(v) = env_override {
        if let Ok(n) = v.trim().parse::<usize>() {
            if n >= 1 {
                return n;
            }
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// A fixed-width fork/join pool.
///
/// The pool is a *policy*, not a set of live threads: each
/// [`par_map`](ThreadPool::par_map)/[`scope`](ThreadPool::scope) call
/// spawns up to `workers` scoped threads for its own duration and joins
/// them before returning, so borrowing stack data from the caller is safe
/// and nothing outlives the call.
///
/// # Examples
///
/// ```
/// use threadpool::ThreadPool;
///
/// let pool = ThreadPool::new(4);
/// let squares = pool.par_map((0u64..8).collect(), |i, x| {
///     assert_eq!(i as u64, x);
///     x * x
/// });
/// assert_eq!(squares, vec![0, 1, 4, 9, 16, 25, 36, 49]);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ThreadPool {
    workers: usize,
}

impl ThreadPool {
    /// A pool with exactly `workers` workers (clamped to at least 1).
    pub fn new(workers: usize) -> ThreadPool {
        ThreadPool { workers: workers.max(1) }
    }

    /// A pool sized by [`default_workers`].
    pub fn with_default_workers() -> ThreadPool {
        ThreadPool::new(default_workers())
    }

    /// The worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Applies `f(index, item)` to every item, sharding the work across the
    /// pool's workers, and returns the results **in input order**.
    ///
    /// Work is claimed dynamically (an atomic cursor), so an expensive item
    /// does not serialize the cheap ones behind it; the claim order is
    /// unobservable in the output. With one worker (or at most one item)
    /// the closure runs inline on the calling thread.
    ///
    /// # Panics
    ///
    /// Re-raises the first captured panic from `f` on the calling thread
    /// after all workers have stopped (remaining unclaimed items are
    /// abandoned).
    pub fn par_map<T, U, F>(&self, items: Vec<T>, f: F) -> Vec<U>
    where
        T: Send,
        U: Send,
        F: Fn(usize, T) -> U + Sync,
    {
        if self.workers == 1 || items.len() <= 1 {
            return items.into_iter().enumerate().map(|(i, item)| f(i, item)).collect();
        }
        let n = items.len();
        let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
        let results: Vec<Mutex<Option<U>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        let poisoned = AtomicBool::new(false);
        let panic_payload: Mutex<Option<Box<dyn Any + Send>>> = Mutex::new(None);
        std::thread::scope(|scope| {
            for _ in 0..self.workers.min(n) {
                scope.spawn(|| loop {
                    if poisoned.load(Ordering::Relaxed) {
                        break;
                    }
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= n {
                        break;
                    }
                    let item = slots[i].lock().unwrap().take().expect("index claimed once");
                    match catch_unwind(AssertUnwindSafe(|| f(i, item))) {
                        Ok(value) => *results[i].lock().unwrap() = Some(value),
                        Err(payload) => {
                            poisoned.store(true, Ordering::Relaxed);
                            // Keep the first payload; later ones are dropped.
                            let mut slot = panic_payload.lock().unwrap();
                            if slot.is_none() {
                                *slot = Some(payload);
                            }
                        }
                    }
                });
            }
        });
        if let Some(payload) = panic_payload.lock().unwrap().take() {
            resume_unwind(payload);
        }
        results
            .into_iter()
            .map(|slot| slot.into_inner().unwrap().expect("every slot computed"))
            .collect()
    }

    /// [`scope`] bounded by this pool's width is not meaningful (scoped
    /// spawns are explicit), so the pool simply re-exports the free
    /// function for call-site symmetry.
    pub fn scope<'env, F, R>(&self, f: F) -> R
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        scope(f)
    }
}

impl Default for ThreadPool {
    fn default() -> ThreadPool {
        ThreadPool::with_default_workers()
    }
}

/// A scope handle for structured task spawning (see [`scope`]).
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns a task that may borrow from outside the scope; it is joined
    /// before [`scope`] returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(f);
    }
}

/// Structured concurrency entry point (`rayon::scope`-shaped): every task
/// spawned via [`Scope::spawn`] is joined before `scope` returns, so tasks
/// may borrow anything that outlives the call.
///
/// # Panics
///
/// If a spawned task panics, `scope` panics after all tasks are joined
/// (the payload is the standard library's scoped-thread panic report).
///
/// # Examples
///
/// ```
/// let mut parts = [0u32; 3];
/// {
///     let (a, rest) = parts.split_at_mut(1);
///     let (b, c) = rest.split_at_mut(1);
///     threadpool::scope(|s| {
///         s.spawn(|| a[0] = 1);
///         s.spawn(|| b[0] = 2);
///         s.spawn(|| c[0] = 3);
///     });
/// }
/// assert_eq!(parts, [1, 2, 3]);
/// ```
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    std::thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;
    use std::time::Duration;

    #[test]
    fn par_map_preserves_input_order() {
        // Later items finish first (earlier ones sleep longer), so any
        // completion-order collection would reverse the output.
        let pool = ThreadPool::new(4);
        let out = pool.par_map((0u64..16).collect(), |i, x| {
            std::thread::sleep(Duration::from_millis(16 - x));
            assert_eq!(i as u64, x);
            x * 10
        });
        assert_eq!(out, (0..16).map(|x| x * 10).collect::<Vec<u64>>());
    }

    #[test]
    fn one_worker_runs_inline() {
        let caller = std::thread::current().id();
        let pool = ThreadPool::new(1);
        let out = pool.par_map(vec![1, 2, 3], |_, x| {
            assert_eq!(std::thread::current().id(), caller, "jobs=1 must not spawn");
            x + 1
        });
        assert_eq!(out, vec![2, 3, 4]);
    }

    #[test]
    fn zero_width_pool_clamps_to_one() {
        assert_eq!(ThreadPool::new(0).workers(), 1);
    }

    #[test]
    fn more_workers_than_items() {
        let out = ThreadPool::new(32).par_map(vec![7, 8], |i, x| (i, x));
        assert_eq!(out, vec![(0, 7), (1, 8)]);
    }

    #[test]
    fn empty_input_is_fine() {
        let out: Vec<u32> = ThreadPool::new(4).par_map(Vec::<u32>::new(), |_, x| x);
        assert!(out.is_empty());
    }

    #[test]
    fn par_map_propagates_the_original_panic_payload() {
        let pool = ThreadPool::new(4);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map((0..8).collect(), |_, x: i32| {
                if x == 3 {
                    panic!("boom at {x}");
                }
                x
            })
        }));
        let payload = result.expect_err("panic must propagate to the caller");
        let msg = payload.downcast_ref::<String>().expect("string payload");
        assert_eq!(msg, "boom at 3");
    }

    #[test]
    fn panic_abandons_remaining_work() {
        // Workers observe the poison flag and stop claiming; with one
        // worker thread doing all the claiming the items after the panic
        // are provably untouched.
        let touched = AtomicU32::new(0);
        let pool = ThreadPool::new(2);
        let result = catch_unwind(AssertUnwindSafe(|| {
            pool.par_map((0u32..64).collect(), |_, x| {
                touched.fetch_add(1, Ordering::Relaxed);
                if x == 0 {
                    panic!("early");
                }
                // Give the panicking worker time to raise the poison flag;
                // without the flag all 64 items would be drained.
                std::thread::sleep(Duration::from_millis(2));
                x
            })
        }));
        assert!(result.is_err());
        assert!(touched.load(Ordering::Relaxed) < 64, "poison flag must stop the sweep");
    }

    #[test]
    fn scope_joins_spawned_tasks() {
        let counter = AtomicU32::new(0);
        scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 8);
    }

    #[test]
    fn env_override_controls_default_workers() {
        // The resolution logic is tested through the injected form —
        // set_var in a multi-threaded test binary races libc getenv.
        assert_eq!(workers_from(Some("3")), 3);
        assert_eq!(workers_from(Some(" 8 ")), 8);
        assert!(workers_from(Some("not-a-number")) >= 1);
        assert!(workers_from(Some("0")) >= 1);
        assert!(workers_from(None) >= 1);
        assert_eq!(default_workers(), workers_from(std::env::var(NUM_THREADS_ENV).ok().as_deref()));
        assert_eq!(ThreadPool::with_default_workers().workers(), default_workers());
    }

    #[test]
    fn par_map_moves_non_copy_items() {
        let items: Vec<String> = (0..6).map(|i| format!("s{i}")).collect();
        let out = ThreadPool::new(3).par_map(items, |i, s| format!("{s}/{i}"));
        assert_eq!(out[4], "s4/4");
    }
}
