//! Vendored minimal stand-in for `serde_json`, pairing with the vendored
//! `serde` Value tree. Provides [`to_string`], [`to_string_pretty`] and
//! [`from_str`] with serde_json-compatible output for the types this
//! workspace serializes (reports of numbers, strings, arrays, objects).

pub use serde::{Error, Value};

/// Serializes a value as compact JSON.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value as pretty-printed JSON (two-space indent).
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Parses JSON text into any deserializable type.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser { bytes: s.as_bytes(), pos: 0 };
    parser.skip_ws();
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    T::from_value(&value)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Int(n) => out.push_str(&n.to_string()),
        Value::UInt(n) => out.push_str(&n.to_string()),
        Value::Float(f) => {
            // serde_json emits null for non-finite floats.
            if f.is_finite() {
                let mut s = f.to_string();
                if !s.contains('.') && !s.contains('e') && !s.contains('E') {
                    s.push_str(".0");
                }
                out.push_str(&s);
            } else {
                out.push_str("null");
            }
        }
        Value::String(s) => write_string(out, s),
        Value::Array(items) => write_seq(out, indent, depth, items.len(), '[', ']', |out, i| {
            write_value(out, &items[i], indent, depth + 1);
        }),
        Value::Object(entries) => {
            write_seq(out, indent, depth, entries.len(), '{', '}', |out, i| {
                write_string(out, &entries[i].0);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, &entries[i].1, indent, depth + 1);
            })
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut write_item: impl FnMut(&mut String, usize),
) {
    out.push(open);
    if len == 0 {
        out.push(close);
        return;
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(width) = indent {
            out.push('\n');
            out.push_str(&" ".repeat(width * (depth + 1)));
        }
        write_item(out, i);
    }
    if let Some(width) = indent {
        out.push('\n');
        out.push_str(&" ".repeat(width * depth));
    }
    out.push(close);
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while self.pos < self.bytes.len() && self.bytes[self.pos].is_ascii_whitespace() {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{}` at byte {}", b as char, self.pos)))
        }
    }

    fn eat_literal(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!("expected `{lit}` at byte {}", self.pos)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') => self.eat_literal("null").map(|()| Value::Null),
            Some(b't') => self.eat_literal("true").map(|()| Value::Bool(true)),
            Some(b'f') => self.eat_literal("false").map(|()| Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::String),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            other => Err(Error::custom(format!("unexpected input {other:?} at byte {}", self.pos))),
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(c) = self.peek() {
                if c == b'"' || c == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::custom("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| Error::custom("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_u_escape()?;
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                // High surrogate: a \uXXXX low surrogate must
                                // follow; combine them into one code point.
                                if self.peek() != Some(b'\\') {
                                    return Err(Error::custom("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                if self.peek() != Some(b'u') {
                                    return Err(Error::custom("unpaired high surrogate"));
                                }
                                self.pos += 1;
                                let low = self.parse_u_escape()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::custom("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::custom("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::custom(format!(
                                "unknown escape `\\{}`",
                                other as char
                            )))
                        }
                    }
                }
                _ => return Err(Error::custom("unterminated string")),
            }
        }
    }

    /// Reads the four hex digits of a `\u` escape (cursor past the `u`).
    fn parse_u_escape(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
        let code = u32::from_str_radix(
            std::str::from_utf8(hex).map_err(|_| Error::custom("bad \\u escape"))?,
            16,
        )
        .map_err(|_| Error::custom("bad \\u escape"))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::custom("invalid number"))?;
        if !is_float {
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Value::Int(v));
            }
            if let Ok(v) = text.parse::<u64>() {
                return Ok(Value::UInt(v));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(Error::custom("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.eat(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => return Err(Error::custom("expected `,` or `}` in object")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_compact_and_pretty() {
        let v = Value::Object(vec![
            ("name".to_string(), Value::String("BE".to_string())),
            ("cols".to_string(), Value::Int(16)),
            ("ratio".to_string(), Value::Float(1.5)),
            ("tags".to_string(), Value::Array(vec![Value::Bool(true), Value::Null])),
        ]);
        assert_eq!(
            to_string(&v).unwrap(),
            r#"{"name":"BE","cols":16,"ratio":1.5,"tags":[true,null]}"#
        );
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"name\": \"BE\""));
    }

    #[test]
    fn floats_always_carry_a_decimal_point() {
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
    }

    #[test]
    fn roundtrips_through_from_str() {
        let text = r#"{"a": [1, -2, 3.5], "b": "x\ny", "c": {"nested": true}}"#;
        let v: Value = from_str(text).unwrap();
        let again: Value = from_str(&to_string(&v).unwrap()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn surrogate_pairs_combine() {
        let v: Value = from_str(r#""\ud83d\ude00""#).unwrap();
        assert_eq!(v, Value::String("\u{1F600}".to_string()), "escaped pair decodes to U+1F600");
        assert!(from_str::<Value>(r#""\ud83d""#).is_err(), "unpaired high surrogate");
        assert!(from_str::<Value>(r#""\ud83dA""#).is_err(), "bad low surrogate");
        assert!(from_str::<Value>(r#""\ude00""#).is_err(), "lone low surrogate");
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(from_str::<Value>("1 2").is_err());
        assert!(from_str::<Value>("[1,]").is_err());
    }
}
