//! Vendored minimal stand-in for the `tracing` crate.
//!
//! The build container has no route to a crates registry, so the workspace
//! vendors the small tracing surface it actually uses (DESIGN.md §16):
//! [`span!`]/[`event!`] macros, a [`Subscriber`] trait, and
//! [`with_default`] to install a subscriber for a closure's duration. The
//! API shape follows upstream `tracing` — `span!(Level::INFO, "name")`
//! returns a [`Span`] whose [`entered`](Span::entered) guard exits on
//! drop, `event!` fires a named event with `key = value` fields — so the
//! instrumentation sites read like any other tracing user.
//!
//! The disabled fast path is the load-bearing design point: every macro
//! first checks a process-global relaxed [`AtomicUsize`] counting installed
//! subscribers. With none installed the whole macro compiles to that load
//! plus a branch (~1 ns) and *no field expressions are evaluated*, so
//! instrumenting a hot loop costs nothing when nobody is listening.
//!
//! Divergences from upstream, chosen for the workspace's needs:
//!
//! * Subscribers are installed per-thread only ([`with_default`]); there is
//!   no process-global `set_global_default`. Sharded runners install one
//!   collector per work item, which is what keeps the metrics registry
//!   deterministic across `--jobs` (DESIGN.md §16).
//! * Field values are `u64` (counters/gauges/histogram samples — all this
//!   workspace records); there is no `Visit` machinery.
//! * [`Dispatch`] wraps `Rc<dyn Subscriber>`: subscribers are thread-local
//!   by construction and may use `RefCell` interior mutability.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Verbosity level of a span or event, ordered `TRACE < … < ERROR`.
#[derive(Copy, Clone, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Level(u8);

impl Level {
    /// The most verbose level (per-allocation events).
    pub const TRACE: Level = Level(0);
    /// Debug-interest events.
    pub const DEBUG: Level = Level(1);
    /// Informational spans/events (phase boundaries).
    pub const INFO: Level = Level(2);
    /// Warnings.
    pub const WARN: Level = Level(3);
    /// Errors.
    pub const ERROR: Level = Level(4);
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self.0 {
            0 => "TRACE",
            1 => "DEBUG",
            2 => "INFO",
            3 => "WARN",
            _ => "ERROR",
        })
    }
}

/// Static description of a span or event callsite.
#[derive(Copy, Clone, Debug)]
pub struct Metadata<'a> {
    /// The span/event name (dotted-path convention, DESIGN.md §16).
    pub name: &'a str,
    /// The callsite's level.
    pub level: Level,
}

/// A single event: a name plus `key = value` fields.
///
/// By workspace convention the event *name* is the metric name and the
/// field *key* selects the instrument: `add` bumps a counter, `set` raises
/// a high-watermark gauge, `record` samples a histogram (DESIGN.md §16).
#[derive(Copy, Clone, Debug)]
pub struct Event<'a> {
    /// Callsite metadata (the event name doubles as the metric name).
    pub metadata: Metadata<'a>,
    /// `key = value` fields, in callsite order.
    pub fields: &'a [(&'a str, u64)],
}

/// Opaque identifier a [`Subscriber`] assigns to a span it accepted.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct SpanId(pub u64);

/// A collector of spans and events, installed with [`with_default`].
pub trait Subscriber {
    /// `true` if the subscriber wants this callsite (default: everything).
    fn enabled(&self, metadata: &Metadata<'_>) -> bool {
        let _ = metadata;
        true
    }

    /// Registers a new span; the returned id is passed to
    /// [`enter`](Subscriber::enter)/[`exit`](Subscriber::exit).
    fn new_span(&self, metadata: &Metadata<'_>) -> SpanId;

    /// The span became the current one on this thread.
    fn enter(&self, id: SpanId);

    /// The span stopped being current.
    fn exit(&self, id: SpanId);

    /// An event fired inside the current span context.
    fn event(&self, event: &Event<'_>);
}

/// A cheaply clonable handle to a [`Subscriber`].
#[derive(Clone)]
pub struct Dispatch {
    inner: Rc<dyn Subscriber>,
}

impl Dispatch {
    /// Wraps a subscriber for installation via [`with_default`].
    pub fn new<S: Subscriber + 'static>(subscriber: S) -> Dispatch {
        Dispatch { inner: Rc::new(subscriber) }
    }

    /// Wraps an already shared subscriber.
    pub fn from_rc(subscriber: Rc<dyn Subscriber>) -> Dispatch {
        Dispatch { inner: subscriber }
    }

    /// The wrapped subscriber.
    pub fn subscriber(&self) -> &dyn Subscriber {
        &*self.inner
    }
}

impl fmt::Debug for Dispatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Dispatch(..)")
    }
}

/// Process-global count of installed dispatches: the relaxed-load fast
/// path every macro checks before doing anything else.
static ACTIVE_DISPATCHES: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Stack of dispatches installed on this thread (innermost last).
    static CURRENT: RefCell<Vec<Dispatch>> = const { RefCell::new(Vec::new()) };
}

/// `true` if *any* thread has a subscriber installed. This is the ~1 ns
/// disabled check: a relaxed atomic load plus a branch. A `true` here only
/// means the slow path (a thread-local lookup) is worth taking; the
/// current thread may still have no subscriber.
#[inline(always)]
pub fn dispatch_active() -> bool {
    ACTIVE_DISPATCHES.load(Ordering::Relaxed) != 0
}

/// Runs `f` against the current thread's innermost dispatch, if any.
/// Returns `None` without calling `f` when this thread has no subscriber.
#[inline]
pub fn with_current<T>(f: impl FnOnce(&Dispatch) -> T) -> Option<T> {
    if !dispatch_active() {
        return None;
    }
    CURRENT.with(|stack| stack.borrow().last().cloned()).map(|d| f(&d))
}

struct DefaultGuard;

impl Drop for DefaultGuard {
    fn drop(&mut self) {
        CURRENT.with(|stack| stack.borrow_mut().pop());
        ACTIVE_DISPATCHES.fetch_sub(1, Ordering::Relaxed);
    }
}

/// Installs `dispatch` as this thread's default subscriber for the
/// duration of `f` (unwind-safe; nesting shadows the outer subscriber,
/// matching upstream `tracing::subscriber::with_default`).
///
/// # Examples
///
/// ```
/// use tracing::{event, Dispatch, Event, Level, Metadata, SpanId, Subscriber};
/// use std::cell::Cell;
/// use std::rc::Rc;
///
/// #[derive(Default)]
/// struct Count(Cell<u64>);
/// impl Subscriber for Count {
///     fn new_span(&self, _: &Metadata<'_>) -> SpanId {
///         SpanId(0)
///     }
///     fn enter(&self, _: SpanId) {}
///     fn exit(&self, _: SpanId) {}
///     fn event(&self, _: &Event<'_>) {
///         self.0.set(self.0.get() + 1);
///     }
/// }
///
/// let counter = Rc::new(Count::default());
/// tracing::with_default(Dispatch::from_rc(counter.clone()), || {
///     event!(Level::INFO, "demo.fired", "add" = 1);
/// });
/// assert_eq!(counter.0.get(), 1);
/// ```
pub fn with_default<T>(dispatch: Dispatch, f: impl FnOnce() -> T) -> T {
    CURRENT.with(|stack| stack.borrow_mut().push(dispatch));
    ACTIVE_DISPATCHES.fetch_add(1, Ordering::Relaxed);
    let _guard = DefaultGuard;
    f()
}

/// Dispatches an event to the current thread's subscriber (macro
/// plumbing; prefer [`event!`]).
#[inline]
pub fn dispatch_event(event: &Event<'_>) {
    with_current(|d| {
        if d.subscriber().enabled(&event.metadata) {
            d.subscriber().event(event);
        }
    });
}

/// A handle to a span accepted by the current subscriber. Created by
/// [`span!`]; disabled spans (no subscriber, or `enabled` said no) carry
/// nothing and cost nothing further.
#[derive(Clone, Debug)]
#[must_use = "a span does nothing unless entered"]
pub struct Span {
    inner: Option<(Dispatch, SpanId)>,
}

impl Span {
    /// Creates a span against the current subscriber (macro plumbing;
    /// prefer [`span!`]).
    pub fn new(metadata: &Metadata<'_>) -> Span {
        let inner = with_current(|d| {
            d.subscriber().enabled(metadata).then(|| (d.clone(), d.subscriber().new_span(metadata)))
        })
        .flatten();
        Span { inner }
    }

    /// A span that no subscriber accepted.
    pub fn none() -> Span {
        Span { inner: None }
    }

    /// `true` if a subscriber accepted this span.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Enters the span, returning a guard that exits it on drop.
    pub fn entered(self) -> EnteredSpan {
        if let Some((dispatch, id)) = &self.inner {
            dispatch.subscriber().enter(*id);
        }
        EnteredSpan { span: self }
    }
}

/// Guard returned by [`Span::entered`]; exits the span when dropped.
#[derive(Debug)]
pub struct EnteredSpan {
    span: Span,
}

impl EnteredSpan {
    /// The underlying span.
    pub fn span(&self) -> &Span {
        &self.span
    }
}

impl Drop for EnteredSpan {
    fn drop(&mut self) {
        if let Some((dispatch, id)) = &self.span.inner {
            dispatch.subscriber().exit(*id);
        }
    }
}

/// Constructs a [`Span`]: `span!(Level::INFO, "name")`. With no subscriber
/// installed this is a relaxed atomic load and a branch.
#[macro_export]
macro_rules! span {
    ($lvl:expr, $name:expr) => {
        if $crate::dispatch_active() {
            $crate::Span::new(&$crate::Metadata { name: $name, level: $lvl })
        } else {
            $crate::Span::none()
        }
    };
}

/// Fires an [`Event`]: `event!(Level::TRACE, "metric.name", "add" = 1)`.
/// Field keys select the instrument (`add`/`set`/`record`, DESIGN.md §16).
/// With no subscriber installed the field expressions are not evaluated —
/// the whole macro is a relaxed atomic load and a branch.
#[macro_export]
macro_rules! event {
    ($lvl:expr, $name:expr $(, $key:literal = $value:expr)* $(,)?) => {
        if $crate::dispatch_active() {
            $crate::dispatch_event(&$crate::Event {
                metadata: $crate::Metadata { name: $name, level: $lvl },
                fields: &[$(($key, ($value) as u64)),*],
            });
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;

    struct Recorder {
        log: RefCell<Vec<String>>,
        next_id: RefCell<u64>,
        min_level: Level,
    }

    impl Default for Recorder {
        fn default() -> Recorder {
            Recorder {
                log: RefCell::new(Vec::new()),
                next_id: RefCell::new(0),
                min_level: Level::TRACE,
            }
        }
    }

    impl Subscriber for Recorder {
        fn enabled(&self, metadata: &Metadata<'_>) -> bool {
            metadata.level >= self.min_level
        }

        fn new_span(&self, metadata: &Metadata<'_>) -> SpanId {
            let mut id = self.next_id.borrow_mut();
            *id += 1;
            self.log.borrow_mut().push(format!("new {} #{}", metadata.name, *id));
            SpanId(*id)
        }

        fn enter(&self, id: SpanId) {
            self.log.borrow_mut().push(format!("enter #{}", id.0));
        }

        fn exit(&self, id: SpanId) {
            self.log.borrow_mut().push(format!("exit #{}", id.0));
        }

        fn event(&self, event: &Event<'_>) {
            let fields: Vec<String> =
                event.fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
            self.log.borrow_mut().push(format!(
                "event {} [{}]",
                event.metadata.name,
                fields.join(", ")
            ));
        }
    }

    #[test]
    fn spans_and_events_reach_the_installed_subscriber() {
        let rec = Rc::new(Recorder::default());
        with_default(Dispatch::from_rc(rec.clone()), || {
            let _guard = span!(Level::INFO, "outer").entered();
            event!(Level::TRACE, "hits", "add" = 2);
        });
        assert_eq!(
            *rec.log.borrow(),
            vec!["new outer #1", "enter #1", "event hits [add=2]", "exit #1"]
        );
    }

    #[test]
    fn no_subscriber_means_no_work_and_no_field_evaluation() {
        assert!(!span!(Level::INFO, "ghost").is_enabled());
        let mut evaluated = false;
        event!(
            Level::INFO,
            "ghost.metric",
            "add" = {
                evaluated = true;
                1u64
            }
        );
        // No subscriber is installed on this thread, so even if another
        // test thread has one, this thread's dispatch stack is empty and
        // nothing may observe the event; the field must still only be
        // evaluated when the fast-path branch is taken.
        if !dispatch_active() {
            assert!(!evaluated, "disabled events must not evaluate fields");
        }
    }

    #[test]
    fn nesting_shadows_and_restores_the_outer_subscriber() {
        let outer = Rc::new(Recorder::default());
        let inner = Rc::new(Recorder::default());
        with_default(Dispatch::from_rc(outer.clone()), || {
            event!(Level::INFO, "to.outer", "add" = 1);
            with_default(Dispatch::from_rc(inner.clone()), || {
                event!(Level::INFO, "to.inner", "add" = 1);
            });
            event!(Level::INFO, "to.outer.again", "add" = 1);
        });
        assert_eq!(
            *outer.log.borrow(),
            vec!["event to.outer [add=1]", "event to.outer.again [add=1]"]
        );
        assert_eq!(*inner.log.borrow(), vec!["event to.inner [add=1]"]);
    }

    #[test]
    fn subscriber_level_filter_drops_callsites() {
        let rec = Rc::new(Recorder { min_level: Level::INFO, ..Recorder::default() });
        with_default(Dispatch::from_rc(rec.clone()), || {
            event!(Level::TRACE, "too.verbose", "add" = 1);
            event!(Level::WARN, "kept", "add" = 1);
            assert!(!span!(Level::TRACE, "verbose.span").is_enabled());
        });
        assert_eq!(*rec.log.borrow(), vec!["event kept [add=1]"]);
    }

    #[test]
    fn levels_order_and_render() {
        assert!(Level::TRACE < Level::DEBUG && Level::DEBUG < Level::ERROR);
        assert_eq!(Level::INFO.to_string(), "INFO");
    }
}
