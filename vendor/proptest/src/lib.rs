//! Vendored minimal stand-in for the `proptest` crate.
//!
//! The build container has no route to a crates registry, so this crate
//! implements the property-testing surface the workspace's tests use:
//! [`strategy::Strategy`] with `prop_map` / `prop_filter` / `prop_flat_map`
//! / `boxed`, range and tuple strategies, [`strategy::Just`],
//! [`collection::vec`] and [`collection::btree_set`], [`arbitrary::any`],
//! and the [`proptest!`], [`prop_oneof!`], [`prop_assert!`]-family macros,
//! driven by a deterministic [`test_runner::TestRunner`].
//!
//! Differences from real proptest: no shrinking (failures report the seed
//! and case number instead of a minimized input) and a fixed default seed
//! (override with `PROPTEST_SEED`) so CI runs are reproducible.

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// Why a generation attempt produced no value.
    #[derive(Clone, Debug)]
    pub struct Rejection(pub String);

    /// A recipe for generating values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Generates one value, or rejects the attempt (e.g. a filter).
        fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection>;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Discards generated values failing `pred` (retries, then rejects).
        fn prop_filter<F: Fn(&Self::Value) -> bool>(
            self,
            reason: impl Into<String>,
            pred: F,
        ) -> Filter<Self, F>
        where
            Self: Sized,
        {
            Filter { inner: self, reason: reason.into(), pred }
        }

        /// Generates a value, then generates from the strategy it selects.
        fn prop_flat_map<S2: Strategy, F: Fn(Self::Value) -> S2>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
        {
            FlatMap { inner: self, f }
        }

        /// Erases the strategy type.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
            (**self).generate(rng)
        }
    }

    /// See [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> Result<O, Rejection> {
            self.inner.generate(rng).map(&self.f)
        }
    }

    /// See [`Strategy::prop_filter`].
    pub struct Filter<S, F> {
        inner: S,
        reason: String,
        pred: F,
    }

    impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
        type Value = S::Value;

        fn generate(&self, rng: &mut TestRng) -> Result<S::Value, Rejection> {
            for _ in 0..100 {
                let v = self.inner.generate(rng)?;
                if (self.pred)(&v) {
                    return Ok(v);
                }
            }
            Err(Rejection(format!("prop_filter exhausted retries: {}", self.reason)))
        }
    }

    /// See [`Strategy::prop_flat_map`].
    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;

        fn generate(&self, rng: &mut TestRng) -> Result<S2::Value, Rejection> {
            let first = self.inner.generate(rng)?;
            (self.f)(first).generate(rng)
        }
    }

    /// Always produces a clone of one value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> Result<T, Rejection> {
            Ok(self.0.clone())
        }
    }

    /// Weighted union of boxed strategies (behind [`crate::prop_oneof!`]).
    pub struct Union<T> {
        arms: Vec<(u32, BoxedStrategy<T>)>,
        total_weight: u64,
    }

    impl<T> Union<T> {
        /// Builds a union; panics if no arm or all weights are zero.
        pub fn new(arms: Vec<(u32, BoxedStrategy<T>)>) -> Union<T> {
            let total_weight: u64 = arms.iter().map(|(w, _)| *w as u64).sum();
            assert!(total_weight > 0, "prop_oneof! needs at least one positive weight");
            Union { arms, total_weight }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
            let mut roll = rng.random_u64_below(self.total_weight);
            for (weight, arm) in &self.arms {
                if roll < *weight as u64 {
                    return arm.generate(rng);
                }
                roll -= *weight as u64;
            }
            unreachable!("roll below total weight always lands in an arm")
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    if self.start >= self.end {
                        return Err(Rejection(format!("empty range {:?}", self)));
                    }
                    Ok(rng.random_range(self.clone()))
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn generate(&self, rng: &mut TestRng) -> Result<$t, Rejection> {
                    if self.start() > self.end() {
                        return Err(Rejection(format!("empty range {:?}", self)));
                    }
                    Ok(rng.random_range(self.clone()))
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
    // Float ranges sample uniformly over the interval (upstream proptest's
    // default f32/f64 range behaviour, minus the special-value corners).
    impl_range_strategy!(f32, f64);

    macro_rules! impl_tuple_strategy {
        ($(($($s:ident . $idx:tt),+))*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn generate(&self, rng: &mut TestRng) -> Result<Self::Value, Rejection> {
                    Ok(($(self.$idx.generate(rng)?,)+))
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A.0)
        (A.0, B.1)
        (A.0, B.1, C.2)
        (A.0, B.1, C.2, D.3)
        (A.0, B.1, C.2, D.3, E.4)
        (A.0, B.1, C.2, D.3, E.4, F.5)
    }
}

pub mod arbitrary {
    //! Default strategies per type, behind [`any`].

    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical full-domain strategy.
    pub trait Arbitrary: Sized {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    /// The strategy returned by [`any`].
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> Result<T, Rejection> {
            Ok(T::arbitrary(rng))
        }
    }

    /// The canonical strategy for `T`: uniform over the whole domain.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random_bits() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.random_bits() & 1 == 1
        }
    }
}

pub mod collection {
    //! Strategies for collections.

    use crate::strategy::{Rejection, Strategy};
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::{Range, RangeInclusive};

    /// A size specification: `n`, `lo..hi` or `lo..=hi`.
    #[derive(Clone, Debug)]
    pub struct SizeRange {
        min: usize,
        /// Inclusive upper bound.
        max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end - 1 }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { min: *r.start(), max: *r.end() }
        }
    }

    impl SizeRange {
        fn pick(&self, rng: &mut TestRng) -> usize {
            if self.min == self.max {
                self.min
            } else {
                self.min + rng.random_u64_below((self.max - self.min + 1) as u64) as usize
            }
        }
    }

    /// `Vec`s of `size.pick()` elements drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for vectors: `vec(element, 1..12)`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<Vec<S::Value>, Rejection> {
            let n = self.size.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `BTreeSet`s of roughly `size.pick()` distinct elements.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// Strategy for ordered sets: `btree_set(element, 1..=8)`. Duplicate
    /// draws are retried a bounded number of times, so the resulting set
    /// may be smaller than requested when the element domain is tiny.
    pub fn btree_set<S>(element: S, size: impl Into<SizeRange>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Result<BTreeSet<S::Value>, Rejection> {
            let target = self.size.pick(rng);
            let mut set = BTreeSet::new();
            let mut attempts = 0;
            while set.len() < target && attempts < target * 20 + 20 {
                set.insert(self.element.generate(rng)?);
                attempts += 1;
            }
            if set.len() < self.size.min {
                return Err(Rejection("btree_set could not reach minimum size".to_string()));
            }
            Ok(set)
        }
    }
}

pub mod test_runner {
    //! The deterministic case runner behind [`crate::proptest!`].

    use crate::strategy::Strategy;
    use rand::rngs::SmallRng;
    use rand::{Rng, SampleRange, SeedableRng};

    /// The randomness source handed to strategies.
    pub struct TestRng {
        rng: SmallRng,
    }

    impl TestRng {
        /// Uniform sample from any integer range.
        pub fn random_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
            self.rng.random_range(range)
        }

        /// Uniform value in `[0, bound)`.
        pub fn random_u64_below(&mut self, bound: u64) -> u64 {
            self.rng.random_range(0..bound)
        }

        /// 64 raw random bits.
        pub fn random_bits(&mut self) -> u64 {
            self.rng.random_range(0..=u64::MAX)
        }
    }

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of successful cases required per property.
        pub cases: u32,
        /// RNG seed; defaults to `PROPTEST_SEED` or a fixed constant.
        pub seed: u64,
    }

    impl Config {
        /// A config running `cases` successful cases.
        pub fn with_cases(cases: u32) -> Config {
            Config { cases, ..Config::default() }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            let seed = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x_5eed_cafe_f00d);
            Config { cases: 256, seed }
        }
    }

    /// Why one test case did not pass.
    #[derive(Clone, Debug)]
    pub enum TestCaseError {
        /// The case asked to be skipped (`prop_assume!`).
        Reject(String),
        /// The property failed (`prop_assert!`).
        Fail(String),
    }

    impl TestCaseError {
        /// A failure with a message.
        pub fn fail<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Fail(msg.into())
        }

        /// A skip with a reason.
        pub fn reject<S: Into<String>>(msg: S) -> TestCaseError {
            TestCaseError::Reject(msg.into())
        }
    }

    /// Drives a property over many generated cases.
    pub struct TestRunner {
        config: Config,
    }

    impl TestRunner {
        /// A runner with the given configuration.
        pub fn new(config: Config) -> TestRunner {
            TestRunner { config }
        }

        /// Runs `test` over generated inputs until `config.cases` cases
        /// pass, a case fails, or the reject budget is exhausted.
        pub fn run<S: Strategy>(
            &mut self,
            strategy: &S,
            mut test: impl FnMut(S::Value) -> Result<(), TestCaseError>,
        ) -> Result<(), String> {
            let mut rng = TestRng { rng: SmallRng::seed_from_u64(self.config.seed) };
            let mut passed = 0u32;
            let mut rejected = 0u64;
            let max_rejects = (self.config.cases as u64) * 64 + 1024;
            let mut case = 0u64;
            while passed < self.config.cases {
                case += 1;
                if rejected > max_rejects {
                    return Err(format!(
                        "too many rejected cases ({rejected}) after {passed} passes \
                         (seed {:#x})",
                        self.config.seed
                    ));
                }
                let value = match strategy.generate(&mut rng) {
                    Ok(v) => v,
                    Err(_) => {
                        rejected += 1;
                        continue;
                    }
                };
                match test(value) {
                    Ok(()) => passed += 1,
                    Err(TestCaseError::Reject(_)) => rejected += 1,
                    Err(TestCaseError::Fail(msg)) => {
                        return Err(format!(
                            "property failed at case {case} (seed {:#x}): {msg}",
                            self.config.seed
                        ));
                    }
                }
            }
            Ok(())
        }
    }
}

pub mod prelude {
    //! Everything a property test file needs, mirroring proptest's prelude.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };
}

/// Declares property tests: `proptest! { #[test] fn p(x in strat) { ... } }`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)]
     $($(#[$meta:meta])* fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config);
                let strategy = ($($strat,)+);
                let result = runner.run(&strategy, |($($argpat,)+)| {
                    $body
                    Ok(())
                });
                if let Err(message) = result {
                    panic!("{}", message);
                }
            }
        )*
    };
    ($($(#[$meta:meta])* fn $name:ident($($argpat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $crate::proptest! {
            #![proptest_config($crate::test_runner::Config::default())]
            $($(#[$meta])* fn $name($($argpat in $strat),+) $body)*
        }
    };
}

/// Weighted or unweighted choice between strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::Strategy::boxed($strat))),+
        ])
    };
}

/// Fails the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Fails the current case unless the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}`: {}\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), left, right
        );
    }};
}

/// Fails the current case if the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), left
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}`: {}\n  both: {:?}",
            stringify!($left), stringify!($right), format!($($fmt)+), left
        );
    }};
}

/// Skips the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return Err($crate::test_runner::TestCaseError::reject(stringify!($cond)));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #[test]
        fn ranges_respect_bounds(x in 3u32..10, y in -5i32..=5) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((-5..=5).contains(&y));
        }

        #[test]
        fn float_ranges_respect_bounds(x in 0.5f64..2.5, y in -1.0f32..=1.0) {
            prop_assert!((0.5..2.5).contains(&x));
            prop_assert!((-1.0..=1.0).contains(&y));
        }

        #[test]
        fn map_and_filter_compose(v in (0u32..100).prop_map(|x| x * 2)
            .prop_filter("nonzero", |v| *v != 0))
        {
            prop_assert!(v % 2 == 0);
            prop_assert_ne!(v, 0);
        }

        #[test]
        fn vectors_hit_requested_sizes(v in crate::collection::vec(0u8..=255, 2..5)) {
            prop_assert!((2..5).contains(&v.len()));
        }

        #[test]
        fn oneof_picks_every_listed_arm(x in prop_oneof![Just(1u8), Just(2u8), 3u8..=3]) {
            prop_assert!((1..=3).contains(&x));
        }

        #[test]
        fn assume_skips_without_failing(x in 0u32..10) {
            prop_assume!(x % 2 == 0);
            prop_assert!(x % 2 == 0);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]
        #[test]
        fn flat_map_dependent_generation(
            (len, v) in (1usize..6).prop_flat_map(|n| {
                crate::collection::vec(0u8..10, n).prop_map(move |v| (n, v))
            })
        ) {
            prop_assert_eq!(v.len(), len);
        }
    }

    #[test]
    fn failing_property_reports_seed() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::Config::with_cases(8));
        let result = runner.run(&(0u32..10,), |(_x,)| {
            Err(crate::test_runner::TestCaseError::fail("always fails"))
        });
        let err = result.unwrap_err();
        assert!(err.contains("always fails") && err.contains("seed"), "got: {err}");
    }

    #[test]
    fn too_many_rejects_errors_out() {
        let mut runner =
            crate::test_runner::TestRunner::new(crate::test_runner::Config::with_cases(4));
        let result = runner.run(&(0u32..10,), |(_x,)| {
            Err(crate::test_runner::TestCaseError::reject("never satisfiable"))
        });
        assert!(result.unwrap_err().contains("too many rejected"));
    }
}
