//! Vendored minimal stand-in for the `serde` crate.
//!
//! The build container has no route to a crates registry, so the workspace
//! vendors the small serde surface it actually uses: `Serialize` /
//! `Deserialize` traits with derive macros, modeled as conversion to and
//! from a JSON-like [`Value`] tree. `serde_json` (also vendored) renders
//! and parses that tree. The derive macros follow serde's JSON conventions
//! (structs → objects, unit enum variants → strings, data-carrying
//! variants → single-key objects), so output is drop-in comparable with
//! what the real `serde`+`serde_json` pair would produce for these types.

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-like self-describing value tree.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Signed integer.
    Int(i64),
    /// Unsigned integer too large for `i64`.
    UInt(u64),
    /// Floating-point number.
    Float(f64),
    /// JSON string.
    String(String),
    /// JSON array.
    Array(Vec<Value>),
    /// JSON object with insertion-ordered keys.
    Object(Vec<(String, Value)>),
}

impl Value {
    /// The object entries, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// The array elements, if this is an array.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The value as an `i64`, if it is an integer that fits.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::UInt(v) => i64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Int(v) => u64::try_from(*v).ok(),
            Value::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as an `f64` (integers widen), if it is numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(v) => Some(*v as f64),
            Value::UInt(v) => Some(*v as f64),
            Value::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// Looks up a key, if this is an object.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object()?.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }
}

/// Serialization/deserialization error.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error from any displayable message.
    pub fn custom<T: fmt::Display>(msg: T) -> Error {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for Error {}

/// A type that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// A type that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Reconstructs `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Fetches and deserializes a field of an object (derive-macro helper).
pub fn de_field<T: Deserialize>(obj: &[(String, Value)], key: &str) -> Result<T, Error> {
    match obj.iter().find(|(k, _)| k == key) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("missing field `{key}`"))),
    }
}

macro_rules! impl_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                match i64::try_from(*self) {
                    Ok(v) => Value::Int(v),
                    Err(_) => Value::UInt(*self as u64),
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide = v
                    .as_i64()
                    .map(i128::from)
                    .or_else(|| v.as_u64().map(i128::from))
                    .ok_or_else(|| Error::custom(concat!("expected integer for ", stringify!($t))))?;
                <$t>::try_from(wide)
                    .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t))))
            }
        }
    )*};
}

impl_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_f64()
                    .map(|f| f as $t)
                    .ok_or_else(|| Error::custom(concat!("expected number for ", stringify!($t))))
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom("expected boolean"))
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected string for char"))?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str().map(str::to_owned).ok_or_else(|| Error::custom("expected string"))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::String(self.to_owned())
    }
}

/// `&'static str` deserializes by leaking the parsed string; the workspace
/// only uses it for small interned scenario names.
impl Deserialize for &'static str {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let s = v.as_str().ok_or_else(|| Error::custom("expected string"))?;
        Ok(Box::leak(s.to_owned().into_boxed_str()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(v) => v.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom("expected array"))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let vec: Vec<T> = Vec::from_value(v)?;
        let len = vec.len();
        vec.try_into()
            .map_err(|_| Error::custom(format!("expected array of length {N}, got {len}")))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident . $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let a = v.as_array().ok_or_else(|| Error::custom("expected array for tuple"))?;
                let mut it = a.iter();
                let out = ($(
                    {
                        let _ = $idx;
                        $t::from_value(it.next().ok_or_else(|| Error::custom("tuple too short"))?)?
                    },
                )+);
                if it.next().is_some() {
                    return Err(Error::custom("tuple too long"));
                }
                Ok(out)
            }
        }
    )*};
}

impl_tuple! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        // Sort for deterministic output.
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom("expected object"))?
            .iter()
            .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}

impl Deserialize for () {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(()),
            _ => Err(Error::custom("expected null")),
        }
    }
}
