//! Property tests for the fabric model: offset arithmetic, bitstream
//! rotations, area-model monotonicity, and executor edge behaviour.

use proptest::prelude::*;

use cgra::op::{AluFunc, CtxLine, OpKind, Operand, PlacedOp};
use cgra::{AreaModel, ArrayMem, Bitstream, Configuration, Executor, Fabric, Offset, ReconfigUnit};

fn any_fabric() -> impl Strategy<Value = Fabric> {
    ((1u32..=8), (4u32..=32)).prop_map(|(rows, cols)| Fabric::new(rows, cols))
}

proptest! {
    #[test]
    fn offset_apply_is_a_bijection(fabric in any_fabric(), row in 0u32..8, col in 0u32..32) {
        let off = Offset::new(row % fabric.rows, col % fabric.cols);
        let mut seen = std::collections::HashSet::new();
        for r in 0..fabric.rows {
            for c in 0..fabric.cols {
                seen.insert(off.apply(&fabric, r, c));
            }
        }
        prop_assert_eq!(seen.len() as u32, fabric.fu_count(),
            "rotation must permute the fabric cells");
    }

    #[test]
    fn offset_composition_wraps(fabric in any_fabric(), r1 in 0u32..8, c1 in 0u32..32,
                                r2 in 0u32..8, c2 in 0u32..32) {
        let a = Offset::new(r1 % fabric.rows, c1 % fabric.cols);
        let b = Offset::new(r2 % fabric.rows, c2 % fabric.cols);
        // Applying a then b equals applying their modular sum.
        let (ar, ac) = a.apply(&fabric, 0, 0);
        let (br, bc) = b.apply(&fabric, ar, ac);
        let sum = Offset::new((a.row + b.row) % fabric.rows, (a.col + b.col) % fabric.cols);
        prop_assert_eq!((br, bc), sum.apply(&fabric, 0, 0));
    }

    #[test]
    fn chain_configs_execute_at_any_offset(
        fabric in any_fabric(),
        imms in proptest::collection::vec(-100i32..100, 1..12),
        off_row in 0u32..8,
        off_col in 0u32..32,
    ) {
        // A dependent ALU chain along one row, built by hand.
        prop_assume!(imms.len() as u32 <= fabric.cols);
        prop_assume!(fabric.ctx_lines >= 4);
        let mut ops = Vec::new();
        let mut src = CtxLine(0);
        for (i, imm) in imms.iter().enumerate() {
            let dst = CtxLine(1 + (i % 2) as u16);
            ops.push(PlacedOp {
                row: 0,
                col: i as u32,
                span: 1,
                kind: OpKind::Alu(AluFunc::Add),
                a: Operand::Ctx(src),
                b: Operand::Imm(*imm as u32),
                dst: Some(dst),
            });
            src = dst;
        }
        let cfg = Configuration::new(&fabric, ops, vec![CtxLine(0)], vec![src]).unwrap();
        let exec = Executor::new(&fabric);
        let expect: u32 = imms.iter().fold(7u32, |acc, v| acc.wrapping_add(*v as u32));
        let off = Offset::new(off_row % fabric.rows, off_col % fabric.cols);
        for offset in [Offset::ORIGIN, off] {
            let out = exec
                .execute(&cfg, offset, &[7], &mut ArrayMem::new(16))
                .unwrap();
            prop_assert_eq!(out.outputs[0], expect);
            prop_assert_eq!(out.active_cells.len(), imms.len());
        }
    }

    #[test]
    fn bitstream_rotation_composes_with_itself(
        fabric in any_fabric(),
        shift1 in 0u32..8,
        shift2 in 0u32..8,
    ) {
        let cfg = Configuration::new(
            &fabric,
            vec![PlacedOp {
                row: 0,
                col: 0,
                span: 1,
                kind: OpKind::Alu(AluFunc::Xor),
                a: Operand::Ctx(CtxLine(0)),
                b: Operand::Imm(0xabcd),
                dst: Some(CtxLine(1)),
            }],
            vec![CtxLine(0)],
            vec![CtxLine(1)],
        )
        .unwrap();
        let bs = Bitstream::encode(&fabric, &cfg);
        let col = &bs.columns()[0];
        let once = col.rotate_rows(&fabric, shift1 % fabric.rows)
            .rotate_rows(&fabric, shift2 % fabric.rows);
        let direct = col.rotate_rows(&fabric, (shift1 + shift2) % fabric.rows);
        prop_assert_eq!(once, direct);
    }

    #[test]
    fn hardware_load_is_offset_exhaustive(fabric in any_fabric()) {
        // Every legal offset loads without error and yields ops somewhere.
        let cfg = Configuration::new(
            &fabric,
            vec![PlacedOp {
                row: 0,
                col: 0,
                span: 1,
                kind: OpKind::Alu(AluFunc::Add),
                a: Operand::Imm(1),
                b: Operand::Imm(1),
                dst: Some(CtxLine(0)),
            }],
            vec![],
            vec![CtxLine(0)],
        )
        .unwrap();
        let bs = Bitstream::encode(&fabric, &cfg);
        let unit = ReconfigUnit::with_movement();
        for row in 0..fabric.rows {
            for col in 0..fabric.cols {
                let loaded = unit.load(&fabric, &bs, Offset::new(row, col)).unwrap();
                let ops = loaded.decode_physical(&fabric).unwrap();
                prop_assert_eq!(ops.len(), 1);
                prop_assert_eq!((ops[0].row, ops[0].col), (row, col));
            }
        }
    }

    #[test]
    fn area_grows_monotonically(rows in 1u32..=8, cols in 4u32..=31) {
        let m = AreaModel::default();
        let small = m.report(&Fabric::new(rows, cols), false);
        let taller = m.report(&Fabric::new(rows + 1, cols), false);
        let wider = m.report(&Fabric::new(rows, cols + 1), false);
        prop_assert!(taller.area_um2 > small.area_um2);
        prop_assert!(wider.area_um2 > small.area_um2);
        prop_assert!(taller.cells > small.cells);
        prop_assert!(wider.cells > small.cells);
    }

    #[test]
    fn extension_overhead_bounded_everywhere(rows in 1u32..=8, cols in 4u32..=32) {
        let fabric = Fabric::new(rows, cols);
        let m = AreaModel::default();
        let base = m.report(&fabric, false);
        let ext = m.report(&fabric, true);
        let (c, a) = ext.overhead_vs(&base);
        prop_assert!(c > 0.0 && c < 0.10, "cells {c} on {rows}x{cols}");
        prop_assert!(a > 0.0 && a < 0.10, "area {a} on {rows}x{cols}");
    }

    #[test]
    fn exec_cycle_charging(fabric in any_fabric(), cols_used in 1u32..=32) {
        let cols_used = 1 + cols_used % fabric.cols.max(1);
        let cycles = fabric.exec_cycles(cols_used);
        prop_assert!(cycles >= 1);
        prop_assert!(cycles * fabric.cols_per_cycle as u64 >= cols_used as u64);
        prop_assert!((cycles - 1) * fabric.cols_per_cycle as u64 != cols_used as u64);
    }
}
