//! Analytical SRAM-array estimator — the FinCACTI substitute (DESIGN.md §3).
//!
//! The paper sizes its caches with FinCACTI (deeply-scaled FinFET CACTI).
//! The evaluation only consumes first-order quantities — array area, static
//! power, access energy — so this module provides the classic CACTI-style
//! decomposition: bitcell array + periphery (decoders, sense amplifiers,
//! drivers) scaled by geometry. Used to size the configuration cache of the
//! TransRec system.

use serde::{Deserialize, Serialize};

/// Technology constants for a 6T bitcell array (NanGate-15nm-like defaults).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SramTech {
    /// Bitcell area in µm² (15 nm FinFET 6T ≈ 0.05 µm²).
    pub bitcell_um2: f64,
    /// Array-efficiency factor: fraction of macro area that is bitcells
    /// (the rest is decoders/sense-amps/drivers).
    pub array_efficiency: f64,
    /// Leakage power per bit, in GPP-cycle-energy units per cycle
    /// (matches [`crate::area`]'s normalization downstream).
    pub leak_per_bit: f64,
    /// Dynamic energy per bit accessed (read or write).
    pub access_energy_per_bit: f64,
}

impl Default for SramTech {
    fn default() -> SramTech {
        SramTech {
            bitcell_um2: 0.050,
            array_efficiency: 0.7,
            leak_per_bit: 2.5e-7,
            access_energy_per_bit: 1.2e-5,
        }
    }
}

/// A sized SRAM macro.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SramMacro {
    /// Capacity in bits.
    pub bits: u64,
    /// Access width in bits (one row of the logical array).
    pub width_bits: u32,
    /// Total macro area in µm² (bitcells + periphery).
    pub area_um2: f64,
    /// Static power in GPP-cycle-energy units per cycle.
    pub leakage: f64,
    /// Energy per access of one full row.
    pub access_energy: f64,
}

impl SramMacro {
    /// Sizes a macro of `bits` capacity accessed `width_bits` at a time.
    ///
    /// # Panics
    ///
    /// Panics if `bits` or `width_bits` is zero.
    pub fn size(tech: &SramTech, bits: u64, width_bits: u32) -> SramMacro {
        assert!(bits > 0, "empty SRAM");
        assert!(width_bits > 0, "zero access width");
        let cell_area = bits as f64 * tech.bitcell_um2;
        SramMacro {
            bits,
            width_bits,
            area_um2: cell_area / tech.array_efficiency,
            leakage: bits as f64 * tech.leak_per_bit,
            access_energy: width_bits as f64 * tech.access_energy_per_bit,
        }
    }
}

/// Sizes the configuration cache for a fabric: `entries` configurations of
/// up to the full fabric's column registers, plus a PC tag per entry.
pub fn config_cache_macro(tech: &SramTech, fabric: &crate::Fabric, entries: u32) -> SramMacro {
    let config_bits = crate::bitstream::column_bits(fabric) as u64 * fabric.cols as u64;
    let tag_bits = 32u64;
    let bits = entries as u64 * (config_bits + tag_bits);
    // One column's bits move per access (the reconfiguration bus width).
    let width = crate::bitstream::column_bits(fabric) as u32;
    SramMacro::size(tech, bits, width)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Fabric;

    #[test]
    fn sizing_scales_linearly_with_capacity() {
        let t = SramTech::default();
        let small = SramMacro::size(&t, 1 << 10, 64);
        let big = SramMacro::size(&t, 1 << 12, 64);
        assert!((big.area_um2 / small.area_um2 - 4.0).abs() < 1e-9);
        assert!((big.leakage / small.leakage - 4.0).abs() < 1e-9);
        assert_eq!(big.access_energy, small.access_energy, "same row width");
    }

    #[test]
    fn config_cache_for_be_is_tens_of_kilobytes() {
        let m = config_cache_macro(&SramTech::default(), &Fabric::be(), 256);
        // BE: 2 rows x 53 bits x 16 cols = 1696 config bits + 32 tag bits.
        assert_eq!(m.bits, 256 * (1696 + 32));
        let kib = m.bits as f64 / 8.0 / 1024.0;
        assert!((50.0..60.0).contains(&kib), "{kib} KiB");
        assert!(m.area_um2 > 0.0 && m.leakage > 0.0);
    }

    #[test]
    fn periphery_inflates_area_beyond_bitcells() {
        let t = SramTech::default();
        let m = SramMacro::size(&t, 8192, 128);
        assert!(m.area_um2 > 8192.0 * t.bitcell_um2);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn zero_capacity_rejected() {
        SramMacro::size(&SramTech::default(), 0, 8);
    }
}
