//! The reconfiguration unit (paper Fig. 5) and its aging-mitigation
//! extensions.
//!
//! Baseline behaviour: `n = cfg_lines` configuration lines feed the fabric;
//! column `i` listens to line `i mod n`, so `n` columns are written per
//! cycle and a configuration always lands anchored at column 0, row 0.
//!
//! With the **movement extensions** enabled (the paper's §III.B):
//!
//! * *horizontal movement* — every column gains an `n:1` multiplexer on its
//!   configuration-line input, so virtual column `v` can be steered into
//!   physical column `(v + offset.col) mod cols`;
//! * *vertical movement* — barrel shifters on the per-column configuration
//!   registers rotate the row fields by `offset.row`
//!   ([`ColumnBits::rotate_rows`]);
//! * *wrap-around* — a 2:1 multiplexer per context line per column selects
//!   between the previous column's lines and the initial input context, so
//!   execution can start at an arbitrary column and flow past the fabric's
//!   right edge back into column 0.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::bitstream::{decode_column, Bitstream, BitstreamError, ColumnBits};
use crate::config::Offset;
use crate::fabric::Fabric;
use crate::op::PlacedOp;

/// Cycles to rotate an already-resident configuration to a new offset
/// (per-execution movement re-shifts the configuration registers in place;
/// see DESIGN.md §4.4).
pub const RESIDENT_ROTATE_CYCLES: u64 = 1;

/// Errors from [`ReconfigUnit::load`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReconfigError {
    /// The baseline unit cannot place a configuration anywhere but the
    /// origin — that is exactly the capability the extensions add.
    MovementUnsupported {
        /// The requested offset.
        offset: Offset,
    },
    /// Offset outside the fabric.
    OffsetOutOfRange {
        /// The requested offset.
        offset: Offset,
    },
    /// Configuration wider than the fabric.
    TooManyColumns {
        /// Columns in the bitstream.
        requested: u32,
        /// Columns the fabric has.
        available: u32,
    },
    /// Malformed bitstream.
    Bitstream(BitstreamError),
}

impl fmt::Display for ReconfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconfigError::MovementUnsupported { offset } => {
                write!(f, "baseline reconfiguration logic cannot move a configuration to {offset}")
            }
            ReconfigError::OffsetOutOfRange { offset } => {
                write!(f, "offset {offset} outside the fabric")
            }
            ReconfigError::TooManyColumns { requested, available } => {
                write!(f, "configuration needs {requested} columns, fabric has {available}")
            }
            ReconfigError::Bitstream(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for ReconfigError {}

impl From<BitstreamError> for ReconfigError {
    fn from(e: BitstreamError) -> ReconfigError {
        ReconfigError::Bitstream(e)
    }
}

/// The fabric's configuration registers after a load: one register per
/// *physical* column, plus the wrap-around start column.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoadedFabric {
    columns: Vec<ColumnBits>,
    start_col: u32,
    cols_used: u32,
}

impl LoadedFabric {
    /// Physical column registers (length = fabric columns).
    pub fn columns(&self) -> &[ColumnBits] {
        &self.columns
    }

    /// Physical column where execution starts (the column whose wrap-around
    /// mux selects the initial input context).
    pub fn start_col(&self) -> u32 {
        self.start_col
    }

    /// Number of columns the loaded configuration occupies.
    pub fn cols_used(&self) -> u32 {
        self.cols_used
    }

    /// Decodes the physically-placed operations. `col` in each op is the
    /// physical start column; multi-column ops may wrap past the right edge
    /// (use modulo `fabric.cols` column arithmetic on spans).
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError`] on malformed registers.
    pub fn decode_physical(&self, fabric: &Fabric) -> Result<Vec<PlacedOp>, BitstreamError> {
        let mut ops = Vec::new();
        for (c, col_bits) in self.columns.iter().enumerate() {
            decode_column(fabric, col_bits, c as u32, &mut ops)?;
        }
        Ok(ops)
    }
}

/// The reconfiguration unit model.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReconfigUnit {
    extensions: bool,
}

impl ReconfigUnit {
    /// The unmodified TransRec reconfiguration logic (origin anchoring only).
    pub fn baseline() -> ReconfigUnit {
        ReconfigUnit { extensions: false }
    }

    /// The extended logic with horizontal/vertical movement and wrap-around.
    pub fn with_movement() -> ReconfigUnit {
        ReconfigUnit { extensions: true }
    }

    /// Whether the movement extensions are present.
    pub fn has_movement(&self) -> bool {
        self.extensions
    }

    /// Streams `bitstream` into the fabric anchored at `offset`.
    ///
    /// # Errors
    ///
    /// * [`ReconfigError::MovementUnsupported`] — non-origin offset on the
    ///   baseline unit.
    /// * [`ReconfigError::OffsetOutOfRange`] / [`ReconfigError::TooManyColumns`]
    ///   on geometry violations.
    pub fn load(
        &self,
        fabric: &Fabric,
        bitstream: &Bitstream,
        offset: Offset,
    ) -> Result<LoadedFabric, ReconfigError> {
        if !self.extensions && offset != Offset::ORIGIN {
            return Err(ReconfigError::MovementUnsupported { offset });
        }
        if !offset.in_range(fabric) {
            return Err(ReconfigError::OffsetOutOfRange { offset });
        }
        let cols_used = bitstream.cols_used();
        if cols_used > fabric.cols {
            return Err(ReconfigError::TooManyColumns {
                requested: cols_used,
                available: fabric.cols,
            });
        }
        let mut columns = vec![ColumnBits::nop(fabric); fabric.cols as usize];
        for (v, col_bits) in bitstream.columns().iter().enumerate() {
            let p = ((v as u32 + offset.col) % fabric.cols) as usize;
            columns[p] = if offset.row == 0 {
                col_bits.clone()
            } else {
                col_bits.rotate_rows(fabric, offset.row)
            };
        }
        Ok(LoadedFabric { columns, start_col: offset.col, cols_used })
    }

    /// Cycles to stream a `cols_used`-column configuration from the
    /// configuration cache into the fabric (`⌈cols_used / n⌉`, paper Fig. 5a).
    /// Applying a movement offset during the load is free — the muxes and
    /// shifters sit in the existing load path.
    pub fn load_cycles(&self, fabric: &Fabric, cols_used: u32) -> u64 {
        fabric.reconfig_cycles(cols_used)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;
    use crate::op::{AluFunc, CtxLine, LoadFunc, OpKind, Operand};

    fn sample(f: &Fabric) -> Configuration {
        Configuration::new(
            f,
            vec![
                PlacedOp {
                    row: 0,
                    col: 0,
                    span: 1,
                    kind: OpKind::Alu(AluFunc::Add),
                    a: Operand::Ctx(CtxLine(0)),
                    b: Operand::Imm(1),
                    dst: Some(CtxLine(2)),
                },
                PlacedOp {
                    row: 1,
                    col: 1,
                    span: 4,
                    kind: OpKind::Load { func: LoadFunc::W, offset: 8 },
                    a: Operand::Ctx(CtxLine(2)),
                    b: Operand::Imm(0),
                    dst: Some(CtxLine(3)),
                },
            ],
            vec![CtxLine(0)],
            vec![CtxLine(3)],
        )
        .unwrap()
    }

    /// Software rotation of virtual ops — the specification the hardware
    /// path must match.
    fn rotate_sw(f: &Fabric, ops: &[PlacedOp], off: Offset) -> Vec<PlacedOp> {
        let mut out: Vec<PlacedOp> = ops
            .iter()
            .map(|o| PlacedOp {
                row: (o.row + off.row) % f.rows,
                col: (o.col + off.col) % f.cols,
                ..*o
            })
            .collect();
        out.sort_by_key(|o| (o.col, o.row));
        out
    }

    #[test]
    fn baseline_rejects_movement() {
        let f = Fabric::be();
        let bs = Bitstream::encode(&f, &sample(&f));
        let u = ReconfigUnit::baseline();
        assert!(u.load(&f, &bs, Offset::ORIGIN).is_ok());
        let e = u.load(&f, &bs, Offset::new(0, 1)).unwrap_err();
        assert!(matches!(e, ReconfigError::MovementUnsupported { .. }));
    }

    #[test]
    fn hardware_rotation_equals_software_rotation() {
        let f = Fabric::bp(); // 4 x 32
        let cfg = sample(&f);
        let bs = Bitstream::encode(&f, &cfg);
        let unit = ReconfigUnit::with_movement();
        for off in [
            Offset::ORIGIN,
            Offset::new(1, 0),
            Offset::new(0, 5),
            Offset::new(3, 31),
            Offset::new(2, 16),
        ] {
            let loaded = unit.load(&f, &bs, off).unwrap();
            let mut physical = loaded.decode_physical(&f).unwrap();
            physical.sort_by_key(|o| (o.col, o.row));
            assert_eq!(physical, rotate_sw(&f, cfg.ops(), off), "offset {off}");
            assert_eq!(loaded.start_col(), off.col);
        }
    }

    #[test]
    fn unused_columns_are_nop() {
        let f = Fabric::be();
        let cfg = sample(&f); // 5 columns used
        let bs = Bitstream::encode(&f, &cfg);
        let loaded = ReconfigUnit::with_movement().load(&f, &bs, Offset::new(0, 14)).unwrap();
        assert_eq!(loaded.columns().len(), 16);
        // Columns 14,15,0,1,2 configured; the rest NOP.
        let configured: Vec<usize> = loaded
            .columns()
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_nop())
            .map(|(i, _)| i)
            .collect();
        assert_eq!(configured, vec![14, 15]);
        // (the load's tail columns carry no bits, so they stay NOP)
    }

    #[test]
    fn oversized_config_rejected() {
        let small = Fabric::new(2, 8);
        let big = Fabric::new(2, 32);
        let mut ops = Vec::new();
        for c in 0..9 {
            ops.push(PlacedOp {
                row: 0,
                col: c,
                span: 1,
                kind: OpKind::Alu(AluFunc::Add),
                a: Operand::Imm(1),
                b: Operand::Imm(1),
                dst: Some(CtxLine(0)),
            });
        }
        // Build on the big fabric (9 cols legal there), then try to load on
        // the small one.
        let cfg = Configuration::new(&big, ops, vec![], vec![CtxLine(0)]).unwrap();
        let bs = Bitstream::encode(&big, &cfg);
        // Same row geometry, so column registers are compatible in width.
        let e = ReconfigUnit::with_movement().load(&small, &bs, Offset::ORIGIN).unwrap_err();
        assert!(matches!(e, ReconfigError::TooManyColumns { requested: 9, available: 8 }));
    }

    #[test]
    fn load_cycles_follow_bus_width() {
        let f = Fabric::be(); // n = 4
        let u = ReconfigUnit::with_movement();
        assert_eq!(u.load_cycles(&f, 4), 1);
        assert_eq!(u.load_cycles(&f, 5), 2);
        assert_eq!(u.load_cycles(&f, 16), 4);
    }
}
