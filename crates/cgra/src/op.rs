//! Operations a functional unit can perform, and their operands.
//!
//! The op set mirrors what the TransRec DBT can translate from RV32IM:
//! the ten integer ALU functions, the four multiplies, and byte/half/word
//! loads and stores. Divisions are *not* fabric operations (the DBT
//! terminates a trace at a division, like the TransRec family does).

use serde::{Deserialize, Serialize};

/// Index of a context line (the inter-column value buses of Fig. 4).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct CtxLine(pub u16);

impl std::fmt::Display for CtxLine {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "c{}", self.0)
    }
}

/// An FU input operand: either a context line (via the input crossbar) or an
/// immediate held in the FU's configuration register.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Operand {
    /// Read the value currently on a context line.
    Ctx(CtxLine),
    /// A 32-bit immediate from the configuration word.
    ///
    /// Each FU configuration holds a *single* immediate field, so an
    /// operation may use `Imm` for both operands only with equal values
    /// (enforced by [`crate::config::Configuration::new`]).
    Imm(u32),
}

/// ALU function (single-column latency).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum AluFunc {
    Add,
    Sub,
    Sll,
    Slt,
    Sltu,
    Xor,
    Srl,
    Sra,
    Or,
    And,
}

impl AluFunc {
    /// Evaluates the function (identical semantics to RV32I).
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluFunc::Add => a.wrapping_add(b),
            AluFunc::Sub => a.wrapping_sub(b),
            AluFunc::Sll => a.wrapping_shl(b & 0x1f),
            AluFunc::Slt => ((a as i32) < (b as i32)) as u32,
            AluFunc::Sltu => (a < b) as u32,
            AluFunc::Xor => a ^ b,
            AluFunc::Srl => a.wrapping_shr(b & 0x1f),
            AluFunc::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
            AluFunc::Or => a | b,
            AluFunc::And => a & b,
        }
    }

    /// All ten functions, in encoding order.
    pub const ALL: [AluFunc; 10] = [
        AluFunc::Add,
        AluFunc::Sub,
        AluFunc::Sll,
        AluFunc::Slt,
        AluFunc::Sltu,
        AluFunc::Xor,
        AluFunc::Srl,
        AluFunc::Sra,
        AluFunc::Or,
        AluFunc::And,
    ];
}

/// Multiplier function (the fabric's multi-column multiply block).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum MulFunc {
    Mul,
    Mulh,
    Mulhsu,
    Mulhu,
}

impl MulFunc {
    /// Evaluates the function (identical semantics to RV32M).
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            MulFunc::Mul => a.wrapping_mul(b),
            MulFunc::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
            MulFunc::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
            MulFunc::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
        }
    }

    /// All four functions, in encoding order.
    pub const ALL: [MulFunc; 4] = [MulFunc::Mul, MulFunc::Mulh, MulFunc::Mulhsu, MulFunc::Mulhu];
}

/// Load flavour (width + extension), matching RV32I loads.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum LoadFunc {
    B,
    Bu,
    H,
    Hu,
    W,
}

impl LoadFunc {
    /// Extracts/extends the loaded raw word `raw` as this flavour would.
    pub fn extend(self, raw: u32) -> u32 {
        match self {
            LoadFunc::B => raw as u8 as i8 as i32 as u32,
            LoadFunc::Bu => raw as u8 as u32,
            LoadFunc::H => raw as u16 as i16 as i32 as u32,
            LoadFunc::Hu => raw as u16 as u32,
            LoadFunc::W => raw,
        }
    }

    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            LoadFunc::B | LoadFunc::Bu => 1,
            LoadFunc::H | LoadFunc::Hu => 2,
            LoadFunc::W => 4,
        }
    }

    /// All five flavours, in encoding order.
    pub const ALL: [LoadFunc; 5] =
        [LoadFunc::B, LoadFunc::Bu, LoadFunc::H, LoadFunc::Hu, LoadFunc::W];
}

/// Store flavour (width), matching RV32I stores.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
#[allow(missing_docs)]
pub enum StoreFunc {
    B,
    H,
    W,
}

impl StoreFunc {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            StoreFunc::B => 1,
            StoreFunc::H => 2,
            StoreFunc::W => 4,
        }
    }

    /// All three flavours, in encoding order.
    pub const ALL: [StoreFunc; 3] = [StoreFunc::B, StoreFunc::H, StoreFunc::W];
}

/// What a placed operation does.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum OpKind {
    /// Single-column ALU operation.
    Alu(AluFunc),
    /// Multi-column multiply.
    Mul(MulFunc),
    /// Memory load; the effective address is `operand_a + offset`.
    Load {
        /// Width/extension flavour.
        func: LoadFunc,
        /// Byte offset added to the base address operand.
        offset: i32,
    },
    /// Memory store; the effective address is `operand_a + offset` and the
    /// stored value is `operand_b`.
    Store {
        /// Width flavour.
        func: StoreFunc,
        /// Byte offset added to the base address operand.
        offset: i32,
    },
}

impl OpKind {
    /// `true` for loads and stores (they contend for the data-cache ports).
    pub fn is_mem(self) -> bool {
        matches!(self, OpKind::Load { .. } | OpKind::Store { .. })
    }

    /// `true` if the op produces a value (everything except stores).
    pub fn produces_value(self) -> bool {
        !matches!(self, OpKind::Store { .. })
    }
}

/// An operation placed at a fabric position inside a *virtual configuration*
/// (coordinates are relative to the configuration's pivot; see paper Fig. 3a).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct PlacedOp {
    /// Row within the virtual configuration (0-based).
    pub row: u32,
    /// First column occupied (0-based).
    pub col: u32,
    /// Number of columns occupied (must equal the fabric latency of `kind`).
    pub span: u32,
    /// The operation.
    pub kind: OpKind,
    /// First operand (address base for memory ops).
    pub a: Operand,
    /// Second operand (store data for stores; ignored by loads).
    pub b: Operand,
    /// Context line written with the result (`None` for stores).
    pub dst: Option<CtxLine>,
}

impl PlacedOp {
    /// Last column occupied (inclusive).
    pub fn end_col(&self) -> u32 {
        self.col + self.span - 1
    }

    /// The fabric cells `(row, col)` this op occupies.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        (self.col..self.col + self.span).map(move |c| (self.row, c))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alu_matches_rv32_semantics() {
        for (a, b) in [(0u32, 0u32), (5, 3), (u32::MAX, 1), (0x8000_0000, 31)] {
            assert_eq!(AluFunc::Add.eval(a, b), a.wrapping_add(b));
            assert_eq!(AluFunc::Sub.eval(a, b), a.wrapping_sub(b));
            assert_eq!(AluFunc::Sra.eval(a, b), ((a as i32) >> (b & 31)) as u32);
            assert_eq!(AluFunc::Sltu.eval(a, b), u32::from(a < b));
        }
    }

    #[test]
    fn load_extension() {
        assert_eq!(LoadFunc::B.extend(0x80), 0xffff_ff80);
        assert_eq!(LoadFunc::Bu.extend(0x80), 0x80);
        assert_eq!(LoadFunc::H.extend(0x8000), 0xffff_8000);
        assert_eq!(LoadFunc::Hu.extend(0x8000), 0x8000);
        assert_eq!(LoadFunc::W.extend(0xdead_beef), 0xdead_beef);
    }

    #[test]
    fn op_cells_cover_span() {
        let op = PlacedOp {
            row: 1,
            col: 2,
            span: 4,
            kind: OpKind::Load { func: LoadFunc::W, offset: 0 },
            a: Operand::Ctx(CtxLine(0)),
            b: Operand::Imm(0),
            dst: Some(CtxLine(1)),
        };
        let cells: Vec<_> = op.cells().collect();
        assert_eq!(cells, vec![(1, 2), (1, 3), (1, 4), (1, 5)]);
        assert_eq!(op.end_col(), 5);
    }
}
