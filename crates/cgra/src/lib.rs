//! # cgra — the TransRec-style CGRA fabric model
//!
//! The reconfigurable-fabric substrate of the `uaware-cgra` workspace, which
//! reproduces *"Proactive Aging Mitigation in CGRAs through
//! Utilization-Aware Allocation"* (DAC 2020). The fabric is a `W × L` matrix
//! of combinational FUs with strictly left-to-right data propagation over
//! context lines (paper Fig. 4):
//!
//! * [`fabric`] — geometry + technology parameters ([`Fabric`], with the
//!   paper's BE/BP/BU design points as presets), per-cell capability
//!   classes ([`CellClass`]/[`ClassMap`]) and the per-column interconnect
//!   bandwidth budget of heterogeneous design points (DESIGN.md §14).
//! * [`spec`] — fabrics as data: the sweepable [`FabricSpec`] with the
//!   compact `--fabric` string grammar (`be`, `4x8:het-checker+bw-2`, …).
//! * [`op`] — the operation set and placed-operation model.
//! * [`config`] — validated virtual configurations ([`Configuration`]) and
//!   the pivot [`Offset`] with wrap-around arithmetic.
//! * [`exec`] — functional + timing execution at any pivot offset
//!   ([`Executor`], [`MemBus`]).
//! * [`bitstream`] — the bit-level configuration encoding the
//!   reconfiguration logic moves around.
//! * [`reconfig`] — the reconfiguration unit (paper Fig. 5), baseline and
//!   with the movement extensions (column-select muxes, barrel shifters,
//!   wrap-around).
//! * [`fault`] — permanent per-FU failure maps ([`FaultMask`]) the
//!   closed-loop lifetime engine feeds back into allocation.
//! * [`area`] — the structural area/delay model behind paper Table II.
//!
//! # Examples
//!
//! ```
//! use cgra::op::{AluFunc, CtxLine, OpKind, Operand, PlacedOp};
//! use cgra::{ArrayMem, Configuration, Executor, Fabric, Offset};
//!
//! let fabric = Fabric::be();
//! let cfg = Configuration::new(
//!     &fabric,
//!     vec![PlacedOp {
//!         row: 0, col: 0, span: 1,
//!         kind: OpKind::Alu(AluFunc::Add),
//!         a: Operand::Ctx(CtxLine(0)),
//!         b: Operand::Imm(100),
//!         dst: Some(CtxLine(1)),
//!     }],
//!     vec![CtxLine(0)],
//!     vec![CtxLine(1)],
//! )?;
//! let mut mem = ArrayMem::new(64);
//! let exec = Executor::new(&fabric);
//!
//! // The same configuration executed at two different pivots computes the
//! // same value on different physical FUs — the property utilization-aware
//! // allocation exploits to balance NBTI stress.
//! let at_origin = exec.execute(&cfg, Offset::ORIGIN, &[1], &mut mem)?;
//! let moved = exec.execute(&cfg, Offset::new(1, 7), &[1], &mut mem)?;
//! assert_eq!(at_origin.outputs, moved.outputs);
//! assert_ne!(at_origin.active_cells, moved.active_cells);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod area;
pub mod bitstream;
pub mod config;
pub mod exec;
pub mod fabric;
pub mod fault;
pub mod op;
pub mod reconfig;
pub mod spec;
pub mod sram;

pub use area::{AreaModel, AreaReport, CellLibrary};
pub use bitstream::{Bitstream, BitstreamError};
pub use config::{ConfigError, Configuration, Offset};
pub use exec::{ArrayMem, ExecError, ExecOutcome, Executor, MemBus, MemFault};
pub use fabric::{CellClass, ClassMap, Fabric, FabricError, OpLatencies};
pub use fault::FaultMask;
pub use reconfig::{LoadedFabric, ReconfigError, ReconfigUnit, RESIDENT_ROTATE_CYCLES};
pub use spec::{FabricSpec, ParseFabricError};
pub use sram::{config_cache_macro, SramMacro, SramTech};
