//! Declarative fabric specification (DESIGN.md §14).
//!
//! Layout sweeps iterate over fabrics the same way policy sweeps iterate
//! over policies, so fabrics must be *data* too: a [`FabricSpec`] is a
//! serializable, comparable, parseable value that [builds](FabricSpec::build)
//! the corresponding [`Fabric`] on demand, mirroring the established
//! `PolicySpec`/`TrafficSpec`/`ProbeSpec` pattern.
//!
//! Specs round-trip through compact strings (the `--fabric` CLI grammar):
//!
//! | String | Meaning |
//! |---|---|
//! | `be`, `bp`, `bu`, `fig1` | the paper's preset geometries |
//! | `4x8` | uniform 4-row × 8-column fabric |
//! | `4x8:het-checker` | checkerboard of full cells and bare ALUs |
//! | `4x8:het-rows` / `4x8:het-cols` | full/bare-ALU row or column stripes |
//! | `4x8:het-mem` / `4x8:het-mul` | uniformly `alu+mem` / `alu+mul` cells |
//! | `4x8@ctx-32` | explicit context-line count (default 16) |
//! | `4x8+bw-2` | column interconnect budget of 2 FUs (default unlimited) |
//! | `4x8:het-checker@ctx-16+bw-2` | suffixes compose, in this order |

use std::fmt;
use std::str::FromStr;

use serde::{Deserialize, Serialize};

use crate::fabric::{CellClass, ClassMap, Fabric, FabricError};

/// A fabric layout as data (DESIGN.md §14): the enumerable, serializable
/// point every layout sweep iterates over. [`build`](FabricSpec::build)
/// turns a spec into a [`Fabric`]; [`fmt::Display`]/[`FromStr`] round-trip
/// the compact string grammar used by the `--fabric` CLI flag.
///
/// # Examples
///
/// ```
/// use cgra::{ClassMap, FabricSpec};
///
/// let spec: FabricSpec = "4x8:het-checker+bw-2".parse().unwrap();
/// assert_eq!((spec.rows, spec.cols), (4, 8));
/// assert_eq!(spec.classes, ClassMap::Checker);
/// assert_eq!(spec.col_bandwidth, 2);
/// // The string form round-trips through the canonical rendering.
/// assert_eq!(spec.to_string().parse::<FabricSpec>().unwrap(), spec);
/// // Presets canonicalize to their geometry.
/// assert_eq!("be".parse::<FabricSpec>().unwrap().to_string(), "2x16");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FabricSpec {
    /// Number of rows `W`.
    pub rows: u32,
    /// Number of columns `L`.
    pub cols: u32,
    /// Per-cell capability classes (default: uniformly full).
    pub classes: ClassMap,
    /// Context-line count (default 16, the paper's value).
    pub ctx_lines: u16,
    /// Per-column interconnect bandwidth budget (default 0 = unlimited).
    pub col_bandwidth: u32,
}

impl FabricSpec {
    /// The uniform (homogeneous, unlimited-bandwidth) spec for a geometry —
    /// the layout every heterogeneous mix is compared against.
    pub fn uniform(rows: u32, cols: u32) -> FabricSpec {
        FabricSpec { rows, cols, classes: ClassMap::default(), ctx_lines: 16, col_bandwidth: 0 }
    }

    /// The spec describing an existing fabric's layout-relevant fields
    /// (geometry, classes, context lines, bandwidth). Technology parameters
    /// the spec grammar does not cover (`cfg_lines`, latencies, ports) are
    /// assumed to be at their defaults; [`build`](FabricSpec::build) always
    /// produces default-parameter fabrics.
    pub fn from_fabric(fabric: &Fabric) -> FabricSpec {
        FabricSpec {
            rows: fabric.rows,
            cols: fabric.cols,
            classes: fabric.classes,
            ctx_lines: fabric.ctx_lines,
            col_bandwidth: fabric.col_bandwidth,
        }
    }

    /// Builds the fabric this spec describes.
    ///
    /// # Errors
    ///
    /// The [`FabricError`] of an impossible geometry (zero dimension, or
    /// too few columns for a memory op) — typed, so spec-driven sweeps and
    /// `System::builder` reject bad layouts without panicking.
    pub fn build(&self) -> Result<Fabric, FabricError> {
        let mut fabric = Fabric::try_new(self.rows, self.cols)?;
        fabric.ctx_lines = self.ctx_lines;
        fabric.classes = self.classes;
        fabric.col_bandwidth = self.col_bandwidth;
        Ok(fabric)
    }
}

impl fmt::Display for FabricSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}", self.rows, self.cols)?;
        if let Some(mix) = mix_name(self.classes) {
            write!(f, ":het-{mix}")?;
        }
        if self.ctx_lines != 16 {
            write!(f, "@ctx-{}", self.ctx_lines)?;
        }
        if self.col_bandwidth != 0 {
            write!(f, "+bw-{}", self.col_bandwidth)?;
        }
        Ok(())
    }
}

impl FromStr for FabricSpec {
    type Err = ParseFabricError;

    fn from_str(s: &str) -> Result<FabricSpec, ParseFabricError> {
        let bad = |what: &str| {
            ParseFabricError::new(format!(
                "{what} in `{s}` (expected \
                 <preset|RxC>[:het-<mix>][@ctx-<n>][+bw-<n>], e.g. 4x8:het-checker+bw-2)"
            ))
        };
        // Peel the suffixes right to left, in canonical order.
        let (head, bw) = match s.rsplit_once("+bw-") {
            Some((head, n)) => {
                (head, n.parse::<u32>().map_err(|_| bad("invalid bandwidth budget"))?)
            }
            None => (s, 0),
        };
        let (head, ctx) = match head.rsplit_once("@ctx-") {
            Some((head, n)) => {
                (head, n.parse::<u16>().map_err(|_| bad("invalid context-line count"))?)
            }
            None => (head, 16),
        };
        let (head, classes) = match head.rsplit_once(":het-") {
            Some((head, mix)) => (head, parse_mix(mix).ok_or_else(|| bad("unknown mix"))?),
            None => (head, ClassMap::default()),
        };
        let (rows, cols) = match head {
            "fig1" => (4, 8),
            "be" => (2, 16),
            "bp" => (4, 32),
            "bu" => (8, 32),
            dims => match dims.split_once('x') {
                Some((r, c)) => (
                    r.parse::<u32>().map_err(|_| bad("invalid row count"))?,
                    c.parse::<u32>().map_err(|_| bad("invalid column count"))?,
                ),
                None => return Err(bad("unknown geometry")),
            },
        };
        Ok(FabricSpec { rows, cols, classes, ctx_lines: ctx, col_bandwidth: bw })
    }
}

/// The grammar token of a class map, or `None` for the uniform-full default
/// (which the canonical rendering omits).
fn mix_name(classes: ClassMap) -> Option<&'static str> {
    match classes {
        ClassMap::Uniform(CellClass::Full) => None,
        ClassMap::Uniform(CellClass::Alu) => Some("alu"),
        ClassMap::Uniform(CellClass::AluMem) => Some("mem"),
        ClassMap::Uniform(CellClass::AluMul) => Some("mul"),
        ClassMap::Checker => Some("checker"),
        ClassMap::RowStripes => Some("rows"),
        ClassMap::ColStripes => Some("cols"),
    }
}

fn parse_mix(mix: &str) -> Option<ClassMap> {
    match mix {
        "checker" => Some(ClassMap::Checker),
        "rows" => Some(ClassMap::RowStripes),
        "cols" => Some(ClassMap::ColStripes),
        "alu" => Some(ClassMap::Uniform(CellClass::Alu)),
        "mem" => Some(ClassMap::Uniform(CellClass::AluMem)),
        "mul" => Some(ClassMap::Uniform(CellClass::AluMul)),
        _ => None,
    }
}

/// A fabric-spec string failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseFabricError {
    message: String,
}

impl ParseFabricError {
    /// Wraps a diagnostic message (for tools layering their own spec
    /// grammars, e.g. CLI flag parsers).
    pub fn new(message: String) -> ParseFabricError {
        ParseFabricError { message }
    }
}

impl fmt::Display for ParseFabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseFabricError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_strings_parse_to_the_expected_specs() {
        let cases = [
            ("4x8", FabricSpec::uniform(4, 8)),
            ("2x16", FabricSpec::uniform(2, 16)),
            (
                "4x8:het-checker",
                FabricSpec { classes: ClassMap::Checker, ..FabricSpec::uniform(4, 8) },
            ),
            (
                "4x8:het-rows",
                FabricSpec { classes: ClassMap::RowStripes, ..FabricSpec::uniform(4, 8) },
            ),
            (
                "4x8:het-cols",
                FabricSpec { classes: ClassMap::ColStripes, ..FabricSpec::uniform(4, 8) },
            ),
            (
                "4x8:het-mem",
                FabricSpec {
                    classes: ClassMap::Uniform(CellClass::AluMem),
                    ..FabricSpec::uniform(4, 8)
                },
            ),
            ("4x8@ctx-32", FabricSpec { ctx_lines: 32, ..FabricSpec::uniform(4, 8) }),
            ("4x8+bw-2", FabricSpec { col_bandwidth: 2, ..FabricSpec::uniform(4, 8) }),
            (
                "8x32:het-checker@ctx-8+bw-3",
                FabricSpec {
                    classes: ClassMap::Checker,
                    ctx_lines: 8,
                    col_bandwidth: 3,
                    ..FabricSpec::uniform(8, 32)
                },
            ),
        ];
        for (s, spec) in cases {
            assert_eq!(s.parse::<FabricSpec>().unwrap(), spec, "{s}");
            assert_eq!(spec.to_string(), s, "{spec:?}");
        }
    }

    #[test]
    fn presets_and_defaults_fill_in() {
        assert_eq!("fig1".parse::<FabricSpec>().unwrap(), FabricSpec::uniform(4, 8));
        assert_eq!("be".parse::<FabricSpec>().unwrap(), FabricSpec::uniform(2, 16));
        assert_eq!("bp".parse::<FabricSpec>().unwrap(), FabricSpec::uniform(4, 32));
        assert_eq!("bu".parse::<FabricSpec>().unwrap(), FabricSpec::uniform(8, 32));
        // Presets compose with suffixes and canonicalize to their geometry.
        let constrained: FabricSpec = "be+bw-1".parse().unwrap();
        assert_eq!(constrained.col_bandwidth, 1);
        assert_eq!(constrained.to_string(), "2x16+bw-1");
        // `@ctx-16` is the default and parses back to the bare form.
        assert_eq!("4x8@ctx-16".parse::<FabricSpec>().unwrap().to_string(), "4x8");
    }

    #[test]
    fn malformed_strings_are_rejected() {
        for s in [
            "",
            "4",
            "x8",
            "4x",
            "4x8x2",
            "4x8:het-",
            "4x8:het-diagonal",
            "4x8:checker",
            "4x8@ctx-",
            "4x8@ctx-many",
            "4x8+bw-",
            "4x8+bw-lots",
            "4x8+bw-2:het-checker", // suffixes only compose in canonical order
            "bee",
        ] {
            assert!(s.parse::<FabricSpec>().is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn build_applies_every_field_and_types_bad_geometries() {
        let spec: FabricSpec = "4x8:het-checker@ctx-8+bw-2".parse().unwrap();
        let fabric = spec.build().unwrap();
        assert_eq!((fabric.rows, fabric.cols), (4, 8));
        assert_eq!(fabric.ctx_lines, 8);
        assert_eq!(fabric.classes, ClassMap::Checker);
        assert_eq!(fabric.col_bandwidth, 2);
        assert_eq!(FabricSpec::from_fabric(&fabric), spec, "from_fabric round-trips");

        // Impossible geometries parse (they are syntactically fine) but
        // build to a typed error instead of a panic (DESIGN.md §14).
        assert_eq!("0x8".parse::<FabricSpec>().unwrap().build(), Err(FabricError::EmptyFabric));
        assert_eq!(
            "2x2".parse::<FabricSpec>().unwrap().build(),
            Err(FabricError::MemLatencyTooLong { cols: 2, mem: 4 })
        );
    }

    #[test]
    fn uniform_spec_builds_the_preset_fabrics() {
        assert_eq!("be".parse::<FabricSpec>().unwrap().build().unwrap(), Fabric::be());
        assert_eq!("bp".parse::<FabricSpec>().unwrap().build().unwrap(), Fabric::bp());
        assert_eq!("bu".parse::<FabricSpec>().unwrap().build().unwrap(), Fabric::bu());
        assert_eq!("fig1".parse::<FabricSpec>().unwrap().build().unwrap(), Fabric::fig1());
    }

    #[test]
    fn specs_survive_json() {
        for s in ["4x8", "4x8:het-checker", "be+bw-2", "8x32:het-rows@ctx-8+bw-1"] {
            let spec: FabricSpec = s.parse().unwrap();
            let json = serde_json::to_string(&spec).unwrap();
            let back: FabricSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }
}
