//! Permanent FU failures as data: the [`FaultMask`] (DESIGN.md §11).
//!
//! The closed-loop lifetime engine marks a functional unit *dead* once its
//! NBTI delay degradation crosses the end-of-life limit. Allocation then has
//! to route around the dead cells: a `FaultMask` is the per-cell health map
//! that threads from the wear model through the allocation policies — a
//! placement is legal only if every cell of its (offset-applied, wrapped)
//! footprint is alive. The mask is monotone: cells die, they never heal.

use serde::{Deserialize, Serialize};

use crate::config::Offset;
use crate::fabric::Fabric;

/// Per-cell permanent-failure map of a fabric (DESIGN.md §11).
///
/// # Examples
///
/// ```
/// use cgra::{Fabric, FaultMask, Offset};
///
/// let fabric = Fabric::be();
/// let mut mask = FaultMask::healthy(&fabric);
/// assert!(mask.mark_dead(0, 0));
/// assert!(!mask.mark_dead(0, 0), "already dead");
/// let footprint = [(0u32, 0u32), (0, 1)];
/// // The corner placement now straddles a dead FU …
/// assert!(!mask.placement_ok(&fabric, &footprint, Offset::ORIGIN));
/// // … but a shifted placement (and hence the device) survives.
/// assert!(mask.placement_ok(&fabric, &footprint, Offset::new(1, 0)));
/// assert!(mask.any_placement(&fabric, &footprint));
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultMask {
    rows: u32,
    cols: u32,
    dead: Vec<bool>,
    dead_count: u32,
}

impl FaultMask {
    /// An all-alive mask matching `fabric`'s geometry.
    pub fn healthy(fabric: &Fabric) -> FaultMask {
        FaultMask {
            rows: fabric.rows,
            cols: fabric.cols,
            dead: vec![false; fabric.fu_count() as usize],
            dead_count: 0,
        }
    }

    /// Mask height.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Mask width.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// `true` if the FU at `(row, col)` has failed.
    ///
    /// # Panics
    ///
    /// Panics if the cell lies outside the mask geometry.
    pub fn is_dead(&self, row: u32, col: u32) -> bool {
        assert!(row < self.rows && col < self.cols, "cell ({row},{col}) outside mask");
        self.dead[(row * self.cols + col) as usize]
    }

    /// Marks the FU at `(row, col)` as permanently failed. Returns `true`
    /// if the cell was alive (a *new* failure), `false` if it was already
    /// dead.
    ///
    /// # Panics
    ///
    /// Panics if the cell lies outside the mask geometry.
    pub fn mark_dead(&mut self, row: u32, col: u32) -> bool {
        assert!(row < self.rows && col < self.cols, "cell ({row},{col}) outside mask");
        let cell = &mut self.dead[(row * self.cols + col) as usize];
        let newly = !*cell;
        *cell = true;
        self.dead_count += newly as u32;
        newly
    }

    /// Number of failed FUs.
    pub fn dead_count(&self) -> u32 {
        self.dead_count
    }

    /// `true` if no FU has failed (the pristine-fabric fast path policies
    /// use to keep fault-free behaviour bit-identical to the mask-less one).
    pub fn is_pristine(&self) -> bool {
        self.dead_count == 0
    }

    /// The failed cells, row-major.
    pub fn dead_cells(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        let cols = self.cols;
        self.dead
            .iter()
            .enumerate()
            .filter(|(_, d)| **d)
            .map(move |(i, _)| (i as u32 / cols, i as u32 % cols))
    }

    /// `true` if anchoring `footprint` at `offset` (with wrap-around, like
    /// [`Offset::apply`]) touches only live FUs.
    ///
    /// # Panics
    ///
    /// Panics if the mask geometry does not match `fabric`.
    pub fn placement_ok(&self, fabric: &Fabric, footprint: &[(u32, u32)], offset: Offset) -> bool {
        assert_eq!((self.rows, self.cols), (fabric.rows, fabric.cols), "geometry mismatch");
        footprint.iter().all(|&(r, c)| {
            let (pr, pc) = offset.apply(fabric, r, c);
            !self.dead[(pr * self.cols + pc) as usize]
        })
    }

    /// `true` if *some* pivot offset yields an all-alive placement of
    /// `footprint` — the device-is-still-allocatable check of the lifetime
    /// engine (movement hardware permitting; the baseline policy can only
    /// ever use the origin).
    ///
    /// # Panics
    ///
    /// Panics if the mask geometry does not match `fabric`.
    pub fn any_placement(&self, fabric: &Fabric, footprint: &[(u32, u32)]) -> bool {
        (0..fabric.rows).any(|row| {
            (0..fabric.cols).any(|col| self.placement_ok(fabric, footprint, Offset::new(row, col)))
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fresh_mask_is_pristine() {
        let fabric = Fabric::be();
        let mask = FaultMask::healthy(&fabric);
        assert!(mask.is_pristine());
        assert_eq!(mask.dead_count(), 0);
        assert_eq!(mask.dead_cells().count(), 0);
        assert!(!mask.is_dead(1, 15));
        assert!(mask.placement_ok(&fabric, &[(0, 0), (1, 15)], Offset::ORIGIN));
    }

    #[test]
    fn failures_accumulate_monotonically() {
        let fabric = Fabric::be();
        let mut mask = FaultMask::healthy(&fabric);
        assert!(mask.mark_dead(0, 3));
        assert!(mask.mark_dead(1, 7));
        assert!(!mask.mark_dead(0, 3), "second failure of the same cell is not new");
        assert_eq!(mask.dead_count(), 2);
        assert!(!mask.is_pristine());
        assert_eq!(mask.dead_cells().collect::<Vec<_>>(), vec![(0, 3), (1, 7)]);
    }

    #[test]
    fn placement_respects_wraparound() {
        let fabric = Fabric::be();
        let mut mask = FaultMask::healthy(&fabric);
        mask.mark_dead(0, 0);
        // A footprint whose wrapped image lands on the dead corner.
        let footprint = [(1u32, 1u32)];
        assert!(!mask.placement_ok(&fabric, &footprint, Offset::new(1, 15)), "wraps onto (0,0)");
        assert!(mask.placement_ok(&fabric, &footprint, Offset::new(0, 0)));
    }

    #[test]
    fn any_placement_detects_exhaustion() {
        let fabric = Fabric::new(2, 4);
        let mut mask = FaultMask::healthy(&fabric);
        let footprint = [(0u32, 0u32)];
        // Kill everything except one cell: still allocatable.
        for (r, c) in [(0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1), (1, 2)] {
            mask.mark_dead(r, c);
        }
        assert!(mask.any_placement(&fabric, &footprint));
        mask.mark_dead(1, 3);
        assert!(!mask.any_placement(&fabric, &footprint), "all FUs dead");
        assert_eq!(mask.dead_count(), fabric.fu_count());
    }

    #[test]
    fn mask_survives_json() {
        let fabric = Fabric::new(2, 4);
        let mut mask = FaultMask::healthy(&fabric);
        mask.mark_dead(1, 2);
        let json = serde_json::to_string(&mask).unwrap();
        let back: FaultMask = serde_json::from_str(&json).unwrap();
        assert_eq!(back, mask);
    }

    #[test]
    #[should_panic(expected = "outside mask")]
    fn out_of_range_cell_rejected() {
        FaultMask::healthy(&Fabric::be()).is_dead(2, 0);
    }
}
