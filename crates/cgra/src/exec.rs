//! Functional + timing execution of configurations.
//!
//! The executor walks the configuration column by column, mirroring the
//! hardware: an operation captures its operands from the context lines in
//! its start column and drives its result onto its destination line at the
//! end of its last column. Stores commit to the [`MemBus`] at their
//! completion column; loads read at their start column (the DBT's memory
//! serialization guarantees all program-order-earlier stores have completed
//! by then).
//!
//! Execution takes a pivot [`Offset`]: the *functional* behaviour is
//! identical for every offset (the movement-invariance property the paper's
//! hardware extensions must provide — see `tests/` and the `uaware` crate),
//! while the *physical* cells that do the work rotate with the offset, which
//! is what redistributes NBTI stress.

use std::fmt;

use crate::config::{Configuration, Offset};
use crate::fabric::Fabric;
use crate::op::{LoadFunc, OpKind, Operand, StoreFunc};

/// A data-memory fault raised by a [`MemBus`] implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemFault {
    /// Faulting byte address.
    pub addr: u32,
}

impl fmt::Display for MemFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "memory fault at {:#010x}", self.addr)
    }
}

impl std::error::Error for MemFault {}

/// The fabric's view of the data cache (paper Fig. 4, "To Memory Unit").
///
/// Implemented by the system simulator over the GPP's memory; the provided
/// [`ArrayMem`] suffices for standalone fabric use.
pub trait MemBus {
    /// Loads and width-extends a value.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if `addr` is not accessible.
    fn load(&mut self, addr: u32, func: LoadFunc) -> Result<u32, MemFault>;

    /// Stores the low bytes of `value`.
    ///
    /// # Errors
    ///
    /// Returns [`MemFault`] if `addr` is not accessible.
    fn store(&mut self, addr: u32, func: StoreFunc, value: u32) -> Result<(), MemFault>;
}

/// A simple byte-array [`MemBus`] for standalone use and tests.
#[derive(Clone, Debug, Default)]
pub struct ArrayMem {
    bytes: Vec<u8>,
}

impl ArrayMem {
    /// Creates a zeroed memory of `size` bytes.
    pub fn new(size: usize) -> ArrayMem {
        ArrayMem { bytes: vec![0; size] }
    }

    /// Raw byte view.
    pub fn bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// Mutable raw byte view.
    pub fn bytes_mut(&mut self) -> &mut [u8] {
        &mut self.bytes
    }
}

impl MemBus for ArrayMem {
    fn load(&mut self, addr: u32, func: LoadFunc) -> Result<u32, MemFault> {
        let n = func.bytes() as usize;
        let start = addr as usize;
        let slice = self.bytes.get(start..start + n).ok_or(MemFault { addr })?;
        let mut raw = 0u32;
        for (i, byte) in slice.iter().enumerate() {
            raw |= (*byte as u32) << (8 * i);
        }
        Ok(func.extend(raw))
    }

    fn store(&mut self, addr: u32, func: StoreFunc, value: u32) -> Result<(), MemFault> {
        let n = func.bytes() as usize;
        let start = addr as usize;
        let slice = self.bytes.get_mut(start..start + n).ok_or(MemFault { addr })?;
        for (i, byte) in slice.iter_mut().enumerate() {
            *byte = (value >> (8 * i)) as u8;
        }
        Ok(())
    }
}

/// Errors from [`Executor::execute`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecError {
    /// `inputs` length differs from the configuration's input bindings.
    InputCountMismatch {
        /// Bindings declared by the configuration.
        expected: usize,
        /// Values supplied by the caller.
        got: usize,
    },
    /// The pivot offset addresses a cell outside the fabric.
    OffsetOutOfRange {
        /// The offending offset.
        offset: Offset,
    },
    /// A memory operation faulted.
    Mem(MemFault),
    /// An operand line carried no value (unreachable for validated
    /// configurations; kept as a defensive error).
    UndefinedValue {
        /// The undefined line index.
        line: u16,
    },
}

impl fmt::Display for ExecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecError::InputCountMismatch { expected, got } => {
                write!(f, "configuration expects {expected} input value(s), got {got}")
            }
            ExecError::OffsetOutOfRange { offset } => {
                write!(f, "pivot offset {offset} outside the fabric")
            }
            ExecError::Mem(e) => write!(f, "{e}"),
            ExecError::UndefinedValue { line } => {
                write!(f, "context line c{line} undefined at read time")
            }
        }
    }
}

impl std::error::Error for ExecError {}

impl From<MemFault> for ExecError {
    fn from(e: MemFault) -> ExecError {
        ExecError::Mem(e)
    }
}

/// Result of executing a configuration once.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ExecOutcome {
    /// Output values, in the order of the configuration's output bindings.
    pub outputs: Vec<u32>,
    /// Pure fabric execution cycles (`⌈cols_used / cols_per_cycle⌉`).
    pub cycles: u64,
    /// Physical `(row, col)` cells that were active, sorted.
    pub active_cells: Vec<(u32, u32)>,
    /// Number of loads performed.
    pub loads: u32,
    /// Number of stores performed.
    pub stores: u32,
}

/// Executes validated configurations on a fabric.
#[derive(Copy, Clone, Debug)]
pub struct Executor<'f> {
    fabric: &'f Fabric,
}

impl<'f> Executor<'f> {
    /// Creates an executor for `fabric`.
    pub fn new(fabric: &'f Fabric) -> Executor<'f> {
        Executor { fabric }
    }

    /// Executes `config` anchored at `offset`, with `inputs` deposited on the
    /// input context, against `mem`.
    ///
    /// # Errors
    ///
    /// See [`ExecError`]. On a memory fault the `MemBus` may have absorbed a
    /// prefix of the configuration's stores (the system model treats faults
    /// as fatal).
    pub fn execute(
        &self,
        config: &Configuration,
        offset: Offset,
        inputs: &[u32],
        mem: &mut dyn MemBus,
    ) -> Result<ExecOutcome, ExecError> {
        if inputs.len() != config.inputs().len() {
            return Err(ExecError::InputCountMismatch {
                expected: config.inputs().len(),
                got: inputs.len(),
            });
        }
        if !offset.in_range(self.fabric) {
            return Err(ExecError::OffsetOutOfRange { offset });
        }

        let mut ctx: Vec<Option<u32>> = vec![None; self.fabric.ctx_lines as usize];
        for (line, value) in config.inputs().iter().zip(inputs) {
            ctx[line.0 as usize] = Some(*value);
        }

        let read = |ctx: &[Option<u32>], operand: Operand| -> Result<u32, ExecError> {
            match operand {
                Operand::Imm(v) => Ok(v),
                Operand::Ctx(l) => ctx[l.0 as usize].ok_or(ExecError::UndefinedValue { line: l.0 }),
            }
        };

        let mut loads = 0u32;
        let mut stores = 0u32;
        // (completion_col, dst_line, value) for in-flight producers, and
        // (completion_col, addr, func, value) for in-flight stores.
        let mut in_flight: Vec<(u32, u16, u32)> = Vec::new();
        let mut pending_stores: Vec<(u32, u32, StoreFunc, u32)> = Vec::new();

        for col in 0..config.cols_used() {
            // Ops starting at this column capture operands and compute.
            for op in config.ops().iter().filter(|o| o.col == col) {
                match op.kind {
                    OpKind::Alu(func) => {
                        let a = read(&ctx, op.a)?;
                        let b = read(&ctx, op.b)?;
                        let v = func.eval(a, b);
                        if let Some(dst) = op.dst {
                            in_flight.push((op.end_col(), dst.0, v));
                        }
                    }
                    OpKind::Mul(func) => {
                        let a = read(&ctx, op.a)?;
                        let b = read(&ctx, op.b)?;
                        let v = func.eval(a, b);
                        if let Some(dst) = op.dst {
                            in_flight.push((op.end_col(), dst.0, v));
                        }
                    }
                    OpKind::Load { func, offset: moff } => {
                        let base = read(&ctx, op.a)?;
                        let addr = base.wrapping_add(moff as u32);
                        let v = mem.load(addr, func)?;
                        loads += 1;
                        if let Some(dst) = op.dst {
                            in_flight.push((op.end_col(), dst.0, v));
                        }
                    }
                    OpKind::Store { func, offset: moff } => {
                        let base = read(&ctx, op.a)?;
                        let addr = base.wrapping_add(moff as u32);
                        let v = read(&ctx, op.b)?;
                        pending_stores.push((op.end_col(), addr, func, v));
                    }
                }
            }
            // Completions at the end of this column become visible.
            for &(end, line, v) in in_flight.iter().filter(|(end, _, _)| *end == col) {
                debug_assert_eq!(end, col);
                ctx[line as usize] = Some(v);
            }
            in_flight.retain(|(end, _, _)| *end != col);
            for &(_, addr, func, v) in pending_stores.iter().filter(|(end, _, _, _)| *end == col) {
                mem.store(addr, func, v)?;
                stores += 1;
            }
            pending_stores.retain(|(end, _, _, _)| *end != col);
        }

        let outputs = config
            .outputs()
            .iter()
            .map(|l| ctx[l.0 as usize].ok_or(ExecError::UndefinedValue { line: l.0 }))
            .collect::<Result<Vec<_>, _>>()?;

        let mut active_cells: Vec<(u32, u32)> = config
            .ops()
            .iter()
            .flat_map(|o| o.cells())
            .map(|(r, c)| offset.apply(self.fabric, r, c))
            .collect();
        active_cells.sort_unstable();

        Ok(ExecOutcome {
            outputs,
            cycles: self.fabric.exec_cycles(config.cols_used()),
            active_cells,
            loads,
            stores,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluFunc, CtxLine, PlacedOp};

    fn fabric() -> Fabric {
        Fabric::be()
    }

    /// out = (in0 + 5) ^ in1
    fn sample_config(f: &Fabric) -> Configuration {
        Configuration::new(
            f,
            vec![
                PlacedOp {
                    row: 0,
                    col: 0,
                    span: 1,
                    kind: OpKind::Alu(AluFunc::Add),
                    a: Operand::Ctx(CtxLine(0)),
                    b: Operand::Imm(5),
                    dst: Some(CtxLine(2)),
                },
                PlacedOp {
                    row: 0,
                    col: 1,
                    span: 1,
                    kind: OpKind::Alu(AluFunc::Xor),
                    a: Operand::Ctx(CtxLine(2)),
                    b: Operand::Ctx(CtxLine(1)),
                    dst: Some(CtxLine(3)),
                },
            ],
            vec![CtxLine(0), CtxLine(1)],
            vec![CtxLine(3)],
        )
        .unwrap()
    }

    #[test]
    fn dataflow_chain() {
        let f = fabric();
        let cfg = sample_config(&f);
        let mut mem = ArrayMem::new(64);
        let out = Executor::new(&f).execute(&cfg, Offset::ORIGIN, &[10, 0xff], &mut mem).unwrap();
        assert_eq!(out.outputs, vec![(10 + 5) ^ 0xff]);
        assert_eq!(out.cycles, 1, "2 columns at 2 cols/cycle");
        assert_eq!(out.active_cells, vec![(0, 0), (0, 1)]);
    }

    #[test]
    fn offset_changes_cells_not_values() {
        let f = fabric();
        let cfg = sample_config(&f);
        let base = Executor::new(&f)
            .execute(&cfg, Offset::ORIGIN, &[7, 9], &mut ArrayMem::new(64))
            .unwrap();
        let moved = Executor::new(&f)
            .execute(&cfg, Offset::new(1, 15), &[7, 9], &mut ArrayMem::new(64))
            .unwrap();
        assert_eq!(base.outputs, moved.outputs);
        assert_eq!(moved.active_cells, vec![(1, 0), (1, 15)], "wrap-around");
        assert_ne!(base.active_cells, moved.active_cells);
    }

    #[test]
    fn load_store_round_trip() {
        let f = fabric();
        // mem[in1 + 8] = load(in0) + 1
        let cfg = Configuration::new(
            &f,
            vec![
                PlacedOp {
                    row: 0,
                    col: 0,
                    span: 4,
                    kind: OpKind::Load { func: LoadFunc::W, offset: 0 },
                    a: Operand::Ctx(CtxLine(0)),
                    b: Operand::Imm(0),
                    dst: Some(CtxLine(2)),
                },
                PlacedOp {
                    row: 0,
                    col: 4,
                    span: 1,
                    kind: OpKind::Alu(AluFunc::Add),
                    a: Operand::Ctx(CtxLine(2)),
                    b: Operand::Imm(1),
                    dst: Some(CtxLine(3)),
                },
                PlacedOp {
                    row: 0,
                    col: 5,
                    span: 4,
                    kind: OpKind::Store { func: StoreFunc::W, offset: 8 },
                    a: Operand::Ctx(CtxLine(1)),
                    b: Operand::Ctx(CtxLine(3)),
                    dst: None,
                },
            ],
            vec![CtxLine(0), CtxLine(1)],
            vec![CtxLine(3)],
        )
        .unwrap();
        let mut mem = ArrayMem::new(64);
        mem.store(0, StoreFunc::W, 41).unwrap();
        let out = Executor::new(&f).execute(&cfg, Offset::ORIGIN, &[0, 8], &mut mem).unwrap();
        assert_eq!(out.outputs, vec![42]);
        assert_eq!(out.loads, 1);
        assert_eq!(out.stores, 1);
        assert_eq!(mem.load(16, LoadFunc::W).unwrap(), 42);
        assert_eq!(out.cycles, 5, "9 columns -> ceil(9/2)");
    }

    #[test]
    fn store_to_load_ordering() {
        let f = Fabric::new(2, 16);
        // store(in0) = in1; then load(in0) -> out. Load starts after the
        // store's completion column, per the DBT serialization rule.
        let cfg = Configuration::new(
            &f,
            vec![
                PlacedOp {
                    row: 0,
                    col: 0,
                    span: 4,
                    kind: OpKind::Store { func: StoreFunc::W, offset: 0 },
                    a: Operand::Ctx(CtxLine(0)),
                    b: Operand::Ctx(CtxLine(1)),
                    dst: None,
                },
                PlacedOp {
                    row: 0,
                    col: 4,
                    span: 4,
                    kind: OpKind::Load { func: LoadFunc::W, offset: 0 },
                    a: Operand::Ctx(CtxLine(0)),
                    b: Operand::Imm(0),
                    dst: Some(CtxLine(2)),
                },
            ],
            vec![CtxLine(0), CtxLine(1)],
            vec![CtxLine(2)],
        )
        .unwrap();
        let mut mem = ArrayMem::new(64);
        let out = Executor::new(&f).execute(&cfg, Offset::ORIGIN, &[4, 0xdead], &mut mem).unwrap();
        assert_eq!(out.outputs, vec![0xdead], "load observes earlier store");
    }

    #[test]
    fn input_count_checked() {
        let f = fabric();
        let cfg = sample_config(&f);
        let e = Executor::new(&f)
            .execute(&cfg, Offset::ORIGIN, &[1], &mut ArrayMem::new(8))
            .unwrap_err();
        assert_eq!(e, ExecError::InputCountMismatch { expected: 2, got: 1 });
    }

    #[test]
    fn offset_range_checked() {
        let f = fabric();
        let cfg = sample_config(&f);
        let e = Executor::new(&f)
            .execute(&cfg, Offset::new(5, 0), &[1, 2], &mut ArrayMem::new(8))
            .unwrap_err();
        assert!(matches!(e, ExecError::OffsetOutOfRange { .. }));
    }

    #[test]
    fn mem_fault_propagates() {
        let f = fabric();
        let cfg = Configuration::new(
            &f,
            vec![PlacedOp {
                row: 0,
                col: 0,
                span: 4,
                kind: OpKind::Load { func: LoadFunc::W, offset: 0 },
                a: Operand::Ctx(CtxLine(0)),
                b: Operand::Imm(0),
                dst: Some(CtxLine(1)),
            }],
            vec![CtxLine(0)],
            vec![CtxLine(1)],
        )
        .unwrap();
        let e = Executor::new(&f)
            .execute(&cfg, Offset::ORIGIN, &[1 << 20], &mut ArrayMem::new(8))
            .unwrap_err();
        assert_eq!(e, ExecError::Mem(MemFault { addr: 1 << 20 }));
    }

    #[test]
    fn byte_and_half_memory_ops() {
        let mut mem = ArrayMem::new(16);
        mem.store(3, StoreFunc::B, 0x80).unwrap();
        assert_eq!(mem.load(3, LoadFunc::B).unwrap(), 0xffff_ff80);
        assert_eq!(mem.load(3, LoadFunc::Bu).unwrap(), 0x80);
        mem.store(4, StoreFunc::H, 0xbeef).unwrap();
        assert_eq!(mem.load(4, LoadFunc::Hu).unwrap(), 0xbeef);
        assert_eq!(mem.load(4, LoadFunc::H).unwrap(), 0xffff_beef);
    }
}
