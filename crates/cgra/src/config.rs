//! Virtual configurations (paper Fig. 3a) and their legality rules.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::fabric::Fabric;
use crate::op::{CtxLine, OpKind, Operand, PlacedOp};

/// A pivot offset: where a virtual configuration is anchored in the physical
/// fabric (paper Fig. 3b/c). Coordinates wrap around the fabric edges.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Offset {
    /// Row displacement (0 ≤ `row` < fabric rows).
    pub row: u32,
    /// Column displacement (0 ≤ `col` < fabric cols).
    pub col: u32,
}

impl Offset {
    /// The baseline anchor: top-left corner, no movement.
    pub const ORIGIN: Offset = Offset { row: 0, col: 0 };

    /// Creates an offset.
    pub fn new(row: u32, col: u32) -> Offset {
        Offset { row, col }
    }

    /// Maps a virtual cell to its physical cell with wrap-around.
    pub fn apply(&self, fabric: &Fabric, row: u32, col: u32) -> (u32, u32) {
        ((row + self.row) % fabric.rows, (col + self.col) % fabric.cols)
    }

    /// `true` if the offset addresses a valid fabric position.
    pub fn in_range(&self, fabric: &Fabric) -> bool {
        self.row < fabric.rows && self.col < fabric.cols
    }
}

impl fmt::Display for Offset {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(r{}, c{})", self.row, self.col)
    }
}

/// Why a set of placed operations is not a legal configuration.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// A configuration must contain at least one operation.
    Empty,
    /// Operation exceeds fabric bounds.
    OutOfBounds {
        /// Index into the op list.
        index: usize,
    },
    /// Operation span differs from the fabric latency of its class.
    WrongSpan {
        /// Index into the op list.
        index: usize,
        /// Required span for the op class.
        expected: u32,
        /// Actual span.
        got: u32,
    },
    /// Two operations occupy the same FU cell.
    Overlap {
        /// First op index.
        a: usize,
        /// Second op index.
        b: usize,
    },
    /// A context-line index exceeds the fabric's line count.
    LineOutOfRange {
        /// Offending line.
        line: CtxLine,
    },
    /// An operand reads a line no input or completed producer has defined.
    UndefinedRead {
        /// Index into the op list.
        index: usize,
        /// The undefined line.
        line: CtxLine,
    },
    /// Two producers write the same line in the same column.
    WriteConflict {
        /// First op index.
        a: usize,
        /// Second op index.
        b: usize,
        /// The doubly-written line.
        line: CtxLine,
    },
    /// More concurrent loads (stores) than data-cache read (write) ports.
    PortConflict {
        /// Column where the port is oversubscribed.
        col: u32,
        /// `true` for the read port, `false` for the write port.
        read: bool,
    },
    /// An op uses two *different* immediates, but the FU configuration word
    /// holds a single immediate field.
    TwoImmediates {
        /// Index into the op list.
        index: usize,
    },
    /// A memory op's address base (or a store's data) must come from a
    /// context line, not an immediate.
    MemOperandImm {
        /// Index into the op list.
        index: usize,
    },
    /// Input bindings must target distinct lines.
    DuplicateInput {
        /// The duplicated line.
        line: CtxLine,
    },
    /// More inputs than context lines.
    TooManyInputs {
        /// Number of requested input bindings.
        requested: usize,
        /// Available context lines.
        available: u16,
    },
    /// An output reads a line that nothing defines.
    UndefinedOutput {
        /// The undefined line.
        line: CtxLine,
    },
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::Empty => write!(f, "configuration has no operations"),
            ConfigError::OutOfBounds { index } => {
                write!(f, "op #{index} exceeds fabric bounds")
            }
            ConfigError::WrongSpan { index, expected, got } => {
                write!(f, "op #{index} spans {got} column(s), class requires {expected}")
            }
            ConfigError::Overlap { a, b } => write!(f, "ops #{a} and #{b} overlap"),
            ConfigError::LineOutOfRange { line } => {
                write!(f, "context line {line} out of range")
            }
            ConfigError::UndefinedRead { index, line } => {
                write!(f, "op #{index} reads undefined line {line}")
            }
            ConfigError::WriteConflict { a, b, line } => {
                write!(f, "ops #{a} and #{b} both write {line} in the same column")
            }
            ConfigError::PortConflict { col, read } => {
                let port = if *read { "read" } else { "write" };
                write!(f, "data-cache {port} port oversubscribed at column {col}")
            }
            ConfigError::TwoImmediates { index } => {
                write!(f, "op #{index} uses two different immediates")
            }
            ConfigError::MemOperandImm { index } => {
                write!(f, "memory op #{index} needs context-line operands")
            }
            ConfigError::DuplicateInput { line } => {
                write!(f, "duplicate input binding for line {line}")
            }
            ConfigError::TooManyInputs { requested, available } => {
                write!(f, "{requested} inputs requested, {available} context lines available")
            }
            ConfigError::UndefinedOutput { line } => {
                write!(f, "output reads line {line} that nothing defines")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

/// A validated virtual configuration: operations placed on a corner-anchored
/// grid plus the input/output context bindings.
///
/// Instances can only be built through [`Configuration::new`], which enforces
/// every structural legality rule of the fabric (bounds, spans, overlaps,
/// dataflow definedness, memory-port budgets, immediate-field sharing).
///
/// # Examples
///
/// ```
/// use cgra::{Configuration, Fabric};
/// use cgra::op::{AluFunc, CtxLine, OpKind, Operand, PlacedOp};
///
/// let fabric = Fabric::be();
/// // a0' = a0 + 1 (one ALU op at the top-left cell)
/// let cfg = Configuration::new(
///     &fabric,
///     vec![PlacedOp {
///         row: 0, col: 0, span: 1,
///         kind: OpKind::Alu(AluFunc::Add),
///         a: Operand::Ctx(CtxLine(0)),
///         b: Operand::Imm(1),
///         dst: Some(CtxLine(1)),
///     }],
///     vec![CtxLine(0)],
///     vec![CtxLine(1)],
/// )?;
/// assert_eq!(cfg.cols_used(), 1);
/// # Ok::<(), cgra::ConfigError>(())
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Configuration {
    rows_used: u32,
    cols_used: u32,
    ops: Vec<PlacedOp>,
    inputs: Vec<CtxLine>,
    outputs: Vec<CtxLine>,
}

impl Configuration {
    /// Validates and constructs a configuration.
    ///
    /// Operations are normalized (sorted by `(col, row)`; loads get a
    /// canonical unused `b` operand, stores a canonical `None` destination).
    ///
    /// # Errors
    ///
    /// Returns the first [`ConfigError`] found; see the error type for the
    /// full rule list.
    pub fn new(
        fabric: &Fabric,
        mut ops: Vec<PlacedOp>,
        inputs: Vec<CtxLine>,
        outputs: Vec<CtxLine>,
    ) -> Result<Configuration, ConfigError> {
        if ops.is_empty() {
            return Err(ConfigError::Empty);
        }
        if inputs.len() > fabric.ctx_lines as usize {
            return Err(ConfigError::TooManyInputs {
                requested: inputs.len(),
                available: fabric.ctx_lines,
            });
        }
        // Normalize ops.
        for op in &mut ops {
            match op.kind {
                OpKind::Load { .. } => {
                    op.b = Operand::Imm(0);
                }
                OpKind::Store { .. } => {
                    op.dst = None;
                }
                _ => {}
            }
        }
        ops.sort_by_key(|o| (o.col, o.row));

        let line_ok = |l: CtxLine| l.0 < fabric.ctx_lines;
        for &l in inputs.iter().chain(outputs.iter()) {
            if !line_ok(l) {
                return Err(ConfigError::LineOutOfRange { line: l });
            }
        }
        let mut seen = vec![false; fabric.ctx_lines as usize];
        for &l in &inputs {
            if std::mem::replace(&mut seen[l.0 as usize], true) {
                return Err(ConfigError::DuplicateInput { line: l });
            }
        }

        // Per-op structural checks.
        for (i, op) in ops.iter().enumerate() {
            let expected = fabric.latency(op.kind);
            if op.span != expected {
                return Err(ConfigError::WrongSpan { index: i, expected, got: op.span });
            }
            if op.row >= fabric.rows || op.col >= fabric.cols || op.col + op.span > fabric.cols {
                return Err(ConfigError::OutOfBounds { index: i });
            }
            for operand in [op.a, op.b] {
                if let Operand::Ctx(l) = operand {
                    if !line_ok(l) {
                        return Err(ConfigError::LineOutOfRange { line: l });
                    }
                }
            }
            if let Some(d) = op.dst {
                if !line_ok(d) {
                    return Err(ConfigError::LineOutOfRange { line: d });
                }
            }
            match op.kind {
                OpKind::Load { .. } => {
                    if matches!(op.a, Operand::Imm(_)) {
                        return Err(ConfigError::MemOperandImm { index: i });
                    }
                }
                OpKind::Store { .. }
                    if (matches!(op.a, Operand::Imm(_)) || matches!(op.b, Operand::Imm(_))) =>
                {
                    return Err(ConfigError::MemOperandImm { index: i });
                }
                _ => {}
            }
            if let (Operand::Imm(x), Operand::Imm(y)) = (op.a, op.b) {
                if x != y {
                    return Err(ConfigError::TwoImmediates { index: i });
                }
            }
            // An op whose kind carries an offset also uses the immediate
            // field; a ctx-ctx ALU op never does, so no extra check there.
        }

        // Cell-overlap check.
        let mut cell_owner: Vec<Option<usize>> = vec![None; (fabric.rows * fabric.cols) as usize];
        for (i, op) in ops.iter().enumerate() {
            for (r, c) in op.cells() {
                let idx = (r * fabric.cols + c) as usize;
                if let Some(prev) = cell_owner[idx] {
                    return Err(ConfigError::Overlap { a: prev, b: i });
                }
                cell_owner[idx] = Some(i);
            }
        }

        // Memory-port budget: each port is pipelined and accepts one issue
        // per processor cycle (`cols_per_cycle` columns), so at most `ports`
        // ops of a direction may *start* within any issue window.
        let cols_used = ops.iter().map(|o| o.col + o.span).max().unwrap_or(0);
        let window = fabric.cols_per_cycle.max(1);
        for col in 0..cols_used {
            let starts_in_window = |mem_load: bool| {
                ops.iter()
                    .filter(|o| match o.kind {
                        OpKind::Load { .. } => mem_load,
                        OpKind::Store { .. } => !mem_load,
                        _ => false,
                    })
                    .filter(|o| o.col >= col && o.col < col + window)
                    .count() as u32
            };
            if starts_in_window(true) > fabric.mem_read_ports {
                return Err(ConfigError::PortConflict { col, read: true });
            }
            if starts_in_window(false) > fabric.mem_write_ports {
                return Err(ConfigError::PortConflict { col, read: false });
            }
        }

        // Dataflow: defined-before-use sweep, and same-column write conflicts.
        let mut defined = vec![false; fabric.ctx_lines as usize];
        for &l in &inputs {
            defined[l.0 as usize] = true;
        }
        for col in 0..cols_used {
            for (i, op) in ops.iter().enumerate() {
                if op.col != col {
                    continue;
                }
                for operand in [op.a, op.b] {
                    // Loads' b operand is normalized to Imm and ignored.
                    if let Operand::Ctx(l) = operand {
                        let uses_b = !matches!(op.kind, OpKind::Load { .. });
                        if (operand == op.a || uses_b) && !defined[l.0 as usize] {
                            return Err(ConfigError::UndefinedRead { index: i, line: l });
                        }
                    }
                }
            }
            let mut writer: Vec<Option<usize>> = vec![None; fabric.ctx_lines as usize];
            for (i, op) in ops.iter().enumerate() {
                if op.end_col() != col {
                    continue;
                }
                if let Some(d) = op.dst {
                    if let Some(prev) = writer[d.0 as usize] {
                        return Err(ConfigError::WriteConflict { a: prev, b: i, line: d });
                    }
                    writer[d.0 as usize] = Some(i);
                    defined[d.0 as usize] = true;
                }
            }
        }
        for &l in &outputs {
            if !defined[l.0 as usize] {
                return Err(ConfigError::UndefinedOutput { line: l });
            }
        }

        let rows_used = ops.iter().map(|o| o.row + 1).max().unwrap_or(0);
        Ok(Configuration { rows_used, cols_used, ops, inputs, outputs })
    }

    /// Rows of the bounding box (≥ 1).
    pub fn rows_used(&self) -> u32 {
        self.rows_used
    }

    /// Columns of the bounding box (≥ 1); this is the configuration's depth.
    pub fn cols_used(&self) -> u32 {
        self.cols_used
    }

    /// The placed operations, sorted by `(col, row)`.
    pub fn ops(&self) -> &[PlacedOp] {
        &self.ops
    }

    /// Input bindings: the i-th input value is deposited on `inputs()[i]`.
    pub fn inputs(&self) -> &[CtxLine] {
        &self.inputs
    }

    /// Output bindings: the i-th output is read from `outputs()[i]`.
    pub fn outputs(&self) -> &[CtxLine] {
        &self.outputs
    }

    /// Number of operations.
    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// All virtual FU cells occupied by operations.
    pub fn cells(&self) -> impl Iterator<Item = (u32, u32)> + '_ {
        self.ops.iter().flat_map(|o| o.cells())
    }

    /// The anchor-capability demands of this configuration: each virtual
    /// anchor cell that must land on a mem- or mul-capable FU, with the op
    /// kind it anchors (DESIGN.md §14). ALU anchors are omitted — every
    /// cell class executes ALU ops, so they constrain nothing.
    pub fn demands(&self) -> impl Iterator<Item = (u32, u32, OpKind)> + '_ {
        self.ops
            .iter()
            .filter(|o| !matches!(o.kind, OpKind::Alu(_)))
            .map(|o| (o.row, o.col, o.kind))
    }

    /// Number of occupied FU cells (`Σ span` over ops).
    pub fn cell_count(&self) -> u32 {
        self.ops.iter().map(|o| o.span).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluFunc, LoadFunc, StoreFunc};

    fn alu(row: u32, col: u32, a: Operand, b: Operand, dst: u16) -> PlacedOp {
        PlacedOp {
            row,
            col,
            span: 1,
            kind: OpKind::Alu(AluFunc::Add),
            a,
            b,
            dst: Some(CtxLine(dst)),
        }
    }

    #[test]
    fn minimal_config_is_valid() {
        let f = Fabric::be();
        let cfg = Configuration::new(
            &f,
            vec![alu(0, 0, Operand::Ctx(CtxLine(0)), Operand::Imm(1), 1)],
            vec![CtxLine(0)],
            vec![CtxLine(1)],
        )
        .unwrap();
        assert_eq!(cfg.rows_used(), 1);
        assert_eq!(cfg.cols_used(), 1);
        assert_eq!(cfg.cell_count(), 1);
    }

    #[test]
    fn empty_rejected() {
        let f = Fabric::be();
        assert_eq!(Configuration::new(&f, vec![], vec![], vec![]), Err(ConfigError::Empty));
    }

    #[test]
    fn out_of_bounds_rejected() {
        let f = Fabric::be();
        let e = Configuration::new(
            &f,
            vec![alu(2, 0, Operand::Imm(0), Operand::Imm(0), 1)],
            vec![],
            vec![],
        )
        .unwrap_err();
        assert_eq!(e, ConfigError::OutOfBounds { index: 0 });
    }

    #[test]
    fn wrong_span_rejected() {
        let f = Fabric::be();
        let mut op = alu(0, 0, Operand::Imm(0), Operand::Imm(0), 1);
        op.span = 2;
        let e = Configuration::new(&f, vec![op], vec![], vec![]).unwrap_err();
        assert_eq!(e, ConfigError::WrongSpan { index: 0, expected: 1, got: 2 });
    }

    #[test]
    fn overlap_rejected() {
        let f = Fabric::be();
        let a = alu(0, 0, Operand::Imm(0), Operand::Imm(0), 1);
        let b = alu(0, 0, Operand::Imm(0), Operand::Imm(0), 2);
        let e = Configuration::new(&f, vec![a, b], vec![], vec![]).unwrap_err();
        assert!(matches!(e, ConfigError::Overlap { .. }));
    }

    #[test]
    fn undefined_read_rejected() {
        let f = Fabric::be();
        let op = alu(0, 0, Operand::Ctx(CtxLine(3)), Operand::Imm(0), 1);
        let e = Configuration::new(&f, vec![op], vec![], vec![]).unwrap_err();
        assert_eq!(e, ConfigError::UndefinedRead { index: 0, line: CtxLine(3) });
    }

    #[test]
    fn chained_dataflow_ok_but_reversed_rejected() {
        let f = Fabric::be();
        let producer = alu(0, 0, Operand::Ctx(CtxLine(0)), Operand::Imm(1), 1);
        let consumer = alu(0, 1, Operand::Ctx(CtxLine(1)), Operand::Imm(2), 2);
        Configuration::new(&f, vec![producer, consumer], vec![CtxLine(0)], vec![CtxLine(2)])
            .unwrap();
        // Consumer *before* the producer completes.
        let eager = alu(1, 0, Operand::Ctx(CtxLine(1)), Operand::Imm(2), 2);
        let e =
            Configuration::new(&f, vec![producer, eager], vec![CtxLine(0)], vec![]).unwrap_err();
        assert!(matches!(e, ConfigError::UndefinedRead { .. }));
    }

    #[test]
    fn same_column_write_conflict_rejected() {
        let f = Fabric::be();
        let a = alu(0, 0, Operand::Imm(1), Operand::Imm(1), 5);
        let b = alu(1, 0, Operand::Imm(2), Operand::Imm(2), 5);
        let e = Configuration::new(&f, vec![a, b], vec![], vec![]).unwrap_err();
        assert!(matches!(e, ConfigError::WriteConflict { line: CtxLine(5), .. }));
    }

    #[test]
    fn read_port_budget() {
        let f = Fabric::be();
        let mk_load = |row: u32, col: u32| PlacedOp {
            row,
            col,
            span: 4,
            kind: OpKind::Load { func: LoadFunc::W, offset: 0 },
            a: Operand::Ctx(CtxLine(0)),
            b: Operand::Imm(0),
            dst: Some(CtxLine(row as u16 + 1)),
        };
        // Two loads issuing in the same cycle (columns 0 and 1): the single
        // pipelined read port accepts one issue per cycle -> reject.
        let e =
            Configuration::new(&f, vec![mk_load(0, 0), mk_load(1, 1)], vec![CtxLine(0)], vec![])
                .unwrap_err();
        assert!(matches!(e, ConfigError::PortConflict { read: true, .. }));
        // One issue per cycle (columns 0 and 2) pipelines fine.
        Configuration::new(&f, vec![mk_load(0, 0), mk_load(1, 2)], vec![CtxLine(0)], vec![])
            .unwrap();
    }

    #[test]
    fn load_store_may_overlap_ports() {
        let f = Fabric::be();
        let load = PlacedOp {
            row: 0,
            col: 0,
            span: 4,
            kind: OpKind::Load { func: LoadFunc::W, offset: 0 },
            a: Operand::Ctx(CtxLine(0)),
            b: Operand::Imm(0),
            dst: Some(CtxLine(1)),
        };
        let store = PlacedOp {
            row: 1,
            col: 0,
            span: 4,
            kind: OpKind::Store { func: StoreFunc::W, offset: 4 },
            a: Operand::Ctx(CtxLine(0)),
            b: Operand::Ctx(CtxLine(0)),
            dst: None,
        };
        // Different ports: legal.
        Configuration::new(&f, vec![load, store], vec![CtxLine(0)], vec![]).unwrap();
    }

    #[test]
    fn two_distinct_immediates_rejected() {
        let f = Fabric::be();
        let op = alu(0, 0, Operand::Imm(1), Operand::Imm(2), 1);
        let e = Configuration::new(&f, vec![op], vec![], vec![]).unwrap_err();
        assert_eq!(e, ConfigError::TwoImmediates { index: 0 });
        // Equal immediates share the field: legal (used for constant gen).
        let op = PlacedOp {
            kind: OpKind::Alu(AluFunc::Or),
            ..alu(0, 0, Operand::Imm(7), Operand::Imm(7), 1)
        };
        Configuration::new(&f, vec![op], vec![], vec![]).unwrap();
    }

    #[test]
    fn mem_base_must_be_line() {
        let f = Fabric::be();
        let bad = PlacedOp {
            row: 0,
            col: 0,
            span: 4,
            kind: OpKind::Load { func: LoadFunc::W, offset: 0 },
            a: Operand::Imm(0x1000),
            b: Operand::Imm(0),
            dst: Some(CtxLine(1)),
        };
        let e = Configuration::new(&f, vec![bad], vec![], vec![]).unwrap_err();
        assert_eq!(e, ConfigError::MemOperandImm { index: 0 });
    }

    #[test]
    fn duplicate_inputs_rejected() {
        let f = Fabric::be();
        let op = alu(0, 0, Operand::Ctx(CtxLine(0)), Operand::Imm(0), 1);
        let e = Configuration::new(&f, vec![op], vec![CtxLine(0), CtxLine(0)], vec![]).unwrap_err();
        assert_eq!(e, ConfigError::DuplicateInput { line: CtxLine(0) });
    }

    #[test]
    fn undefined_output_rejected() {
        let f = Fabric::be();
        let op = alu(0, 0, Operand::Imm(0), Operand::Imm(0), 1);
        let e = Configuration::new(&f, vec![op], vec![], vec![CtxLine(9)]).unwrap_err();
        assert_eq!(e, ConfigError::UndefinedOutput { line: CtxLine(9) });
    }

    #[test]
    fn offset_math_wraps() {
        let f = Fabric::be(); // 2 x 16
        let o = Offset::new(1, 15);
        assert_eq!(o.apply(&f, 1, 1), (0, 0));
        assert_eq!(o.apply(&f, 0, 0), (1, 15));
        assert!(o.in_range(&f));
        assert!(!Offset::new(2, 0).in_range(&f));
    }
}
