//! Fabric geometry and technology parameters.

use serde::{Deserialize, Serialize};

use crate::op::OpKind;

/// Latency of each operation class in *columns* (half processor cycles).
///
/// The paper's technology point: an ALU takes half a processor cycle (one
/// column); loads and stores are constrained by the data cache and take two
/// processor cycles (four columns). We give the combinational multiplier the
/// same four-column span (assumption documented in DESIGN.md §4.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatencies {
    /// Columns for an ALU operation (paper: 1).
    pub alu: u32,
    /// Columns for a multiply (assumption: 4 = two processor cycles).
    pub mul: u32,
    /// Columns for a load or store (paper: 4 = two processor cycles).
    pub mem: u32,
}

impl Default for OpLatencies {
    fn default() -> OpLatencies {
        OpLatencies { alu: 1, mul: 4, mem: 4 }
    }
}

/// A rectangular TransRec-style CGRA fabric (paper Fig. 4).
///
/// Data propagates strictly left to right over `ctx_lines` context lines;
/// each of the `rows × cols` cells hosts one FU time-slot. The fabric is
/// also the carrier for the technology parameters the executor, the
/// reconfiguration unit and the area model need.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// let be = Fabric::be();            // paper's "best energy" design point
/// assert_eq!((be.rows, be.cols), (2, 16));
/// assert_eq!(be.fu_count(), 32);
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fabric {
    /// Number of rows `W` (parallel execution).
    pub rows: u32,
    /// Number of columns `L` (sequential execution).
    pub cols: u32,
    /// Number of context lines (inter-column value buses).
    pub ctx_lines: u16,
    /// Number of reconfiguration bus lines `n` (paper Fig. 5: column `i`
    /// listens to line `i mod n`).
    pub cfg_lines: u32,
    /// Columns traversed per processor cycle (paper: 2 — ALUs take half a
    /// cycle).
    pub cols_per_cycle: u32,
    /// Operation latencies in columns.
    pub latencies: OpLatencies,
    /// Concurrent data-cache read ports (paper: one read).
    pub mem_read_ports: u32,
    /// Concurrent data-cache write ports (paper: one write).
    pub mem_write_ports: u32,
}

impl Fabric {
    /// Creates a fabric with `rows × cols` FUs and default technology
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero, or if the memory-op latency does
    /// not fit in `cols` (no memory operation could ever be placed).
    pub fn new(rows: u32, cols: u32) -> Fabric {
        assert!(rows > 0 && cols > 0, "fabric must have at least one FU");
        let f = Fabric {
            rows,
            cols,
            ctx_lines: 16,
            cfg_lines: 4,
            cols_per_cycle: 2,
            latencies: OpLatencies::default(),
            mem_read_ports: 1,
            mem_write_ports: 1,
        };
        assert!(
            f.latencies.mem <= cols,
            "fabric of {cols} column(s) cannot host a {}-column memory op",
            f.latencies.mem
        );
        f
    }

    /// The motivational 4×8 fabric of paper Fig. 1.
    pub fn fig1() -> Fabric {
        Fabric::new(4, 8)
    }

    /// Paper scenario **BE** (best energy): L16, W2.
    pub fn be() -> Fabric {
        Fabric::new(2, 16)
    }

    /// Paper scenario **BP** (best performance): L32, W4.
    pub fn bp() -> Fabric {
        Fabric::new(4, 32)
    }

    /// Paper scenario **BU** (best/lowest utilization): L32, W8.
    pub fn bu() -> Fabric {
        Fabric::new(8, 32)
    }

    /// Total number of FU cells.
    pub fn fu_count(&self) -> u32 {
        self.rows * self.cols
    }

    /// Latency in columns of an operation class.
    pub fn latency(&self, kind: OpKind) -> u32 {
        match kind {
            OpKind::Alu(_) => self.latencies.alu,
            OpKind::Mul(_) => self.latencies.mul,
            OpKind::Load { .. } | OpKind::Store { .. } => self.latencies.mem,
        }
    }

    /// Processor cycles to execute `cols_used` columns of configured fabric.
    pub fn exec_cycles(&self, cols_used: u32) -> u64 {
        (cols_used as u64).div_ceil(self.cols_per_cycle as u64)
    }

    /// Cycles the reconfiguration unit needs to stream `cols_used` columns
    /// of configuration over its `cfg_lines` bus lines (paper Fig. 5a).
    pub fn reconfig_cycles(&self, cols_used: u32) -> u64 {
        (cols_used as u64).div_ceil(self.cfg_lines as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluFunc, LoadFunc, MulFunc, StoreFunc};

    #[test]
    fn presets_match_paper() {
        assert_eq!((Fabric::fig1().rows, Fabric::fig1().cols), (4, 8));
        assert_eq!((Fabric::be().rows, Fabric::be().cols), (2, 16));
        assert_eq!((Fabric::bp().rows, Fabric::bp().cols), (4, 32));
        assert_eq!((Fabric::bu().rows, Fabric::bu().cols), (8, 32));
        assert_eq!(Fabric::bu().fu_count(), 256);
    }

    #[test]
    fn latencies() {
        let f = Fabric::be();
        assert_eq!(f.latency(OpKind::Alu(AluFunc::Add)), 1);
        assert_eq!(f.latency(OpKind::Mul(MulFunc::Mul)), 4);
        assert_eq!(f.latency(OpKind::Load { func: LoadFunc::W, offset: 0 }), 4);
        assert_eq!(f.latency(OpKind::Store { func: StoreFunc::B, offset: 0 }), 4);
    }

    #[test]
    fn cycle_math() {
        let f = Fabric::be();
        assert_eq!(f.exec_cycles(1), 1);
        assert_eq!(f.exec_cycles(2), 1);
        assert_eq!(f.exec_cycles(3), 2);
        assert_eq!(f.exec_cycles(16), 8);
        assert_eq!(f.reconfig_cycles(1), 1);
        assert_eq!(f.reconfig_cycles(4), 1);
        assert_eq!(f.reconfig_cycles(5), 2);
        assert_eq!(f.reconfig_cycles(16), 4);
    }

    #[test]
    #[should_panic(expected = "at least one FU")]
    fn zero_rows_rejected() {
        Fabric::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "memory op")]
    fn too_short_for_mem_rejected() {
        Fabric::new(2, 2);
    }
}
