//! Fabric geometry, heterogeneity and technology parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::op::OpKind;

/// Latency of each operation class in *columns* (half processor cycles).
///
/// The paper's technology point: an ALU takes half a processor cycle (one
/// column); loads and stores are constrained by the data cache and take two
/// processor cycles (four columns). We give the combinational multiplier the
/// same four-column span (assumption documented in DESIGN.md §4.2).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct OpLatencies {
    /// Columns for an ALU operation (paper: 1).
    pub alu: u32,
    /// Columns for a multiply (assumption: 4 = two processor cycles).
    pub mul: u32,
    /// Columns for a load or store (paper: 4 = two processor cycles).
    pub mem: u32,
}

impl Default for OpLatencies {
    fn default() -> OpLatencies {
        OpLatencies { alu: 1, mul: 4, mem: 4 }
    }
}

/// The functional-unit capability class of one fabric cell (DESIGN.md §14).
///
/// Every cell executes ALU operations; memory and multiplier capabilities
/// are per-class extras. Capability constrains only the *anchor* cell of an
/// operation — the continuation columns of a spanned op are pipeline
/// registers of the anchor FU and need no capability of their own.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum CellClass {
    /// Bare ALU cell: no memory port, no multiplier array.
    Alu,
    /// ALU plus a data-cache port (`alu+mem`).
    AluMem,
    /// ALU plus a multiplier array (`alu+mul`).
    AluMul,
    /// Fully equipped cell — the homogeneous paper fabric (`alu+mem+mul`).
    #[default]
    Full,
}

impl CellClass {
    /// `true` if a cell of this class can *anchor* an operation of `kind`.
    pub fn supports(&self, kind: OpKind) -> bool {
        match kind {
            OpKind::Alu(_) => true,
            OpKind::Mul(_) => matches!(self, CellClass::AluMul | CellClass::Full),
            OpKind::Load { .. } | OpKind::Store { .. } => {
                matches!(self, CellClass::AluMem | CellClass::Full)
            }
        }
    }

    /// The class's compact name (`alu`, `alu+mem`, `alu+mul`, `full`).
    pub fn name(&self) -> &'static str {
        match self {
            CellClass::Alu => "alu",
            CellClass::AluMem => "alu+mem",
            CellClass::AluMul => "alu+mul",
            CellClass::Full => "full",
        }
    }
}

/// A compact per-cell capability map: a pattern generator computing the
/// [`CellClass`] of any `(row, col)` on demand, so a heterogeneous fabric
/// stays `Copy` like the homogeneous one (DESIGN.md §14).
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassMap {
    /// Every cell has the same class; `Uniform(CellClass::Full)` is the
    /// paper's homogeneous fabric and the default.
    Uniform(CellClass),
    /// Checkerboard: cells with even `row + col` are [`CellClass::Full`],
    /// the rest bare ALUs.
    Checker,
    /// Row stripes: even rows are [`CellClass::Full`], odd rows bare ALUs.
    RowStripes,
    /// Column stripes: even columns are [`CellClass::Full`], odd columns
    /// bare ALUs.
    ColStripes,
}

impl Default for ClassMap {
    fn default() -> ClassMap {
        ClassMap::Uniform(CellClass::Full)
    }
}

impl ClassMap {
    /// The class of the cell at `(row, col)`.
    pub fn class_of(&self, row: u32, col: u32) -> CellClass {
        match self {
            ClassMap::Uniform(class) => *class,
            ClassMap::Checker => {
                if (row + col).is_multiple_of(2) {
                    CellClass::Full
                } else {
                    CellClass::Alu
                }
            }
            ClassMap::RowStripes => {
                if row.is_multiple_of(2) {
                    CellClass::Full
                } else {
                    CellClass::Alu
                }
            }
            ClassMap::ColStripes => {
                if col.is_multiple_of(2) {
                    CellClass::Full
                } else {
                    CellClass::Alu
                }
            }
        }
    }

    /// `true` if every cell offers the full capability set — the fast-path
    /// predicate policies use to skip capability checks entirely.
    pub fn is_fully_capable(&self) -> bool {
        matches!(self, ClassMap::Uniform(CellClass::Full))
    }
}

/// A [`Fabric`] invariant was violated (DESIGN.md §14): the typed form of
/// what used to be construction-time panics, surfaced through
/// `System::builder`'s `BuildError` so spec-driven sweeps can reject a bad
/// geometry without crashing.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum FabricError {
    /// `rows` or `cols` is zero.
    EmptyFabric,
    /// The memory-op latency exceeds the column count: no memory operation
    /// could ever be placed.
    MemLatencyTooLong {
        /// The fabric's column count.
        cols: u32,
        /// The memory-op latency in columns.
        mem: u32,
    },
}

impl fmt::Display for FabricError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FabricError::EmptyFabric => f.write_str("fabric must have at least one FU"),
            FabricError::MemLatencyTooLong { cols, mem } => {
                write!(f, "fabric of {cols} column(s) cannot host a {mem}-column memory op")
            }
        }
    }
}

impl std::error::Error for FabricError {}

/// A rectangular TransRec-style CGRA fabric (paper Fig. 4).
///
/// Data propagates strictly left to right over `ctx_lines` context lines;
/// each of the `rows × cols` cells hosts one FU time-slot. The fabric is
/// also the carrier for the technology parameters the executor, the
/// reconfiguration unit and the area model need, plus the per-cell
/// capability classes and the per-column interconnect bandwidth budget of a
/// heterogeneous design point (DESIGN.md §14).
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// let be = Fabric::be();            // paper's "best energy" design point
/// assert_eq!((be.rows, be.cols), (2, 16));
/// assert_eq!(be.fu_count(), 32);
/// assert!(be.is_uniform());         // presets stay homogeneous
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fabric {
    /// Number of rows `W` (parallel execution).
    pub rows: u32,
    /// Number of columns `L` (sequential execution).
    pub cols: u32,
    /// Number of context lines (inter-column value buses).
    pub ctx_lines: u16,
    /// Number of reconfiguration bus lines `n` (paper Fig. 5: column `i`
    /// listens to line `i mod n`).
    pub cfg_lines: u32,
    /// Columns traversed per processor cycle (paper: 2 — ALUs take half a
    /// cycle).
    pub cols_per_cycle: u32,
    /// Operation latencies in columns.
    pub latencies: OpLatencies,
    /// Concurrent data-cache read ports (paper: one read).
    pub mem_read_ports: u32,
    /// Concurrent data-cache write ports (paper: one write).
    pub mem_write_ports: u32,
    /// Per-cell FU capability classes (DESIGN.md §14). The default,
    /// `ClassMap::Uniform(CellClass::Full)`, is the paper's homogeneous
    /// fabric.
    pub classes: ClassMap,
    /// Interconnect bandwidth budget per column: how many active FUs a
    /// column's context lines feed at full speed. `0` means unlimited (the
    /// paper's idealized interconnect); on over-subscribed columns the
    /// surplus shows up as extra effective duty (DESIGN.md §14).
    pub col_bandwidth: u32,
}

impl Fabric {
    /// Creates a fabric with `rows × cols` FUs and default technology
    /// parameters.
    ///
    /// # Panics
    ///
    /// Panics if `rows` or `cols` is zero, or if the memory-op latency does
    /// not fit in `cols` (no memory operation could ever be placed). Use
    /// [`Fabric::try_new`] for the non-panicking form.
    pub fn new(rows: u32, cols: u32) -> Fabric {
        Fabric::try_new(rows, cols).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Creates a fabric with `rows × cols` FUs and default technology
    /// parameters, rejecting impossible geometries as a typed
    /// [`FabricError`] instead of panicking (DESIGN.md §14).
    ///
    /// # Errors
    ///
    /// [`FabricError::EmptyFabric`] if `rows` or `cols` is zero;
    /// [`FabricError::MemLatencyTooLong`] if the memory-op latency does not
    /// fit in `cols`.
    pub fn try_new(rows: u32, cols: u32) -> Result<Fabric, FabricError> {
        let f = Fabric {
            rows,
            cols,
            ctx_lines: 16,
            cfg_lines: 4,
            cols_per_cycle: 2,
            latencies: OpLatencies::default(),
            mem_read_ports: 1,
            mem_write_ports: 1,
            classes: ClassMap::default(),
            col_bandwidth: 0,
        };
        f.validate()?;
        Ok(f)
    }

    /// Checks the fabric invariants ([`Fabric::new`]'s former panics) on an
    /// already-built value — e.g. one assembled by hand or deserialized.
    ///
    /// # Errors
    ///
    /// The same [`FabricError`]s as [`Fabric::try_new`].
    pub fn validate(&self) -> Result<(), FabricError> {
        if self.rows == 0 || self.cols == 0 {
            return Err(FabricError::EmptyFabric);
        }
        if self.latencies.mem > self.cols {
            return Err(FabricError::MemLatencyTooLong {
                cols: self.cols,
                mem: self.latencies.mem,
            });
        }
        Ok(())
    }

    /// The homogeneous `rows × cols` fabric: every cell fully equipped,
    /// unlimited interconnect — exactly today's [`Fabric::new`], spelled out
    /// for call sites that contrast it with heterogeneous layouts.
    ///
    /// # Panics
    ///
    /// Same conditions as [`Fabric::new`].
    pub fn uniform(rows: u32, cols: u32) -> Fabric {
        Fabric::new(rows, cols)
    }

    /// The motivational 4×8 fabric of paper Fig. 1.
    pub fn fig1() -> Fabric {
        Fabric::new(4, 8)
    }

    /// Paper scenario **BE** (best energy): L16, W2.
    pub fn be() -> Fabric {
        Fabric::new(2, 16)
    }

    /// Paper scenario **BP** (best performance): L32, W4.
    pub fn bp() -> Fabric {
        Fabric::new(4, 32)
    }

    /// Paper scenario **BU** (best/lowest utilization): L32, W8.
    pub fn bu() -> Fabric {
        Fabric::new(8, 32)
    }

    /// Total number of FU cells.
    pub fn fu_count(&self) -> u32 {
        self.rows * self.cols
    }

    /// The capability class of the cell at `(row, col)` (DESIGN.md §14).
    pub fn class_of(&self, row: u32, col: u32) -> CellClass {
        self.classes.class_of(row, col)
    }

    /// `true` if the cell at `(row, col)` can *anchor* an operation of
    /// `kind` (DESIGN.md §14): continuation columns of a spanned op need no
    /// capability of their own.
    pub fn supports(&self, row: u32, col: u32, kind: OpKind) -> bool {
        self.class_of(row, col).supports(kind)
    }

    /// `true` if every cell offers the full capability set — the paper's
    /// homogeneous fabric, and the fast path that keeps allocation decision
    /// streams bit-identical to the pre-heterogeneity ones.
    pub fn is_uniform(&self) -> bool {
        self.classes.is_fully_capable()
    }

    /// Latency in columns of an operation class.
    pub fn latency(&self, kind: OpKind) -> u32 {
        match kind {
            OpKind::Alu(_) => self.latencies.alu,
            OpKind::Mul(_) => self.latencies.mul,
            OpKind::Load { .. } | OpKind::Store { .. } => self.latencies.mem,
        }
    }

    /// Processor cycles to execute `cols_used` columns of configured fabric.
    pub fn exec_cycles(&self, cols_used: u32) -> u64 {
        (cols_used as u64).div_ceil(self.cols_per_cycle as u64)
    }

    /// Cycles the reconfiguration unit needs to stream `cols_used` columns
    /// of configuration over its `cfg_lines` bus lines (paper Fig. 5a).
    pub fn reconfig_cycles(&self, cols_used: u32) -> u64 {
        (cols_used as u64).div_ceil(self.cfg_lines as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{AluFunc, LoadFunc, MulFunc, StoreFunc};

    #[test]
    fn presets_match_paper() {
        assert_eq!((Fabric::fig1().rows, Fabric::fig1().cols), (4, 8));
        assert_eq!((Fabric::be().rows, Fabric::be().cols), (2, 16));
        assert_eq!((Fabric::bp().rows, Fabric::bp().cols), (4, 32));
        assert_eq!((Fabric::bu().rows, Fabric::bu().cols), (8, 32));
        assert_eq!(Fabric::bu().fu_count(), 256);
    }

    #[test]
    fn latencies() {
        let f = Fabric::be();
        assert_eq!(f.latency(OpKind::Alu(AluFunc::Add)), 1);
        assert_eq!(f.latency(OpKind::Mul(MulFunc::Mul)), 4);
        assert_eq!(f.latency(OpKind::Load { func: LoadFunc::W, offset: 0 }), 4);
        assert_eq!(f.latency(OpKind::Store { func: StoreFunc::B, offset: 0 }), 4);
    }

    #[test]
    fn cycle_math() {
        let f = Fabric::be();
        assert_eq!(f.exec_cycles(1), 1);
        assert_eq!(f.exec_cycles(2), 1);
        assert_eq!(f.exec_cycles(3), 2);
        assert_eq!(f.exec_cycles(16), 8);
        assert_eq!(f.reconfig_cycles(1), 1);
        assert_eq!(f.reconfig_cycles(4), 1);
        assert_eq!(f.reconfig_cycles(5), 2);
        assert_eq!(f.reconfig_cycles(16), 4);
    }

    #[test]
    #[should_panic(expected = "at least one FU")]
    fn zero_rows_rejected() {
        Fabric::new(0, 8);
    }

    #[test]
    #[should_panic(expected = "memory op")]
    fn too_short_for_mem_rejected() {
        Fabric::new(2, 2);
    }

    #[test]
    fn try_new_types_the_former_panics() {
        assert_eq!(Fabric::try_new(0, 8), Err(FabricError::EmptyFabric));
        assert_eq!(Fabric::try_new(2, 2), Err(FabricError::MemLatencyTooLong { cols: 2, mem: 4 }));
        assert!(Fabric::try_new(2, 16).is_ok());
        // The panic messages the legacy tests pin are the Display strings.
        assert_eq!(FabricError::EmptyFabric.to_string(), "fabric must have at least one FU");
        assert_eq!(
            FabricError::MemLatencyTooLong { cols: 2, mem: 4 }.to_string(),
            "fabric of 2 column(s) cannot host a 4-column memory op"
        );
    }

    #[test]
    fn validate_catches_hand_built_fabrics() {
        let mut f = Fabric::be();
        assert_eq!(f.validate(), Ok(()));
        f.latencies.mem = 17;
        assert_eq!(f.validate(), Err(FabricError::MemLatencyTooLong { cols: 16, mem: 17 }));
    }

    #[test]
    fn uniform_matches_new_exactly() {
        assert_eq!(Fabric::uniform(2, 16), Fabric::be());
        assert!(Fabric::uniform(4, 8).is_uniform());
        assert_eq!(Fabric::uniform(4, 8).col_bandwidth, 0);
    }

    #[test]
    fn class_maps_pattern_the_grid() {
        let mem = OpKind::Load { func: LoadFunc::W, offset: 0 };
        let mul = OpKind::Mul(MulFunc::Mul);
        let alu = OpKind::Alu(AluFunc::Add);

        let mut f = Fabric::fig1();
        f.classes = ClassMap::Checker;
        assert_eq!(f.class_of(0, 0), CellClass::Full);
        assert_eq!(f.class_of(0, 1), CellClass::Alu);
        assert_eq!(f.class_of(1, 0), CellClass::Alu);
        assert_eq!(f.class_of(1, 1), CellClass::Full);
        assert!(!f.is_uniform());
        assert!(f.supports(0, 0, mem) && f.supports(0, 0, mul));
        assert!(!f.supports(0, 1, mem) && !f.supports(0, 1, mul));
        assert!(f.supports(0, 1, alu), "every cell executes ALU ops");

        f.classes = ClassMap::RowStripes;
        assert!(f.supports(0, 3, mem) && !f.supports(1, 3, mem));
        f.classes = ClassMap::ColStripes;
        assert!(f.supports(3, 0, mem) && !f.supports(3, 1, mem));
        f.classes = ClassMap::Uniform(CellClass::AluMem);
        assert!(f.supports(2, 2, mem) && !f.supports(2, 2, mul));
        assert!(!f.is_uniform(), "uniform alu+mem still lacks multipliers");
    }
}
