//! Bit-level configuration encoding (the words the reconfiguration logic of
//! paper Fig. 5 actually moves around).
//!
//! Each column owns one configuration register holding, for every row, an FU
//! field of `[opcode | aImm | aSel | bImm | bSel | hasDst | dstSel | imm32]`.
//! Row fields are contiguous, which is what lets the vertical-movement barrel
//! shifters of Fig. 5c rotate a column's configuration by whole rows.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::config::Configuration;
use crate::fabric::Fabric;
use crate::op::{AluFunc, CtxLine, LoadFunc, MulFunc, OpKind, Operand, PlacedOp, StoreFunc};

/// Opcode space (6 bits). Zero is NOP / unconfigured.
const OPCODE_BITS: usize = 6;
const IMM_BITS: usize = 32;

/// Number of bits for a context-line select.
pub fn ctx_sel_bits(fabric: &Fabric) -> usize {
    (u16::BITS - (fabric.ctx_lines.max(1) - 1).leading_zeros()) as usize
}

/// Bits of one FU field.
pub fn fu_bits(fabric: &Fabric) -> usize {
    let sel = ctx_sel_bits(fabric);
    OPCODE_BITS + (1 + sel) + (1 + sel) + (1 + sel) + IMM_BITS
}

/// Bits of one column's configuration register.
pub fn column_bits(fabric: &Fabric) -> usize {
    fu_bits(fabric) * fabric.rows as usize
}

fn opcode_of(kind: OpKind) -> u64 {
    match kind {
        OpKind::Alu(f) => 1 + AluFunc::ALL.iter().position(|x| *x == f).unwrap() as u64,
        OpKind::Mul(f) => 11 + MulFunc::ALL.iter().position(|x| *x == f).unwrap() as u64,
        OpKind::Load { func, .. } => {
            15 + LoadFunc::ALL.iter().position(|x| *x == func).unwrap() as u64
        }
        OpKind::Store { func, .. } => {
            20 + StoreFunc::ALL.iter().position(|x| *x == func).unwrap() as u64
        }
    }
}

fn kind_of(opcode: u64, imm: u32) -> Option<OpKind> {
    match opcode {
        1..=10 => Some(OpKind::Alu(AluFunc::ALL[(opcode - 1) as usize])),
        11..=14 => Some(OpKind::Mul(MulFunc::ALL[(opcode - 11) as usize])),
        15..=19 => {
            Some(OpKind::Load { func: LoadFunc::ALL[(opcode - 15) as usize], offset: imm as i32 })
        }
        20..=22 => {
            Some(OpKind::Store { func: StoreFunc::ALL[(opcode - 20) as usize], offset: imm as i32 })
        }
        _ => None,
    }
}

/// One column's configuration register content.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnBits {
    bits: Vec<bool>,
}

impl ColumnBits {
    /// An all-NOP (unconfigured) column for `fabric`.
    pub fn nop(fabric: &Fabric) -> ColumnBits {
        ColumnBits { bits: vec![false; column_bits(fabric)] }
    }

    /// Register width in bits.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// `true` if the register is zero-width (never for a real fabric).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    /// `true` if every bit is zero (all rows NOP).
    pub fn is_nop(&self) -> bool {
        self.bits.iter().all(|b| !b)
    }

    /// Rotates the per-row field groups downwards by `shift` rows — the
    /// barrel-shifter operation of paper Fig. 5c. Physical row `p` receives
    /// the field of virtual row `(p + rows - shift) % rows`.
    pub fn rotate_rows(&self, fabric: &Fabric, shift: u32) -> ColumnBits {
        let rows = fabric.rows as usize;
        let field = fu_bits(fabric);
        assert_eq!(self.bits.len(), rows * field, "column width mismatch");
        let shift = (shift as usize) % rows;
        let mut out = vec![false; self.bits.len()];
        for p in 0..rows {
            let v = (p + rows - shift) % rows;
            out[p * field..(p + 1) * field].copy_from_slice(&self.bits[v * field..(v + 1) * field]);
        }
        ColumnBits { bits: out }
    }
}

struct BitWriter<'a> {
    bits: &'a mut Vec<bool>,
}

impl BitWriter<'_> {
    fn push(&mut self, value: u64, n: usize) {
        for i in 0..n {
            self.bits.push((value >> i) & 1 == 1);
        }
    }
}

struct BitReader<'a> {
    bits: &'a [bool],
    pos: usize,
}

impl BitReader<'_> {
    fn read(&mut self, n: usize) -> u64 {
        let mut v = 0u64;
        for i in 0..n {
            if self.bits[self.pos + i] {
                v |= 1 << i;
            }
        }
        self.pos += n;
        v
    }
}

/// Error decoding a bitstream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BitstreamError {
    /// Reserved opcode value encountered.
    BadOpcode {
        /// Column of the bad field.
        col: u32,
        /// Row of the bad field.
        row: u32,
        /// The reserved opcode value.
        opcode: u8,
    },
    /// Column register has the wrong width for the fabric.
    WidthMismatch {
        /// Expected register width.
        expected: usize,
        /// Actual width.
        got: usize,
    },
}

impl fmt::Display for BitstreamError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BitstreamError::BadOpcode { col, row, opcode } => {
                write!(f, "reserved opcode {opcode} at column {col}, row {row}")
            }
            BitstreamError::WidthMismatch { expected, got } => {
                write!(f, "column register is {got} bits, fabric requires {expected}")
            }
        }
    }
}

impl std::error::Error for BitstreamError {}

/// A virtual configuration's bitstream: one [`ColumnBits`] per used column.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Bitstream {
    columns: Vec<ColumnBits>,
}

impl Bitstream {
    /// Encodes a validated configuration.
    ///
    /// Cells covered by a multi-column op's tail encode as NOP; the op's
    /// field lives in its start column and its span is implied by the
    /// opcode's class latency.
    pub fn encode(fabric: &Fabric, config: &Configuration) -> Bitstream {
        let mut columns = Vec::with_capacity(config.cols_used() as usize);
        for col in 0..config.cols_used() {
            let mut bits = Vec::with_capacity(column_bits(fabric));
            let mut w = BitWriter { bits: &mut bits };
            for row in 0..fabric.rows {
                let op = config.ops().iter().find(|o| o.row == row && o.col == col);
                encode_fu(fabric, &mut w, op);
            }
            columns.push(ColumnBits { bits });
        }
        Bitstream { columns }
    }

    /// The per-column registers, in virtual column order.
    pub fn columns(&self) -> &[ColumnBits] {
        &self.columns
    }

    /// Number of encoded columns.
    pub fn cols_used(&self) -> u32 {
        self.columns.len() as u32
    }

    /// Total configuration size in bits.
    pub fn total_bits(&self) -> usize {
        self.columns.iter().map(ColumnBits::len).sum()
    }

    /// Decodes the placed operations back out of the bitstream.
    ///
    /// # Errors
    ///
    /// Returns [`BitstreamError`] on reserved opcodes or width mismatches.
    pub fn decode_ops(&self, fabric: &Fabric) -> Result<Vec<PlacedOp>, BitstreamError> {
        let mut ops = Vec::new();
        for (c, col_bits) in self.columns.iter().enumerate() {
            decode_column(fabric, col_bits, c as u32, &mut ops)?;
        }
        Ok(ops)
    }
}

fn encode_fu(fabric: &Fabric, w: &mut BitWriter<'_>, op: Option<&PlacedOp>) {
    let sel = ctx_sel_bits(fabric);
    match op {
        None => {
            w.push(0, OPCODE_BITS);
            w.push(0, 1 + sel);
            w.push(0, 1 + sel);
            w.push(0, 1 + sel);
            w.push(0, IMM_BITS);
        }
        Some(op) => {
            w.push(opcode_of(op.kind), OPCODE_BITS);
            let mut imm_field: u32 = match op.kind {
                OpKind::Load { offset, .. } | OpKind::Store { offset, .. } => offset as u32,
                _ => 0,
            };
            for operand in [op.a, op.b] {
                match operand {
                    Operand::Ctx(l) => {
                        w.push(0, 1);
                        w.push(l.0 as u64, sel);
                    }
                    Operand::Imm(v) => {
                        w.push(1, 1);
                        w.push(0, sel);
                        if !op.kind.is_mem() {
                            imm_field = v;
                        }
                    }
                }
            }
            match op.dst {
                Some(d) => {
                    w.push(1, 1);
                    w.push(d.0 as u64, sel);
                }
                None => {
                    w.push(0, 1 + sel);
                }
            }
            w.push(imm_field as u64, IMM_BITS);
        }
    }
}

/// Decodes one column register into `ops`; `col` is the column index to give
/// the decoded ops (virtual or physical, depending on the caller).
pub(crate) fn decode_column(
    fabric: &Fabric,
    col_bits: &ColumnBits,
    col: u32,
    ops: &mut Vec<PlacedOp>,
) -> Result<(), BitstreamError> {
    let expected = column_bits(fabric);
    if col_bits.len() != expected {
        return Err(BitstreamError::WidthMismatch { expected, got: col_bits.len() });
    }
    let sel = ctx_sel_bits(fabric);
    let mut r = BitReader { bits: &col_bits.bits, pos: 0 };
    for row in 0..fabric.rows {
        let opcode = r.read(OPCODE_BITS);
        let a_imm = r.read(1) == 1;
        let a_sel = r.read(sel) as u16;
        let b_imm = r.read(1) == 1;
        let b_sel = r.read(sel) as u16;
        let has_dst = r.read(1) == 1;
        let dst_sel = r.read(sel) as u16;
        let imm = r.read(IMM_BITS) as u32;
        if opcode == 0 {
            continue;
        }
        let kind = kind_of(opcode, imm).ok_or(BitstreamError::BadOpcode {
            col,
            row,
            opcode: opcode as u8,
        })?;
        let operand = |is_imm: bool, s: u16| {
            if is_imm {
                Operand::Imm(if kind.is_mem() { 0 } else { imm })
            } else {
                Operand::Ctx(CtxLine(s))
            }
        };
        ops.push(PlacedOp {
            row,
            col,
            span: fabric.latency(kind),
            kind,
            a: operand(a_imm, a_sel),
            b: operand(b_imm, b_sel),
            dst: has_dst.then_some(CtxLine(dst_sel)),
        });
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Configuration;

    fn sample(f: &Fabric) -> Configuration {
        Configuration::new(
            f,
            vec![
                PlacedOp {
                    row: 0,
                    col: 0,
                    span: 1,
                    kind: OpKind::Alu(AluFunc::Add),
                    a: Operand::Ctx(CtxLine(0)),
                    b: Operand::Imm(42),
                    dst: Some(CtxLine(2)),
                },
                PlacedOp {
                    row: 1,
                    col: 0,
                    span: 4,
                    kind: OpKind::Load { func: LoadFunc::Hu, offset: -4 },
                    a: Operand::Ctx(CtxLine(1)),
                    b: Operand::Imm(0),
                    dst: Some(CtxLine(3)),
                },
                PlacedOp {
                    row: 0,
                    col: 4,
                    span: 4,
                    kind: OpKind::Store { func: StoreFunc::W, offset: 12 },
                    a: Operand::Ctx(CtxLine(1)),
                    b: Operand::Ctx(CtxLine(2)),
                    dst: None,
                },
            ],
            vec![CtxLine(0), CtxLine(1)],
            vec![CtxLine(3)],
        )
        .unwrap()
    }

    #[test]
    fn widths() {
        let f = Fabric::be(); // 16 ctx lines -> 4 select bits
        assert_eq!(ctx_sel_bits(&f), 4);
        assert_eq!(fu_bits(&f), 6 + 5 + 5 + 5 + 32);
        assert_eq!(column_bits(&f), 2 * 53);
        let one = Fabric { ctx_lines: 1, ..Fabric::be() };
        assert_eq!(ctx_sel_bits(&one), 0);
    }

    #[test]
    fn encode_decode_round_trip() {
        let f = Fabric::be();
        let cfg = sample(&f);
        let bs = Bitstream::encode(&f, &cfg);
        assert_eq!(bs.cols_used(), 8);
        let ops = bs.decode_ops(&f).unwrap();
        assert_eq!(ops, cfg.ops(), "bitstream is a lossless encoding of ops");
    }

    #[test]
    fn nop_columns_decode_empty() {
        let f = Fabric::be();
        let col = ColumnBits::nop(&f);
        assert!(col.is_nop());
        let mut ops = Vec::new();
        decode_column(&f, &col, 0, &mut ops).unwrap();
        assert!(ops.is_empty());
    }

    #[test]
    fn rotate_rows_moves_fields() {
        let f = Fabric::bp(); // 4 rows
        let cfg = Configuration::new(
            &f,
            vec![PlacedOp {
                row: 1,
                col: 0,
                span: 1,
                kind: OpKind::Alu(AluFunc::Xor),
                a: Operand::Ctx(CtxLine(0)),
                b: Operand::Ctx(CtxLine(0)),
                dst: Some(CtxLine(1)),
            }],
            vec![CtxLine(0)],
            vec![CtxLine(1)],
        )
        .unwrap();
        let bs = Bitstream::encode(&f, &cfg);
        let rotated = bs.columns()[0].rotate_rows(&f, 2);
        let mut ops = Vec::new();
        decode_column(&f, &rotated, 0, &mut ops).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].row, 3, "row 1 shifted down by 2");
        assert_eq!(ops[0].kind, OpKind::Alu(AluFunc::Xor));
    }

    #[test]
    fn rotate_by_rows_is_identity() {
        let f = Fabric::bu(); // 8 rows
        let cfg = sample(&Fabric::bu());
        let bs = Bitstream::encode(&f, &cfg);
        for col in bs.columns() {
            assert_eq!(&col.rotate_rows(&f, 8), col);
            assert_eq!(&col.rotate_rows(&f, 0), col);
        }
    }

    #[test]
    fn rotation_composes() {
        let f = Fabric::bu();
        let cfg = sample(&f);
        let col = &Bitstream::encode(&f, &cfg).columns()[0].clone();
        let once_twice = col.rotate_rows(&f, 3).rotate_rows(&f, 2);
        let direct = col.rotate_rows(&f, 5);
        assert_eq!(once_twice, direct);
    }

    #[test]
    fn bad_opcode_detected() {
        let f = Fabric::be();
        let mut bits = vec![false; column_bits(&f)];
        // opcode 63 (reserved) in row 0.
        for b in bits.iter_mut().take(6) {
            *b = true;
        }
        let col = ColumnBits { bits };
        let mut ops = Vec::new();
        let e = decode_column(&f, &col, 0, &mut ops).unwrap_err();
        assert_eq!(e, BitstreamError::BadOpcode { col: 0, row: 0, opcode: 63 });
    }

    #[test]
    fn width_mismatch_detected() {
        let f = Fabric::be();
        let col = ColumnBits { bits: vec![false; 10] };
        let mut ops = Vec::new();
        let e = decode_column(&f, &col, 0, &mut ops).unwrap_err();
        assert!(matches!(e, BitstreamError::WidthMismatch { .. }));
    }
}
