//! Structural area and delay model (the Cadence + NanGate-15nm substitute
//! behind paper Table II).
//!
//! The model composes the fabric from counted standard cells: per-FU
//! datapath (ALU, input crossbar, configuration register), per-column output
//! crossbar, per-row multiplier and memory AGU, and the global input
//! context / ROB / control. The aging-mitigation extensions add exactly the
//! structures of paper §III.B: configuration-line select muxes (horizontal
//! movement), configuration-register barrel shifters (vertical movement) and
//! the wrap-around input selection.
//!
//! Absolute numbers are calibrated to land near the paper's BE figures
//! (79,540 cells / 28,995 µm²); the *overhead ratio* of the extensions is
//! structural (the added muxes and shifters are enumerated, not fitted) and
//! stays below 10% for every evaluated fabric, like the paper's 4–5%.

use serde::{Deserialize, Serialize};

use crate::bitstream::{column_bits, ctx_sel_bits, fu_bits};
use crate::fabric::Fabric;

/// Per-cell areas (µm²) and delays (ps) of a NanGate-15nm-like library.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CellLibrary {
    /// Inverter area.
    pub inv_um2: f64,
    /// 2-input NAND area.
    pub nand2_um2: f64,
    /// 2-input AND/OR area.
    pub and2_um2: f64,
    /// 2-input XOR area.
    pub xor2_um2: f64,
    /// 2:1 mux area.
    pub mux2_um2: f64,
    /// D flip-flop area.
    pub dff_um2: f64,
    /// 2:1 mux propagation delay.
    pub mux2_ps: f64,
    /// 32-bit adder critical-path delay.
    pub adder32_ps: f64,
}

impl Default for CellLibrary {
    fn default() -> CellLibrary {
        CellLibrary {
            inv_um2: 0.147,
            nand2_um2: 0.196,
            and2_um2: 0.245,
            xor2_um2: 0.393,
            mux2_um2: 0.420,
            dff_um2: 0.785,
            mux2_ps: 10.0,
            adder32_ps: 60.0,
        }
    }
}

/// A bag of standard cells.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CellCount {
    /// Inverters.
    pub inv: u64,
    /// 2-input NANDs.
    pub nand2: u64,
    /// 2-input ANDs/ORs.
    pub and2: u64,
    /// 2-input XORs.
    pub xor2: u64,
    /// 2:1 muxes.
    pub mux2: u64,
    /// D flip-flops.
    pub dff: u64,
}

impl CellCount {
    /// Total number of cells.
    pub fn total(&self) -> u64 {
        self.inv + self.nand2 + self.and2 + self.xor2 + self.mux2 + self.dff
    }

    /// Total area under `lib`.
    pub fn area_um2(&self, lib: &CellLibrary) -> f64 {
        self.inv as f64 * lib.inv_um2
            + self.nand2 as f64 * lib.nand2_um2
            + self.and2 as f64 * lib.and2_um2
            + self.xor2 as f64 * lib.xor2_um2
            + self.mux2 as f64 * lib.mux2_um2
            + self.dff as f64 * lib.dff_um2
    }

    fn scaled(&self, k: u64) -> CellCount {
        CellCount {
            inv: self.inv * k,
            nand2: self.nand2 * k,
            and2: self.and2 * k,
            xor2: self.xor2 * k,
            mux2: self.mux2 * k,
            dff: self.dff * k,
        }
    }
}

impl std::ops::Add for CellCount {
    type Output = CellCount;
    fn add(self, rhs: CellCount) -> CellCount {
        CellCount {
            inv: self.inv + rhs.inv,
            nand2: self.nand2 + rhs.nand2,
            and2: self.and2 + rhs.and2,
            xor2: self.xor2 + rhs.xor2,
            mux2: self.mux2 + rhs.mux2,
            dff: self.dff + rhs.dff,
        }
    }
}

/// One named component of the area breakdown.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Component {
    /// Component name.
    pub name: String,
    /// Cell counts.
    pub cells: CellCount,
    /// Area in µm².
    pub area_um2: f64,
}

/// The result of an area evaluation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AreaReport {
    /// Total standard-cell count.
    pub cells: u64,
    /// Total area in µm².
    pub area_um2: f64,
    /// Per-component breakdown.
    pub components: Vec<Component>,
}

impl AreaReport {
    /// `(cell_overhead, area_overhead)` of `self` relative to `base`,
    /// as fractions (0.045 = +4.5%).
    pub fn overhead_vs(&self, base: &AreaReport) -> (f64, f64) {
        (self.cells as f64 / base.cells as f64 - 1.0, self.area_um2 / base.area_um2 - 1.0)
    }
}

/// The structural area/delay estimator.
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct AreaModel {
    /// The standard-cell library in use.
    pub lib: CellLibrary,
}

impl AreaModel {
    /// Creates a model over `lib`.
    pub fn new(lib: CellLibrary) -> AreaModel {
        AreaModel { lib }
    }

    /// 32-bit ALU: prefix adder, logic unit, barrel shifter, compare/result
    /// selection.
    fn alu(&self) -> CellCount {
        CellCount { inv: 56, nand2: 300, and2: 80, xor2: 64, mux2: 200, dff: 0 }
    }

    /// Input crossbar of one FU: two operands × 32 bits, each an
    /// `ctx_lines:1` mux tree (`ctx_lines − 1` mux2 per bit).
    fn fu_input_xbar(&self, fabric: &Fabric) -> CellCount {
        let per_bit = (fabric.ctx_lines as u64).saturating_sub(1);
        CellCount { mux2: 2 * 32 * per_bit, ..CellCount::default() }
    }

    /// One FU's slice of the column configuration register.
    fn fu_cfg_reg(&self, fabric: &Fabric) -> CellCount {
        CellCount { dff: fu_bits(fabric) as u64, inv: 10, ..CellCount::default() }
    }

    /// Output crossbar of one column: each context line picks among the
    /// row results or the pass-through (`rows:1` selection per bit plus the
    /// keep path).
    fn column_output_xbar(&self, fabric: &Fabric) -> CellCount {
        let per_bit = fabric.rows as u64; // rows+1 inputs -> rows mux2
        CellCount { mux2: fabric.ctx_lines as u64 * 32 * per_bit, ..CellCount::default() }
    }

    fn column_control(&self) -> CellCount {
        CellCount { nand2: 50, inv: 20, ..CellCount::default() }
    }

    /// Per-row radix-4 Booth multiplier, pipelined over the multiply span.
    fn row_multiplier(&self) -> CellCount {
        CellCount { nand2: 1600, and2: 300, xor2: 500, mux2: 60, dff: 96, inv: 44 }
    }

    /// Per-row memory address-generation adder and port interface.
    fn row_mem_agu(&self) -> CellCount {
        CellCount { nand2: 180, xor2: 32, and2: 40, dff: 40, inv: 8, ..CellCount::default() }
    }

    /// Input context registers, write network, ROB and global control.
    fn global(&self, fabric: &Fabric) -> CellCount {
        let ctx_regs = CellCount {
            dff: fabric.ctx_lines as u64 * 32,
            mux2: fabric.ctx_lines as u64 * 32,
            ..CellCount::default()
        };
        let rob = CellCount { dff: 128, nand2: 150, and2: 50, ..CellCount::default() };
        let control = CellCount { nand2: 200, inv: 60, dff: 40, ..CellCount::default() };
        ctx_regs + rob + control
    }

    /// Horizontal movement: per column, an `n:1` mux (bus width 32) on the
    /// configuration-line input (paper Fig. 5b, purple).
    fn ext_cfg_line_mux(&self, fabric: &Fabric) -> CellCount {
        let per_col = (fabric.cfg_lines as u64 - 1) * 32;
        CellCount { mux2: per_col * fabric.cols as u64, ..CellCount::default() }
    }

    /// Vertical movement: a barrel shifter per configuration *line* that
    /// rotates the row fields of the column being streamed ("the
    /// configuration bits are shifted at configuration load time",
    /// paper Fig. 5c). `n` lines × ⌈log2 rows⌉ stages × line width.
    fn ext_row_barrel_shifter(&self, fabric: &Fabric) -> CellCount {
        let stages = (u32::BITS - (fabric.rows - 1).leading_zeros()) as u64;
        let width = column_bits(fabric) as u64;
        CellCount { mux2: fabric.cfg_lines as u64 * stages * width, ..CellCount::default() }
    }

    /// Wrap-around: the input-context injection point grows each FU operand
    /// crossbar by one input (paper Fig. 4c, purple).
    fn ext_wrap_mux(&self, fabric: &Fabric) -> CellCount {
        CellCount { mux2: 2 * 32 * fabric.fu_count() as u64, ..CellCount::default() }
    }

    /// Full area report for `fabric`, with or without the movement
    /// extensions.
    pub fn report(&self, fabric: &Fabric, extensions: bool) -> AreaReport {
        let fu = self.alu() + self.fu_input_xbar(fabric) + self.fu_cfg_reg(fabric);
        let mut components = vec![
            ("fu-datapath", fu.scaled(fabric.fu_count() as u64)),
            (
                "output-crossbars",
                (self.column_output_xbar(fabric) + self.column_control())
                    .scaled(fabric.cols as u64),
            ),
            (
                "row-multiplier+agu",
                (self.row_multiplier() + self.row_mem_agu()).scaled(fabric.rows as u64),
            ),
            ("global", self.global(fabric)),
        ];
        if extensions {
            components.push(("ext-horizontal-mux", self.ext_cfg_line_mux(fabric)));
            components.push(("ext-vertical-shifter", self.ext_row_barrel_shifter(fabric)));
            components.push(("ext-wraparound-mux", self.ext_wrap_mux(fabric)));
        }
        let components: Vec<Component> = components
            .into_iter()
            .map(|(name, cells)| Component {
                name: name.to_string(),
                area_um2: cells.area_um2(&self.lib),
                cells,
            })
            .collect();
        AreaReport {
            cells: components.iter().map(|c| c.cells.total()).sum(),
            area_um2: components.iter().map(|c| c.area_um2).sum(),
            components,
        }
    }

    /// Critical-path delay of one column in picoseconds: input crossbar
    /// (mux tree), ALU (adder path), output crossbar.
    ///
    /// The wrap-around mux sits on the *input-context* branch of the input
    /// crossbar, which is shorter than the FU-to-FU forwarding branch, so
    /// the movement extensions leave the critical path unchanged — the
    /// paper's measurement (120 ps with and without) has the same shape.
    pub fn column_delay_ps(&self, fabric: &Fabric, _extensions: bool) -> f64 {
        let in_stages = ctx_sel_bits(fabric) as f64;
        let out_stages = (u32::BITS - fabric.rows.leading_zeros()) as f64;
        in_stages * self.lib.mux2_ps + self.lib.adder32_ps + out_stages * self.lib.mux2_ps
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn be_lands_near_paper_table2() {
        let m = AreaModel::default();
        let base = m.report(&Fabric::be(), false);
        // Paper: 79,540 cells / 28,995 um2. Structural model should land in
        // the same band (±20%).
        assert!(
            (64_000..=95_000).contains(&base.cells),
            "BE baseline cells {} out of band",
            base.cells
        );
        assert!(
            (23_000.0..=35_000.0).contains(&base.area_um2),
            "BE baseline area {} out of band",
            base.area_um2
        );
    }

    #[test]
    fn extension_overhead_below_ten_percent() {
        let m = AreaModel::default();
        for fabric in [Fabric::fig1(), Fabric::be(), Fabric::bp(), Fabric::bu()] {
            let base = m.report(&fabric, false);
            let ext = m.report(&fabric, true);
            let (cells_oh, area_oh) = ext.overhead_vs(&base);
            assert!(cells_oh > 0.0 && cells_oh < 0.10, "cells overhead {cells_oh}");
            assert!(area_oh > 0.0 && area_oh < 0.10, "area overhead {area_oh}");
        }
    }

    #[test]
    fn area_scales_with_fabric() {
        let m = AreaModel::default();
        let small = m.report(&Fabric::be(), false);
        let big = m.report(&Fabric::bu(), false);
        assert!(big.area_um2 > 4.0 * small.area_um2, "BU is 8x the FUs of BE");
    }

    #[test]
    fn breakdown_sums_to_total() {
        let m = AreaModel::default();
        let r = m.report(&Fabric::bp(), true);
        let cells: u64 = r.components.iter().map(|c| c.cells.total()).sum();
        let area: f64 = r.components.iter().map(|c| c.area_um2).sum();
        assert_eq!(cells, r.cells);
        assert!((area - r.area_um2).abs() < 1e-9);
    }

    #[test]
    fn column_delay_near_120ps_and_unchanged_by_extensions() {
        let m = AreaModel::default();
        let f = Fabric::be();
        let base = m.column_delay_ps(&f, false);
        let ext = m.column_delay_ps(&f, true);
        assert!((100.0..=140.0).contains(&base), "delay {base}");
        assert_eq!(base, ext, "extensions off the critical path");
    }

    #[test]
    fn cell_count_arithmetic() {
        let a = CellCount { inv: 1, nand2: 2, and2: 3, xor2: 4, mux2: 5, dff: 6 };
        let b = a + a;
        assert_eq!(b.total(), 2 * a.total());
        assert_eq!(a.scaled(3).total(), 3 * a.total());
        let lib = CellLibrary::default();
        assert!(a.area_um2(&lib) > 0.0);
    }
}
