//! Property tests for the [`Registry`]/[`LogHistogram`] merge monoid
//! (DESIGN.md §16): `merge` must be associative and commutative with the
//! empty registry as identity, any shard split of an event list must fold
//! to the byte-identical serialized registry, and `add_scaled` must equal
//! the expanded sequence of merges. These are the algebraic facts the
//! `results/metrics.json` byte-identity gate rides on — the mirror of
//! `survival_monoid.rs` for the flight recorder.

use proptest::prelude::*;

use obs::{LogHistogram, Registry};

/// One recorded metric event: a name drawn from a small pool (so shards
/// collide on keys) and a kind-selecting tag.
#[derive(Clone, Debug)]
enum Op {
    Counter(&'static str, u64),
    Gauge(&'static str, u64),
    Histogram(&'static str, u64),
}

const NAMES: [&str; 4] = ["alloc.decisions", "dbt.cache.hit", "queue.depth", "latency.cycles"];

fn any_ops() -> impl Strategy<Value = Vec<Op>> {
    proptest::collection::vec(((0u32..=2), (0usize..NAMES.len()), (0u64..=1 << 40)), 0..=64)
        .prop_map(|raw| {
            raw.into_iter()
                .map(|(tag, name, v)| match tag {
                    0 => Op::Counter(NAMES[name], v),
                    1 => Op::Gauge(NAMES[name], v),
                    _ => Op::Histogram(NAMES[name], v),
                })
                .collect()
        })
}

/// Folds a slice of events into a fresh registry.
fn fold(ops: &[Op]) -> Registry {
    let mut reg = Registry::new();
    for op in ops {
        match *op {
            Op::Counter(name, v) => reg.counter_add(name, v),
            Op::Gauge(name, v) => reg.gauge_set(name, v),
            Op::Histogram(name, v) => reg.histogram_record(name, v),
        }
    }
    reg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_is_associative_and_commutative_with_identity(
        a in any_ops(),
        b in any_ops(),
        c in any_ops(),
    ) {
        let (a, b, c) = (fold(&a), fold(&b), fold(&c));
        // (a · b) · c == a · (b · c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // a · b == b · a (counters add, gauges take the max, histogram
        // buckets add — all commutative).
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // a · e == e · a == a
        let mut with_identity = a.clone();
        with_identity.merge(&Registry::new());
        prop_assert_eq!(&with_identity, &a);
        let mut identity_first = Registry::new();
        identity_first.merge(&a);
        prop_assert_eq!(&identity_first, &a);
    }

    #[test]
    fn every_shard_split_folds_byte_identically(
        ops in any_ops(),
        cuts in proptest::collection::vec(0usize..=64, 0..=4),
    ) {
        // Fold the whole event list at once, then fold it shard by shard at
        // randomized cut points and merge in order — equal not just in
        // value but in serialized bytes (the metrics.json guarantee).
        let whole = fold(&ops);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(ops.len())).collect();
        cuts.sort_unstable();
        let mut sharded = Registry::new();
        let mut start = 0;
        for cut in cuts.into_iter().chain([ops.len()]) {
            sharded.merge(&fold(&ops[start..cut]));
            start = cut;
        }
        prop_assert_eq!(&sharded, &whole);
        prop_assert_eq!(
            serde_json::to_string(&sharded).unwrap(),
            serde_json::to_string(&whole).unwrap()
        );
    }

    #[test]
    fn add_scaled_matches_the_expanded_merges(
        ops in any_ops(),
        weight in 1u64..=16,
    ) {
        // The fleet engine's weighted per-class fold: one add_scaled by w
        // equals merging the same registry w times (gauges are max-kept,
        // so they are weight-invariant).
        let unit = fold(&ops);
        let mut weighted = Registry::new();
        weighted.add_scaled(&unit, weight);
        let mut expanded = Registry::new();
        for _ in 0..weight {
            expanded.merge(&unit);
        }
        prop_assert_eq!(&weighted, &expanded);
    }

    #[test]
    fn histogram_merge_preserves_totals_and_percentile_bounds(
        xs in proptest::collection::vec(0u64..=1 << 48, 0..=64),
        ys in proptest::collection::vec(0u64..=1 << 48, 0..=64),
    ) {
        let mut a = LogHistogram::new();
        for &x in &xs {
            a.record(x);
        }
        let mut b = LogHistogram::new();
        for &y in &ys {
            b.record(y);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        prop_assert_eq!(merged.total(), a.total() + b.total());
        // Percentiles stay within the union's bucket-floor envelope.
        let p50 = merged.percentile(0.5);
        let lo = a.percentile(0.0).min(b.percentile(0.0));
        let hi = a.percentile(1.0).max(b.percentile(1.0));
        if merged.total() > 0 {
            prop_assert!(p50 >= lo.min(hi) && p50 <= hi.max(lo), "p50 {p50} outside [{lo}, {hi}]");
        }
    }
}
