//! # obs — observability subscribers for the workspace's tracing layer
//!
//! Two [`tracing::Subscriber`] implementations with opposite determinism
//! contracts (DESIGN.md §16):
//!
//! * [`MetricsCollector`] feeds a [`Registry`] of named counters,
//!   high-watermark gauges and log-bucketed histograms. Everything in a
//!   registry is integer state with an associative + commutative
//!   [`merge`](Registry::merge) and a weighted
//!   [`add_scaled`](Registry::add_scaled), so sharded campaigns fold
//!   per-work-item registries exactly like `FleetAccum` folds survival
//!   counts — the folded result (and its JSON, `results/metrics.json`) is
//!   byte-identical no matter the worker count, shard split or stop/resume
//!   point.
//! * [`Profiler`] records wall-clock self/total times per span subtree
//!   (`results/profile.json`). Wall-clock time is inherently
//!   nondeterministic, so the profile is excluded from the CI determinism
//!   diff.
//!
//! The histogram buckets are the same logarithmic scheme as `transrec`'s
//! `LatencyHistogram` (exact below 8, then 8 sub-buckets per power of two);
//! [`log_bucket`]/[`log_bucket_floor`] are exported so both crates share
//! one implementation.

#![warn(missing_docs)]

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::rc::Rc;
use std::time::{Duration, Instant};

use serde::{Deserialize, Serialize};
use tracing::{Dispatch, Event, Metadata, SpanId, Subscriber};

/// The logarithmic bucket index of a `u64` observation: exact below 8,
/// then 8 sub-buckets per power of two (≤ 12.5% relative error). This is
/// the bucketing `transrec::LatencyHistogram` uses (DESIGN.md §13, §16).
pub fn log_bucket(value: u64) -> u32 {
    if value < 8 {
        return value as u32;
    }
    let e = value.ilog2();
    8 * (e - 2) + ((value >> (e - 3)) & 7) as u32
}

/// The smallest value that falls in `bucket` — the value percentile
/// queries report (a conservative lower bound).
pub fn log_bucket_floor(bucket: u32) -> u64 {
    if bucket < 8 {
        return bucket as u64;
    }
    let e = bucket / 8 + 2;
    let off = bucket % 8;
    ((8 + off) as u64) << (e - 3)
}

/// A mergeable histogram over [`log_bucket`] buckets. Counts are integers
/// keyed by bucket index, so merging and weight-scaling are exact: partial
/// histograms aggregate byte-identically regardless of the shard split.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LogHistogram {
    /// Sorted `(bucket, count)` pairs; zero-count buckets are absent.
    buckets: Vec<(u32, u64)>,
    /// Total recorded observations (the sum of all counts).
    total: u64,
}

impl LogHistogram {
    /// An empty histogram (the merge identity).
    pub fn new() -> LogHistogram {
        LogHistogram::default()
    }

    /// Total observations recorded.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Records one observation.
    pub fn record(&mut self, value: u64) {
        self.add(log_bucket(value), 1);
    }

    /// Adds `count` observations to `bucket`.
    fn add(&mut self, bucket: u32, count: u64) {
        if count == 0 {
            return;
        }
        let at = self.buckets.partition_point(|&(b, _)| b < bucket);
        match self.buckets.get_mut(at) {
            Some(entry) if entry.0 == bucket => entry.1 += count,
            _ => self.buckets.insert(at, (bucket, count)),
        }
        self.total += count;
    }

    /// Absorbs `other` scaled by `weight` — the equivalence-class fast
    /// path: one class histogram stands for `weight` identical devices.
    pub fn add_scaled(&mut self, other: &LogHistogram, weight: u64) {
        for &(bucket, count) in &other.buckets {
            self.add(bucket, count * weight);
        }
    }

    /// Absorbs `other`: the monoid operation (associative, commutative,
    /// [`LogHistogram::new`] as identity).
    pub fn merge(&mut self, other: &LogHistogram) {
        self.add_scaled(other, 1);
    }

    /// The value (as the containing bucket's lower bound) at quantile
    /// `q ∈ [0, 1]`; `0` for an empty histogram.
    pub fn percentile(&self, q: f64) -> u64 {
        if self.total == 0 {
            return 0;
        }
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for &(bucket, count) in &self.buckets {
            seen += count;
            if seen >= rank {
                return log_bucket_floor(bucket);
            }
        }
        log_bucket_floor(self.buckets.last().expect("total > 0 implies buckets").0)
    }
}

/// A deterministic registry of named metrics (DESIGN.md §16).
///
/// Three instruments, selected by the event field key at the callsite:
///
/// * `"add"` — a **counter** (merge: sum, scaled by the fold weight);
/// * `"set"` — a **gauge**, kept as a high-watermark (merge: max) so the
///   fold stays order-independent;
/// * `"record"` — a **histogram** sample ([`LogHistogram`]).
///
/// Any other field key `k` on an event named `n` bumps the counter `n.k`
/// by the field value — `event!(…, "solve", "expanded" = 40)` lands in
/// counter `solve.expanded`.
///
/// All maps are `BTreeMap`s and all state is integer, so two registries
/// built from the same observations in any fold order serialize to
/// identical JSON.
///
/// # Examples
///
/// ```
/// use obs::Registry;
///
/// let mut a = Registry::new();
/// a.counter_add("dbt.cache.hit", 3);
/// let mut b = Registry::new();
/// b.counter_add("dbt.cache.hit", 4);
/// a.merge(&b);
/// assert_eq!(a.counter("dbt.cache.hit"), 7);
/// ```
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Registry {
    /// Monotonic sums.
    counters: BTreeMap<String, u64>,
    /// High-watermark gauges (merge takes the max).
    gauges: BTreeMap<String, u64>,
    /// Log-bucketed sample distributions.
    histograms: BTreeMap<String, LogHistogram>,
}

impl Registry {
    /// An empty registry (the merge identity).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// `true` if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.counters.is_empty() && self.gauges.is_empty() && self.histograms.is_empty()
    }

    /// Adds `v` to counter `name`.
    pub fn counter_add(&mut self, name: &str, v: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += v;
    }

    /// Raises gauge `name` to at least `v` (high-watermark semantics keep
    /// the merge a monoid).
    pub fn gauge_set(&mut self, name: &str, v: u64) {
        let g = self.gauges.entry(name.to_string()).or_insert(0);
        *g = (*g).max(v);
    }

    /// Records `v` into histogram `name`.
    pub fn histogram_record(&mut self, name: &str, v: u64) {
        self.histograms.entry(name.to_string()).or_default().record(v);
    }

    /// The value of counter `name` (0 if absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// The value of gauge `name` (0 if absent).
    pub fn gauge(&self, name: &str) -> u64 {
        self.gauges.get(name).copied().unwrap_or(0)
    }

    /// The histogram `name`, if any sample was recorded.
    pub fn histogram(&self, name: &str) -> Option<&LogHistogram> {
        self.histograms.get(name)
    }

    /// All counters in name order.
    pub fn counters(&self) -> impl Iterator<Item = (&str, u64)> {
        self.counters.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All gauges in name order.
    pub fn gauges(&self) -> impl Iterator<Item = (&str, u64)> {
        self.gauges.iter().map(|(k, v)| (k.as_str(), *v))
    }

    /// All histograms in name order.
    pub fn histograms(&self) -> impl Iterator<Item = (&str, &LogHistogram)> {
        self.histograms.iter().map(|(k, v)| (k.as_str(), v))
    }

    /// Absorbs `other` scaled by `weight`: counters and histogram counts
    /// multiply by `weight` (one equivalence-class run stands for `weight`
    /// identical devices, exactly like `FleetAccum`), gauges take the max
    /// (a high-watermark does not scale with population).
    pub fn add_scaled(&mut self, other: &Registry, weight: u64) {
        if weight == 0 {
            return;
        }
        for (k, v) in &other.counters {
            *self.counters.entry(k.clone()).or_insert(0) += v * weight;
        }
        for (k, v) in &other.gauges {
            let g = self.gauges.entry(k.clone()).or_insert(0);
            *g = (*g).max(*v);
        }
        for (k, h) in &other.histograms {
            self.histograms.entry(k.clone()).or_default().add_scaled(h, weight);
        }
    }

    /// Absorbs `other`: the monoid operation (associative, commutative,
    /// [`Registry::new`] as identity).
    pub fn merge(&mut self, other: &Registry) {
        self.add_scaled(other, 1);
    }

    /// Renders the registry as an aligned human-readable table (the `diag`
    /// binary's metrics section): counters, then gauges, then histogram
    /// totals with p50/p99, in name order.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .counters
            .keys()
            .chain(self.gauges.keys())
            .chain(self.histograms.keys())
            .map(|k| k.len())
            .max()
            .unwrap_or(6)
            .max(6);
        for (name, v) in &self.counters {
            let _ = writeln!(out, "  {name:<width$}  {v:>14}");
        }
        for (name, v) in &self.gauges {
            let _ = writeln!(out, "  {name:<width$}  {v:>14}  (high-watermark)");
        }
        for (name, h) in &self.histograms {
            let _ = writeln!(
                out,
                "  {name:<width$}  {:>14}  (p50 {}, p99 {})",
                h.total(),
                h.percentile(0.50),
                h.percentile(0.99)
            );
        }
        out
    }
}

/// A [`Subscriber`] that folds events into a [`Registry`] (DESIGN.md §16).
///
/// Spans are accepted but ignored — only [`Profiler`] times them — so a
/// collector observes exactly the event stream, which is what keeps its
/// registry deterministic. Install one per work item with
/// [`tracing::with_default`] (or use [`collect`]) and fold the finished
/// registries in a deterministic order.
#[derive(Clone, Default)]
pub struct MetricsCollector {
    registry: Rc<RefCell<Registry>>,
}

impl MetricsCollector {
    /// A collector over a fresh registry.
    pub fn new() -> MetricsCollector {
        MetricsCollector::default()
    }

    /// A dispatch handle for [`tracing::with_default`].
    pub fn dispatch(&self) -> Dispatch {
        Dispatch::new(self.clone())
    }

    /// Takes the collected registry, leaving an empty one behind.
    pub fn finish(&self) -> Registry {
        std::mem::take(&mut self.registry.borrow_mut())
    }
}

impl Subscriber for MetricsCollector {
    fn new_span(&self, _metadata: &Metadata<'_>) -> SpanId {
        SpanId(0)
    }

    fn enter(&self, _id: SpanId) {}

    fn exit(&self, _id: SpanId) {}

    fn event(&self, event: &Event<'_>) {
        let mut reg = self.registry.borrow_mut();
        let name = event.metadata.name;
        for &(key, value) in event.fields {
            match key {
                "add" => reg.counter_add(name, value),
                "set" => reg.gauge_set(name, value),
                "record" => reg.histogram_record(name, value),
                sub => reg.counter_add(&format!("{name}.{sub}"), value),
            }
        }
    }
}

/// Runs `f` with a fresh [`MetricsCollector`] installed as this thread's
/// subscriber, returning `f`'s result and the collected registry.
///
/// # Examples
///
/// ```
/// use tracing::{event, Level};
///
/// let (sum, reg) = obs::collect(|| {
///     event!(Level::TRACE, "loop.iterations", "add" = 3);
///     1 + 2
/// });
/// assert_eq!(sum, 3);
/// assert_eq!(reg.counter("loop.iterations"), 3);
/// ```
pub fn collect<T>(f: impl FnOnce() -> T) -> (T, Registry) {
    let collector = MetricsCollector::new();
    let out = tracing::with_default(collector.dispatch(), f);
    (out, collector.finish())
}

/// One aggregated span in a [`ProfileReport`]: all entries of the same
/// span name under the same parent share a node.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileTree {
    /// Span name.
    pub name: String,
    /// Times the span was entered.
    pub calls: u64,
    /// Wall-clock nanoseconds inside the span, children included.
    pub total_ns: u64,
    /// Wall-clock nanoseconds minus time spent in child spans.
    pub self_ns: u64,
    /// Child spans in first-entered order.
    pub children: Vec<ProfileTree>,
}

/// The profiler's output (`results/profile.json`): one tree per root
/// span, in first-entered order. Wall-clock times are nondeterministic by
/// nature; this artefact is excluded from the CI determinism diff
/// (DESIGN.md §16).
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Root span trees.
    pub roots: Vec<ProfileTree>,
}

#[derive(Clone, Debug)]
struct ProfNode {
    name: String,
    parent: Option<usize>,
    children: Vec<usize>,
    calls: u64,
    total: Duration,
    child_time: Duration,
}

#[derive(Default)]
struct ProfState {
    nodes: Vec<ProfNode>,
    roots: Vec<usize>,
    /// Entered spans: `(node index, entry instant)`, innermost last.
    stack: Vec<(usize, Instant)>,
}

impl ProfState {
    fn find_or_create(&mut self, name: &str) -> usize {
        let parent = self.stack.last().map(|&(i, _)| i);
        let siblings = match parent {
            Some(p) => &self.nodes[p].children,
            None => &self.roots,
        };
        if let Some(&i) = siblings.iter().find(|&&i| self.nodes[i].name == name) {
            return i;
        }
        let i = self.nodes.len();
        self.nodes.push(ProfNode {
            name: name.to_string(),
            parent,
            children: Vec::new(),
            calls: 0,
            total: Duration::ZERO,
            child_time: Duration::ZERO,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(i),
            None => self.roots.push(i),
        }
        i
    }

    fn tree(&self, i: usize) -> ProfileTree {
        let n = &self.nodes[i];
        let total_ns = n.total.as_nanos() as u64;
        ProfileTree {
            name: n.name.clone(),
            calls: n.calls,
            total_ns,
            self_ns: total_ns.saturating_sub(n.child_time.as_nanos() as u64),
            children: n.children.iter().map(|&c| self.tree(c)).collect(),
        }
    }
}

/// A [`Subscriber`] that aggregates wall-clock self/total time per span
/// subtree. Install it on the coordinating thread around campaign or
/// experiment phases; worker threads carry [`MetricsCollector`]s instead
/// (DESIGN.md §16).
///
/// # Examples
///
/// ```
/// use tracing::{span, Level};
///
/// let profiler = obs::Profiler::new();
/// tracing::with_default(profiler.dispatch(), || {
///     let _phase = span!(Level::INFO, "phase.demo").entered();
/// });
/// let report = profiler.report();
/// assert_eq!(report.roots[0].name, "phase.demo");
/// assert_eq!(report.roots[0].calls, 1);
/// ```
#[derive(Clone, Default)]
pub struct Profiler {
    state: Rc<RefCell<ProfState>>,
}

impl Profiler {
    /// A profiler with no recorded spans.
    pub fn new() -> Profiler {
        Profiler::default()
    }

    /// A dispatch handle for [`tracing::with_default`].
    pub fn dispatch(&self) -> Dispatch {
        Dispatch::new(self.clone())
    }

    /// The aggregated span trees recorded so far.
    pub fn report(&self) -> ProfileReport {
        let state = self.state.borrow();
        ProfileReport { roots: state.roots.iter().map(|&i| state.tree(i)).collect() }
    }
}

impl Subscriber for Profiler {
    fn new_span(&self, metadata: &Metadata<'_>) -> SpanId {
        SpanId(self.state.borrow_mut().find_or_create(metadata.name) as u64)
    }

    fn enter(&self, id: SpanId) {
        self.state.borrow_mut().stack.push((id.0 as usize, Instant::now()));
    }

    fn exit(&self, _id: SpanId) {
        let mut state = self.state.borrow_mut();
        let Some((i, start)) = state.stack.pop() else { return };
        let elapsed = start.elapsed();
        state.nodes[i].calls += 1;
        state.nodes[i].total += elapsed;
        if let Some(p) = state.nodes[i].parent {
            state.nodes[p].child_time += elapsed;
        }
    }

    fn event(&self, _event: &Event<'_>) {}
}

/// The process-global registry the experiment binaries snapshot into
/// `results/metrics.json` (DESIGN.md §16).
///
/// Runners (the sweep and campaign drivers in `transrec`) fold each
/// finished work-item registry here. Because every fold is a commutative monoid
/// operation over integer state, the final snapshot is identical no matter
/// which worker finished first — the binaries only need
/// [`reset`](global::reset) once at startup and
/// [`snapshot`](global::snapshot) at the end.
pub mod global {
    use super::Registry;
    use std::sync::{Mutex, OnceLock};

    fn cell() -> &'static Mutex<Registry> {
        static GLOBAL: OnceLock<Mutex<Registry>> = OnceLock::new();
        GLOBAL.get_or_init(|| Mutex::new(Registry::new()))
    }

    /// Clears the global registry (call once at binary startup).
    pub fn reset() {
        *cell().lock().expect("global registry poisoned") = Registry::new();
    }

    /// Folds `registry` into the global one.
    pub fn fold(registry: &Registry) {
        cell().lock().expect("global registry poisoned").merge(registry);
    }

    /// A copy of the global registry's current state.
    pub fn snapshot() -> Registry {
        cell().lock().expect("global registry poisoned").clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tracing::{event, span, Level};

    #[test]
    fn bucketing_matches_the_latency_scheme() {
        for v in 0..8 {
            assert_eq!(log_bucket(v), v as u32);
            assert_eq!(log_bucket_floor(log_bucket(v)), v, "small values are exact");
        }
        for v in [8u64, 9, 100, 1_000, 65_535, 1 << 40] {
            let floor = log_bucket_floor(log_bucket(v));
            assert!(floor <= v, "floor {floor} must not exceed {v}");
            assert!(v - floor <= v / 8, "≤ 12.5% relative error for {v}");
        }
        // Bucket indexes are monotone in the value.
        let mut last = 0;
        for v in 0..100_000u64 {
            let b = log_bucket(v);
            assert!(b >= last);
            last = b;
        }
    }

    #[test]
    fn registry_instruments_and_lookups() {
        let mut r = Registry::new();
        r.counter_add("a.hits", 2);
        r.counter_add("a.hits", 3);
        r.gauge_set("a.depth", 4);
        r.gauge_set("a.depth", 2);
        r.histogram_record("a.lat", 100);
        assert_eq!(r.counter("a.hits"), 5);
        assert_eq!(r.gauge("a.depth"), 4, "gauges are high-watermarks");
        assert_eq!(r.histogram("a.lat").unwrap().total(), 1);
        assert_eq!(r.counter("absent"), 0);
        assert!(!r.is_empty());
        let table = r.render_table();
        assert!(table.contains("a.hits"), "table renders counters:\n{table}");
        assert!(table.contains("high-watermark"), "table marks gauges:\n{table}");
    }

    #[test]
    fn add_scaled_multiplies_counts_but_not_gauges() {
        let mut item = Registry::new();
        item.counter_add("c", 3);
        item.gauge_set("g", 7);
        item.histogram_record("h", 5);
        let mut fold = Registry::new();
        fold.add_scaled(&item, 1000);
        assert_eq!(fold.counter("c"), 3000);
        assert_eq!(fold.gauge("g"), 7);
        assert_eq!(fold.histogram("h").unwrap().total(), 1000);
        fold.add_scaled(&item, 0);
        assert_eq!(fold.counter("c"), 3000, "zero weight is a no-op");
    }

    #[test]
    fn collector_routes_fields_to_instruments() {
        let ((), reg) = collect(|| {
            event!(Level::TRACE, "dbt.cache.hit", "add" = 1);
            event!(Level::TRACE, "dbt.cache.hit", "add" = 1);
            event!(Level::TRACE, "queue.depth", "set" = 9);
            event!(Level::TRACE, "step.cycles", "record" = 250);
            event!(Level::TRACE, "solve", "expanded" = 40, "nogoods" = 2);
        });
        assert_eq!(reg.counter("dbt.cache.hit"), 2);
        assert_eq!(reg.gauge("queue.depth"), 9);
        assert_eq!(reg.histogram("step.cycles").unwrap().total(), 1);
        assert_eq!(reg.counter("solve.expanded"), 40, "bare keys become sub-counters");
        assert_eq!(reg.counter("solve.nogoods"), 2);
    }

    #[test]
    fn profiler_builds_a_self_total_tree() {
        let profiler = Profiler::new();
        tracing::with_default(profiler.dispatch(), || {
            let _outer = span!(Level::INFO, "outer").entered();
            std::thread::sleep(Duration::from_millis(2));
            for _ in 0..2 {
                let _inner = span!(Level::INFO, "inner").entered();
                std::thread::sleep(Duration::from_millis(1));
            }
        });
        let report = profiler.report();
        assert_eq!(report.roots.len(), 1);
        let outer = &report.roots[0];
        assert_eq!((outer.name.as_str(), outer.calls), ("outer", 1));
        assert_eq!(outer.children.len(), 1, "same-name spans share a node");
        let inner = &outer.children[0];
        assert_eq!((inner.name.as_str(), inner.calls), ("inner", 2));
        assert!(outer.total_ns >= inner.total_ns);
        assert!(outer.self_ns <= outer.total_ns - inner.total_ns + 1);
    }

    #[test]
    fn global_fold_accumulates_and_resets() {
        // Serialize access: other tests do not touch the global registry.
        let mut r = Registry::new();
        r.counter_add("global.test.counter", 2);
        global::reset();
        global::fold(&r);
        global::fold(&r);
        assert_eq!(global::snapshot().counter("global.test.counter"), 4);
        global::reset();
        assert!(global::snapshot().is_empty());
    }
}
