//! Property tests for [`nbti::WearState`] (DESIGN.md §11): the
//! equivalent-age composition must be order-invariant, monotone in both
//! time and duty, and collapse to the closed-form [`CalibratedAging`]
//! curve at constant duty.

use proptest::prelude::*;

use nbti::{CalibratedAging, WearState};

fn any_aging() -> impl Strategy<Value = CalibratedAging> {
    // Sweep the calibration too: EOL limit, anchor and exponent all vary.
    ((0.05f64..=0.2), (1.0f64..=5.0), (4u32..=8)).prop_map(|(eol, anchor, inv_exp)| {
        CalibratedAging {
            eol_delay_frac: eol,
            anchor_years: anchor,
            exponent: 1.0 / inv_exp as f64,
        }
    })
}

/// `(dt_years, duty)` epochs, the raw material of every property below.
fn any_epochs() -> impl Strategy<Value = Vec<(f64, f64)>> {
    proptest::collection::vec(((0.01f64..=2.0), (0.0f64..=1.0)), 1..=24)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn constant_duty_matches_the_closed_form(
        aging in any_aging(),
        duty in 0.01f64..=1.0,
        slices in proptest::collection::vec(0.01f64..=1.5, 1..=32),
    ) {
        // Advancing slice by slice at one duty must land exactly on the
        // analytic curve evaluated at the total time.
        let mut wear = WearState::new(aging);
        let mut total = 0.0;
        for dt in slices {
            wear.advance(dt, duty);
            total += dt;
        }
        let direct = aging.delay_increase(total, duty);
        prop_assert!((wear.delay_frac() - direct).abs() < 1e-9,
            "composed {} vs closed-form {}", wear.delay_frac(), direct);
        prop_assert!((wear.effective_age() - total * duty).abs() < 1e-9);
    }

    #[test]
    fn composition_is_order_invariant(
        aging in any_aging(),
        epochs in any_epochs(),
    ) {
        // Wear is a function of the epoch *multiset*, not the schedule:
        // replaying the epochs in reverse gives the same state.
        let mut forward = WearState::new(aging);
        for &(dt, u) in &epochs {
            forward.advance(dt, u);
        }
        let mut backward = WearState::new(aging);
        for &(dt, u) in epochs.iter().rev() {
            backward.advance(dt, u);
        }
        prop_assert!((forward.effective_age() - backward.effective_age()).abs() < 1e-9,
            "forward {} vs backward {}", forward.effective_age(), backward.effective_age());
        prop_assert!((forward.delay_frac() - backward.delay_frac()).abs() < 1e-9);
    }

    #[test]
    fn wear_is_monotone_in_time_and_duty(
        aging in any_aging(),
        epochs in any_epochs(),
        dt in 0.01f64..=2.0,
        (u_lo, u_hi) in (0.0f64..=1.0, 0.0f64..=1.0),
    ) {
        // From any reachable state, more time never reduces wear …
        let mut base = WearState::new(aging);
        for &(e_dt, e_u) in &epochs {
            base.advance(e_dt, e_u);
        }
        let mut later = base;
        later.advance(dt, 0.5);
        prop_assert!(later.delay_frac() >= base.delay_frac());
        prop_assert!(later.effective_age() >= base.effective_age());
        // … and a higher duty over the same epoch never ages less.
        let (u_lo, u_hi) = if u_lo <= u_hi { (u_lo, u_hi) } else { (u_hi, u_lo) };
        let mut gentle = base;
        gentle.advance(dt, u_lo);
        let mut harsh = base;
        harsh.advance(dt, u_hi);
        prop_assert!(harsh.delay_frac() >= gentle.delay_frac() - 1e-12,
            "duty {} aged less than duty {}", u_hi, u_lo);
    }

    #[test]
    fn remaining_years_is_consistent_with_advance(
        aging in any_aging(),
        epochs in any_epochs(),
        duty in 0.01f64..=1.0,
    ) {
        // Running out the predicted remaining time at `duty` lands exactly
        // on end of life.
        let mut wear = WearState::new(aging);
        for &(dt, u) in &epochs {
            wear.advance(dt, u);
        }
        let remaining = wear.remaining_years(duty);
        if remaining == 0.0 {
            prop_assert!(wear.is_end_of_life());
        } else {
            wear.advance(remaining, duty);
            prop_assert!(wear.is_end_of_life());
            prop_assert!((wear.delay_frac() - aging.eol_delay_frac).abs() < 1e-9);
        }
    }
}
