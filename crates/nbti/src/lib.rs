//! # nbti — Negative-Bias Temperature Instability aging model
//!
//! Implements the predictive NBTI model the paper uses (its Eq. 1, from
//! Henkel et al., ASP-DAC'13):
//!
//! ```text
//! ΔVt = 0.005 · e^(−1500/T) · Vdd⁴ · t^(1/6) · u^(1/6)
//! ```
//!
//! where `T` is the temperature in Kelvin, `Vdd` the operating voltage, `t`
//! the elapsed time and `u` the duty cycle (≡ the utilization rate of a
//! functional unit). The increase in delay is approximated to first order as
//! the relative increase in Vt.
//!
//! Two views are provided:
//!
//! * [`NbtiModel`] — the raw physical formula, for sensitivity studies.
//! * [`CalibratedAging`] — the paper's evaluation calibration: the delay
//!   degradation of a *fully utilized* unit reaches the end-of-life limit
//!   (10%) after exactly the anchor time (3 years), matching the worst-case
//!   estimates of Tiwari & Torrellas (MICRO'08) the paper cites. Under this
//!   calibration the lifetime of a unit with utilization `u` is
//!   `anchor / u`, so the paper's lifetime improvement equals the ratio of
//!   worst-case utilizations — the property Table I is built on.
//!
//! # Examples
//!
//! ```
//! use nbti::CalibratedAging;
//!
//! let aging = CalibratedAging::default();          // 10% after 3 years at u=1
//! assert!((aging.lifetime_years(1.0) - 3.0).abs() < 1e-12);
//! // Paper Table I, BE scenario: 94.5% worst utilization (baseline)
//! // vs 41.1% (proposed) gives a 2.29x lifetime improvement.
//! let improvement = aging.lifetime_improvement(0.945, 0.411);
//! assert!((improvement - 2.29).abs() < 0.01);
//! ```

#![warn(missing_docs)]

use serde::{Deserialize, Serialize};

/// The raw predictive NBTI model (paper Eq. 1).
///
/// Produces the long-term threshold-voltage increase `ΔVt` in volts. The
/// time unit is years (the constant prefactor absorbs the unit choice; the
/// evaluation only ever uses calibrated or relative quantities).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct NbtiModel {
    /// Operating voltage in volts (NanGate 15 nm nominal: 0.8 V).
    pub vdd: f64,
    /// Temperature in Kelvin (embedded operating point: 330 K).
    pub temp_k: f64,
    /// Nominal threshold voltage in volts, used to map ΔVt to relative delay.
    pub vt_nominal: f64,
    /// Model prefactor (paper: 0.005).
    pub prefactor: f64,
    /// Thermal activation constant in Kelvin (paper: 1500).
    pub activation_k: f64,
    /// Time exponent (paper: 1/6).
    pub time_exp: f64,
    /// Duty-cycle exponent (paper: 1/6).
    pub duty_exp: f64,
}

impl Default for NbtiModel {
    fn default() -> NbtiModel {
        NbtiModel {
            vdd: 0.8,
            temp_k: 330.0,
            vt_nominal: 0.40,
            prefactor: 0.005,
            activation_k: 1500.0,
            time_exp: 1.0 / 6.0,
            duty_exp: 1.0 / 6.0,
        }
    }
}

impl NbtiModel {
    /// Threshold-voltage increase ΔVt (volts) after `t_years` at duty cycle
    /// `u` ∈ [0, 1].
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1]` or `t_years` is negative.
    pub fn delta_vt(&self, t_years: f64, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "duty cycle {u} outside [0, 1]");
        assert!(t_years >= 0.0, "negative time {t_years}");
        self.prefactor
            * (-self.activation_k / self.temp_k).exp()
            * self.vdd.powi(4)
            * t_years.powf(self.time_exp)
            * u.powf(self.duty_exp)
    }

    /// First-order relative delay increase: `ΔVt / Vt_nominal`.
    pub fn delay_increase(&self, t_years: f64, u: f64) -> f64 {
        self.delta_vt(t_years, u) / self.vt_nominal
    }
}

/// End-of-life–calibrated aging model used by the paper's evaluation.
///
/// Calibration: a unit stressed at `u = 1` reaches `eol_delay_frac`
/// (default 10%) delay degradation after `anchor_years` (default 3 years).
/// Because ΔVt scales as `(t·u)^(1/6)`, degradation is then
///
/// ```text
/// Δd(t, u) = eol_delay_frac · (t·u / anchor_years)^(1/6)
/// ```
///
/// and the lifetime (time to reach `eol_delay_frac`) is `anchor_years / u`.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CalibratedAging {
    /// Delay-degradation fraction that defines end of life (paper: 0.10).
    pub eol_delay_frac: f64,
    /// Years to reach end of life at u = 1 (paper: 3, per its refs \[23\], \[34\]).
    pub anchor_years: f64,
    /// Combined time/duty exponent (paper: 1/6).
    pub exponent: f64,
}

impl Default for CalibratedAging {
    fn default() -> CalibratedAging {
        CalibratedAging { eol_delay_frac: 0.10, anchor_years: 3.0, exponent: 1.0 / 6.0 }
    }
}

impl CalibratedAging {
    /// Relative delay degradation after `t_years` at utilization `u`.
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1]` or `t_years` is negative.
    pub fn delay_increase(&self, t_years: f64, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "utilization {u} outside [0, 1]");
        assert!(t_years >= 0.0, "negative time {t_years}");
        self.eol_delay_frac * (t_years * u / self.anchor_years).powf(self.exponent)
    }

    /// Years until the unit reaches the end-of-life degradation.
    ///
    /// Returns `f64::INFINITY` for `u = 0` (a never-stressed unit never ages
    /// under this model).
    ///
    /// # Panics
    ///
    /// Panics if `u` is outside `[0, 1]`.
    pub fn lifetime_years(&self, u: f64) -> f64 {
        assert!((0.0..=1.0).contains(&u), "utilization {u} outside [0, 1]");
        if u == 0.0 {
            f64::INFINITY
        } else {
            self.anchor_years / u
        }
    }

    /// Lifetime improvement factor of an allocation whose worst-case (most
    /// stressed FU) utilization is `u_proposed` over one whose worst case is
    /// `u_baseline`.
    ///
    /// Equals `u_baseline / u_proposed`; this is exactly how the paper's
    /// Table I numbers follow from its Fig. 7/8 utilizations.
    ///
    /// # Panics
    ///
    /// Panics if either utilization is outside `(0, 1]`.
    pub fn lifetime_improvement(&self, u_baseline: f64, u_proposed: f64) -> f64 {
        assert!(u_baseline > 0.0 && u_baseline <= 1.0, "u_baseline out of range");
        assert!(u_proposed > 0.0 && u_proposed <= 1.0, "u_proposed out of range");
        self.lifetime_years(u_proposed) / self.lifetime_years(u_baseline)
    }

    /// Samples the delay-degradation curve at `points` evenly spaced times in
    /// `[0, horizon_years]` (paper Fig. 8, bottom).
    ///
    /// # Panics
    ///
    /// Panics if `points < 2`.
    pub fn delay_curve(&self, u: f64, horizon_years: f64, points: usize) -> DelayCurve {
        assert!(points >= 2, "need at least two sample points");
        let samples = (0..points)
            .map(|i| {
                let t = horizon_years * i as f64 / (points - 1) as f64;
                (t, self.delay_increase(t, u))
            })
            .collect();
        DelayCurve { utilization: u, samples }
    }
}

/// Persistent NBTI wear of one functional unit (DESIGN.md §11).
///
/// [`CalibratedAging`] answers "how degraded is a unit after `t` years at
/// constant duty `u`?" — a single analytic shot. A real deployment is a
/// *sequence* of epochs at different duty cycles, and because degradation
/// follows `(t·u)^(1/6)`, per-epoch delay increments must **not** be added:
/// the curve flattens with age, so the same epoch contributes less delay to
/// an old unit than to a fresh one. `WearState` composes epochs with the
/// standard *equivalent-age transform* instead: before each epoch, convert
/// the accumulated degradation into the time `t_eq` at which a unit running
/// at the epoch's duty would show that degradation, then advance the curve
/// from `t_eq` to `t_eq + dt`.
///
/// For this model the transform has a closed form — the state collapses to
/// an *effective age* `a = Σ dtᵢ·uᵢ` (equivalent years of continuous full
/// stress), with `Δd = eol·(a/anchor)^(1/6)` — which the property tests use
/// as a cross-check: [`advance`](WearState::advance) at constant duty must
/// match [`CalibratedAging::delay_increase`] to 1e-9, and slice order must
/// not matter.
///
/// # Examples
///
/// ```
/// use nbti::{CalibratedAging, WearState};
///
/// let aging = CalibratedAging::default();
/// let mut wear = WearState::new(aging);
/// // Two years at 50% duty, then one year at full stress …
/// wear.advance(2.0, 0.5);
/// wear.advance(1.0, 1.0);
/// // … is the same wear as two years of continuous full stress.
/// assert!((wear.effective_age() - 2.0).abs() < 1e-9);
/// assert!((wear.delay_frac() - aging.delay_increase(2.0, 1.0)).abs() < 1e-9);
/// assert!(!wear.is_end_of_life());
/// wear.advance(1.5, 1.0); // past the 3-year anchor
/// assert!(wear.is_end_of_life());
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WearState {
    aging: CalibratedAging,
    /// Equivalent years of continuous full stress (`u = 1`).
    effective_age: f64,
}

impl WearState {
    /// A pristine unit aging under `aging`'s calibration.
    pub fn new(aging: CalibratedAging) -> WearState {
        WearState { aging, effective_age: 0.0 }
    }

    /// The calibration this wear accumulates under.
    pub fn aging(&self) -> &CalibratedAging {
        &self.aging
    }

    /// Equivalent years of continuous full stress (`u = 1`) accumulated so
    /// far. A unit at constant duty `u` for `t` years has effective age
    /// `t·u`.
    pub fn effective_age(&self) -> f64 {
        self.effective_age
    }

    /// Reconstructs a wear state from a previously observed
    /// [`effective_age`](WearState::effective_age) — the inverse of reading
    /// the state out. This is how the columnar `WearBatch` slab
    /// (DESIGN.md §12) converts a raw `f64` cell back into a typed state
    /// for reporting.
    ///
    /// # Panics
    ///
    /// Panics if `effective_age` is negative or not finite.
    pub fn from_effective_age(aging: CalibratedAging, effective_age: f64) -> WearState {
        assert!(
            effective_age >= 0.0 && effective_age.is_finite(),
            "effective age {effective_age} must be non-negative and finite"
        );
        WearState { aging, effective_age }
    }

    /// Advances the wear by one epoch of `dt_years` at duty cycle `duty`,
    /// composing with the accumulated degradation via the equivalent-age
    /// transform (DESIGN.md §11): solve
    /// `delay_increase(t_eq, duty) = delay_frac()` for `t_eq`, then move the
    /// constant-duty curve from `t_eq` to `t_eq + dt_years`. For this
    /// separable model the transform has a closed form — the effective age
    /// is simply `Σ dtᵢ·uᵢ` — so the composition is one multiply-add, the
    /// exact arithmetic the columnar `WearBatch` slab performs per cell
    /// (bit-identical by construction, DESIGN.md §12).
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]` or `dt_years` is negative.
    pub fn advance(&mut self, dt_years: f64, duty: f64) {
        assert!((0.0..=1.0).contains(&duty), "duty cycle {duty} outside [0, 1]");
        assert!(dt_years >= 0.0, "negative epoch {dt_years}");
        // Closed form of the equivalent-age transform: inverting
        // Δd = eol·(a/anchor)^k around the constant-duty curve collapses to
        // a += dt·u (adding 0.0 for idle/zero-length epochs is exact, since
        // the age is never negative zero).
        self.effective_age += dt_years * duty;
    }

    /// Relative delay degradation accumulated so far.
    pub fn delay_frac(&self) -> f64 {
        self.aging.delay_increase(self.effective_age, 1.0)
    }

    /// `true` once the degradation has reached the end-of-life limit.
    ///
    /// Because `Δd = eol·(a/anchor)^k` is strictly monotone in the
    /// effective age `a`, the limit is crossed exactly when `a` reaches the
    /// anchor — an exact comparison with no `powf` on the hot path
    /// (DESIGN.md §12).
    pub fn is_end_of_life(&self) -> bool {
        self.effective_age >= self.aging.anchor_years
    }

    /// Years of further operation at constant `duty` until end of life
    /// (0 if already past it, `f64::INFINITY` for `duty = 0`).
    ///
    /// # Panics
    ///
    /// Panics if `duty` is outside `[0, 1]`.
    pub fn remaining_years(&self, duty: f64) -> f64 {
        assert!((0.0..=1.0).contains(&duty), "duty cycle {duty} outside [0, 1]");
        let headroom = (self.aging.anchor_years - self.effective_age).max(0.0);
        if headroom == 0.0 {
            0.0
        } else if duty == 0.0 {
            f64::INFINITY
        } else {
            headroom / duty
        }
    }
}

/// A sampled delay-degradation-over-time series (one curve of Fig. 8).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DelayCurve {
    /// The utilization the curve was generated for.
    pub utilization: f64,
    /// `(t_years, delay_increase_fraction)` samples.
    pub samples: Vec<(f64, f64)>,
}

impl DelayCurve {
    /// First sampled time at which degradation reaches `frac`, if any.
    pub fn time_to_reach(&self, frac: f64) -> Option<f64> {
        self.samples.iter().find(|(_, d)| *d >= frac).map(|(t, _)| *t)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_model_monotonic() {
        let m = NbtiModel::default();
        assert!(m.delta_vt(1.0, 0.5) < m.delta_vt(2.0, 0.5), "monotonic in time");
        assert!(m.delta_vt(1.0, 0.2) < m.delta_vt(1.0, 0.8), "monotonic in duty");
        let hot = NbtiModel { temp_k: 360.0, ..NbtiModel::default() };
        assert!(m.delta_vt(1.0, 0.5) < hot.delta_vt(1.0, 0.5), "hotter ages faster");
        let high_v = NbtiModel { vdd: 1.0, ..NbtiModel::default() };
        assert!(m.delta_vt(1.0, 0.5) < high_v.delta_vt(1.0, 0.5), "higher Vdd ages faster");
    }

    #[test]
    fn raw_model_zero_boundaries() {
        let m = NbtiModel::default();
        assert_eq!(m.delta_vt(0.0, 1.0), 0.0);
        assert_eq!(m.delta_vt(10.0, 0.0), 0.0);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn raw_model_rejects_bad_duty() {
        NbtiModel::default().delta_vt(1.0, 1.5);
    }

    #[test]
    fn calibration_anchor() {
        let a = CalibratedAging::default();
        assert!((a.delay_increase(3.0, 1.0) - 0.10).abs() < 1e-12);
        assert!((a.lifetime_years(1.0) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn paper_table1_improvements() {
        let a = CalibratedAging::default();
        // (baseline worst util, proposed worst util, paper improvement)
        for (base, prop, expect) in
            [(0.945, 0.411, 2.29), (0.981, 0.224, 4.37), (0.981, 0.123, 7.97)]
        {
            let got = a.lifetime_improvement(base, prop);
            assert!((got - expect).abs() < 0.02, "expected {expect}, got {got}");
        }
    }

    #[test]
    fn paper_section_va_claim_7_years_not_3() {
        // "the system presents a performance degradation of 10% only in 7
        // years rather than in 3" (BE scenario).
        let a = CalibratedAging::default();
        let baseline_life = a.lifetime_years(0.945);
        let proposed_life = a.lifetime_years(0.411);
        assert!((3.0..4.0).contains(&baseline_life));
        assert!((7.0..8.0).contains(&proposed_life));
    }

    #[test]
    fn degradation_at_lifetime_equals_limit() {
        let a = CalibratedAging::default();
        for u in [0.05, 0.3, 0.7, 1.0] {
            let t = a.lifetime_years(u);
            assert!((a.delay_increase(t, u) - a.eol_delay_frac).abs() < 1e-12);
        }
    }

    #[test]
    fn zero_utilization_never_dies() {
        let a = CalibratedAging::default();
        assert_eq!(a.lifetime_years(0.0), f64::INFINITY);
        assert_eq!(a.delay_increase(100.0, 0.0), 0.0);
    }

    #[test]
    fn curve_reaches_limit() {
        let a = CalibratedAging::default();
        let c = a.delay_curve(0.5, 10.0, 101);
        assert_eq!(c.samples.len(), 101);
        let t = c.time_to_reach(0.10).expect("reaches EOL inside horizon");
        assert!((t - a.lifetime_years(0.5)).abs() < 0.2, "t={t}");
        assert!(c.time_to_reach(0.5).is_none());
    }

    #[test]
    fn wear_state_constant_duty_matches_closed_form() {
        let aging = CalibratedAging::default();
        for duty in [0.05, 0.3, 0.7, 1.0] {
            let mut wear = WearState::new(aging);
            // 40 quarter-year epochs at constant duty …
            for _ in 0..40 {
                wear.advance(0.25, duty);
            }
            // … equal one 10-year analytic shot.
            let direct = aging.delay_increase(10.0, duty);
            assert!((wear.delay_frac() - direct).abs() < 1e-9, "duty {duty}");
            assert!((wear.effective_age() - 10.0 * duty).abs() < 1e-9);
        }
    }

    #[test]
    fn wear_state_eol_at_the_anchor() {
        let aging = CalibratedAging::default();
        let mut wear = WearState::new(aging);
        wear.advance(aging.anchor_years - 0.01, 1.0);
        assert!(!wear.is_end_of_life());
        assert!((wear.remaining_years(1.0) - 0.01).abs() < 1e-9);
        assert!((wear.remaining_years(0.5) - 0.02).abs() < 1e-9);
        wear.advance(0.01, 1.0);
        assert!(wear.is_end_of_life());
        assert_eq!(wear.remaining_years(1.0), 0.0);
        assert_eq!(wear.remaining_years(0.0), 0.0, "a dead unit has no headroom left");
    }

    #[test]
    fn wear_state_zero_duty_never_ages() {
        let mut wear = WearState::new(CalibratedAging::default());
        wear.advance(100.0, 0.0);
        assert_eq!(wear.effective_age(), 0.0);
        assert_eq!(wear.delay_frac(), 0.0);
        assert_eq!(wear.remaining_years(0.0), f64::INFINITY);
    }

    #[test]
    #[should_panic(expected = "duty cycle")]
    fn wear_state_rejects_bad_duty() {
        WearState::new(CalibratedAging::default()).advance(1.0, 1.5);
    }

    #[test]
    fn raw_and_calibrated_agree_on_ratios() {
        // The improvement factor is model-independent: it relies only on the
        // (t·u)^k structure shared by both formulations.
        let raw = NbtiModel::default();
        let (u1, u2) = (0.9, 0.3);
        let d1 = raw.delta_vt(1.0, u1);
        let d2 = raw.delta_vt(1.0, u2);
        // delta ∝ (t·u)^(1/6)  =>  (d1/d2)^6 = u1/u2.
        let ratio = (d1 / d2).powf(6.0);
        assert!((ratio - u1 / u2).abs() < 1e-9);
    }
}
