//! Property tests for the [`FleetAccum`] merge monoid (DESIGN.md §12):
//! `merge` must be associative and commutative with [`FleetAccum::new`] as
//! identity, any shard split of an observation list must finalize to the
//! byte-identical [`SurvivalCurve`]/[`FleetStats`], and the finalized curve
//! must equal [`SurvivalCurve::from_deaths`] exactly. These are the
//! algebraic facts the sharded fleet engine's split-invariance rides on.

use proptest::prelude::*;

use lifetime::{FleetAccum, FleetStats, SurvivalCurve};

const HORIZON: f64 = 20.0;
const BINS: usize = 8;

/// Per-device `(death_time, first_fu_failure)` observations. The 2-bit tag
/// picks which of the two happened; duplicated times (quantized to a
/// 0.25-year grid half the time) exercise the multiset count paths.
fn any_observations() -> impl Strategy<Value = Vec<(Option<f64>, Option<f64>)>> {
    proptest::collection::vec(
        ((0u32..=3), (0.0f64..=HORIZON), (0.0f64..=HORIZON), (0u32..=1)),
        0..=48,
    )
    .prop_map(|raw| {
        raw.into_iter()
            .map(|(tag, death, first, snap)| {
                let quantize = |t: f64| if snap == 1 { (t * 4.0).floor() / 4.0 } else { t };
                (
                    ((tag & 1) == 1).then(|| quantize(death)),
                    ((tag & 2) == 2).then(|| quantize(first)),
                )
            })
            .collect::<Vec<_>>()
    })
}

/// Folds a slice of observations into a fresh accumulator.
fn fold(observations: &[(Option<f64>, Option<f64>)]) -> FleetAccum {
    let mut accum = FleetAccum::new();
    for &(death, first) in observations {
        accum.observe(death, first);
    }
    accum
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn merge_is_associative_and_commutative_with_identity(
        a in any_observations(),
        b in any_observations(),
        c in any_observations(),
    ) {
        let (a, b, c) = (fold(&a), fold(&b), fold(&c));
        // (a · b) · c == a · (b · c)
        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        prop_assert_eq!(&left, &right);
        // a · b == b · a
        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        prop_assert_eq!(&ab, &ba);
        // a · e == e · a == a
        let mut with_identity = a.clone();
        with_identity.merge(&FleetAccum::new());
        prop_assert_eq!(&with_identity, &a);
        let mut identity_first = FleetAccum::new();
        identity_first.merge(&a);
        prop_assert_eq!(&identity_first, &a);
    }

    #[test]
    fn every_shard_split_finalizes_byte_identically(
        observations in any_observations(),
        cuts in proptest::collection::vec(0usize..=48, 0..=4),
    ) {
        // Fold the whole list at once, then fold it shard by shard at the
        // randomized cut points and merge — the accumulators, the curve and
        // the stats must agree not just in value but in serialized bytes
        // (the survival.json guarantee).
        let whole = fold(&observations);
        let mut cuts: Vec<usize> = cuts.into_iter().map(|c| c.min(observations.len())).collect();
        cuts.sort_unstable();
        let mut sharded = FleetAccum::new();
        let mut start = 0;
        for cut in cuts.into_iter().chain([observations.len()]) {
            sharded.merge(&fold(&observations[start..cut]));
            start = cut;
        }
        prop_assert_eq!(&sharded, &whole);
        let whole_curve = serde_json::to_string(&whole.survival(HORIZON)).unwrap();
        let sharded_curve = serde_json::to_string(&sharded.survival(HORIZON)).unwrap();
        prop_assert_eq!(whole_curve, sharded_curve);
        let whole_stats = serde_json::to_string(&whole.stats(HORIZON, BINS)).unwrap();
        let sharded_stats = serde_json::to_string(&sharded.stats(HORIZON, BINS)).unwrap();
        prop_assert_eq!(whole_stats, sharded_stats);
    }

    #[test]
    fn finalized_curve_equals_the_reference_constructors(
        observations in any_observations(),
    ) {
        let accum = fold(&observations);
        let deaths: Vec<Option<f64>> = observations.iter().map(|(d, _)| *d).collect();
        let firsts: Vec<Option<f64>> = observations.iter().map(|(_, f)| *f).collect();
        // The survival curve is the exact same arithmetic as from_deaths:
        // equal in every point bit (PartialEq on f64 pairs) and in bytes.
        let curve = accum.survival(HORIZON);
        let reference = SurvivalCurve::from_deaths(&deaths, HORIZON);
        prop_assert_eq!(&curve, &reference);
        prop_assert_eq!(
            serde_json::to_string(&curve).unwrap(),
            serde_json::to_string(&reference).unwrap()
        );
        // Stats agree exactly on every count; the MTTF sum runs in multiset
        // order rather than device order, so it agrees to rounding only.
        let stats = accum.stats(HORIZON, BINS);
        let reference = FleetStats::from_observations(&deaths, &firsts, HORIZON, BINS);
        prop_assert_eq!(stats.devices, reference.devices);
        prop_assert_eq!(stats.deaths, reference.deaths);
        prop_assert_eq!(stats.earliest_death_years, reference.earliest_death_years);
        prop_assert_eq!(&stats.first_failure_counts, &reference.first_failure_counts);
        prop_assert!((stats.mttf_years - reference.mttf_years).abs() <= 1e-9,
            "mttf {} vs reference {}", stats.mttf_years, reference.mttf_years);
    }

    #[test]
    fn weighted_classes_match_their_expanded_fleets(
        death in 0.0f64..=HORIZON,
        first in 0.0f64..=HORIZON,
        count in 1u64..=64,
    ) {
        // The equivalence-class fast path: one weighted observation is the
        // same monoid element as `count` devices observed one by one.
        let mut weighted = FleetAccum::new();
        weighted.observe_weighted(Some(death), Some(first), count);
        let mut expanded = FleetAccum::new();
        for _ in 0..count {
            expanded.observe(Some(death), Some(first));
        }
        prop_assert_eq!(&weighted, &expanded);
        prop_assert_eq!(
            serde_json::to_string(&weighted.survival(HORIZON)).unwrap(),
            serde_json::to_string(&expanded.survival(HORIZON)).unwrap()
        );
    }
}
