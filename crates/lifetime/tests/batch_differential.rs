//! Differential property tests for the columnar fleet batch
//! (DESIGN.md §12): a [`WearBatch`] lane driven through any randomized
//! mission schedule must be **bit-identical** to a [`DeviceLifetime`]
//! driven through the same schedule — per-FU effective ages, elapsed
//! time, mission counters, and every reported end-of-life crossing
//! including its interpolated `at_years` instant. The batch is only
//! allowed to be a faster layout, never a different model.

use proptest::prelude::*;

use cgra::Fabric;
use lifetime::{DeviceLifetime, FuFailed, WearBatch};
use nbti::CalibratedAging;
use uaware::UtilizationGrid;

/// One randomized fleet scenario: fabric geometry, aging calibration and a
/// mission schedule of `(per-FU duty values, mission years)` epochs.
#[derive(Clone, Debug)]
struct Scenario {
    rows: u32,
    cols: u32,
    aging: CalibratedAging,
    missions: Vec<(Vec<f64>, f64)>,
}

impl Scenario {
    fn fabric(&self) -> Fabric {
        Fabric::new(self.rows, self.cols)
    }

    fn duty(&self, values: &[f64]) -> UtilizationGrid {
        UtilizationGrid::from_values(self.rows, self.cols, values.to_vec())
    }
}

fn any_scenario() -> impl Strategy<Value = Scenario> {
    // Geometry sweeps small fabrics (Fabric::new needs ≥ 4 columns for the
    // memory-op footprint); the calibration sweeps EOL limit, anchor and
    // exponent like the nbti property tests. Anchors of 1–5 years against
    // schedules of up to 24 × 2-year missions make end-of-life crossings —
    // and therefore the interpolated failure times — common, not rare.
    ((1u32..=3), (4u32..=8), (0.05f64..=0.2), (1.0f64..=5.0), (4u32..=8)).prop_flat_map(
        |(rows, cols, eol, anchor, inv_exp)| {
            let fus = (rows * cols) as usize;
            proptest::collection::vec(
                (proptest::collection::vec(0.0f64..=1.0, fus..=fus), 0.05f64..=2.0),
                1..=24,
            )
            .prop_map(move |missions| Scenario {
                rows,
                cols,
                aging: CalibratedAging {
                    eol_delay_frac: eol,
                    anchor_years: anchor,
                    exponent: 1.0 / inv_exp as f64,
                },
                missions,
            })
        },
    )
}

/// Asserts the two failure reports are the same events with bit-identical
/// crossing times (`assert_eq!` alone would accept `-0.0 == 0.0` etc.).
fn assert_failures_bit_identical(reference: &[FuFailed], batched: &[FuFailed]) {
    assert_eq!(reference.len(), batched.len(), "failure counts diverge");
    for (r, b) in reference.iter().zip(batched) {
        assert_eq!((r.row, r.col, r.mission), (b.row, b.col, b.mission));
        assert_eq!(
            r.at_years.to_bits(),
            b.at_years.to_bits(),
            "crossing time diverged: reference {} vs batched {}",
            r.at_years,
            b.at_years
        );
    }
}

/// Asserts lane `lane` of `batch` mirrors `device` bit for bit.
fn assert_lane_mirrors_device(batch: &WearBatch, lane: usize, device: &DeviceLifetime) {
    assert_eq!(batch.missions(lane), device.missions());
    assert_eq!(batch.elapsed_years(lane).to_bits(), device.elapsed_years().to_bits());
    for (i, state) in device.wear().states().iter().enumerate() {
        assert_eq!(
            state.effective_age().to_bits(),
            batch.lane_ages(lane)[i].to_bits(),
            "FU {i} age diverged"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn batched_lane_is_bit_identical_to_the_device_path(scenario in any_scenario()) {
        let fabric = scenario.fabric();
        let mut device = DeviceLifetime::new(&fabric, scenario.aging, false);
        let mut batch = WearBatch::new(&fabric, scenario.aging, 1);
        for (values, years) in &scenario.missions {
            let duty = scenario.duty(values);
            let reference = device.advance_mission(&duty, *years);
            let batched = batch.advance(0, &duty, *years);
            assert_failures_bit_identical(&reference, &batched);
        }
        assert_lane_mirrors_device(&batch, 0, &device);
    }

    #[test]
    fn class_advance_matches_every_member_running_solo(
        scenario in any_scenario(),
        lanes in 2usize..=5,
    ) {
        // One advance_class call per mission versus a lone DeviceLifetime:
        // the shared failure scan and the per-lane columnar update must
        // leave every member exactly where the solo device lands.
        let fabric = scenario.fabric();
        let mut device = DeviceLifetime::new(&fabric, scenario.aging, false);
        let mut batch = WearBatch::new(&fabric, scenario.aging, lanes);
        let members: Vec<usize> = (0..lanes).collect();
        for (values, years) in &scenario.missions {
            let duty = scenario.duty(values);
            let reference = device.advance_mission(&duty, *years);
            let shared = batch.advance_class(&members, &duty, *years);
            assert_failures_bit_identical(&reference, &shared);
        }
        for lane in 0..lanes {
            assert_lane_mirrors_device(&batch, lane, &device);
        }
    }

    #[test]
    fn interleaved_lanes_stay_independent(
        scenario in any_scenario(),
        other in any_scenario(),
    ) {
        // Two lanes with different schedules, advanced in interleaved
        // order on one slab, each track their own reference device — the
        // slab layout must not leak wear across lane boundaries. Lane 1
        // replays `other`'s schedule re-shaped onto `scenario`'s fabric.
        let fabric = scenario.fabric();
        let fus = (scenario.rows * scenario.cols) as usize;
        let mut devices =
            [false, false].map(|_| DeviceLifetime::new(&fabric, scenario.aging, false));
        let mut batch = WearBatch::new(&fabric, scenario.aging, 2);
        let schedules: [Vec<(Vec<f64>, f64)>; 2] = [
            scenario.missions.clone(),
            other
                .missions
                .iter()
                .map(|(values, years)| {
                    let mut v = values.clone();
                    v.resize(fus, 0.5);
                    (v, *years)
                })
                .collect(),
        ];
        let longest = schedules[0].len().max(schedules[1].len());
        for i in 0..longest {
            for (lane, schedule) in schedules.iter().enumerate() {
                if let Some((values, years)) = schedule.get(i) {
                    let duty = scenario.duty(values);
                    let reference = devices[lane].advance_mission(&duty, *years);
                    let batched = batch.advance(lane, &duty, *years);
                    assert_failures_bit_identical(&reference, &batched);
                }
            }
        }
        for (lane, device) in devices.iter().enumerate() {
            assert_lane_mirrors_device(&batch, lane, device);
        }
    }
}
