//! Fabric-level wear state: one [`WearState`] per FU (DESIGN.md §11).

use cgra::Fabric;
use nbti::{CalibratedAging, WearState};
use serde::{Deserialize, Serialize};
use uaware::UtilizationGrid;

/// Per-FU NBTI wear of a whole fabric, advanced epoch by epoch.
///
/// Each cell composes its epochs with [`WearState::advance`]'s
/// equivalent-age transform, so a grid advanced through any sequence of
/// duty maps carries exactly the wear of the equivalent single-shot
/// stress history — the property the no-fault regression test pins against
/// [`CalibratedAging::lifetime_years`].
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use lifetime::WearGrid;
/// use nbti::CalibratedAging;
/// use uaware::UtilizationGrid;
///
/// let fabric = Fabric::new(1, 4);
/// let mut wear = WearGrid::new(&fabric, CalibratedAging::default());
/// let duty = UtilizationGrid::from_values(1, 4, vec![1.0, 0.5, 0.1, 0.0]);
/// wear.advance(&duty, 1.5);
/// wear.advance(&duty, 1.5);
/// // Three years at full duty: the first FU sits exactly at end of life.
/// assert!((wear.state(0, 0).delay_frac() - 0.10).abs() < 1e-9);
/// assert!((wear.worst_delay_frac() - 0.10).abs() < 1e-9);
/// assert_eq!(wear.state(0, 3).delay_frac(), 0.0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WearGrid {
    rows: u32,
    cols: u32,
    cells: Vec<WearState>,
}

impl WearGrid {
    /// A pristine grid matching `fabric`'s geometry, aging under `aging`.
    pub fn new(fabric: &Fabric, aging: CalibratedAging) -> WearGrid {
        WearGrid {
            rows: fabric.rows,
            cols: fabric.cols,
            cells: vec![WearState::new(aging); fabric.fu_count() as usize],
        }
    }

    /// Grid height.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Grid width.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The wear of the FU at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if the cell lies outside the grid.
    pub fn state(&self, row: u32, col: u32) -> &WearState {
        assert!(row < self.rows && col < self.cols, "cell ({row},{col}) outside grid");
        &self.cells[(row * self.cols + col) as usize]
    }

    /// Row-major per-FU wear states.
    pub fn states(&self) -> &[WearState] {
        &self.cells
    }

    /// Advances every FU by one epoch of `dt_years` at its duty from
    /// `duty` (equivalent-age composition per cell).
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch or a negative epoch.
    pub fn advance(&mut self, duty: &UtilizationGrid, dt_years: f64) {
        assert_eq!((self.rows, self.cols), (duty.rows(), duty.cols()), "geometry mismatch");
        for (cell, &u) in self.cells.iter_mut().zip(duty.values()) {
            cell.advance(dt_years, u);
        }
    }

    /// The highest delay degradation on the grid (the FU closest to — or
    /// past — its end of life).
    pub fn worst_delay_frac(&self) -> f64 {
        self.cells.iter().map(WearState::delay_frac).fold(0.0, f64::max)
    }

    /// Per-FU delay degradation as a grid (values are fractions, clamped
    /// at 1 — a 100 % slowdown is far past any end-of-life limit).
    pub fn delay_grid(&self) -> UtilizationGrid {
        UtilizationGrid::from_values(
            self.rows,
            self.cols,
            self.cells.iter().map(|c| c.delay_frac().min(1.0)).collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advance_composes_per_cell() {
        let fabric = Fabric::new(2, 4);
        let aging = CalibratedAging::default();
        let mut grid = WearGrid::new(&fabric, aging);
        let duty =
            UtilizationGrid::from_values(2, 4, vec![1.0, 0.8, 0.6, 0.4, 0.2, 0.1, 0.05, 0.0]);
        for _ in 0..10 {
            grid.advance(&duty, 0.3);
        }
        for (i, &u) in duty.values().iter().enumerate() {
            let direct = aging.delay_increase(3.0, u);
            let got = grid.states()[i].delay_frac();
            assert!((got - direct).abs() < 1e-9, "cell {i}: {got} vs {direct}");
        }
        assert!((grid.worst_delay_frac() - aging.delay_increase(3.0, 1.0)).abs() < 1e-9);
    }

    #[test]
    fn delay_grid_mirrors_states() {
        let fabric = Fabric::new(1, 4);
        let mut grid = WearGrid::new(&fabric, CalibratedAging::default());
        let duty = UtilizationGrid::from_values(1, 4, vec![1.0, 0.5, 0.0, 0.25]);
        grid.advance(&duty, 2.0);
        let delays = grid.delay_grid();
        for (i, s) in grid.states().iter().enumerate() {
            assert_eq!(delays.values()[i], s.delay_frac());
        }
        assert_eq!(delays.value(0, 2), 0.0);
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn geometry_mismatch_rejected() {
        let mut grid = WearGrid::new(&Fabric::new(2, 4), CalibratedAging::default());
        grid.advance(&UtilizationGrid::from_values(1, 4, vec![0.0; 4]), 1.0);
    }

    #[test]
    fn wear_grid_survives_json() {
        let mut grid = WearGrid::new(&Fabric::new(1, 4), CalibratedAging::default());
        grid.advance(&UtilizationGrid::from_values(1, 4, vec![0.9, 0.1, 0.0, 0.4]), 1.0);
        let json = serde_json::to_string(&grid).unwrap();
        let back: WearGrid = serde_json::from_str(&json).unwrap();
        assert_eq!(back, grid);
    }
}
