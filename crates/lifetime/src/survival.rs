//! Fleet-scale lifetime statistics (DESIGN.md §11): survival curves, MTTF
//! and first-failure histograms over many simulated device histories.

use serde::{Deserialize, Serialize};

/// A fleet survival curve: the fraction of devices still alive at each
/// death time, in a Kaplan-Meier-style step form (no censoring model —
/// every device is observed to the common horizon).
///
/// # Examples
///
/// ```
/// use lifetime::SurvivalCurve;
///
/// // Three deaths, one survivor at the 10-year horizon.
/// let deaths = [Some(3.2), Some(3.0), None, Some(7.5)];
/// let curve = SurvivalCurve::from_deaths(&deaths, 10.0);
/// assert_eq!(curve.points.first(), Some(&(0.0, 1.0)));
/// assert_eq!(curve.points.last(), Some(&(10.0, 0.25)));
/// assert_eq!(curve.alive_at(5.0), 0.5);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurvivalCurve {
    /// `(years, fraction_alive)` steps: the curve starts at `(0, 1)`,
    /// drops at each death time, and ends with a point at the horizon.
    pub points: Vec<(f64, f64)>,
}

impl SurvivalCurve {
    /// Builds the curve from per-device death times (`None` = still alive
    /// at `horizon_years`). An empty fleet yields the flat all-alive curve.
    pub fn from_deaths(deaths: &[Option<f64>], horizon_years: f64) -> SurvivalCurve {
        let n = deaths.len().max(1) as f64;
        let mut times: Vec<f64> = deaths.iter().filter_map(|d| *d).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN death times"));
        let mut points = vec![(0.0, 1.0)];
        let mut dead = 0usize;
        let mut i = 0;
        while i < times.len() {
            // Simultaneous deaths collapse into one step.
            let t = times[i];
            while i < times.len() && times[i] == t {
                dead += 1;
                i += 1;
            }
            points.push((t, 1.0 - dead as f64 / n));
        }
        if points.last().map(|(t, _)| *t) != Some(horizon_years) {
            let tail = points.last().map(|(_, a)| *a).unwrap_or(1.0);
            points.push((horizon_years, tail));
        }
        SurvivalCurve { points }
    }

    /// The fraction of the fleet alive at `years` (step interpolation).
    pub fn alive_at(&self, years: f64) -> f64 {
        self.points.iter().rev().find(|(t, _)| *t <= years).map(|(_, a)| *a).unwrap_or(1.0)
    }
}

/// Aggregate lifetime statistics of one fleet cell (one policy across N
/// device instances).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Devices simulated.
    pub devices: usize,
    /// Devices dead by the horizon.
    pub deaths: usize,
    /// Mean time to failure in years. Devices alive at the horizon enter
    /// at the horizon value, so with survivors this is a *lower bound* on
    /// the true MTTF (censored mean).
    pub mttf_years: f64,
    /// Deployment time of the earliest device death, if any died.
    pub earliest_death_years: Option<f64>,
    /// First-FU-failure histogram: `counts[i]` devices saw their first FU
    /// cross end of life inside bin `i` of `[0, horizon]`; devices whose
    /// FUs all survived are not counted.
    pub first_failure_counts: Vec<u64>,
    /// Width of one histogram bin, in years.
    pub bin_years: f64,
}

impl FleetStats {
    /// Folds per-device `(death_time, first_fu_failure)` observations into
    /// the aggregate (`None` = did not happen by the horizon).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `horizon_years` is not positive.
    pub fn from_observations(
        deaths: &[Option<f64>],
        first_failures: &[Option<f64>],
        horizon_years: f64,
        bins: usize,
    ) -> FleetStats {
        assert!(bins > 0, "need at least one histogram bin");
        assert!(horizon_years > 0.0, "horizon must be positive");
        let devices = deaths.len();
        let dead: Vec<f64> = deaths.iter().filter_map(|d| *d).collect();
        let mttf_years = if devices == 0 {
            0.0
        } else {
            deaths.iter().map(|d| d.unwrap_or(horizon_years)).sum::<f64>() / devices as f64
        };
        let earliest_death_years =
            dead.iter().copied().fold(None, |acc: Option<f64>, t| match acc {
                Some(best) => Some(best.min(t)),
                None => Some(t),
            });
        let mut first_failure_counts = vec![0u64; bins];
        for t in first_failures.iter().filter_map(|f| *f) {
            let bin = ((t / horizon_years) * bins as f64) as usize;
            first_failure_counts[bin.min(bins - 1)] += 1;
        }
        FleetStats {
            devices,
            deaths: dead.len(),
            mttf_years,
            earliest_death_years,
            first_failure_counts,
            bin_years: horizon_years / bins as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_curve_steps_down_at_deaths() {
        let deaths = [Some(2.0), Some(4.0), None, None];
        let curve = SurvivalCurve::from_deaths(&deaths, 10.0);
        assert_eq!(curve.points, vec![(0.0, 1.0), (2.0, 0.75), (4.0, 0.5), (10.0, 0.5)]);
        assert_eq!(curve.alive_at(0.0), 1.0);
        assert_eq!(curve.alive_at(1.9), 1.0);
        assert_eq!(curve.alive_at(2.0), 0.75);
        assert_eq!(curve.alive_at(100.0), 0.5);
    }

    #[test]
    fn simultaneous_deaths_collapse_into_one_step() {
        let deaths = [Some(3.0), Some(3.0), Some(3.0), Some(5.0)];
        let curve = SurvivalCurve::from_deaths(&deaths, 6.0);
        assert_eq!(curve.points, vec![(0.0, 1.0), (3.0, 0.25), (5.0, 0.0), (6.0, 0.0)]);
    }

    #[test]
    fn empty_fleet_stays_alive() {
        let curve = SurvivalCurve::from_deaths(&[], 5.0);
        assert_eq!(curve.points, vec![(0.0, 1.0), (5.0, 1.0)]);
        assert_eq!(curve.alive_at(2.0), 1.0);
    }

    #[test]
    fn stats_censor_survivors_at_the_horizon() {
        let deaths = [Some(2.0), None];
        let firsts = [Some(1.5), Some(9.5)];
        let stats = FleetStats::from_observations(&deaths, &firsts, 10.0, 10);
        assert_eq!(stats.devices, 2);
        assert_eq!(stats.deaths, 1);
        assert!((stats.mttf_years - 6.0).abs() < 1e-12, "mean of 2.0 and the 10.0 horizon");
        assert_eq!(stats.earliest_death_years, Some(2.0));
        assert_eq!(stats.first_failure_counts[1], 1, "1.5 lands in bin 1");
        assert_eq!(stats.first_failure_counts[9], 1, "9.5 lands in the last bin");
        assert_eq!(stats.first_failure_counts.iter().sum::<u64>(), 2);
        assert!((stats.bin_years - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_horizon_failures_clamp_into_the_last_bin() {
        let stats = FleetStats::from_observations(&[None], &[Some(42.0)], 10.0, 4);
        assert_eq!(stats.first_failure_counts, vec![0, 0, 0, 1]);
    }

    #[test]
    fn stats_survive_json() {
        let stats = FleetStats::from_observations(&[Some(1.0), None], &[Some(0.5), None], 4.0, 4);
        let json = serde_json::to_string(&stats).unwrap();
        let back: FleetStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }
}
