//! Fleet-scale lifetime statistics (DESIGN.md §11): survival curves, MTTF
//! and first-failure histograms over many simulated device histories, plus
//! the streaming [`FleetAccum`] merge monoid the sharded fleet engine
//! aggregates through (DESIGN.md §12).

use serde::{Deserialize, Serialize};

/// A fleet survival curve: the fraction of devices still alive at each
/// death time, in a Kaplan-Meier-style step form (no censoring model —
/// every device is observed to the common horizon).
///
/// # Examples
///
/// ```
/// use lifetime::SurvivalCurve;
///
/// // Three deaths, one survivor at the 10-year horizon.
/// let deaths = [Some(3.2), Some(3.0), None, Some(7.5)];
/// let curve = SurvivalCurve::from_deaths(&deaths, 10.0);
/// assert_eq!(curve.points.first(), Some(&(0.0, 1.0)));
/// assert_eq!(curve.points.last(), Some(&(10.0, 0.25)));
/// assert_eq!(curve.alive_at(5.0), 0.5);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SurvivalCurve {
    /// `(years, fraction_alive)` steps: the curve starts at `(0, 1)`,
    /// drops at each death time, and ends with a point at the horizon.
    pub points: Vec<(f64, f64)>,
}

impl SurvivalCurve {
    /// Builds the curve from per-device death times (`None` = still alive
    /// at `horizon_years`). An empty fleet yields the flat all-alive curve.
    pub fn from_deaths(deaths: &[Option<f64>], horizon_years: f64) -> SurvivalCurve {
        let n = deaths.len().max(1) as f64;
        let mut times: Vec<f64> = deaths.iter().filter_map(|d| *d).collect();
        times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN death times"));
        let mut points = vec![(0.0, 1.0)];
        let mut dead = 0usize;
        let mut i = 0;
        while i < times.len() {
            // Simultaneous deaths collapse into one step.
            let t = times[i];
            while i < times.len() && times[i] == t {
                dead += 1;
                i += 1;
            }
            points.push((t, 1.0 - dead as f64 / n));
        }
        if points.last().map(|(t, _)| *t) != Some(horizon_years) {
            let tail = points.last().map(|(_, a)| *a).unwrap_or(1.0);
            points.push((horizon_years, tail));
        }
        SurvivalCurve { points }
    }

    /// The fraction of the fleet alive at `years` (step interpolation).
    pub fn alive_at(&self, years: f64) -> f64 {
        self.points.iter().rev().find(|(t, _)| *t <= years).map(|(_, a)| *a).unwrap_or(1.0)
    }
}

/// Aggregate lifetime statistics of one fleet cell (one policy across N
/// device instances).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetStats {
    /// Devices simulated.
    pub devices: usize,
    /// Devices dead by the horizon.
    pub deaths: usize,
    /// Mean time to failure in years. Devices alive at the horizon enter
    /// at the horizon value, so with survivors this is a *lower bound* on
    /// the true MTTF (censored mean).
    pub mttf_years: f64,
    /// Deployment time of the earliest device death, if any died.
    pub earliest_death_years: Option<f64>,
    /// First-FU-failure histogram: `counts[i]` devices saw their first FU
    /// cross end of life inside bin `i` of `[0, horizon]`; devices whose
    /// FUs all survived are not counted.
    pub first_failure_counts: Vec<u64>,
    /// Width of one histogram bin, in years.
    pub bin_years: f64,
}

impl FleetStats {
    /// Folds per-device `(death_time, first_fu_failure)` observations into
    /// the aggregate (`None` = did not happen by the horizon).
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `horizon_years` is not positive.
    pub fn from_observations(
        deaths: &[Option<f64>],
        first_failures: &[Option<f64>],
        horizon_years: f64,
        bins: usize,
    ) -> FleetStats {
        assert!(bins > 0, "need at least one histogram bin");
        assert!(horizon_years > 0.0, "horizon must be positive");
        let devices = deaths.len();
        let dead: Vec<f64> = deaths.iter().filter_map(|d| *d).collect();
        let mttf_years = if devices == 0 {
            0.0
        } else {
            deaths.iter().map(|d| d.unwrap_or(horizon_years)).sum::<f64>() / devices as f64
        };
        let earliest_death_years =
            dead.iter().copied().fold(None, |acc: Option<f64>, t| match acc {
                Some(best) => Some(best.min(t)),
                None => Some(t),
            });
        let mut first_failure_counts = vec![0u64; bins];
        for t in first_failures.iter().filter_map(|f| *f) {
            let bin = ((t / horizon_years) * bins as f64) as usize;
            first_failure_counts[bin.min(bins - 1)] += 1;
        }
        FleetStats {
            devices,
            deaths: dead.len(),
            mttf_years,
            earliest_death_years,
            first_failure_counts,
            bin_years: horizon_years / bins as f64,
        }
    }
}

/// Streaming aggregation of per-device lifetime observations — the merge
/// monoid the sharded fleet engine folds shard results through
/// (DESIGN.md §12).
///
/// The accumulator keeps death and first-FU-failure times as **sorted
/// multisets** (exact `f64` keys with `u64` counts), so any sequence of
/// [`FleetAccum::observe`]/[`FleetAccum::merge`] calls that feeds in the
/// same observations produces the same canonical value: `merge` is
/// associative and commutative, [`FleetAccum::new`] is its identity, and
/// the [`SurvivalCurve`]/[`FleetStats`] finalized from the merged
/// accumulator are therefore invariant under every shard split and worker
/// count — the byte-identity guarantee `results/survival.json` rides on.
///
/// Keys are compared with [`f64::total_cmp`]; observation times must be
/// finite and non-negative.
///
/// # Examples
///
/// Two shards merge to the same curve as the unsharded fold:
///
/// ```
/// use lifetime::{FleetAccum, SurvivalCurve};
///
/// let deaths = [Some(3.0), Some(2.0), None, Some(2.0)];
/// let mut whole = FleetAccum::new();
/// let mut left = FleetAccum::new();
/// let mut right = FleetAccum::new();
/// for (i, d) in deaths.iter().enumerate() {
///     whole.observe(*d, None);
///     if i < 2 { left.observe(*d, None) } else { right.observe(*d, None) }
/// }
/// left.merge(&right);
/// assert_eq!(left, whole);
/// assert_eq!(whole.survival(10.0), SurvivalCurve::from_deaths(&deaths, 10.0));
/// ```
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct FleetAccum {
    /// Devices observed (dead or alive).
    devices: u64,
    /// Death times as a sorted multiset: strictly increasing keys
    /// (`total_cmp` order) with positive counts.
    deaths: Vec<(f64, u64)>,
    /// First-FU-failure times, same canonical multiset form.
    first_failures: Vec<(f64, u64)>,
}

/// Inserts `count` occurrences of `t` into a canonical sorted multiset.
fn multiset_add(set: &mut Vec<(f64, u64)>, t: f64, count: u64) {
    assert!(t.is_finite() && t >= 0.0, "observation time {t} must be finite and non-negative");
    match set.binary_search_by(|(k, _)| k.total_cmp(&t)) {
        Ok(i) => set[i].1 += count,
        Err(i) => set.insert(i, (t, count)),
    }
}

/// Merges two canonical sorted multisets (merge-join summing counts).
fn multiset_merge(a: &[(f64, u64)], b: &[(f64, u64)]) -> Vec<(f64, u64)> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].0.total_cmp(&b[j].0) {
            std::cmp::Ordering::Less => {
                out.push(a[i]);
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j]);
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push((a[i].0, a[i].1 + b[j].1));
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl FleetAccum {
    /// The empty accumulator — the identity of [`FleetAccum::merge`].
    pub fn new() -> FleetAccum {
        FleetAccum::default()
    }

    /// Devices observed so far.
    pub fn devices(&self) -> u64 {
        self.devices
    }

    /// Devices observed dead so far.
    pub fn deaths(&self) -> u64 {
        self.deaths.iter().map(|(_, c)| *c).sum()
    }

    /// Folds one device's `(death_time, first_fu_failure)` observation in
    /// (`None` = did not happen by the horizon).
    pub fn observe(&mut self, death_years: Option<f64>, first_failure_years: Option<f64>) {
        self.observe_weighted(death_years, first_failure_years, 1);
    }

    /// Folds `count` devices that share one observation — the equivalence
    /// class fast path (DESIGN.md §12). A zero `count` is a no-op.
    pub fn observe_weighted(
        &mut self,
        death_years: Option<f64>,
        first_failure_years: Option<f64>,
        count: u64,
    ) {
        if count == 0 {
            return;
        }
        self.devices += count;
        if let Some(t) = death_years {
            multiset_add(&mut self.deaths, t, count);
        }
        if let Some(t) = first_failure_years {
            multiset_add(&mut self.first_failures, t, count);
        }
    }

    /// Absorbs `other`: the monoid operation. Associative and commutative
    /// (counts add exactly in `u64`, keys merge into one canonical sorted
    /// multiset), with [`FleetAccum::new`] as identity — the properties
    /// `crates/lifetime/tests/survival_monoid.rs` pins.
    pub fn merge(&mut self, other: &FleetAccum) {
        self.devices += other.devices;
        self.deaths = multiset_merge(&self.deaths, &other.deaths);
        self.first_failures = multiset_merge(&self.first_failures, &other.first_failures);
    }

    /// Finalizes the survival curve — exactly the value
    /// [`SurvivalCurve::from_deaths`] computes from the equivalent
    /// per-device observation list (same arithmetic over the same sorted
    /// death times).
    pub fn survival(&self, horizon_years: f64) -> SurvivalCurve {
        let n = self.devices.max(1) as f64;
        let mut points = vec![(0.0, 1.0)];
        let mut dead = 0u64;
        for &(t, c) in &self.deaths {
            dead += c;
            points.push((t, 1.0 - dead as f64 / n));
        }
        if points.last().map(|(t, _)| *t) != Some(horizon_years) {
            let tail = points.last().map(|(_, a)| *a).unwrap_or(1.0);
            points.push((horizon_years, tail));
        }
        SurvivalCurve { points }
    }

    /// Finalizes the aggregate statistics. The MTTF sum runs over the
    /// canonical multiset (time order, one `t·count` term per distinct
    /// time) instead of device order, so it is split-invariant; against
    /// [`FleetStats::from_observations`]'s device-order sum it agrees to
    /// rounding (≤ a few ulps), not necessarily bit-for-bit.
    ///
    /// # Panics
    ///
    /// Panics if `bins` is zero or `horizon_years` is not positive.
    pub fn stats(&self, horizon_years: f64, bins: usize) -> FleetStats {
        assert!(bins > 0, "need at least one histogram bin");
        assert!(horizon_years > 0.0, "horizon must be positive");
        let deaths = self.deaths();
        let mttf_years = if self.devices == 0 {
            0.0
        } else {
            let mut sum = 0.0;
            for &(t, c) in &self.deaths {
                sum += t * c as f64;
            }
            sum += (self.devices - deaths) as f64 * horizon_years;
            sum / self.devices as f64
        };
        let mut first_failure_counts = vec![0u64; bins];
        for &(t, c) in &self.first_failures {
            let bin = ((t / horizon_years) * bins as f64) as usize;
            first_failure_counts[bin.min(bins - 1)] += c;
        }
        FleetStats {
            devices: self.devices as usize,
            deaths: deaths as usize,
            mttf_years,
            earliest_death_years: self.deaths.first().map(|&(t, _)| t),
            first_failure_counts,
            bin_years: horizon_years / bins as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn survival_curve_steps_down_at_deaths() {
        let deaths = [Some(2.0), Some(4.0), None, None];
        let curve = SurvivalCurve::from_deaths(&deaths, 10.0);
        assert_eq!(curve.points, vec![(0.0, 1.0), (2.0, 0.75), (4.0, 0.5), (10.0, 0.5)]);
        assert_eq!(curve.alive_at(0.0), 1.0);
        assert_eq!(curve.alive_at(1.9), 1.0);
        assert_eq!(curve.alive_at(2.0), 0.75);
        assert_eq!(curve.alive_at(100.0), 0.5);
    }

    #[test]
    fn simultaneous_deaths_collapse_into_one_step() {
        let deaths = [Some(3.0), Some(3.0), Some(3.0), Some(5.0)];
        let curve = SurvivalCurve::from_deaths(&deaths, 6.0);
        assert_eq!(curve.points, vec![(0.0, 1.0), (3.0, 0.25), (5.0, 0.0), (6.0, 0.0)]);
    }

    #[test]
    fn empty_fleet_stays_alive() {
        let curve = SurvivalCurve::from_deaths(&[], 5.0);
        assert_eq!(curve.points, vec![(0.0, 1.0), (5.0, 1.0)]);
        assert_eq!(curve.alive_at(2.0), 1.0);
    }

    #[test]
    fn stats_censor_survivors_at_the_horizon() {
        let deaths = [Some(2.0), None];
        let firsts = [Some(1.5), Some(9.5)];
        let stats = FleetStats::from_observations(&deaths, &firsts, 10.0, 10);
        assert_eq!(stats.devices, 2);
        assert_eq!(stats.deaths, 1);
        assert!((stats.mttf_years - 6.0).abs() < 1e-12, "mean of 2.0 and the 10.0 horizon");
        assert_eq!(stats.earliest_death_years, Some(2.0));
        assert_eq!(stats.first_failure_counts[1], 1, "1.5 lands in bin 1");
        assert_eq!(stats.first_failure_counts[9], 1, "9.5 lands in the last bin");
        assert_eq!(stats.first_failure_counts.iter().sum::<u64>(), 2);
        assert!((stats.bin_years - 1.0).abs() < 1e-12);
    }

    #[test]
    fn out_of_horizon_failures_clamp_into_the_last_bin() {
        let stats = FleetStats::from_observations(&[None], &[Some(42.0)], 10.0, 4);
        assert_eq!(stats.first_failure_counts, vec![0, 0, 0, 1]);
    }

    #[test]
    fn stats_survive_json() {
        let stats = FleetStats::from_observations(&[Some(1.0), None], &[Some(0.5), None], 4.0, 4);
        let json = serde_json::to_string(&stats).unwrap();
        let back: FleetStats = serde_json::from_str(&json).unwrap();
        assert_eq!(back, stats);
    }

    #[test]
    fn accum_finalizes_like_the_batch_constructors() {
        let deaths = [Some(2.0), Some(4.0), Some(2.0), None];
        let firsts = [Some(1.5), Some(3.0), Some(1.5), None];
        let mut accum = FleetAccum::new();
        for (d, f) in deaths.iter().zip(&firsts) {
            accum.observe(*d, *f);
        }
        assert_eq!(accum.devices(), 4);
        assert_eq!(accum.deaths(), 3);
        assert_eq!(accum.survival(10.0), SurvivalCurve::from_deaths(&deaths, 10.0));
        let stats = accum.stats(10.0, 5);
        let reference = FleetStats::from_observations(&deaths, &firsts, 10.0, 5);
        assert_eq!(stats.devices, reference.devices);
        assert_eq!(stats.deaths, reference.deaths);
        assert_eq!(stats.earliest_death_years, reference.earliest_death_years);
        assert_eq!(stats.first_failure_counts, reference.first_failure_counts);
        assert!((stats.mttf_years - reference.mttf_years).abs() < 1e-12);
    }

    #[test]
    fn merge_is_associative_with_identity() {
        let mut a = FleetAccum::new();
        a.observe(Some(1.0), Some(0.5));
        let mut b = FleetAccum::new();
        b.observe(Some(1.0), None);
        b.observe(None, Some(2.0));
        let mut c = FleetAccum::new();
        c.observe_weighted(Some(3.0), Some(0.5), 5);

        let mut left = a.clone();
        left.merge(&b);
        left.merge(&c);
        let mut bc = b.clone();
        bc.merge(&c);
        let mut right = a.clone();
        right.merge(&bc);
        assert_eq!(left, right);

        let mut with_identity = a.clone();
        with_identity.merge(&FleetAccum::new());
        assert_eq!(with_identity, a);
        let mut identity_first = FleetAccum::new();
        identity_first.merge(&a);
        assert_eq!(identity_first, a);
    }

    #[test]
    fn weighted_observations_match_repeated_ones() {
        let mut weighted = FleetAccum::new();
        weighted.observe_weighted(Some(2.5), Some(1.0), 3);
        let mut repeated = FleetAccum::new();
        for _ in 0..3 {
            repeated.observe(Some(2.5), Some(1.0));
        }
        assert_eq!(weighted, repeated);
        weighted.observe_weighted(None, None, 0);
        assert_eq!(weighted, repeated, "zero-count observations are no-ops");
    }

    #[test]
    fn empty_accum_matches_the_empty_fleet() {
        let accum = FleetAccum::new();
        assert_eq!(accum.survival(5.0), SurvivalCurve::from_deaths(&[], 5.0));
        let stats = accum.stats(5.0, 4);
        assert_eq!(stats.devices, 0);
        assert_eq!(stats.mttf_years, 0.0);
        assert_eq!(stats.earliest_death_years, None);
    }

    #[test]
    fn accum_survives_json() {
        let mut accum = FleetAccum::new();
        accum.observe_weighted(Some(1.25), Some(0.75), 7);
        accum.observe(None, Some(4.0));
        let json = serde_json::to_string(&accum).unwrap();
        let back: FleetAccum = serde_json::from_str(&json).unwrap();
        assert_eq!(back, accum);
    }
}
