//! # lifetime — the closed-loop lifetime engine (DESIGN.md §11)
//!
//! The paper's payoff metric is *lifetime*, but a one-shot analytic
//! projection ([`uaware::evaluate_aging`]) assumes the stress distribution
//! of a pristine fabric holds forever. This crate models what actually
//! happens over a deployment: per-FU wear accumulates mission by mission
//! ([`WearGrid`], built on [`nbti::WearState`]'s equivalent-age
//! composition), FUs that cross the end-of-life delay limit emit typed
//! [`FuFailed`] events, failures feed back into allocation through a
//! [`cgra::FaultMask`], and the device dies when no legal placement
//! remains. Fleet-level statistics ([`SurvivalCurve`], [`FleetStats`])
//! turn many such device histories into survival curves, MTTF and
//! first-failure histograms.
//!
//! The crate is deliberately simulator-agnostic: a *mission* arrives here
//! as the per-FU duty-cycle grid it exerted
//! ([`uaware::UtilizationTracker::duty_cycles`]) plus the deployment time
//! it models. The `transrec::fleet` module drives [`DeviceLifetime`] with
//! duty grids produced by full-system runs (or replayed from recorded
//! traces); anything else that can produce a [`uaware::UtilizationGrid`]
//! can drive it too.
//!
//! # Examples
//!
//! A device whose workload hammers one FU: the hot cell fails at exactly
//! the analytic lifetime, the fault feeds back into the mask, and the
//! device retires when its only placement is gone.
//!
//! ```
//! use cgra::Fabric;
//! use lifetime::DeviceLifetime;
//! use nbti::CalibratedAging;
//! use uaware::UtilizationGrid;
//!
//! let fabric = Fabric::new(1, 4);
//! let aging = CalibratedAging::default(); // EOL after 3 years at u = 1
//! let mut device = DeviceLifetime::new(&fabric, aging, true);
//! let duty = UtilizationGrid::from_values(1, 4, vec![0.9, 0.3, 0.1, 0.0]);
//!
//! let mut failures = Vec::new();
//! for _ in 0..8 {
//!     failures.extend(device.advance_mission(&duty, 0.5));
//! }
//! // The 90%-duty FU dies at 3/0.9 ≈ 3.33 years, inside mission 7.
//! assert_eq!(failures.len(), 1);
//! assert_eq!((failures[0].row, failures[0].col), (0, 0));
//! assert!((failures[0].at_years - 3.0 / 0.9).abs() < 1e-9);
//! assert!(device.fault_mask().is_dead(0, 0));
//! assert!(!device.is_dead(), "other FUs still allocate");
//! ```

#![warn(missing_docs)]

pub mod batch;
pub mod device;
pub mod survival;
pub mod wear;

pub use batch::WearBatch;
pub use device::{DeviceLifetime, FuFailed};
pub use survival::{FleetAccum, FleetStats, SurvivalCurve};
pub use wear::WearGrid;
