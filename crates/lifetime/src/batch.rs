//! Columnar fleet wear state: one contiguous slab for many devices
//! (DESIGN.md §12).
//!
//! [`crate::DeviceLifetime`] is the reference path: one device, one
//! [`crate::WearGrid`] object graph, typed failure events. At fleet scale
//! (10⁵–10⁶ devices) per-device object graphs dominate memory and the
//! per-mission advance dominates time, so the fleet engine keeps wear in a
//! [`WearBatch`] instead: a struct-of-arrays batch whose per-FU effective
//! ages live in **one contiguous `f64` slab** (`lanes × fu_count`,
//! lane-major), advanced by a tight `age += dt·u` loop per lane — the
//! closed form of [`nbti::WearState::advance`]'s equivalent-age transform.
//!
//! The hard contract, pinned by the differential property tests
//! (`crates/lifetime/tests/batch_differential.rs`): a lane advanced through
//! any mission sequence is **bit-identical** — ages, elapsed time, failure
//! events and their interpolated crossing times — to a
//! [`crate::DeviceLifetime`] advanced through the same sequence. The batch
//! performs the same floating-point operations in the same order; it never
//! re-derives them through a different formula.

use cgra::Fabric;
use nbti::{CalibratedAging, WearState};
use serde::{Deserialize, Serialize};
use uaware::UtilizationGrid;

use crate::device::FuFailed;

/// Struct-of-arrays wear state of many devices ("lanes") on one fabric
/// geometry (DESIGN.md §12).
///
/// Each lane mirrors one [`crate::DeviceLifetime`]'s wear, elapsed-time
/// and mission counters; the per-FU effective ages of all lanes share one
/// contiguous slab so a fleet shard advances with streaming memory access
/// instead of pointer-chasing N object graphs.
///
/// # Examples
///
/// A two-lane batch advanced like two devices:
///
/// ```
/// use cgra::Fabric;
/// use lifetime::WearBatch;
/// use nbti::CalibratedAging;
/// use uaware::UtilizationGrid;
///
/// let fabric = Fabric::new(1, 4);
/// let mut batch = WearBatch::new(&fabric, CalibratedAging::default(), 2);
/// let duty = UtilizationGrid::from_values(1, 4, vec![1.0, 0.5, 0.0, 0.0]);
/// for _ in 0..4 {
///     batch.advance(0, &duty, 1.0); // lane 0 runs, lane 1 stays idle
/// }
/// // The fully stressed FU of lane 0 crossed its 3-year end of life …
/// assert!(batch.state(0, 0, 0).is_end_of_life());
/// assert_eq!(batch.elapsed_years(0), 4.0);
/// // … while lane 1 never advanced.
/// assert_eq!(batch.elapsed_years(1), 0.0);
/// assert_eq!(batch.missions(1), 0);
/// ```
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct WearBatch {
    rows: u32,
    cols: u32,
    aging: CalibratedAging,
    /// Per-FU effective ages, lane-major: lane `l` owns
    /// `ages[l*fus .. (l+1)*fus]` (row-major inside the lane).
    ages: Vec<f64>,
    /// Deployment years simulated so far, per lane.
    elapsed: Vec<f64>,
    /// Missions completed so far, per lane.
    missions: Vec<u64>,
}

impl WearBatch {
    /// A pristine batch of `lanes` devices on `fabric`'s geometry, aging
    /// under `aging`.
    pub fn new(fabric: &Fabric, aging: CalibratedAging, lanes: usize) -> WearBatch {
        WearBatch {
            rows: fabric.rows,
            cols: fabric.cols,
            aging,
            ages: vec![0.0; lanes * fabric.fu_count() as usize],
            elapsed: vec![0.0; lanes],
            missions: vec![0; lanes],
        }
    }

    /// Number of device lanes in the batch.
    pub fn lanes(&self) -> usize {
        self.elapsed.len()
    }

    /// FUs per lane (the fabric's `rows × cols`).
    pub fn fus(&self) -> usize {
        (self.rows * self.cols) as usize
    }

    /// Fabric rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Fabric columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The aging calibration every lane accumulates under.
    pub fn aging(&self) -> &CalibratedAging {
        &self.aging
    }

    /// Lane `lane`'s slice of the effective-age slab, row-major.
    ///
    /// # Panics
    ///
    /// Panics if `lane` is out of range.
    pub fn lane_ages(&self, lane: usize) -> &[f64] {
        let fus = self.fus();
        &self.ages[lane * fus..(lane + 1) * fus]
    }

    /// The wear of lane `lane`'s FU at `(row, col)`, as a typed state.
    ///
    /// # Panics
    ///
    /// Panics if the lane or cell is out of range.
    pub fn state(&self, lane: usize, row: u32, col: u32) -> WearState {
        assert!(row < self.rows && col < self.cols, "cell ({row},{col}) outside grid");
        WearState::from_effective_age(
            self.aging,
            self.lane_ages(lane)[(row * self.cols + col) as usize],
        )
    }

    /// Deployment years lane `lane` has simulated so far.
    pub fn elapsed_years(&self, lane: usize) -> f64 {
        self.elapsed[lane]
    }

    /// Missions lane `lane` has completed so far.
    pub fn missions(&self, lane: usize) -> u64 {
        self.missions[lane]
    }

    /// Folds one mission into lane `lane`: bit-identical twin of
    /// [`crate::DeviceLifetime::advance_mission`] (same scan order, same
    /// arithmetic, same chronological sort of the reported crossings) minus
    /// the fault-mask bookkeeping, which belongs to the caller.
    ///
    /// # Panics
    ///
    /// Panics on a geometry mismatch, a negative mission length, or an
    /// out-of-range lane.
    pub fn advance(&mut self, lane: usize, duty: &UtilizationGrid, years: f64) -> Vec<FuFailed> {
        tracing::event!(tracing::Level::TRACE, "wear.lane.advances", "add" = 1);
        let failures = self.scan_failures(lane, duty, years);
        self.advance_ages(lane, duty, years);
        failures
    }

    /// Folds one mission into every lane of `members` at once — the
    /// columnar fast path for an equivalence class of wear-identical
    /// devices (DESIGN.md §12). The end-of-life crossings are computed once
    /// on `members[0]` and shared; the per-lane age update is the tight
    /// contiguous loop. With an empty `members` this is a no-op.
    ///
    /// Every member lane must be in the same wear state (same ages, same
    /// elapsed time, same mission count) — the caller's class invariant,
    /// checked in debug builds.
    ///
    /// # Panics
    ///
    /// Panics like [`WearBatch::advance`]; additionally (debug builds only)
    /// if the member lanes have diverged.
    pub fn advance_class(
        &mut self,
        members: &[usize],
        duty: &UtilizationGrid,
        years: f64,
    ) -> Vec<FuFailed> {
        let Some(&first) = members.first() else {
            return Vec::new();
        };
        // One event per class advance, independent of the member count, so
        // a weight-scaled fold stays shard-split invariant (DESIGN.md §16).
        tracing::event!(tracing::Level::TRACE, "wear.class.advances", "add" = 1);
        debug_assert!(
            members.iter().all(|&m| {
                self.lane_ages(m) == self.lane_ages(first)
                    && self.elapsed[m].to_bits() == self.elapsed[first].to_bits()
                    && self.missions[m] == self.missions[first]
            }),
            "advance_class members must be wear-identical"
        );
        let failures = self.scan_failures(first, duty, years);
        for &m in members {
            self.advance_ages(m, duty, years);
        }
        failures
    }

    /// The end-of-life crossings mission `missions[lane] + 1` would report,
    /// against the lane's *pre-advance* ages — the exact computation of
    /// [`crate::DeviceLifetime::advance_mission`]'s failure scan.
    fn scan_failures(&self, lane: usize, duty: &UtilizationGrid, years: f64) -> Vec<FuFailed> {
        assert!(years >= 0.0, "negative mission length {years}");
        assert_eq!((self.rows, self.cols), (duty.rows(), duty.cols()), "geometry mismatch");
        let anchor = self.aging.anchor_years;
        let elapsed = self.elapsed[lane];
        let mission = self.missions[lane] + 1;
        let mut new_failures = Vec::new();
        for (i, (&age, &u)) in self.lane_ages(lane).iter().zip(duty.values()).enumerate() {
            if age >= anchor {
                continue; // already failed in an earlier mission
            }
            // WearState::remaining_years, inlined on the raw age: after the
            // end-of-life gate the headroom is strictly positive.
            let headroom = (anchor - age).max(0.0);
            let remaining = if headroom == 0.0 {
                0.0
            } else if u == 0.0 {
                f64::INFINITY
            } else {
                headroom / u
            };
            if remaining <= years {
                new_failures.push(FuFailed {
                    row: i as u32 / self.cols,
                    col: i as u32 % self.cols,
                    at_years: elapsed + remaining,
                    mission,
                });
            }
        }
        // Chronological event order, stable for row-major ties — the same
        // sort DeviceLifetime::advance_mission applies.
        new_failures.sort_by(|a, b| {
            a.at_years.partial_cmp(&b.at_years).expect("crossing times are never NaN")
        });
        new_failures
    }

    /// The tight columnar age update: `age += years·u` per FU — the closed
    /// form [`nbti::WearState::advance`] applies per cell, over one
    /// contiguous slab slice.
    fn advance_ages(&mut self, lane: usize, duty: &UtilizationGrid, years: f64) {
        let fus = self.fus();
        let row = &mut self.ages[lane * fus..(lane + 1) * fus];
        for (age, &u) in row.iter_mut().zip(duty.values()) {
            *age += years * u;
        }
        self.elapsed[lane] += years;
        self.missions[lane] += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DeviceLifetime;

    fn duty(values: Vec<f64>) -> UtilizationGrid {
        UtilizationGrid::from_values(1, values.len() as u32, values)
    }

    #[test]
    fn lane_advance_is_bit_identical_to_device_lifetime() {
        let fabric = Fabric::new(1, 4);
        let aging = CalibratedAging::default();
        let mut device = DeviceLifetime::new(&fabric, aging, false);
        let mut batch = WearBatch::new(&fabric, aging, 1);
        let d = duty(vec![1.0, 0.55, 0.3, 0.0]);
        for dt in [0.7, 0.25, 1.5, 0.7, 2.0, 0.1] {
            let reference = device.advance_mission(&d, dt);
            let batched = batch.advance(0, &d, dt);
            assert_eq!(reference, batched);
        }
        assert_eq!(device.elapsed_years().to_bits(), batch.elapsed_years(0).to_bits());
        assert_eq!(device.missions(), batch.missions(0));
        for (i, s) in device.wear().states().iter().enumerate() {
            assert_eq!(s.effective_age().to_bits(), batch.lane_ages(0)[i].to_bits());
        }
    }

    #[test]
    fn class_advance_keeps_members_in_lockstep() {
        let fabric = Fabric::new(2, 4);
        let mut batch = WearBatch::new(&fabric, CalibratedAging::default(), 3);
        let d = UtilizationGrid::from_values(2, 4, vec![0.9, 0.4, 0.1, 0.0, 0.7, 0.2, 0.05, 1.0]);
        let mut solo = WearBatch::new(&fabric, CalibratedAging::default(), 1);
        for _ in 0..6 {
            let shared = batch.advance_class(&[0, 1, 2], &d, 0.8);
            let reference = solo.advance(0, &d, 0.8);
            assert_eq!(shared, reference);
        }
        for lane in 0..3 {
            assert_eq!(batch.lane_ages(lane), solo.lane_ages(0));
            assert_eq!(batch.missions(lane), 6);
            assert_eq!(batch.elapsed_years(lane).to_bits(), solo.elapsed_years(0).to_bits());
        }
    }

    #[test]
    fn empty_class_is_a_no_op() {
        let fabric = Fabric::new(1, 4);
        let mut batch = WearBatch::new(&fabric, CalibratedAging::default(), 2);
        let before = batch.clone();
        let failures = batch.advance_class(&[], &duty(vec![1.0, 1.0, 1.0, 1.0]), 5.0);
        assert!(failures.is_empty());
        assert_eq!(batch, before);
    }

    #[test]
    fn batch_survives_json() {
        let fabric = Fabric::new(1, 4);
        let mut batch = WearBatch::new(&fabric, CalibratedAging::default(), 2);
        batch.advance(1, &duty(vec![0.9, 0.2, 0.0, 0.35]), 1.25);
        let json = serde_json::to_string(&batch).unwrap();
        let back: WearBatch = serde_json::from_str(&json).unwrap();
        assert_eq!(back, batch);
        assert_eq!(back.lane_ages(1)[0].to_bits(), batch.lane_ages(1)[0].to_bits());
    }

    #[test]
    #[should_panic(expected = "geometry mismatch")]
    fn geometry_mismatch_rejected() {
        let mut batch = WearBatch::new(&Fabric::new(2, 4), CalibratedAging::default(), 1);
        batch.advance(0, &duty(vec![0.0; 4]), 1.0);
    }
}
