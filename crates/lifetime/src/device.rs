//! One device's closed-loop lifetime state machine (DESIGN.md §11).

use cgra::{Fabric, FaultMask};
use nbti::CalibratedAging;
use serde::{Deserialize, Serialize};
use uaware::UtilizationGrid;

use crate::wear::WearGrid;

/// A functional unit crossed its end-of-life delay degradation — the typed
/// failure event the lifetime engine emits (DESIGN.md §11).
///
/// `at_years` is the *exact* crossing time, interpolated inside the mission
/// whose stress pushed the unit over the limit (at constant duty the time
/// to end of life is closed-form, so no mission-boundary quantization error
/// enters the failure record).
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FuFailed {
    /// Fabric row of the failed FU.
    pub row: u32,
    /// Fabric column of the failed FU.
    pub col: u32,
    /// Deployment time of the crossing, in years.
    pub at_years: f64,
    /// The mission (1-based) during which the unit crossed the limit.
    pub mission: u64,
}

/// The per-device closed loop: wear accumulates mission by mission, FUs
/// that cross end of life emit [`FuFailed`] events and (with fault
/// injection enabled) flip dead in the [`FaultMask`] the next mission's
/// allocation must route around; the driver retires the device when no
/// legal allocation remains.
///
/// The engine is driven with per-mission duty grids
/// ([`DeviceLifetime::advance_mission`]); producing those grids — by
/// running a workload suite on a simulator or replaying a recorded trace —
/// is the driver's job (`transrec::fleet`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceLifetime {
    wear: WearGrid,
    mask: FaultMask,
    inject_faults: bool,
    elapsed_years: f64,
    missions: u64,
    death_years: Option<f64>,
    failures: Vec<FuFailed>,
}

impl DeviceLifetime {
    /// A fresh device on `fabric`, aging under `aging`. With
    /// `inject_faults` disabled the wear still accumulates and failures
    /// are still *reported*, but dead FUs stay allocatable — the
    /// open-loop mode the analytic cross-check runs in.
    pub fn new(fabric: &Fabric, aging: CalibratedAging, inject_faults: bool) -> DeviceLifetime {
        DeviceLifetime {
            wear: WearGrid::new(fabric, aging),
            mask: FaultMask::healthy(fabric),
            inject_faults,
            elapsed_years: 0.0,
            missions: 0,
            death_years: None,
            failures: Vec::new(),
        }
    }

    /// The accumulated per-FU wear.
    pub fn wear(&self) -> &WearGrid {
        &self.wear
    }

    /// The health map allocation must respect next mission. Pristine until
    /// the first injected failure.
    pub fn fault_mask(&self) -> &FaultMask {
        &self.mask
    }

    /// Deployment time simulated so far, in years.
    pub fn elapsed_years(&self) -> f64 {
        self.elapsed_years
    }

    /// Missions completed so far.
    pub fn missions(&self) -> u64 {
        self.missions
    }

    /// Every end-of-life crossing so far, in event order.
    pub fn failures(&self) -> &[FuFailed] {
        &self.failures
    }

    /// Deployment time of the first FU failure, if any failed yet.
    pub fn first_failure_years(&self) -> Option<f64> {
        self.failures.first().map(|f| f.at_years)
    }

    /// `true` once the device has been [retired](DeviceLifetime::retire).
    pub fn is_dead(&self) -> bool {
        self.death_years.is_some()
    }

    /// Deployment time of death, once retired.
    pub fn death_years(&self) -> Option<f64> {
        self.death_years
    }

    /// Folds one mission's stress into the wear state: every FU advances
    /// by `years` at its duty from `duty` (equivalent-age composition),
    /// and each unit whose delay degradation crosses the end-of-life limit
    /// *during this mission* is reported as a [`FuFailed`] event with the
    /// exact (interpolated) crossing time. With fault injection enabled
    /// the failed units also flip dead in the fault mask.
    ///
    /// # Panics
    ///
    /// Panics if the device is already retired, on a geometry mismatch, or
    /// on a negative mission length.
    pub fn advance_mission(&mut self, duty: &UtilizationGrid, years: f64) -> Vec<FuFailed> {
        tracing::event!(tracing::Level::TRACE, "wear.missions", "add" = 1);
        assert!(!self.is_dead(), "cannot advance a retired device");
        assert!(years >= 0.0, "negative mission length {years}");
        assert_eq!(
            (self.wear.rows(), self.wear.cols()),
            (duty.rows(), duty.cols()),
            "geometry mismatch"
        );
        self.missions += 1;
        let mut new_failures = Vec::new();
        for row in 0..self.wear.rows() {
            for col in 0..self.wear.cols() {
                let u = duty.value(row, col);
                let state = self.wear.state(row, col);
                if state.is_end_of_life() {
                    continue; // already failed in an earlier mission
                }
                let remaining = state.remaining_years(u);
                if remaining <= years {
                    new_failures.push(FuFailed {
                        row,
                        col,
                        at_years: self.elapsed_years + remaining,
                        mission: self.missions,
                    });
                }
            }
        }
        // Chronological event order: several FUs can cross inside the same
        // mission, and "first failure" must mean first in *time*, not in
        // row-major scan order (stable sort keeps row-major for ties).
        new_failures.sort_by(|a, b| {
            a.at_years.partial_cmp(&b.at_years).expect("crossing times are never NaN")
        });
        self.wear.advance(duty, years);
        self.elapsed_years += years;
        if self.inject_faults {
            for f in &new_failures {
                self.mask.mark_dead(f.row, f.col);
            }
        }
        self.failures.extend_from_slice(&new_failures);
        new_failures
    }

    /// Marks the FU at `(row, col)` dead before it ever fails from aging —
    /// a manufacturing defect (DESIGN.md §12). Unlike an aging failure this
    /// emits no [`FuFailed`] event and leaves the wear state untouched: the
    /// unit simply never receives work, because allocation routes around
    /// the fault mask from the first mission on. The fleet engine uses
    /// seeded faults to fork equivalence classes of otherwise identical
    /// devices.
    ///
    /// # Panics
    ///
    /// Panics if the cell lies outside the fabric or the device is already
    /// retired.
    pub fn seed_fault(&mut self, row: u32, col: u32) {
        assert!(!self.is_dead(), "cannot seed a fault into a retired device");
        self.mask.mark_dead(row, col);
    }

    /// Retires the device at the current deployment time — called by the
    /// driver when the allocation policy reports that no legal placement
    /// remains (DESIGN.md §11).
    ///
    /// # Panics
    ///
    /// Panics if the device was already retired.
    pub fn retire(&mut self) {
        assert!(!self.is_dead(), "device retired twice");
        self.death_years = Some(self.elapsed_years);
    }

    /// The deployment time at which the first FU *would* cross end of life
    /// if every future mission repeated `duty` — the open-loop projection
    /// the analytic cross-check compares against
    /// [`CalibratedAging::lifetime_years`].
    ///
    /// Returns `f64::INFINITY` for an all-idle duty grid.
    pub fn projected_first_failure(&self, duty: &UtilizationGrid) -> f64 {
        assert_eq!(
            (self.wear.rows(), self.wear.cols()),
            (duty.rows(), duty.cols()),
            "geometry mismatch"
        );
        let remaining = self
            .wear
            .states()
            .iter()
            .zip(duty.values())
            .map(|(s, &u)| s.remaining_years(u))
            .fold(f64::INFINITY, f64::min);
        self.elapsed_years + remaining
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn duty(values: Vec<f64>) -> UtilizationGrid {
        UtilizationGrid::from_values(1, values.len() as u32, values)
    }

    #[test]
    fn failure_times_are_interpolated_exactly() {
        let fabric = Fabric::new(1, 4);
        let aging = CalibratedAging::default();
        let mut device = DeviceLifetime::new(&fabric, aging, true);
        let d = duty(vec![1.0, 0.5, 0.25, 0.0]);
        let mut all = Vec::new();
        for _ in 0..20 {
            all.extend(device.advance_mission(&d, 0.7));
        }
        // u = 1 dies at 3.0, u = 0.5 at 6.0, u = 0.25 at 12.0, u = 0 never.
        assert_eq!(all.len(), 3);
        assert!((all[0].at_years - 3.0).abs() < 1e-9);
        assert_eq!((all[0].row, all[0].col), (0, 0));
        assert_eq!(all[0].mission, 5, "3.0 years falls in the fifth 0.7-year mission");
        assert!((all[1].at_years - 6.0).abs() < 1e-9);
        assert!((all[2].at_years - 12.0).abs() < 1e-9);
        assert_eq!(device.failures().len(), 3);
        assert_eq!(device.first_failure_years(), Some(all[0].at_years));
        assert!(device.fault_mask().is_dead(0, 0));
        assert!(!device.fault_mask().is_dead(0, 3));
        assert_eq!(device.missions(), 20);
        assert!((device.elapsed_years() - 14.0).abs() < 1e-12);
    }

    #[test]
    fn open_loop_mode_reports_but_does_not_inject() {
        let fabric = Fabric::new(1, 4);
        let mut device = DeviceLifetime::new(&fabric, CalibratedAging::default(), false);
        let d = duty(vec![1.0, 0.1, 0.1, 0.1]);
        let failures: Vec<FuFailed> =
            (0..8).flat_map(|_| device.advance_mission(&d, 0.5)).collect();
        assert_eq!(failures.len(), 1, "the hot FU still crosses EOL");
        assert!(device.fault_mask().is_pristine(), "but the mask stays clean");
    }

    #[test]
    fn each_fu_fails_at_most_once() {
        let fabric = Fabric::new(1, 4);
        let mut device = DeviceLifetime::new(&fabric, CalibratedAging::default(), true);
        let d = duty(vec![1.0, 0.0, 0.0, 0.0]);
        let mut all = Vec::new();
        for _ in 0..10 {
            all.extend(device.advance_mission(&d, 1.0));
        }
        assert_eq!(all.len(), 1, "the crossing is reported exactly once");
    }

    #[test]
    fn projection_matches_the_analytic_lifetime() {
        let fabric = Fabric::new(1, 4);
        let aging = CalibratedAging::default();
        let mut device = DeviceLifetime::new(&fabric, aging, false);
        let d = duty(vec![0.6, 0.3, 0.05, 0.0]);
        // From fresh, the projection is the analytic worst-FU lifetime …
        assert!((device.projected_first_failure(&d) - aging.lifetime_years(0.6)).abs() < 1e-12);
        // … and it is invariant under partial progress at the same duty.
        device.advance_mission(&d, 1.25);
        device.advance_mission(&d, 0.5);
        assert!((device.projected_first_failure(&d) - aging.lifetime_years(0.6)).abs() < 1e-9);
        // An all-idle future never fails.
        assert_eq!(device.projected_first_failure(&duty(vec![0.0; 4])), f64::INFINITY);
    }

    #[test]
    fn seeded_faults_mask_without_failing() {
        let fabric = Fabric::new(1, 4);
        let mut device = DeviceLifetime::new(&fabric, CalibratedAging::default(), true);
        device.seed_fault(0, 2);
        assert!(device.fault_mask().is_dead(0, 2));
        assert!(device.failures().is_empty(), "a defect is not an aging failure");
        // The defective FU never gets work, so it never emits a crossing.
        let failures = device.advance_mission(&duty(vec![1.0, 0.0, 0.0, 0.0]), 4.0);
        assert_eq!(failures.len(), 1);
        assert_eq!((failures[0].row, failures[0].col), (0, 0));
        assert_eq!(device.wear().state(0, 2).effective_age(), 0.0);
    }

    #[test]
    fn retirement_freezes_the_clock() {
        let fabric = Fabric::new(1, 4);
        let mut device = DeviceLifetime::new(&fabric, CalibratedAging::default(), true);
        device.advance_mission(&duty(vec![1.0, 1.0, 1.0, 1.0]), 4.0);
        assert!(!device.is_dead());
        device.retire();
        assert!(device.is_dead());
        assert_eq!(device.death_years(), Some(4.0));
    }

    #[test]
    #[should_panic(expected = "retired")]
    fn advancing_a_dead_device_panics() {
        let fabric = Fabric::new(1, 4);
        let mut device = DeviceLifetime::new(&fabric, CalibratedAging::default(), true);
        device.retire();
        device.advance_mission(&duty(vec![0.0; 4]), 1.0);
    }
}
