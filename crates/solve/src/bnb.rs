//! The generic branch-and-bound core (DESIGN.md §15).
//!
//! Best-first search over partial assignments with two admissible lower
//! bounds (current worst resource; ceil-average of the committed plus
//! minimum-remaining load mass), a nogood table pruning re-derived states
//! in the CDCL spirit, and symmetry breaking over exchangeable slots. All
//! tie-breaks are resolved deterministically (leximin refinement in the
//! greedy seed, then ascending choice index, FIFO among equal bounds), so
//! solutions are bit-reproducible.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use tracing::{event, Level};

/// Publishes a finished search's counters as `solve.*` metric events
/// (DESIGN.md §16) — a no-op branch when no subscriber is installed.
fn emit_stats(stats: &SolveStats) {
    event!(
        Level::DEBUG,
        "solve",
        "calls" = 1,
        "expanded" = stats.expanded,
        "generated" = stats.generated,
        "bound_cutoffs" = stats.pruned_bound,
        "nogoods" = stats.pruned_nogood,
    );
}

/// A minimax assignment problem: `slots()` decisions, each picking one of
/// `choices()` options, every option adding integer load to some of the
/// `resources()`; the objective is the maximum final resource load.
///
/// Implementations must be pure: repeated calls with the same arguments
/// must return the same values (the solver assumes it can re-query).
pub trait MinimaxProblem {
    /// Number of assignment decisions, taken in index order.
    fn slots(&self) -> usize;

    /// Number of options available to every slot (legality is per-slot via
    /// [`legal`](Self::legal)).
    fn choices(&self) -> usize;

    /// Number of load-accumulating resources.
    fn resources(&self) -> usize;

    /// Load resource `resource` already carries before any assignment.
    fn initial_load(&self, resource: usize) -> u64;

    /// Whether `choice` may be assigned to `slot`.
    fn legal(&self, slot: usize, choice: usize) -> bool;

    /// The load this assignment adds, as `(resource, delta)` pairs. Pairs
    /// with the same resource are summed.
    fn deltas(&self, slot: usize, choice: usize) -> &[(u32, u64)];

    /// `true` when every slot has the same legal set and deltas, letting
    /// the solver restrict its search to non-decreasing choice sequences
    /// (symmetry breaking).
    fn exchangeable(&self) -> bool {
        false
    }
}

/// Search counters of one [`solve`] call (for benches and diagnostics;
/// never part of the objective).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct SolveStats {
    /// Nodes popped from the frontier and branched on.
    pub expanded: u64,
    /// Children generated across all expansions.
    pub generated: u64,
    /// Children discarded because their lower bound matched or exceeded
    /// the incumbent.
    pub pruned_bound: u64,
    /// Children discarded because an identical state (depth, symmetry
    /// floor, load vector) was already recorded in the nogood table.
    pub pruned_nogood: u64,
}

/// An optimal assignment returned by [`solve`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Solution {
    /// The minimized maximum final resource load.
    pub objective: u64,
    /// The chosen option per slot, in slot order. For exchangeable
    /// problems the improving search explores non-decreasing sequences,
    /// but the greedy incumbent may survive unsorted.
    pub choices: Vec<usize>,
    /// Search counters.
    pub stats: SolveStats,
}

/// One frontier node: a partial assignment of the first `depth` slots.
struct Node {
    depth: usize,
    /// Smallest choice index the next slot may take (symmetry breaking).
    floor: usize,
    loads: Vec<u64>,
    sum: u64,
    choices: Vec<usize>,
}

/// Solves a minimax assignment problem to proven optimality.
///
/// Returns `None` when some slot has no legal choice (the problem is
/// infeasible). Otherwise the returned [`Solution`] is optimal: the
/// best-first frontier is exhausted down to nodes whose admissible lower
/// bound matches the incumbent. Among optimal solutions, the greedy seed's
/// leximin tie-refinement is preferred when it already achieves the
/// optimum (common in balanced instances); an improving search replaces it
/// with the first strictly better leaf found. Deterministic by
/// construction — ascending choice order, FIFO tie-breaks on equal bounds,
/// integer arithmetic only — so equal problems yield byte-identical
/// solutions.
pub fn solve<P: MinimaxProblem>(p: &P) -> Option<Solution> {
    let n = p.slots();
    let r = p.resources();
    let mut stats = SolveStats::default();
    let initial: Vec<u64> = (0..r).map(|i| p.initial_load(i)).collect();
    if n == 0 {
        let objective = initial.iter().copied().max().unwrap_or(0);
        emit_stats(&stats);
        return Some(Solution { objective, choices: Vec::new(), stats });
    }

    // Minimum total load mass each slot must add (over its legal choices);
    // a slot with no legal choice makes the problem infeasible.
    let total = |s: usize, c: usize| p.deltas(s, c).iter().map(|&(_, d)| d).sum::<u64>();
    let mut min_total = vec![u64::MAX; n];
    for (s, m) in min_total.iter_mut().enumerate() {
        for c in 0..p.choices() {
            if p.legal(s, c) {
                *m = (*m).min(total(s, c));
            }
        }
        if *m == u64::MAX {
            event!(Level::DEBUG, "solve.infeasible", "add" = 1);
            return None;
        }
    }
    // rem[d] = minimum load mass slots d.. will still add.
    let mut rem = vec![0u64; n + 1];
    for s in (0..n).rev() {
        rem[s] = rem[s + 1] + min_total[s];
    }

    // Admissible lower bound of a partial assignment: loads only grow, and
    // the final maximum is at least the ceil-average of the committed plus
    // minimum-remaining mass spread over all resources.
    let lb_of = |depth: usize, loads: &[u64], sum: u64| -> u64 {
        let cur = loads.iter().copied().max().unwrap_or(0);
        if r == 0 {
            return cur;
        }
        cur.max((sum + rem[depth]).div_ceil(r as u64))
    };

    // Greedy incumbent: per slot, the legal choice minimizing the resulting
    // load vector sorted descending (leximin: smallest maximum first, then
    // smallest second-highest, …), final ties to the smallest choice index.
    // Pure minimax would leave every choice that avoids the current maximum
    // tied, letting the incumbent pile load onto low-index resources; the
    // leximin refinement keeps the returned optimum balanced without
    // changing the minimax objective (DESIGN.md §15). Feasible by the check
    // above; gives the search an upper bound to prune against.
    let mut inc_loads = initial.clone();
    let mut inc_choices = Vec::with_capacity(n);
    let mut scratch: Vec<u64> = Vec::with_capacity(r);
    for s in 0..n {
        let mut best: Option<(Vec<u64>, usize)> = None;
        for c in 0..p.choices() {
            if !p.legal(s, c) {
                continue;
            }
            scratch.clear();
            scratch.extend_from_slice(&inc_loads);
            for &(res, d) in p.deltas(s, c) {
                scratch[res as usize] += d;
            }
            scratch.sort_unstable_by(|a, b| b.cmp(a));
            if best.as_ref().is_none_or(|(bv, _)| scratch < *bv) {
                best = Some((scratch.clone(), c));
            }
        }
        let (_, c) = best.expect("feasibility was established per slot");
        for &(res, d) in p.deltas(s, c) {
            inc_loads[res as usize] += d;
        }
        inc_choices.push(c);
    }
    let mut ub = inc_loads.iter().copied().max().unwrap_or(0);
    let mut best_choices = inc_choices;

    // Best-first expansion: pop the open node with the smallest lower
    // bound (FIFO among equals via a monotone sequence number), branch on
    // its next slot. Once the smallest open bound reaches the incumbent,
    // the incumbent is proven optimal.
    let sum0: u64 = initial.iter().sum();
    let exchangeable = p.exchangeable();
    let mut nodes: Vec<Option<Node>> = Vec::new();
    let mut heap: BinaryHeap<Reverse<(u64, u64, usize)>> = BinaryHeap::new();
    let mut seen: HashSet<(usize, usize, Vec<u64>)> = HashSet::new();
    let mut seq: u64 = 0;
    let root = Node { depth: 0, floor: 0, loads: initial, sum: sum0, choices: Vec::new() };
    let root_lb = lb_of(0, &root.loads, root.sum);
    nodes.push(Some(root));
    heap.push(Reverse((root_lb, seq, 0)));

    while let Some(Reverse((lb, _, idx))) = heap.pop() {
        if lb >= ub {
            break; // every open node is at least as bad as the incumbent
        }
        let node = nodes[idx].take().expect("frontier nodes are popped once");
        stats.expanded += 1;
        for c in node.floor..p.choices() {
            if !p.legal(node.depth, c) {
                continue;
            }
            stats.generated += 1;
            let mut loads = node.loads.clone();
            let mut sum = node.sum;
            for &(res, d) in p.deltas(node.depth, c) {
                loads[res as usize] += d;
                sum += d;
            }
            let depth = node.depth + 1;
            if depth == n {
                let obj = loads.iter().copied().max().unwrap_or(0);
                if obj < ub {
                    ub = obj;
                    best_choices = node.choices.clone();
                    best_choices.push(c);
                }
                continue;
            }
            let child_lb = lb_of(depth, &loads, sum);
            if child_lb >= ub {
                stats.pruned_bound += 1;
                continue;
            }
            let floor = if exchangeable { c } else { 0 };
            // Nogood table: an identical state was already enqueued via
            // another path — re-deriving it cannot improve anything.
            if !seen.insert((depth, floor, loads.clone())) {
                stats.pruned_nogood += 1;
                continue;
            }
            let mut choices = node.choices.clone();
            choices.push(c);
            seq += 1;
            nodes.push(Some(Node { depth, floor, loads, sum, choices }));
            heap.push(Reverse((child_lb, seq, nodes.len() - 1)));
        }
    }

    emit_stats(&stats);
    Some(Solution { objective: ub, choices: best_choices, stats })
}

/// Per-(slot, choice) load deltas of a [`TableProblem`]: indexed
/// `[slot][choice]`, a `None` entry marks an illegal pair.
pub type DeltaTable = Vec<Vec<Option<Vec<(u32, u64)>>>>;

/// A dense in-memory [`MinimaxProblem`] — the reference instantiation used
/// by the solver's own tests and benches, and a convenient way to phrase
/// classic minimax problems (e.g. makespan scheduling).
#[derive(Clone, Debug)]
pub struct TableProblem {
    slots: usize,
    resources: usize,
    initial: Vec<u64>,
    deltas: DeltaTable,
    exchangeable: bool,
}

impl TableProblem {
    /// Builds a problem from explicit per-(slot, choice) delta tables;
    /// `None` entries are illegal assignments.
    pub fn new(initial: Vec<u64>, deltas: DeltaTable, exchangeable: bool) -> TableProblem {
        let slots = deltas.len();
        let choices = deltas.first().map_or(0, Vec::len);
        assert!(deltas.iter().all(|row| row.len() == choices), "ragged choice axis");
        TableProblem { slots, resources: initial.len(), initial, deltas, exchangeable }
    }

    /// Classic makespan scheduling: assign `jobs` (sizes) to `machines`,
    /// minimizing the largest machine load. Slots are jobs (not
    /// exchangeable — sizes differ), choices are machines.
    pub fn machines(jobs: &[u64], machines: usize) -> TableProblem {
        let deltas = jobs
            .iter()
            .map(|&size| (0..machines).map(|m| Some(vec![(m as u32, size)])).collect())
            .collect();
        TableProblem::new(vec![0; machines], deltas, false)
    }
}

impl MinimaxProblem for TableProblem {
    fn slots(&self) -> usize {
        self.slots
    }

    fn choices(&self) -> usize {
        self.deltas.first().map_or(0, Vec::len)
    }

    fn resources(&self) -> usize {
        self.resources
    }

    fn initial_load(&self, resource: usize) -> u64 {
        self.initial[resource]
    }

    fn legal(&self, slot: usize, choice: usize) -> bool {
        self.deltas[slot][choice].is_some()
    }

    fn deltas(&self, slot: usize, choice: usize) -> &[(u32, u64)] {
        self.deltas[slot][choice].as_deref().unwrap_or(&[])
    }

    fn exchangeable(&self) -> bool {
        self.exchangeable
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustive reference: enumerate every legal assignment.
    fn brute_force<P: MinimaxProblem>(p: &P) -> Option<u64> {
        fn rec<P: MinimaxProblem>(p: &P, slot: usize, loads: &mut Vec<u64>) -> Option<u64> {
            if slot == p.slots() {
                return Some(loads.iter().copied().max().unwrap_or(0));
            }
            let mut best = None;
            for c in 0..p.choices() {
                if !p.legal(slot, c) {
                    continue;
                }
                for &(res, d) in p.deltas(slot, c) {
                    loads[res as usize] += d;
                }
                if let Some(obj) = rec(p, slot + 1, loads) {
                    best = Some(best.map_or(obj, |b: u64| b.min(obj)));
                }
                for &(res, d) in p.deltas(slot, c) {
                    loads[res as usize] -= d;
                }
            }
            best
        }
        let mut loads: Vec<u64> = (0..p.resources()).map(|i| p.initial_load(i)).collect();
        rec(p, 0, &mut loads)
    }

    #[test]
    fn empty_problem_reports_the_initial_maximum() {
        let p = TableProblem::new(vec![3, 7, 5], Vec::new(), false);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 7);
        assert!(s.choices.is_empty());
    }

    #[test]
    fn single_slot_picks_the_smallest_argmin() {
        // Choices 1 and 2 tie on the objective; the smaller index wins.
        let deltas = vec![vec![Some(vec![(0, 5)]), Some(vec![(1, 2)]), Some(vec![(2, 2)])]];
        let p = TableProblem::new(vec![0, 0, 0], deltas, true);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 2);
        assert_eq!(s.choices, vec![1]);
    }

    #[test]
    fn equal_objective_ties_refine_by_leximin() {
        // Both choices leave the maximum at 4; pure minimax would call them
        // tied and take index 0, but index 1 leaves the balanced vector
        // [4, 3, 1] instead of [4, 4, 0] — the leximin refinement must
        // prefer it despite the larger index.
        let deltas = vec![vec![Some(vec![(1, 1)]), Some(vec![(2, 1)])]];
        let p = TableProblem::new(vec![4, 3, 0], deltas, false);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 4);
        assert_eq!(s.choices, vec![1]);
    }

    #[test]
    fn beats_list_scheduling_on_the_classic_makespan_instance() {
        // Jobs 3,3,2,2,2 on two machines: greedy list scheduling yields 7,
        // the optimum is 6 (3+3 | 2+2+2).
        let p = TableProblem::machines(&[3, 3, 2, 2, 2], 2);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 6);
        assert_eq!(s.choices.len(), 5);
        // Replay the choices: they must achieve the reported objective.
        let mut loads = [0u64; 2];
        for (job, &m) in s.choices.iter().enumerate() {
            loads[m] += [3, 3, 2, 2, 2][job];
        }
        assert_eq!(loads.iter().copied().max().unwrap(), 6);
    }

    #[test]
    fn respects_initial_loads() {
        // Machine 0 starts hot; both jobs must go to machine 1.
        let mut p = TableProblem::machines(&[2, 2], 2);
        p.initial = vec![10, 0];
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 10);
        assert_eq!(s.choices, vec![1, 1]);
    }

    #[test]
    fn infeasible_slot_returns_none() {
        let deltas = vec![
            vec![Some(vec![(0, 1)]), None],
            vec![None, None], // slot 1 has no legal choice
        ];
        let p = TableProblem::new(vec![0], deltas, false);
        assert!(solve(&p).is_none());
    }

    #[test]
    fn exchangeable_search_still_finds_the_optimum() {
        // Three identical slots over choices A=(2,0), B=(0,3): optimum is
        // A,A,B with objective 4 (loads 4,3).
        let deltas: Vec<_> = (0..3).map(|_| vec![Some(vec![(0, 2)]), Some(vec![(1, 3)])]).collect();
        let p = TableProblem::new(vec![0, 0], deltas, true);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 4);
        assert_eq!(brute_force(&p), Some(4));
    }

    #[test]
    fn matches_brute_force_on_assorted_instances() {
        let instances = vec![
            TableProblem::machines(&[5, 4, 3, 3, 2, 2, 1], 3),
            TableProblem::machines(&[9, 1, 1, 1, 1, 1, 1, 1, 1], 2),
            TableProblem::new(
                vec![4, 0, 2],
                (0..4)
                    .map(|_| {
                        vec![
                            Some(vec![(0, 1), (1, 2)]),
                            Some(vec![(1, 1), (2, 1)]),
                            None,
                            Some(vec![(2, 3)]),
                        ]
                    })
                    .collect(),
                true,
            ),
        ];
        for p in instances {
            let s = solve(&p).expect("feasible instance");
            assert_eq!(Some(s.objective), brute_force(&p), "solver must match brute force");
        }
    }

    #[test]
    fn solutions_are_bit_reproducible() {
        let p = TableProblem::machines(&[3, 3, 2, 2, 2], 2);
        let a = solve(&p).unwrap();
        let b = solve(&p).unwrap();
        assert_eq!(a, b, "same problem, same solution, same search counters");
        assert!(a.stats.expanded > 0, "the greedy incumbent (7) is suboptimal, so search runs");
    }

    #[test]
    fn nogood_table_prunes_rederived_states() {
        // The makespan instance re-derives the same machine-load vector
        // along permuted job orders (3 on m0 then 3 on m1, and vice versa);
        // the nogood table must catch the duplicates.
        let p = TableProblem::machines(&[3, 3, 2, 2, 2], 2);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 6);
        assert!(s.stats.pruned_nogood > 0, "duplicate states must hit the nogood table");
    }
}
