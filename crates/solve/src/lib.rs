//! # solve — deterministic branch-and-bound for minimax assignment
//!
//! The paper's allocation policies are heuristics; this crate provides the
//! *oracle* they are measured against (DESIGN.md §15): a registry-free,
//! bit-reproducible branch-and-bound core over **minimax assignment
//! problems** — assign every *slot* one *choice*, each choice adding integer
//! load to shared *resources*, minimizing the maximum final resource load —
//! plus the CGRA instantiation ([`OffsetProblem`]) where slots are upcoming
//! configuration executions, choices are legal footprint pivots, and
//! resources are the fabric's FUs accumulating NBTI stress.
//!
//! Everything is integer arithmetic with fixed iteration order, so two runs
//! on the same problem return byte-identical solutions — the property the
//! CI determinism tree-diff relies on.
//!
//! # Examples
//!
//! ```
//! use solve::{solve, TableProblem};
//!
//! // Two jobs of size 3 and three of size 2 on two machines: list
//! // scheduling gives makespan 7, the exact optimum is 6.
//! let p = TableProblem::machines(&[3, 3, 2, 2, 2], 2);
//! let s = solve(&p).unwrap();
//! assert_eq!(s.objective, 6);
//! ```

#![warn(missing_docs)]

mod bnb;
mod offsets;

pub use bnb::{solve, DeltaTable, MinimaxProblem, Solution, SolveStats, TableProblem};
pub use offsets::OffsetProblem;
