//! The CGRA instantiation of the minimax core (DESIGN.md §15).
//!
//! Slots are the next `slots` configuration executions of one footprint;
//! choices are the *legal* pivot offsets (legality — fault mask plus
//! capability demands — is injected as a predicate so the caller reuses the
//! shared `placement_ok`); resources are the fabric's FUs, loaded with
//! their live stress counters. A choice's deltas replicate
//! `UtilizationTracker::record_execution`'s bandwidth-aware stress rule
//! exactly, so the solved objective *is* the post-epoch worst-FU stress.

use cgra::{Fabric, Offset};

use crate::bnb::MinimaxProblem;

/// The wear-optimal pivot-selection problem for one footprint on one
/// fabric: minimize the maximum post-epoch per-FU stress count over all
/// assignments of the next `slots` executions to legal offsets.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use solve::{solve, OffsetProblem};
///
/// let fabric = Fabric::be();
/// let initial = vec![0u64; fabric.fu_count() as usize];
/// let p = OffsetProblem::new(&fabric, &[(0, 0), (0, 1)], &initial, 1, |_| true);
/// let s = solve(&p).unwrap();
/// assert_eq!(s.objective, 1); // one execution, one stress on a cold FU
/// ```
#[derive(Clone, Debug)]
pub struct OffsetProblem {
    slots: usize,
    initial: Vec<u64>,
    offsets: Vec<Offset>,
    deltas: Vec<Vec<(u32, u64)>>,
}

impl OffsetProblem {
    /// Builds the problem: enumerate pivots in row-major order, keep those
    /// `legal` accepts (pass the request's `placement_ok`), and precompute
    /// each survivor's per-FU stress deltas — `ceil(occupancy / bandwidth)`
    /// per covered cell on budgeted fabrics, 1 otherwise, matching the
    /// tracker's accounting (DESIGN.md §14).
    ///
    /// `initial_loads` are the live row-major stress counters
    /// (`UtilizationTracker::stress_counts`); `slots` is the epoch length
    /// being planned.
    ///
    /// # Panics
    ///
    /// Panics if `initial_loads` does not match the fabric's FU count.
    pub fn new(
        fabric: &Fabric,
        footprint: &[(u32, u32)],
        initial_loads: &[u64],
        slots: usize,
        mut legal: impl FnMut(Offset) -> bool,
    ) -> OffsetProblem {
        assert_eq!(
            initial_loads.len(),
            fabric.fu_count() as usize,
            "initial loads must be row-major per-FU counters"
        );
        let mut offsets = Vec::new();
        let mut deltas = Vec::new();
        for row in 0..fabric.rows {
            for col in 0..fabric.cols {
                let o = Offset::new(row, col);
                if !legal(o) {
                    continue;
                }
                let cells: Vec<(u32, u32)> =
                    footprint.iter().map(|&(r, c)| o.apply(fabric, r, c)).collect();
                let mut d: Vec<(u32, u64)> = cells
                    .iter()
                    .map(|&(pr, pc)| {
                        let stress = if fabric.col_bandwidth == 0 {
                            1
                        } else {
                            let occupancy = cells.iter().filter(|&&(_, c)| c == pc).count() as u64;
                            occupancy.div_ceil(fabric.col_bandwidth as u64)
                        };
                        (pr * fabric.cols + pc, stress)
                    })
                    .collect();
                // Merge repeated cells (overlapping ops) so each resource
                // appears once; the summed delta matches the tracker's
                // per-occurrence accrual.
                d.sort_unstable();
                d.dedup_by(|next, acc| {
                    if acc.0 == next.0 {
                        acc.1 += next.1;
                        true
                    } else {
                        false
                    }
                });
                offsets.push(o);
                deltas.push(d);
            }
        }
        OffsetProblem { slots, initial: initial_loads.to_vec(), offsets, deltas }
    }

    /// `false` when no pivot survived the legality predicate — solving
    /// would report infeasibility (the policy's `None`).
    pub fn is_feasible(&self) -> bool {
        !self.offsets.is_empty()
    }

    /// Maps a solver choice index back to its pivot offset.
    pub fn offset(&self, choice: usize) -> Offset {
        self.offsets[choice]
    }

    /// The legal pivots, in row-major enumeration order.
    pub fn legal_offsets(&self) -> &[Offset] {
        &self.offsets
    }
}

impl MinimaxProblem for OffsetProblem {
    fn slots(&self) -> usize {
        self.slots
    }

    fn choices(&self) -> usize {
        self.offsets.len()
    }

    fn resources(&self) -> usize {
        self.initial.len()
    }

    fn initial_load(&self, resource: usize) -> u64 {
        self.initial[resource]
    }

    fn legal(&self, _slot: usize, _choice: usize) -> bool {
        true // illegal pivots were filtered at construction
    }

    fn deltas(&self, _slot: usize, choice: usize) -> &[(u32, u64)] {
        &self.deltas[choice]
    }

    fn exchangeable(&self) -> bool {
        true // every slot plans the same footprint over the same pivots
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bnb::solve;

    #[test]
    fn enumerates_legal_offsets_row_major() {
        let fabric = Fabric::new(2, 4);
        let initial = vec![0u64; 8];
        let p = OffsetProblem::new(&fabric, &[(0, 0)], &initial, 1, |_| true);
        assert_eq!(p.choices(), 8);
        assert_eq!(p.offset(0), Offset::new(0, 0));
        assert_eq!(p.offset(7), Offset::new(1, 3));
        let filtered = OffsetProblem::new(&fabric, &[(0, 0)], &initial, 1, |o| o.row == 1);
        assert_eq!(filtered.legal_offsets().len(), 4);
        assert!(filtered.is_feasible());
        let none = OffsetProblem::new(&fabric, &[(0, 0)], &initial, 1, |_| false);
        assert!(!none.is_feasible());
        assert!(solve(&none).is_none());
    }

    #[test]
    fn deltas_wrap_and_weight_by_bandwidth() {
        // Two cells in one column on a bandwidth-1 fabric serialize:
        // stress 2 per cell, exactly the tracker's rule.
        let mut fabric = Fabric::new(2, 4);
        fabric.col_bandwidth = 1;
        let initial = vec![0u64; 8];
        let p = OffsetProblem::new(&fabric, &[(0, 0), (1, 0)], &initial, 1, |_| true);
        assert_eq!(p.deltas(0, 0), &[(0, 2), (4, 2)]);
        // The last column pivot wraps the footprint's second row cell.
        let wrap = OffsetProblem::new(&fabric, &[(0, 0), (0, 1)], &initial, 1, |_| true);
        let last = wrap.choices() - 1; // pivot (1, 3): cells (1,3) and (1,0)
        assert_eq!(wrap.deltas(0, last), &[(4, 1), (7, 1)]);
    }

    #[test]
    fn one_slot_dodges_the_hot_corner() {
        let fabric = Fabric::new(2, 4);
        let mut initial = vec![0u64; 8];
        initial[0] = 10; // (0,0) is hot
        let p = OffsetProblem::new(&fabric, &[(0, 0)], &initial, 1, |_| true);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 10, "the hot FU still dominates");
        assert_ne!(p.offset(s.choices[0]), Offset::ORIGIN, "but the pivot moved off it");
    }

    #[test]
    fn joint_epoch_plan_spreads_stress() {
        // Eight single-cell executions on a 2x4 fabric: the optimum covers
        // every FU exactly once.
        let fabric = Fabric::new(2, 4);
        let initial = vec![0u64; 8];
        let p = OffsetProblem::new(&fabric, &[(0, 0)], &initial, 8, |_| true);
        let s = solve(&p).unwrap();
        assert_eq!(s.objective, 1);
    }
}
