//! The DBT's central correctness property: a translated configuration,
//! executed on the fabric at *any* pivot offset, produces exactly the
//! architectural effects of the sequential instruction trace it came from.

use proptest::prelude::*;

use cgra::{Executor, Fabric, Offset};
use dbt::membus::MemoryBus;
use dbt::translate::{translate_prefix, TranslatorParams};
use rv32::cpu::Cpu;
use rv32::isa::{AluOp, Instr, LoadWidth, MulOp, Reg, StoreWidth};

const TEXT_BASE: u32 = 0x1000;
const DATA_BASE: u32 = 0x100;
const MEM_SIZE: usize = 64 * 1024;

/// Registers random programs may read/write. `s0` (x8) is reserved as the
/// memory base pointer and is never written, keeping addresses in bounds.
const POOL: [u8; 8] = [10, 11, 12, 13, 14, 5, 6, 7]; // a0-a4, t0-t2
const BASE: Reg = Reg::x(8);

fn any_pool_reg() -> impl Strategy<Value = Reg> {
    (0usize..POOL.len()).prop_map(|i| Reg::x(POOL[i]))
}

fn any_alu() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn any_supported_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        4 => (any_alu(), any_pool_reg(), any_pool_reg(), any_pool_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::Op { op, rd, rs1, rs2 }),
        4 => (any_alu().prop_filter("no subi", |o| *o != AluOp::Sub),
              any_pool_reg(), any_pool_reg(), -64i32..64)
            .prop_map(|(op, rd, rs1, imm)| {
                let imm = if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) {
                    imm.rem_euclid(32)
                } else {
                    imm
                };
                Instr::OpImm { op, rd, rs1, imm }
            }),
        1 => (any_pool_reg(), 0i32..0x1000)
            .prop_map(|(rd, v)| Instr::Lui { rd, imm: v << 12 }),
        1 => (any_pool_reg(), any_pool_reg(), any_pool_reg(), 0usize..4)
            .prop_map(|(rd, rs1, rs2, w)| {
                let ops = [MulOp::Mul, MulOp::Mulh, MulOp::Mulhsu, MulOp::Mulhu];
                Instr::MulDiv { op: ops[w], rd, rs1, rs2 }
            }),
        2 => (any_pool_reg(), 0i32..64, 0usize..5).prop_map(|(rd, word, w)| {
            let widths = [LoadWidth::B, LoadWidth::Bu, LoadWidth::H, LoadWidth::Hu, LoadWidth::W];
            Instr::Load { width: widths[w], rd, rs1: BASE, offset: word * 4 }
        }),
        2 => (any_pool_reg(), 0i32..64, 0usize..3).prop_map(|(rs2, word, w)| {
            let widths = [StoreWidth::B, StoreWidth::H, StoreWidth::W];
            Instr::Store { width: widths[w], rs2, rs1: BASE, offset: word * 4 }
        }),
    ]
}

/// Initial register file derived from a seed.
fn reg_value(r: Reg, seed: u32) -> u32 {
    if r == Reg::ZERO {
        0
    } else if r == BASE {
        DATA_BASE
    } else {
        seed.wrapping_mul(0x9e37_79b9).wrapping_add((r.num() as u32).wrapping_mul(0x85eb_ca6b))
    }
}

/// Runs `instrs` on the interpreter, returning the CPU afterwards.
fn run_reference(instrs: &[Instr], count: usize, seed: u32) -> Cpu {
    let mut cpu = Cpu::new(MEM_SIZE);
    for (i, instr) in instrs.iter().enumerate() {
        let w = rv32::encode(instr).expect("generated instr encodes");
        cpu.mem.write_u32(TEXT_BASE + 4 * i as u32, w).unwrap();
    }
    // Halt marker after the trace.
    cpu.mem
        .write_u32(TEXT_BASE + 4 * instrs.len() as u32, rv32::encode(&Instr::Ebreak).unwrap())
        .unwrap();
    cpu.set_pc(TEXT_BASE);
    for r in Reg::all() {
        cpu.set_reg(r, reg_value(r, seed));
    }
    // Deterministic initial data region.
    for i in 0..256u32 {
        cpu.mem.write_u8(DATA_BASE + i, (i as u8).wrapping_mul(31).wrapping_add(7)).unwrap();
    }
    for _ in 0..count {
        cpu.step().expect("reference executes");
    }
    cpu
}

fn check_equivalence(fabric: &Fabric, instrs: &[Instr], seed: u32, offsets: &[Offset]) {
    let params = TranslatorParams { min_instrs: 1, max_instrs: 512 };
    let cached = match translate_prefix(fabric, &params, TEXT_BASE, instrs) {
        Ok(c) => c,
        Err(e) => panic!("translation failed: {e}"),
    };
    let covered = cached.instr_count as usize;
    assert!(covered >= 1);
    let reference = run_reference(instrs, covered, seed);

    for &offset in offsets {
        // Fresh memory image identical to the reference's starting state.
        let mut mem = rv32::mem::Memory::new(MEM_SIZE);
        for i in 0..256u32 {
            mem.write_u8(DATA_BASE + i, (i as u8).wrapping_mul(31).wrapping_add(7)).unwrap();
        }
        let inputs: Vec<u32> = cached.input_regs.iter().map(|r| reg_value(*r, seed)).collect();
        let out = Executor::new(fabric)
            .execute(&cached.config, offset, &inputs, &mut MemoryBus::new(&mut mem))
            .expect("fabric executes");

        for (reg, value) in cached.output_regs.iter().zip(&out.outputs) {
            assert_eq!(
                reference.reg(*reg),
                *value,
                "output register {reg} differs at offset {offset} (covered {covered})"
            );
        }
        for i in 0..256u32 {
            assert_eq!(
                reference.mem.read_u8(DATA_BASE + i).unwrap(),
                mem.read_u8(DATA_BASE + i).unwrap(),
                "memory byte {i} differs at offset {offset}"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn translated_configs_match_interpreter(
        instrs in proptest::collection::vec(any_supported_instr(), 1..40),
        seed in any::<u32>(),
    ) {
        let fabric = Fabric::bp(); // 4 x 32: room for most traces
        check_equivalence(&fabric, &instrs, seed, &[Offset::ORIGIN]);
    }

    #[test]
    fn movement_invariance(
        instrs in proptest::collection::vec(any_supported_instr(), 1..24),
        seed in any::<u32>(),
        off_row in 0u32..4,
        off_col in 0u32..32,
    ) {
        let fabric = Fabric::bp();
        check_equivalence(
            &fabric,
            &instrs,
            seed,
            &[Offset::ORIGIN, Offset::new(off_row, off_col), Offset::new(3, 31)],
        );
    }

    #[test]
    fn bitstream_round_trip_of_translated_configs(
        instrs in proptest::collection::vec(any_supported_instr(), 1..32),
    ) {
        let fabric = Fabric::bp();
        let params = TranslatorParams { min_instrs: 1, max_instrs: 512 };
        let cached = translate_prefix(&fabric, &params, TEXT_BASE, &instrs).unwrap();
        let bs = cgra::Bitstream::encode(&fabric, &cached.config);
        let ops = bs.decode_ops(&fabric).unwrap();
        prop_assert_eq!(ops.as_slice(), cached.config.ops());
    }

    #[test]
    fn hardware_load_path_matches_software_rotation(
        instrs in proptest::collection::vec(any_supported_instr(), 1..24),
        off_row in 0u32..4,
        off_col in 0u32..32,
    ) {
        let fabric = Fabric::bp();
        let params = TranslatorParams { min_instrs: 1, max_instrs: 512 };
        let cached = translate_prefix(&fabric, &params, TEXT_BASE, &instrs).unwrap();
        let bs = cgra::Bitstream::encode(&fabric, &cached.config);
        let offset = Offset::new(off_row, off_col);
        let loaded = cgra::ReconfigUnit::with_movement().load(&fabric, &bs, offset).unwrap();
        let mut physical = loaded.decode_physical(&fabric).unwrap();
        physical.sort_by_key(|o| (o.col, o.row));
        let mut expected: Vec<_> = cached
            .config
            .ops()
            .iter()
            .map(|o| cgra::op::PlacedOp {
                row: (o.row + off_row) % fabric.rows,
                col: (o.col + off_col) % fabric.cols,
                ..*o
            })
            .collect();
        expected.sort_by_key(|o| (o.col, o.row));
        prop_assert_eq!(physical, expected);
    }
}

#[test]
fn corner_bias_of_greedy_allocation() {
    // An independent-operation trace: every op could go anywhere, the greedy
    // allocator stacks them from the top-left corner — the paper's Fig. 1
    // phenomenon in miniature.
    let instrs: Vec<Instr> = (0..6)
        .map(|i| Instr::OpImm { op: AluOp::Add, rd: Reg::x(POOL[i]), rs1: BASE, imm: i as i32 })
        .collect();
    let fabric = Fabric::fig1(); // 4 x 8
    let params = TranslatorParams { min_instrs: 1, max_instrs: 64 };
    let cached = translate_prefix(&fabric, &params, TEXT_BASE, &instrs).unwrap();
    let mut cells: Vec<(u32, u32)> = cached.config.ops().iter().map(|o| (o.col, o.row)).collect();
    cells.sort_unstable();
    assert_eq!(cells, vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 0), (1, 1)]);
}

#[test]
fn division_is_not_translatable() {
    let instrs = vec![Instr::MulDiv { op: MulOp::Div, rd: Reg::A0, rs1: Reg::A0, rs2: Reg::A1 }];
    let e = translate_prefix(
        &Fabric::be(),
        &TranslatorParams { min_instrs: 1, max_instrs: 8 },
        TEXT_BASE,
        &instrs,
    )
    .unwrap_err();
    assert!(matches!(e, dbt::TranslateError::Unsupported { index: 0 }));
}

#[test]
fn long_dependent_chain_stops_at_fabric_edge() {
    // 40 chained adds cannot fit 32 columns: expect FabricFull stop.
    let mut instrs = Vec::new();
    for _ in 0..40 {
        instrs.push(Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A0, imm: 1 });
    }
    let fabric = Fabric::bp(); // 32 columns
    let params = TranslatorParams { min_instrs: 1, max_instrs: 512 };
    let cached = translate_prefix(&fabric, &params, TEXT_BASE, &instrs).unwrap();
    assert_eq!(cached.instr_count, 32);
    assert_eq!(cached.stop, dbt::StopReason::FabricFull);
    // And the covered prefix still computes correctly.
    check_equivalence(&fabric, &instrs, 77, &[Offset::ORIGIN, Offset::new(2, 7)]);
}
