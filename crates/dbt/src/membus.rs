//! Adapter: an [`rv32::mem::Memory`] as the CGRA's [`MemBus`].

use cgra::op::{LoadFunc, StoreFunc};
use cgra::{MemBus, MemFault};
use rv32::mem::Memory;

/// Lets the fabric's memory unit address the processor's memory — the
/// "To Memory Unit" connection of paper Fig. 4.
#[derive(Debug)]
pub struct MemoryBus<'a> {
    mem: &'a mut Memory,
}

impl<'a> MemoryBus<'a> {
    /// Wraps a memory for the duration of a configuration execution.
    pub fn new(mem: &'a mut Memory) -> MemoryBus<'a> {
        MemoryBus { mem }
    }
}

impl MemBus for MemoryBus<'_> {
    fn load(&mut self, addr: u32, func: LoadFunc) -> Result<u32, MemFault> {
        let fault = |_| MemFault { addr };
        Ok(match func {
            LoadFunc::B => self.mem.read_u8(addr).map_err(fault)? as i8 as i32 as u32,
            LoadFunc::Bu => self.mem.read_u8(addr).map_err(fault)? as u32,
            LoadFunc::H => self.mem.read_u16(addr).map_err(fault)? as i16 as i32 as u32,
            LoadFunc::Hu => self.mem.read_u16(addr).map_err(fault)? as u32,
            LoadFunc::W => self.mem.read_u32(addr).map_err(fault)?,
        })
    }

    fn store(&mut self, addr: u32, func: StoreFunc, value: u32) -> Result<(), MemFault> {
        let fault = |_| MemFault { addr };
        match func {
            StoreFunc::B => self.mem.write_u8(addr, value as u8).map_err(fault),
            StoreFunc::H => self.mem.write_u16(addr, value as u16).map_err(fault),
            StoreFunc::W => self.mem.write_u32(addr, value).map_err(fault),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adapter_matches_memory_semantics() {
        let mut mem = Memory::new(64);
        {
            let mut bus = MemoryBus::new(&mut mem);
            bus.store(4, StoreFunc::W, 0x8000_beef).unwrap();
            assert_eq!(bus.load(4, LoadFunc::W).unwrap(), 0x8000_beef);
            assert_eq!(bus.load(5, LoadFunc::B).unwrap(), 0xffff_ffbe);
            assert_eq!(bus.load(6, LoadFunc::Hu).unwrap(), 0x8000);
            assert!(bus.load(100, LoadFunc::W).is_err());
            assert!(bus.store(100, StoreFunc::W, 0).is_err());
        }
        assert_eq!(mem.read_u32(4).unwrap(), 0x8000_beef);
    }
}
