//! Trace formation from the retired-instruction stream (paper Fig. 2,
//! step 2: "As instructions finish their execution, they are sent to the
//! DBT module, which interprets their semantics, finds the dependencies
//! among them, and allocates them into a CGRA configuration").

use rv32::cpu::Retired;

use cgra::Fabric;
use serde::{Deserialize, Serialize};

use crate::translate::{is_supported, translate_trace, CachedConfig, TranslatorParams};

/// Counters describing the translator's behaviour.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslatorStats {
    /// Retired instructions observed.
    pub observed: u64,
    /// Traces finalized into configurations.
    pub configs_built: u64,
    /// Traces dropped for being shorter than the minimum.
    pub traces_too_short: u64,
    /// Instructions covered by built configurations.
    pub instrs_covered: u64,
}

/// The hardware DBT's trace builder: feed it retired instructions, get
/// cache-ready configurations out.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use dbt::Translator;
/// use rv32::{asm::assemble, cpu::Cpu};
///
/// let p = assemble("
///     addi a1, a0, 1
///     slli a2, a1, 3
///     xor  a3, a2, a0
///     beq  a3, zero, end     # control: finalizes the trace
/// end:
///     ebreak
/// ").unwrap();
/// let mut cpu = Cpu::new(1 << 20);
/// cpu.load_program(&p).unwrap();
/// let mut dbt = Translator::new(Fabric::be());
/// let mut built = Vec::new();
/// while cpu.exit().is_none() {
///     let r = cpu.step().unwrap();
///     built.extend(dbt.observe(&r, false));
/// }
/// assert_eq!(built.len(), 1);
/// // Three body instructions + the beq resolved on the fabric.
/// assert_eq!(built[0].instr_count, 4);
/// assert!(matches!(built[0].exit, dbt::TraceExit::Branch { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct Translator {
    fabric: Fabric,
    params: TranslatorParams,
    forming: Option<Forming>,
    stats: TranslatorStats,
}

#[derive(Clone, Debug)]
struct Forming {
    start_pc: u32,
    expected_pc: u32,
    instrs: Vec<rv32::Instr>,
}

impl Translator {
    /// Creates a translator targeting `fabric` with default parameters.
    pub fn new(fabric: Fabric) -> Translator {
        Translator::with_params(fabric, TranslatorParams::default())
    }

    /// Creates a translator with explicit parameters.
    pub fn with_params(fabric: Fabric, params: TranslatorParams) -> Translator {
        Translator { fabric, params, forming: None, stats: TranslatorStats::default() }
    }

    /// The translator's parameters.
    pub fn params(&self) -> &TranslatorParams {
        &self.params
    }

    /// Counters accumulated so far.
    pub fn stats(&self) -> &TranslatorStats {
        &self.stats
    }

    /// Observes one retired instruction. Returns the configurations
    /// finalized by it (a long straight-line trace splits into a *chain* of
    /// configurations, each picking up where the previous one stopped).
    ///
    /// `already_cached` tells the translator the configuration cache already
    /// holds an entry for this PC, so starting a new trace there would be
    /// wasted work.
    pub fn observe(&mut self, retired: &Retired, already_cached: bool) -> Vec<CachedConfig> {
        self.stats.observed += 1;
        let supported = is_supported(&retired.instr);

        // Continue the forming trace if this instruction follows it.
        if let Some(forming) = &mut self.forming {
            if supported && retired.pc == forming.expected_pc {
                forming.instrs.push(retired.instr);
                forming.expected_pc = retired.next_pc;
                if forming.instrs.len() >= self.params.max_instrs {
                    return self.finalize();
                }
                return Vec::new();
            }
            // A control transfer immediately following the trace can be
            // resolved on the fabric (branch condition as ALU ops / static
            // jump target) — the mechanism that keeps hot loops entirely on
            // the CGRA.
            let terminator = (retired.pc == forming.expected_pc
                && matches!(retired.instr, rv32::Instr::Branch { .. } | rv32::Instr::Jal { .. }))
            .then_some(retired.instr);
            let built = self.finalize_with(terminator.as_ref());
            self.maybe_start(retired, already_cached);
            return built;
        }

        self.maybe_start(retired, already_cached);
        Vec::new()
    }

    fn maybe_start(&mut self, retired: &Retired, already_cached: bool) {
        if is_supported(&retired.instr) && !already_cached {
            self.forming = Some(Forming {
                start_pc: retired.pc,
                expected_pc: retired.next_pc,
                instrs: vec![retired.instr],
            });
        }
    }

    /// Finalizes the forming trace, if any, translating it into a chain of
    /// configurations.
    pub fn finalize(&mut self) -> Vec<CachedConfig> {
        self.finalize_with(None)
    }

    /// Finalizes with an optional fabric-resolvable terminator. A trace
    /// longer than one fabric's worth of operations becomes several
    /// back-to-back configurations (like DIM allocating into a fresh
    /// configuration when the current one fills up).
    fn finalize_with(&mut self, terminator: Option<&rv32::Instr>) -> Vec<CachedConfig> {
        let Some(forming) = self.forming.take() else {
            return Vec::new();
        };
        let mut built = Vec::new();
        let mut done = 0usize;
        while done < forming.instrs.len() {
            let start_pc = forming.start_pc + 4 * done as u32;
            let rest = &forming.instrs[done..];
            match translate_trace(&self.fabric, &self.params, start_pc, rest, terminator) {
                Ok(cfg) => {
                    self.stats.configs_built += 1;
                    self.stats.instrs_covered += cfg.instr_count as u64;
                    // A fabric-resolved terminator is only attached to the
                    // final chunk; `covered` then exceeds the body slice.
                    let body_covered = (cfg.instr_count as usize).min(rest.len());
                    done += body_covered.max(1);
                    built.push(cfg);
                }
                Err(_) => {
                    self.stats.traces_too_short += 1;
                    break;
                }
            }
        }
        built
    }
}
