//! # dbt — the hardware dynamic-binary-translation model
//!
//! TransRec's DBT module (paper Fig. 2) turned into a library: it watches
//! the GPP's retired-instruction stream, forms straight-line traces, places
//! them greedily onto the CGRA fabric (the corner-biased allocation whose
//! aging consequences the paper attacks), and manages the PC-indexed
//! configuration cache.
//!
//! * [`translate`] — trace → [`Configuration`](cgra::Configuration)
//!   placement ([`translate_prefix`], [`CachedConfig`]).
//! * [`trace`] — the retire-stream observer ([`Translator`]).
//! * [`cache`] — the PC-indexed LRU [`ConfigCache`].
//! * [`membus`] — adapter exposing an [`rv32`] memory as the fabric's
//!   [`MemBus`](cgra::MemBus).
//!
//! # Examples
//!
//! Translate a straight-line sequence and verify the fabric computes exactly
//! what the processor would:
//!
//! ```
//! use cgra::{Executor, Fabric, Offset};
//! use dbt::membus::MemoryBus;
//! use dbt::translate::{translate_prefix, TranslatorParams};
//! use rv32::{asm::assemble, cpu::Cpu, isa::Reg};
//!
//! let p = assemble("
//!     addi a1, a0, 10
//!     mul  a2, a1, a0
//!     sub  a3, a2, a1
//! ").unwrap();
//! let instrs: Vec<_> = p.text.iter().map(|w| rv32::decode(*w).unwrap()).collect();
//! let fabric = Fabric::be();
//! let cached = translate_prefix(&fabric, &TranslatorParams::default(), p.entry, &instrs)?;
//!
//! // Reference: the interpreter.
//! let mut cpu = Cpu::new(1 << 20);
//! cpu.load_program(&p).unwrap();
//! cpu.set_reg(Reg::A0, 7);
//! for _ in 0..3 { cpu.step().unwrap(); }
//!
//! // Fabric execution of the same three instructions.
//! let inputs: Vec<u32> = cached.input_regs.iter().map(|_| 7).collect();
//! let mut mem = rv32::mem::Memory::new(64);
//! let out = Executor::new(&fabric)
//!     .execute(&cached.config, Offset::ORIGIN, &inputs, &mut MemoryBus::new(&mut mem))?;
//! for (reg, value) in cached.output_regs.iter().zip(&out.outputs) {
//!     assert_eq!(cpu.reg(*reg), *value);
//! }
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod cache;
pub mod membus;
pub mod trace;
pub mod translate;

pub use cache::{CacheStats, ConfigCache};
pub use trace::{Translator, TranslatorStats};
pub use translate::{
    is_supported, translate_prefix, translate_trace, CachedConfig, StopReason, TraceExit,
    TranslateError, TranslatorParams,
};
