//! Binary translation: an instruction trace → a CGRA configuration.
//!
//! This models the TransRec DBT hardware's allocation behaviour (paper
//! Fig. 2/§II.B): instructions are taken in program order and greedily
//! placed at the earliest column their operands allow, in the first free row
//! from the top. That greedy "first available FU" policy is precisely what
//! biases utilization towards the top-left corner of the fabric (paper
//! Fig. 1) — the phenomenon utilization-aware allocation corrects.
//!
//! Placement rules (DESIGN.md §4):
//!
//! * every supported instruction occupies exactly one FU slot — constant
//!   operands (including `x0` reads) are re-expressed via the FU's immediate
//!   field, never elided, like DIM-family translators;
//! * a consumer starts no earlier than `producer.col + producer.span`;
//! * memory ports are pipelined: one load (store) may *issue* per processor
//!   cycle on the single read (write) port, stores commit at their last
//!   column, and any memory op after a store waits for the store's commit
//!   (conservative aliasing);
//! * `x0` and live-in registers are bound to input context lines on first
//!   use; each written register gets a fresh line, recycled once its last
//!   scheduled reader has fired.

use std::fmt;

use rv32::isa::{AluOp, Instr, LoadWidth, MulOp, Reg, StoreWidth};

use cgra::op::{AluFunc, CtxLine, LoadFunc, MulFunc, OpKind, Operand, PlacedOp, StoreFunc};
use cgra::{ConfigError, Configuration, Fabric};

use serde::{Deserialize, Serialize};

/// Translation tuning knobs.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TranslatorParams {
    /// Minimum instructions for a configuration to be worth caching.
    pub min_instrs: usize,
    /// Hard cap on instructions per configuration.
    pub max_instrs: usize,
}

impl Default for TranslatorParams {
    fn default() -> TranslatorParams {
        TranslatorParams { min_instrs: 3, max_instrs: 256 }
    }
}

/// Why translation of a trace stopped where it did.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum StopReason {
    /// All instructions of the trace were placed.
    Complete,
    /// The next op would not fit in the fabric columns.
    FabricFull,
    /// No context line was available for a new value.
    LinesExhausted,
    /// The instruction cap was reached.
    MaxInstrs,
}

/// How a configuration hands control back to the GPP.
///
/// The TransRec family resolves a trace's terminating control transfer on
/// the fabric itself: the branch condition becomes one or two ALU ops whose
/// result selects the next PC, so a hot loop re-dispatches config-to-config
/// without executing a single GPP instruction in steady state.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceExit {
    /// Fall through to the instruction after the covered region.
    Sequential,
    /// Unconditional jump resolved at translation time.
    Jump {
        /// Next PC.
        target: u32,
    },
    /// Conditional branch evaluated on the fabric; the condition value is
    /// `outputs[cond_output_index]`.
    Branch {
        /// PC if the condition is non-zero.
        taken: u32,
        /// PC if the condition is zero.
        not_taken: u32,
    },
}

/// A translated, cache-ready configuration.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CachedConfig {
    /// PC of the first covered instruction.
    pub start_pc: u32,
    /// Number of instructions the configuration covers (including a
    /// fabric-resolved terminator).
    pub instr_count: u32,
    /// The validated configuration.
    pub config: Configuration,
    /// GPP registers supplying the input context, parallel to
    /// `config.inputs()`.
    pub input_regs: Vec<Reg>,
    /// GPP registers receiving the outputs, parallel to the leading entries
    /// of `config.outputs()`.
    pub output_regs: Vec<Reg>,
    /// How control continues after the configuration.
    pub exit: TraceExit,
    /// Index in the execution outputs carrying the branch condition
    /// (`Some` iff `exit` is [`TraceExit::Branch`]).
    pub cond_output_index: Option<usize>,
    /// Why translation stopped.
    pub stop: StopReason,
}

impl CachedConfig {
    /// PC after the configuration when the exit is sequential (also the
    /// fall-through PC of a fabric-resolved branch).
    pub fn next_pc(&self) -> u32 {
        match self.exit {
            TraceExit::Sequential => self.start_pc + 4 * self.instr_count,
            TraceExit::Jump { target } => target,
            TraceExit::Branch { not_taken, .. } => not_taken,
        }
    }
}

/// Classifies instructions the fabric can execute.
///
/// Control transfers, divisions, and system instructions are not fabric ops:
/// they terminate trace formation.
pub fn is_supported(instr: &Instr) -> bool {
    match instr {
        Instr::Lui { .. } | Instr::Auipc { .. } => true,
        Instr::OpImm { .. } | Instr::Op { .. } => true,
        Instr::MulDiv { op, .. } => !op.is_div(),
        Instr::Load { .. } | Instr::Store { .. } => true,
        Instr::Jal { .. }
        | Instr::Jalr { .. }
        | Instr::Branch { .. }
        | Instr::Fence
        | Instr::Ecall
        | Instr::Ebreak => false,
    }
}

/// Internal error used to stop placement.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum PlaceFail {
    FabricFull,
    LinesExhausted,
}

impl From<PlaceFail> for StopReason {
    fn from(f: PlaceFail) -> StopReason {
        match f {
            PlaceFail::FabricFull => StopReason::FabricFull,
            PlaceFail::LinesExhausted => StopReason::LinesExhausted,
        }
    }
}

/// Translation failure for a whole trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TranslateError {
    /// The trace contains an instruction the fabric cannot execute.
    Unsupported {
        /// Index of the offending instruction.
        index: usize,
    },
    /// Fewer than `min_instrs` instructions could be placed.
    TooShort {
        /// Instructions that fitted.
        placed: usize,
        /// The configured minimum.
        min: usize,
    },
    /// The produced configuration failed validation (internal bug guard).
    Invalid(ConfigError),
}

impl fmt::Display for TranslateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TranslateError::Unsupported { index } => {
                write!(f, "instruction #{index} is not a fabric operation")
            }
            TranslateError::TooShort { placed, min } => {
                write!(f, "only {placed} instruction(s) placed, minimum is {min}")
            }
            TranslateError::Invalid(e) => write!(f, "translator produced invalid config: {e}"),
        }
    }
}

impl std::error::Error for TranslateError {}

#[derive(Clone, Copy)]
struct LineState {
    /// Register whose live value the line holds, if any.
    bound: Option<Reg>,
    /// Column of the latest scheduled *event* on the current value (its
    /// write or any read); −1 if the line was never used. A line can only be
    /// re-allocated to a def completing strictly later, which rules out
    /// same-column double writes and stale-value overwrites.
    last_event: i64,
    /// First column from which the current value is readable.
    avail: u32,
}

struct Snapshot {
    lines: Vec<LineState>,
    reg_line: [Option<u16>; 32],
    n_inputs: usize,
    n_ops: usize,
    grid: Vec<bool>,
    last_load_start: Option<u32>,
    last_store_start: Option<u32>,
    last_store_end: Option<u32>,
    dirty: [bool; 32],
}

struct Placer<'f> {
    fabric: &'f Fabric,
    /// Cell occupancy, row-major.
    grid: Vec<bool>,
    lines: Vec<LineState>,
    /// Where each register's live value lives (line index).
    reg_line: [Option<u16>; 32],
    /// Registers bound as inputs, in binding order.
    inputs: Vec<(CtxLine, Reg)>,
    /// Registers written by the placed ops.
    dirty: [bool; 32],
    /// Start column of the most recent load (read-port issue pipelining).
    last_load_start: Option<u32>,
    /// Start column of the most recent store (write-port issue pipelining).
    last_store_start: Option<u32>,
    /// Completion column of the most recent store (aliasing barrier).
    last_store_end: Option<u32>,
    ops: Vec<PlacedOp>,
}

impl<'f> Placer<'f> {
    fn new(fabric: &'f Fabric) -> Placer<'f> {
        Placer {
            fabric,
            grid: vec![false; (fabric.rows * fabric.cols) as usize],
            lines: vec![
                LineState { bound: None, last_event: -1, avail: 0 };
                fabric.ctx_lines as usize
            ],
            reg_line: [None; 32],
            inputs: Vec::new(),
            dirty: [false; 32],
            last_load_start: None,
            last_store_start: None,
            last_store_end: None,
            ops: Vec::new(),
        }
    }

    /// Earliest start column for a memory op of the given direction under
    /// the pipelined-port and aliasing rules.
    fn mem_earliest(&self, is_load: bool) -> u32 {
        let issue = self.fabric.cols_per_cycle;
        let mut earliest = 0;
        // RAW through memory: wait for the last store to commit.
        if let Some(end) = self.last_store_end {
            earliest = earliest.max(end + 1);
        }
        if is_load {
            if let Some(s) = self.last_load_start {
                earliest = earliest.max(s + issue);
            }
        } else {
            if let Some(s) = self.last_store_start {
                earliest = earliest.max(s + issue);
            }
            // WAR: a store must not commit before a program-order-earlier
            // load has captured its value (reads happen at start columns).
            if let Some(s) = self.last_load_start {
                earliest = earliest.max(s);
            }
        }
        earliest
    }

    /// Binds `reg` to an input line if it has no live location yet, and
    /// returns its operand + readiness column.
    fn source(&mut self, reg: Reg) -> Result<(Operand, u32), PlaceFail> {
        if let Some(l) = self.reg_line[reg.num() as usize] {
            let st = self.lines[l as usize];
            return Ok((Operand::Ctx(CtxLine(l)), st.avail));
        }
        // First use: bind an input line (x0 simply reads the GPP's zero).
        let l = self.alloc_line(0).ok_or(PlaceFail::LinesExhausted)?;
        self.lines[l as usize] = LineState { bound: Some(reg), last_event: 0, avail: 0 };
        self.reg_line[reg.num() as usize] = Some(l);
        self.inputs.push((CtxLine(l), reg));
        Ok((Operand::Ctx(CtxLine(l)), 0))
    }

    /// Finds a line whose current value is dead and whose last event falls
    /// strictly before `completion`.
    fn alloc_line(&self, completion: u32) -> Option<u16> {
        self.lines
            .iter()
            .position(|st| st.bound.is_none() && st.last_event < completion as i64)
            .map(|i| i as u16)
    }

    /// Finds the first (col, row) from `earliest` where `span` cells are free
    /// in one row, scanning rows top-down then columns left-right — the
    /// greedy corner-biased policy.
    fn find_cell(&self, earliest: u32, span: u32) -> Option<(u32, u32)> {
        let f = self.fabric;
        for col in earliest..f.cols.saturating_sub(span - 1) {
            for row in 0..f.rows {
                let free = (col..col + span).all(|c| !self.grid[(row * f.cols + c) as usize]);
                if free {
                    return Some((col, row));
                }
            }
        }
        None
    }

    fn occupy(&mut self, row: u32, col: u32, span: u32) {
        for c in col..col + span {
            self.grid[(row * self.fabric.cols + c) as usize] = true;
        }
    }

    fn snapshot(&self) -> Snapshot {
        Snapshot {
            lines: self.lines.clone(),
            reg_line: self.reg_line,
            n_inputs: self.inputs.len(),
            n_ops: self.ops.len(),
            grid: self.grid.clone(),
            last_load_start: self.last_load_start,
            last_store_start: self.last_store_start,
            last_store_end: self.last_store_end,
            dirty: self.dirty,
        }
    }

    fn restore(&mut self, snap: Snapshot) {
        self.lines = snap.lines;
        self.reg_line = snap.reg_line;
        self.inputs.truncate(snap.n_inputs);
        self.ops.truncate(snap.n_ops);
        self.grid = snap.grid;
        self.last_load_start = snap.last_load_start;
        self.last_store_start = snap.last_store_start;
        self.last_store_end = snap.last_store_end;
        self.dirty = snap.dirty;
    }

    /// Resolves a branch comparison source; `x0` folds to the constant zero.
    fn source_or_zero(&mut self, reg: Reg) -> Result<(Operand, u32), PlaceFail> {
        if reg == Reg::ZERO {
            Ok((Operand::Imm(0), 0))
        } else {
            self.source(reg)
        }
    }

    /// Places an anonymous value-producing op (used for fabric-resolved
    /// branch conditions). Only legal as the *last* ops of a configuration:
    /// the produced line is unbound, so a later register def could reuse it.
    fn place_anon(
        &mut self,
        kind: OpKind,
        a: (Operand, u32),
        b: (Operand, u32),
    ) -> Result<(CtxLine, u32), PlaceFail> {
        let earliest = a.1.max(b.1);
        let span = self.fabric.latency(kind);
        let (col, row) = self.find_cell(earliest, span).ok_or(PlaceFail::FabricFull)?;
        let completion = col + span - 1;
        self.note_read(a.0, col);
        self.note_read(b.0, col);
        let l = self.alloc_line(completion).ok_or(PlaceFail::LinesExhausted)?;
        self.lines[l as usize] =
            LineState { bound: None, last_event: completion as i64, avail: col + span };
        self.occupy(row, col, span);
        self.ops.push(PlacedOp { row, col, span, kind, a: a.0, b: b.0, dst: Some(CtxLine(l)) });
        Ok((CtxLine(l), col + span))
    }

    /// Places the condition computation for a terminating branch and returns
    /// the line carrying 1 (taken) / 0 (not taken).
    fn place_branch_cond(
        &mut self,
        op: rv32::isa::BranchOp,
        rs1: Reg,
        rs2: Reg,
    ) -> Result<CtxLine, PlaceFail> {
        use rv32::isa::BranchOp as B;
        let snap = self.snapshot();
        let result = (|| {
            let a = self.source_or_zero(rs1)?;
            let b = self.source_or_zero(rs2)?;
            let line = match op {
                B::Lt => self.place_anon(OpKind::Alu(AluFunc::Slt), a, b)?.0,
                B::Ltu => self.place_anon(OpKind::Alu(AluFunc::Sltu), a, b)?.0,
                B::Ge => {
                    let (l, av) = self.place_anon(OpKind::Alu(AluFunc::Slt), a, b)?;
                    self.place_anon(
                        OpKind::Alu(AluFunc::Xor),
                        (Operand::Ctx(l), av),
                        (Operand::Imm(1), 0),
                    )?
                    .0
                }
                B::Geu => {
                    let (l, av) = self.place_anon(OpKind::Alu(AluFunc::Sltu), a, b)?;
                    self.place_anon(
                        OpKind::Alu(AluFunc::Xor),
                        (Operand::Ctx(l), av),
                        (Operand::Imm(1), 0),
                    )?
                    .0
                }
                B::Eq => {
                    let (l, av) = self.place_anon(OpKind::Alu(AluFunc::Xor), a, b)?;
                    self.place_anon(
                        OpKind::Alu(AluFunc::Sltu),
                        (Operand::Ctx(l), av),
                        (Operand::Imm(1), 0),
                    )?
                    .0
                }
                B::Ne => {
                    let (l, av) = self.place_anon(OpKind::Alu(AluFunc::Xor), a, b)?;
                    self.place_anon(
                        OpKind::Alu(AluFunc::Sltu),
                        (Operand::Imm(0), 0),
                        (Operand::Ctx(l), av),
                    )?
                    .0
                }
            };
            Ok(line)
        })();
        if result.is_err() {
            self.restore(snap);
        }
        result
    }

    /// Notes a read of `operand` at column `col` for line-lifetime tracking.
    fn note_read(&mut self, operand: Operand, col: u32) {
        if let Operand::Ctx(l) = operand {
            let st = &mut self.lines[l.0 as usize];
            st.last_event = st.last_event.max(col as i64);
        }
    }

    /// Places one instruction; returns `Err` if resources ran out (the
    /// caller finalizes with the already-placed prefix).
    fn place(&mut self, pc: u32, instr: &Instr) -> Result<(), PlaceFail> {
        debug_assert!(is_supported(instr));
        let (kind, a_src, b_src): (OpKind, SourceSpec, SourceSpec) = match *instr {
            // Constant generators: Or(v, v) = v occupies one FU, both
            // operand selects read the single shared immediate field.
            Instr::Lui { imm, .. } => {
                (OpKind::Alu(AluFunc::Or), SourceSpec::Imm(imm as u32), SourceSpec::Imm(imm as u32))
            }
            Instr::Auipc { imm, .. } => {
                let v = pc.wrapping_add(imm as u32);
                (OpKind::Alu(AluFunc::Or), SourceSpec::Imm(v), SourceSpec::Imm(v))
            }
            Instr::OpImm { op, rs1, imm, .. } => {
                (OpKind::Alu(alu_func(op)), SourceSpec::Reg(rs1), SourceSpec::Imm(imm as u32))
            }
            Instr::Op { op, rs1, rs2, .. } => {
                (OpKind::Alu(alu_func(op)), SourceSpec::Reg(rs1), SourceSpec::Reg(rs2))
            }
            Instr::MulDiv { op, rs1, rs2, .. } => {
                (OpKind::Mul(mul_func(op)), SourceSpec::Reg(rs1), SourceSpec::Reg(rs2))
            }
            Instr::Load { width, rs1, offset, .. } => (
                OpKind::Load { func: load_func(width), offset },
                SourceSpec::Reg(rs1),
                SourceSpec::Imm(0),
            ),
            Instr::Store { width, rs1, rs2, offset } => (
                OpKind::Store { func: store_func(width), offset },
                SourceSpec::Reg(rs1),
                SourceSpec::Reg(rs2),
            ),
            _ => unreachable!("caller checks is_supported"),
        };

        // `x0` reads are the constant zero: fold them into immediates rather
        // than wasting an input context line. Memory base addresses and
        // store data must stay on lines (hardware constraint), so those keep
        // the input-line fallback.
        let keep_lines = kind.is_mem();
        let fold_zero = |s: SourceSpec| match s {
            SourceSpec::Reg(r) if r == Reg::ZERO && !keep_lines => SourceSpec::Imm(0),
            other => other,
        };
        let (mut kind, mut a_src, mut b_src) = (kind, fold_zero(a_src), fold_zero(b_src));
        // An ALU/MUL op with two immediate operands is a compile-time
        // constant; the FU configuration word holds a single immediate, so
        // re-express it as the constant generator `Or(c, c) = c`.
        if let (SourceSpec::Imm(va), SourceSpec::Imm(vb)) = (a_src, b_src) {
            let folded = match kind {
                OpKind::Alu(f) => Some(f.eval(va, vb)),
                OpKind::Mul(f) => Some(f.eval(va, vb)),
                _ => None,
            };
            if let Some(c) = folded {
                kind = OpKind::Alu(AluFunc::Or);
                a_src = SourceSpec::Imm(c);
                b_src = SourceSpec::Imm(c);
            }
        }

        // Snapshot so a failed placement leaves no side effects (input
        // bindings made for an op that doesn't fit must be undone).
        let snapshot = self.snapshot();

        let resolve = |p: &mut Placer<'_>, s: SourceSpec| -> Result<(Operand, u32), PlaceFail> {
            match s {
                SourceSpec::Imm(v) => Ok((Operand::Imm(v), 0)),
                SourceSpec::Reg(r) => p.source(r),
            }
        };
        let result = (|| {
            let (a, a_ready) = resolve(self, a_src)?;
            let (b, b_ready) = resolve(self, b_src)?;
            let mut earliest = a_ready.max(b_ready);
            let is_load = matches!(kind, OpKind::Load { .. });
            if kind.is_mem() {
                earliest = earliest.max(self.mem_earliest(is_load));
            }
            let span = self.fabric.latency(kind);
            let (col, row) = self.find_cell(earliest, span).ok_or(PlaceFail::FabricFull)?;
            let completion = col + span - 1;

            // Destination line (if the instruction writes a register).
            let dst = match instr.dest() {
                Some(rd) => {
                    // Reads happen at `col`; note them before rebinding rd so
                    // an op reading and writing rd keeps the old line alive.
                    self.note_read(a, col);
                    self.note_read(b, col);
                    // Release rd's previous line for future reuse.
                    if let Some(old) = self.reg_line[rd.num() as usize] {
                        self.lines[old as usize].bound = None;
                    }
                    let l = self.alloc_line(completion).ok_or(PlaceFail::LinesExhausted)?;
                    self.lines[l as usize] = LineState {
                        bound: Some(rd),
                        last_event: completion as i64,
                        avail: col + span,
                    };
                    self.reg_line[rd.num() as usize] = Some(l);
                    self.dirty[rd.num() as usize] = true;
                    Some(CtxLine(l))
                }
                None => {
                    self.note_read(a, col);
                    self.note_read(b, col);
                    None
                }
            };

            self.occupy(row, col, span);
            if kind.is_mem() {
                if is_load {
                    self.last_load_start = Some(col);
                } else {
                    self.last_store_start = Some(col);
                    self.last_store_end = Some(col + span - 1);
                }
            }
            self.ops.push(PlacedOp { row, col, span, kind, a, b, dst });
            Ok(())
        })();

        if result.is_err() {
            self.restore(snapshot);
        }
        result
    }
}

#[derive(Copy, Clone)]
enum SourceSpec {
    Reg(Reg),
    Imm(u32),
}

fn alu_func(op: AluOp) -> AluFunc {
    match op {
        AluOp::Add => AluFunc::Add,
        AluOp::Sub => AluFunc::Sub,
        AluOp::Sll => AluFunc::Sll,
        AluOp::Slt => AluFunc::Slt,
        AluOp::Sltu => AluFunc::Sltu,
        AluOp::Xor => AluFunc::Xor,
        AluOp::Srl => AluFunc::Srl,
        AluOp::Sra => AluFunc::Sra,
        AluOp::Or => AluFunc::Or,
        AluOp::And => AluFunc::And,
    }
}

fn mul_func(op: MulOp) -> MulFunc {
    match op {
        MulOp::Mul => MulFunc::Mul,
        MulOp::Mulh => MulFunc::Mulh,
        MulOp::Mulhsu => MulFunc::Mulhsu,
        MulOp::Mulhu => MulFunc::Mulhu,
        _ => unreachable!("divisions are unsupported"),
    }
}

fn load_func(w: LoadWidth) -> LoadFunc {
    match w {
        LoadWidth::B => LoadFunc::B,
        LoadWidth::Bu => LoadFunc::Bu,
        LoadWidth::H => LoadFunc::H,
        LoadWidth::Hu => LoadFunc::Hu,
        LoadWidth::W => LoadFunc::W,
    }
}

fn store_func(w: StoreWidth) -> StoreFunc {
    match w {
        StoreWidth::B => StoreFunc::B,
        StoreWidth::H => StoreFunc::H,
        StoreWidth::W => StoreFunc::W,
    }
}

/// Translates the longest placeable prefix of `instrs` (starting at
/// `start_pc`) into a configuration.
///
/// # Errors
///
/// * [`TranslateError::Unsupported`] if the *first* instruction is not a
///   fabric op (later unsupported instructions simply end the prefix).
/// * [`TranslateError::TooShort`] if fewer than `params.min_instrs` fit.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use dbt::translate::{translate_prefix, TranslatorParams};
/// use rv32::asm::assemble;
///
/// let p = assemble("
///     addi a1, a0, 1
///     slli a2, a1, 3
///     xor  a3, a2, a0
/// ").unwrap();
/// let instrs: Vec<_> = p.text.iter().map(|w| rv32::decode(*w).unwrap()).collect();
/// let cached = translate_prefix(
///     &Fabric::be(), &TranslatorParams::default(), p.entry, &instrs,
/// ).unwrap();
/// assert_eq!(cached.instr_count, 3);
/// // Greedy allocation: the first op sits at the top-left corner.
/// assert_eq!((cached.config.ops()[0].row, cached.config.ops()[0].col), (0, 0));
/// ```
pub fn translate_prefix(
    fabric: &Fabric,
    params: &TranslatorParams,
    start_pc: u32,
    instrs: &[Instr],
) -> Result<CachedConfig, TranslateError> {
    translate_trace(fabric, params, start_pc, instrs, None)
}

/// [`translate_prefix`] with an optional trace-terminating control
/// instruction (a conditional branch or `jal`) that immediately follows
/// `instrs`. When the whole body fits, the terminator is resolved *on the
/// fabric* ([`TraceExit::Branch`]/[`TraceExit::Jump`]); if its condition ops
/// don't fit, the configuration falls back to a sequential exit and the GPP
/// executes the control instruction itself.
///
/// # Errors
///
/// Same as [`translate_prefix`].
pub fn translate_trace(
    fabric: &Fabric,
    params: &TranslatorParams,
    start_pc: u32,
    instrs: &[Instr],
    terminator: Option<&Instr>,
) -> Result<CachedConfig, TranslateError> {
    let _span = tracing::span!(tracing::Level::DEBUG, "dbt.translate").entered();
    tracing::event!(tracing::Level::TRACE, "dbt.translate.calls", "add" = 1);
    if instrs.first().is_none_or(|i| !is_supported(i)) {
        tracing::event!(tracing::Level::TRACE, "dbt.translate.rejected", "add" = 1);
        return Err(TranslateError::Unsupported { index: 0 });
    }
    let mut placer = Placer::new(fabric);
    let mut covered = 0usize;
    let mut stop = StopReason::Complete;
    for (i, instr) in instrs.iter().enumerate() {
        if i >= params.max_instrs {
            stop = StopReason::MaxInstrs;
            break;
        }
        if !is_supported(instr) {
            break;
        }
        match placer.place(start_pc + 4 * i as u32, instr) {
            Ok(()) => covered += 1,
            Err(fail) => {
                stop = fail.into();
                break;
            }
        }
    }
    if covered < params.min_instrs {
        tracing::event!(tracing::Level::TRACE, "dbt.translate.rejected", "add" = 1);
        return Err(TranslateError::TooShort { placed: covered, min: params.min_instrs });
    }
    tracing::event!(tracing::Level::TRACE, "dbt.translate.placed_instrs", "add" = covered as u64);

    // Try to resolve the terminator on the fabric.
    let mut exit = TraceExit::Sequential;
    let mut cond_line: Option<CtxLine> = None;
    if covered == instrs.len() && stop == StopReason::Complete {
        let term_pc = start_pc + 4 * covered as u32;
        match terminator {
            Some(&Instr::Jal { rd, offset }) => {
                let link_ok = if rd == Reg::ZERO {
                    true
                } else {
                    // The link value pc+4 is a constant generator op.
                    placer.place(term_pc, &Instr::Auipc { rd, imm: 4 }).is_ok()
                };
                if link_ok {
                    exit = TraceExit::Jump { target: term_pc.wrapping_add(offset as u32) };
                    covered += 1;
                }
            }
            Some(&Instr::Branch { op, rs1, rs2, offset }) => {
                if let Ok(line) = placer.place_branch_cond(op, rs1, rs2) {
                    exit = TraceExit::Branch {
                        taken: term_pc.wrapping_add(offset as u32),
                        not_taken: term_pc + 4,
                    };
                    cond_line = Some(line);
                    covered += 1;
                }
            }
            _ => {}
        }
    }

    let inputs: Vec<CtxLine> = placer.inputs.iter().map(|(l, _)| *l).collect();
    let input_regs: Vec<Reg> = placer.inputs.iter().map(|(_, r)| *r).collect();
    let mut output_regs: Vec<Reg> = Reg::all().filter(|r| placer.dirty[r.num() as usize]).collect();
    output_regs.sort_by_key(|r| r.num());
    let mut outputs: Vec<CtxLine> = output_regs
        .iter()
        .map(|r| CtxLine(placer.reg_line[r.num() as usize].expect("dirty reg has a line")))
        .collect();
    let cond_output_index = cond_line.map(|l| {
        outputs.push(l);
        outputs.len() - 1
    });

    let config =
        Configuration::new(fabric, placer.ops, inputs, outputs).map_err(TranslateError::Invalid)?;
    Ok(CachedConfig {
        start_pc,
        instr_count: covered as u32,
        config,
        input_regs,
        output_regs,
        exit,
        cond_output_index,
        stop,
    })
}
