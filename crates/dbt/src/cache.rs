//! The PC-indexed configuration cache (paper Fig. 2: "saved in a dedicated
//! configuration cache and indexed by the PC of the first instruction").

use std::collections::HashMap;

use serde::{Deserialize, Serialize};

use crate::translate::CachedConfig;

/// Cache hit/miss counters.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheStats {
    /// Successful lookups.
    pub hits: u64,
    /// Failed lookups.
    pub misses: u64,
    /// Entries inserted.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

/// An LRU cache of translated configurations, keyed by start PC.
///
/// # Examples
///
/// ```
/// use dbt::ConfigCache;
/// let mut cache = ConfigCache::new(32);
/// assert!(cache.lookup(0x1000).is_none());
/// assert_eq!(cache.stats().misses, 1);
/// ```
#[derive(Clone, Debug)]
pub struct ConfigCache {
    capacity: usize,
    entries: HashMap<u32, Entry>,
    tick: u64,
    stats: CacheStats,
}

#[derive(Clone, Debug)]
struct Entry {
    config: CachedConfig,
    last_used: u64,
}

impl ConfigCache {
    /// Creates a cache holding at most `capacity` configurations.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> ConfigCache {
        assert!(capacity > 0, "cache capacity must be positive");
        ConfigCache { capacity, entries: HashMap::new(), tick: 0, stats: CacheStats::default() }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when no configurations are cached.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> &CacheStats {
        &self.stats
    }

    /// `true` if `pc` has an entry (does not touch LRU state or counters).
    pub fn contains(&self, pc: u32) -> bool {
        self.entries.contains_key(&pc)
    }

    /// Looks up the configuration starting at `pc`, updating LRU order and
    /// hit/miss counters.
    pub fn lookup(&mut self, pc: u32) -> Option<&CachedConfig> {
        self.tick += 1;
        match self.entries.get_mut(&pc) {
            Some(e) => {
                e.last_used = self.tick;
                self.stats.hits += 1;
                tracing::event!(tracing::Level::TRACE, "dbt.cache.hit", "add" = 1);
                Some(&e.config)
            }
            None => {
                self.stats.misses += 1;
                tracing::event!(tracing::Level::TRACE, "dbt.cache.miss", "add" = 1);
                None
            }
        }
    }

    /// Inserts a configuration, evicting the least recently used entry if
    /// the cache is full. Replaces any existing entry with the same PC.
    ///
    /// Returns the start PC of the evicted entry, if one was displaced —
    /// event-stream consumers (`transrec`'s telemetry layer) turn it into a
    /// `CacheEvicted` event.
    pub fn insert(&mut self, config: CachedConfig) -> Option<u32> {
        self.tick += 1;
        let pc = config.start_pc;
        let mut evicted = None;
        if !self.entries.contains_key(&pc) && self.entries.len() >= self.capacity {
            if let Some((&victim, _)) = self.entries.iter().min_by_key(|(_, e)| e.last_used) {
                self.entries.remove(&victim);
                self.stats.evictions += 1;
                tracing::event!(tracing::Level::TRACE, "dbt.cache.evict", "add" = 1);
                evicted = Some(victim);
            }
        }
        self.stats.insertions += 1;
        tracing::event!(tracing::Level::TRACE, "dbt.cache.insert", "add" = 1);
        self.entries.insert(pc, Entry { config, last_used: self.tick });
        evicted
    }

    /// Drops every cached configuration — the DBT flush on a program
    /// switch (translations are PC-indexed, so entries from a previous
    /// program would alias the new one). Hit/miss/insertion counters keep
    /// accumulating across the flush.
    pub fn clear(&mut self) {
        self.entries.clear();
    }

    /// Iterates over the cached configurations in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = &CachedConfig> {
        self.entries.values().map(|e| &e.config)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra::op::{AluFunc, CtxLine, OpKind, Operand, PlacedOp};
    use cgra::{Configuration, Fabric};
    use dbt_test_helpers::*;

    /// Minimal valid CachedConfig for cache plumbing tests.
    mod dbt_test_helpers {
        use super::*;
        use crate::translate::StopReason;

        pub fn dummy(pc: u32) -> CachedConfig {
            let fabric = Fabric::be();
            let config = Configuration::new(
                &fabric,
                vec![PlacedOp {
                    row: 0,
                    col: 0,
                    span: 1,
                    kind: OpKind::Alu(AluFunc::Add),
                    a: Operand::Ctx(CtxLine(0)),
                    b: Operand::Imm(1),
                    dst: Some(CtxLine(1)),
                }],
                vec![CtxLine(0)],
                vec![CtxLine(1)],
            )
            .unwrap();
            CachedConfig {
                start_pc: pc,
                instr_count: 1,
                config,
                input_regs: vec![rv32::Reg::A0],
                output_regs: vec![rv32::Reg::A0],
                exit: crate::translate::TraceExit::Sequential,
                cond_output_index: None,
                stop: StopReason::Complete,
            }
        }
    }

    #[test]
    fn hit_miss_counting() {
        let mut c = ConfigCache::new(4);
        assert!(c.lookup(0x100).is_none());
        c.insert(dummy(0x100));
        assert!(c.lookup(0x100).is_some());
        assert_eq!(c.stats().hits, 1);
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = ConfigCache::new(2);
        assert_eq!(c.insert(dummy(0x100)), None);
        assert_eq!(c.insert(dummy(0x200)), None);
        c.lookup(0x100); // 0x200 becomes LRU
        assert_eq!(c.insert(dummy(0x300)), Some(0x200), "victim PC reported");
        assert!(c.contains(0x100));
        assert!(!c.contains(0x200), "LRU entry evicted");
        assert!(c.contains(0x300));
        assert_eq!(c.stats().evictions, 1);
    }

    #[test]
    fn reinsert_same_pc_replaces() {
        let mut c = ConfigCache::new(2);
        c.insert(dummy(0x100));
        assert_eq!(c.insert(dummy(0x100)), None, "replacement is not an eviction");
        assert_eq!(c.len(), 1);
        assert_eq!(c.stats().evictions, 0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_rejected() {
        ConfigCache::new(0);
    }
}
