//! Whole-program assembler/interpreter tests: realistic code shapes
//! (string routines, recursion with a real stack, jump tables) verified
//! against native Rust computations.

use rv32::asm::assemble;
use rv32::cpu::{Cpu, TimingModel};
use rv32::isa::Reg;

fn run(src: &str) -> Cpu {
    let p = assemble(src).expect("assembles");
    let mut cpu = Cpu::new(1 << 20);
    cpu.load_program(&p).unwrap();
    cpu.run(5_000_000).expect("halts");
    cpu
}

#[test]
fn memcpy_bytewise() {
    let cpu = run("
        .data
    src: .ascii \"the quick brown fox jumps over the lazy dog\"
    dst: .space 43
        .text
        la   a0, dst
        la   a1, src
        li   a2, 43
    loop:
        lbu  t0, 0(a1)
        sb   t0, 0(a0)
        addi a0, a0, 1
        addi a1, a1, 1
        addi a2, a2, -1
        bnez a2, loop
        ebreak
    ");
    let dst = cpu.mem.read_bytes(rv32::asm::DEFAULT_DATA_BASE + 43, 43).unwrap();
    assert_eq!(dst, b"the quick brown fox jumps over the lazy dog");
}

#[test]
fn strlen_null_terminated() {
    let cpu = run("
        .data
    s:  .asciz \"reconfigurable\"
        .text
        la   t0, s
        li   a0, 0
    loop:
        lbu  t1, 0(t0)
        beqz t1, done
        addi a0, a0, 1
        addi t0, t0, 1
        j    loop
    done:
        ebreak
    ");
    assert_eq!(cpu.reg(Reg::A0), 14);
}

#[test]
fn recursive_fibonacci_uses_the_stack() {
    // fib(12) = 144 with genuine call/ret recursion and stack frames.
    let cpu = run("
    main:
        li   a0, 12
        call fib
        ebreak
    fib:
        li   t0, 2
        bge  a0, t0, rec
        ret
    rec:
        addi sp, sp, -12
        sw   ra, 0(sp)
        sw   a0, 4(sp)
        addi a0, a0, -1
        call fib
        sw   a0, 8(sp)      # fib(n-1)
        lw   a0, 4(sp)
        addi a0, a0, -2
        call fib
        lw   t1, 8(sp)
        add  a0, a0, t1
        lw   ra, 0(sp)
        addi sp, sp, 12
        ret
    ");
    assert_eq!(cpu.reg(Reg::A0), 144);
}

#[test]
fn jump_table_dispatch() {
    // Computed jump through a table of code addresses (jalr-based dispatch).
    let cpu = run("
        .data
    table: .word case0, case1, case2
        .text
        li   s0, 1              # select case 1
        la   t0, table
        slli t1, s0, 2
        add  t0, t0, t1
        lw   t0, 0(t0)
        jr   t0
    case0:
        li   a0, 100
        j    end
    case1:
        li   a0, 200
        j    end
    case2:
        li   a0, 300
    end:
        ebreak
    ");
    assert_eq!(cpu.reg(Reg::A0), 200);
}

#[test]
fn unsigned_division_by_shifts() {
    // divu semantics vs a shift-subtract implementation of 97 / 7.
    let cpu = run("
        li   s0, 97
        li   s1, 7
        divu a0, s0, s1
        remu a1, s0, s1
        ebreak
    ");
    assert_eq!(cpu.reg(Reg::A0), 13);
    assert_eq!(cpu.reg(Reg::A1), 6);
}

#[test]
fn custom_timing_model_is_respected() {
    let p = assemble(
        "
        lw  t0, 0(zero)
        lw  t1, 4(zero)
        add t2, t0, t1
        ebreak
    ",
    )
    .unwrap();
    let timing = TimingModel { load: 10, alu: 2, system: 5, ..TimingModel::default() };
    let mut cpu = Cpu::with_timing(1 << 20, timing);
    cpu.load_program(&p).unwrap();
    cpu.run(100).unwrap();
    assert_eq!(cpu.cycles(), 10 + 10 + 2 + 5);
}

#[test]
fn taken_branches_cost_extra() {
    // A taken backward branch pays the redirect penalty; not-taken does not.
    let taken = run("li t0, 1\nbeqz zero, t1\nt1: ebreak");
    let not_taken = run("li t0, 1\nbnez zero, t2\nt2: ebreak");
    assert!(taken.cycles() > not_taken.cycles());
}

#[test]
fn output_stream_via_write_syscall() {
    let cpu = run("
        .data
    msg: .ascii \"ok\\n\"
        .text
        li  a0, 1
        la  a1, msg
        li  a2, 3
        li  a7, 64
        ecall
        li  a0, 0
        li  a7, 93
        ecall
    ");
    assert_eq!(cpu.output(), b"ok\n");
    assert_eq!(cpu.exit(), Some(rv32::cpu::Exit::Exit { code: 0 }));
}

#[test]
fn data_section_symbol_arithmetic() {
    let cpu = run("
        .data
    vals: .word 11, 22, 33, 44
        .text
        la   t0, vals+8
        lw   a0, 0(t0)
        la   t1, vals+12
        lw   a1, 0(t1)
        ebreak
    ");
    assert_eq!(cpu.reg(Reg::A0), 33);
    assert_eq!(cpu.reg(Reg::A1), 44);
}
