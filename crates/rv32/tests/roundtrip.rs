//! Property tests: encode/decode are mutually inverse, and decoding is total
//! over the image of encoding.

use proptest::prelude::*;
use rv32::isa::{AluOp, BranchOp, Instr, LoadWidth, MulOp, Reg, StoreWidth};
use rv32::{decode, encode};

fn any_reg() -> impl Strategy<Value = Reg> {
    (0u8..32).prop_map(|n| Reg::new(n).unwrap())
}

fn any_alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Sll),
        Just(AluOp::Slt),
        Just(AluOp::Sltu),
        Just(AluOp::Xor),
        Just(AluOp::Srl),
        Just(AluOp::Sra),
        Just(AluOp::Or),
        Just(AluOp::And),
    ]
}

fn any_imm_alu_op() -> impl Strategy<Value = AluOp> {
    any_alu_op().prop_filter("no subi", |op| *op != AluOp::Sub)
}

fn any_mul_op() -> impl Strategy<Value = MulOp> {
    prop_oneof![
        Just(MulOp::Mul),
        Just(MulOp::Mulh),
        Just(MulOp::Mulhsu),
        Just(MulOp::Mulhu),
        Just(MulOp::Div),
        Just(MulOp::Divu),
        Just(MulOp::Rem),
        Just(MulOp::Remu),
    ]
}

fn any_branch_op() -> impl Strategy<Value = BranchOp> {
    prop_oneof![
        Just(BranchOp::Eq),
        Just(BranchOp::Ne),
        Just(BranchOp::Lt),
        Just(BranchOp::Ge),
        Just(BranchOp::Ltu),
        Just(BranchOp::Geu),
    ]
}

fn any_load_width() -> impl Strategy<Value = LoadWidth> {
    prop_oneof![
        Just(LoadWidth::B),
        Just(LoadWidth::H),
        Just(LoadWidth::W),
        Just(LoadWidth::Bu),
        Just(LoadWidth::Hu),
    ]
}

fn any_store_width() -> impl Strategy<Value = StoreWidth> {
    prop_oneof![Just(StoreWidth::B), Just(StoreWidth::H), Just(StoreWidth::W)]
}

fn any_instr() -> impl Strategy<Value = Instr> {
    prop_oneof![
        (any_reg(), 0i32..=0xfffff).prop_map(|(rd, v)| Instr::Lui { rd, imm: v << 12 }),
        (any_reg(), 0i32..=0xfffff).prop_map(|(rd, v)| Instr::Auipc { rd, imm: v << 12 }),
        (any_reg(), (-(1i32 << 19)..(1 << 19)))
            .prop_map(|(rd, o)| Instr::Jal { rd, offset: o * 2 }),
        (any_reg(), any_reg(), -2048i32..=2047).prop_map(|(rd, rs1, offset)| Instr::Jalr {
            rd,
            rs1,
            offset
        }),
        (any_branch_op(), any_reg(), any_reg(), -2048i32..=2047)
            .prop_map(|(op, rs1, rs2, o)| Instr::Branch { op, rs1, rs2, offset: o * 2 }),
        (any_load_width(), any_reg(), any_reg(), -2048i32..=2047)
            .prop_map(|(width, rd, rs1, offset)| Instr::Load { width, rd, rs1, offset }),
        (any_store_width(), any_reg(), any_reg(), -2048i32..=2047)
            .prop_map(|(width, rs2, rs1, offset)| Instr::Store { width, rs2, rs1, offset }),
        (any_imm_alu_op(), any_reg(), any_reg(), -2048i32..=2047).prop_map(|(op, rd, rs1, imm)| {
            let imm =
                if matches!(op, AluOp::Sll | AluOp::Srl | AluOp::Sra) { imm & 0x1f } else { imm };
            Instr::OpImm { op, rd, rs1, imm }
        }),
        (any_alu_op(), any_reg(), any_reg(), any_reg()).prop_map(|(op, rd, rs1, rs2)| Instr::Op {
            op,
            rd,
            rs1,
            rs2
        }),
        (any_mul_op(), any_reg(), any_reg(), any_reg())
            .prop_map(|(op, rd, rs1, rs2)| Instr::MulDiv { op, rd, rs1, rs2 }),
        Just(Instr::Fence),
        Just(Instr::Ecall),
        Just(Instr::Ebreak),
    ]
}

proptest! {
    #[test]
    fn encode_decode_round_trip(instr in any_instr()) {
        let word = encode(&instr).expect("generated instr is encodable");
        let back = decode(word).expect("encoded word must decode");
        prop_assert_eq!(instr, back);
    }

    #[test]
    fn decode_never_panics(word in any::<u32>()) {
        let _ = decode(word); // Ok or Err, but never a panic.
    }

    #[test]
    fn decoded_words_reencode_identically(word in any::<u32>()) {
        if let Ok(instr) = decode(word) {
            // Canonical encodings re-encode to *some* valid word that decodes
            // to the same instruction (fence variants collapse to one word).
            let w2 = encode(&instr).expect("decoded instr is encodable");
            prop_assert_eq!(decode(w2).expect("round"), instr);
        }
    }

    #[test]
    fn alu_eval_matches_interpreter_reference(a in any::<u32>(), b in any::<u32>()) {
        // A second, independent formulation of the ALU semantics.
        prop_assert_eq!(AluOp::Add.eval(a, b), a.wrapping_add(b));
        prop_assert_eq!(AluOp::Xor.eval(a, b), a ^ b);
        prop_assert_eq!(AluOp::Sltu.eval(a, b), u32::from(a < b));
        prop_assert_eq!(AluOp::Slt.eval(a, b), u32::from((a as i32) < (b as i32)));
        prop_assert_eq!(AluOp::Sll.eval(a, b), a << (b % 32));
        prop_assert_eq!(AluOp::Srl.eval(a, b), a >> (b % 32));
    }

    #[test]
    fn mul_div_never_panic(op_idx in 0usize..8, a in any::<u32>(), b in any::<u32>()) {
        let ops = [MulOp::Mul, MulOp::Mulh, MulOp::Mulhsu, MulOp::Mulhu,
                   MulOp::Div, MulOp::Divu, MulOp::Rem, MulOp::Remu];
        let _ = ops[op_idx].eval(a, b);
    }
}
