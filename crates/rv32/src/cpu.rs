//! Single-issue in-order CPU interpreter with a TimingSimple-like cycle model.
//!
//! This stands in for the paper's gem5 `TimingSimpleCPU` substrate: it
//! produces (a) architectural results, (b) a deterministic cycle count from a
//! per-class latency table, and (c) the retired-instruction stream consumed
//! by the hardware DBT model in the `dbt` crate.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::decode::{decode, DecodeError};
use crate::isa::{Instr, Reg};
use crate::mem::{MemError, Memory};
use crate::program::Program;

/// Per-instruction-class latencies in processor cycles.
///
/// Defaults model a single-issue embedded core in the spirit of gem5's
/// `TimingSimpleCPU` with L1 caches: one cycle per ALU instruction,
/// three-cycle loads (AGU + cache access + writeback), a fetch-redirect
/// penalty on taken control transfers, a multi-cycle multiplier and an
/// iterative divider.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimingModel {
    /// ALU / lui / auipc latency.
    pub alu: u64,
    /// Load latency (includes the data-cache access).
    pub load: u64,
    /// Store latency.
    pub store: u64,
    /// Multiply latency.
    pub mul: u64,
    /// Divide/remainder latency.
    pub div: u64,
    /// Not-taken conditional branch latency.
    pub branch: u64,
    /// Extra cycles when a branch is taken (redirect penalty).
    pub taken_extra: u64,
    /// Unconditional jump (`jal`/`jalr`) latency.
    pub jump: u64,
    /// System instruction (`fence`/`ecall`/`ebreak`) latency.
    pub system: u64,
}

impl Default for TimingModel {
    fn default() -> TimingModel {
        TimingModel {
            alu: 1,
            load: 3,
            store: 2,
            mul: 4,
            div: 35,
            branch: 1,
            taken_extra: 2,
            jump: 3,
            system: 1,
        }
    }
}

impl TimingModel {
    /// Cycles charged for `instr` given whether a branch was taken.
    pub fn cycles_for(&self, instr: &Instr, taken: bool) -> u64 {
        match instr {
            Instr::Load { .. } => self.load,
            Instr::Store { .. } => self.store,
            Instr::MulDiv { op, .. } => {
                if op.is_div() {
                    self.div
                } else {
                    self.mul
                }
            }
            Instr::Branch { .. } => self.branch + if taken { self.taken_extra } else { 0 },
            Instr::Jal { .. } | Instr::Jalr { .. } => self.jump,
            Instr::Fence | Instr::Ecall | Instr::Ebreak => self.system,
            _ => self.alu,
        }
    }
}

/// Why the CPU stopped voluntarily.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum Exit {
    /// `ebreak` executed at the given PC.
    Break {
        /// PC of the `ebreak`.
        pc: u32,
    },
    /// `ecall` exit syscall (a7 = 93) with the given status code.
    Exit {
        /// Exit status (register `a0`).
        code: u32,
    },
}

/// Errors from [`Cpu::step`] / [`Cpu::run`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CpuError {
    /// Fetched word is not a valid instruction.
    Decode(DecodeError),
    /// Data or instruction access out of bounds.
    Mem(MemError),
    /// `ecall` with an unimplemented syscall number.
    UnsupportedSyscall {
        /// Syscall number (register `a7`).
        num: u32,
        /// PC of the `ecall`.
        pc: u32,
    },
    /// Attempted to step a halted CPU.
    Halted,
    /// [`Cpu::run`] exceeded its step budget.
    StepLimit {
        /// The exhausted budget.
        limit: u64,
    },
}

impl fmt::Display for CpuError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CpuError::Decode(e) => write!(f, "{e}"),
            CpuError::Mem(e) => write!(f, "{e}"),
            CpuError::UnsupportedSyscall { num, pc } => {
                write!(f, "unsupported syscall {num} at pc {pc:#010x}")
            }
            CpuError::Halted => write!(f, "cpu is halted"),
            CpuError::StepLimit { limit } => write!(f, "step limit of {limit} exceeded"),
        }
    }
}

impl std::error::Error for CpuError {}

impl From<DecodeError> for CpuError {
    fn from(e: DecodeError) -> CpuError {
        CpuError::Decode(e)
    }
}

impl From<MemError> for CpuError {
    fn from(e: MemError) -> CpuError {
        CpuError::Mem(e)
    }
}

/// One retired instruction, as observed by the DBT hardware (paper Fig. 2,
/// step 2).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct Retired {
    /// PC the instruction was fetched from.
    pub pc: u32,
    /// The instruction.
    pub instr: Instr,
    /// PC of the next instruction (reflects taken branches).
    pub next_pc: u32,
    /// `Some(taken)` for conditional branches.
    pub taken: Option<bool>,
    /// Cycles this instruction was charged.
    pub cycles: u64,
}

/// The single-issue RV32IM processor model.
///
/// # Examples
///
/// ```
/// use rv32::{asm::assemble, cpu::Cpu};
/// let p = assemble("
///     li a0, 6
///     li a1, 7
///     mul a0, a0, a1
///     ebreak
/// ").unwrap();
/// let mut cpu = Cpu::new(1 << 20);
/// cpu.load_program(&p).unwrap();
/// cpu.run(1_000).unwrap();
/// assert_eq!(cpu.reg(rv32::isa::Reg::A0), 42);
/// ```
#[derive(Clone, Debug)]
pub struct Cpu {
    regs: [u32; 32],
    pc: u32,
    /// The memory image (public: workloads poke inputs / peek outputs).
    pub mem: Memory,
    timing: TimingModel,
    cycles: u64,
    retired: u64,
    exit: Option<Exit>,
    output: Vec<u8>,
}

impl Cpu {
    /// Creates a CPU with a zeroed `mem_size`-byte memory.
    pub fn new(mem_size: usize) -> Cpu {
        Cpu::with_timing(mem_size, TimingModel::default())
    }

    /// Creates a CPU with an explicit timing model.
    pub fn with_timing(mem_size: usize, timing: TimingModel) -> Cpu {
        Cpu {
            regs: [0; 32],
            pc: 0,
            mem: Memory::new(mem_size),
            timing,
            cycles: 0,
            retired: 0,
            exit: None,
            output: Vec::new(),
        }
    }

    /// Loads `program` into memory, sets the entry PC and the stack pointer
    /// (top of memory, 16-byte aligned), and clears any previous program's
    /// exit so the core can run again (cycle and retire counters keep
    /// accumulating, like hardware counters across a reset vector).
    ///
    /// # Errors
    ///
    /// Returns a memory error if a segment does not fit.
    pub fn load_program(&mut self, program: &Program) -> Result<(), MemError> {
        for (i, w) in program.text.iter().enumerate() {
            self.mem.write_u32(program.text_base + 4 * i as u32, *w)?;
        }
        self.mem.write_bytes(program.data_base, &program.data)?;
        self.pc = program.entry;
        let sp = (self.mem.size() as u32 - 16) & !0xf;
        self.set_reg(Reg::SP, sp);
        self.exit = None;
        Ok(())
    }

    /// Current program counter.
    pub fn pc(&self) -> u32 {
        self.pc
    }

    /// Sets the program counter.
    pub fn set_pc(&mut self, pc: u32) {
        self.pc = pc;
    }

    /// Reads a register (`x0` always reads zero).
    pub fn reg(&self, r: Reg) -> u32 {
        self.regs[r.num() as usize]
    }

    /// Writes a register (writes to `x0` are ignored).
    pub fn set_reg(&mut self, r: Reg, v: u32) {
        if r != Reg::ZERO {
            self.regs[r.num() as usize] = v;
        }
    }

    /// Total cycles charged so far (including externally charged ones).
    pub fn cycles(&self) -> u64 {
        self.cycles
    }

    /// Charges extra cycles (used by the system model for offload overheads).
    pub fn add_cycles(&mut self, c: u64) {
        self.cycles += c;
    }

    /// Number of retired instructions.
    pub fn retired(&self) -> u64 {
        self.retired
    }

    /// Exit status, if the program has halted.
    pub fn exit(&self) -> Option<Exit> {
        self.exit
    }

    /// Bytes written through the `write` syscall (fd 1/2).
    pub fn output(&self) -> &[u8] {
        &self.output
    }

    /// The timing model in use.
    pub fn timing(&self) -> &TimingModel {
        &self.timing
    }

    /// Fetches, decodes, executes and retires one instruction.
    ///
    /// # Errors
    ///
    /// Returns [`CpuError`] on invalid fetch/decode/data accesses, on
    /// unsupported syscalls, and when the CPU has already halted.
    pub fn step(&mut self) -> Result<Retired, CpuError> {
        if self.exit.is_some() {
            return Err(CpuError::Halted);
        }
        let pc = self.pc;
        let word = self.mem.read_u32(pc)?;
        let instr = decode(word).map_err(|mut e| {
            e.pc = Some(pc);
            e
        })?;
        let mut next_pc = pc.wrapping_add(4);
        let mut taken = None;

        match instr {
            Instr::Lui { rd, imm } => self.set_reg(rd, imm as u32),
            Instr::Auipc { rd, imm } => self.set_reg(rd, pc.wrapping_add(imm as u32)),
            Instr::Jal { rd, offset } => {
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = pc.wrapping_add(offset as u32);
            }
            Instr::Jalr { rd, rs1, offset } => {
                let target = self.reg(rs1).wrapping_add(offset as u32) & !1;
                self.set_reg(rd, pc.wrapping_add(4));
                next_pc = target;
            }
            Instr::Branch { op, rs1, rs2, offset } => {
                let t = op.taken(self.reg(rs1), self.reg(rs2));
                taken = Some(t);
                if t {
                    next_pc = pc.wrapping_add(offset as u32);
                }
            }
            Instr::Load { width, rd, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = match width {
                    crate::isa::LoadWidth::B => self.mem.read_u8(addr)? as i8 as i32 as u32,
                    crate::isa::LoadWidth::Bu => self.mem.read_u8(addr)? as u32,
                    crate::isa::LoadWidth::H => self.mem.read_u16(addr)? as i16 as i32 as u32,
                    crate::isa::LoadWidth::Hu => self.mem.read_u16(addr)? as u32,
                    crate::isa::LoadWidth::W => self.mem.read_u32(addr)?,
                };
                self.set_reg(rd, v);
            }
            Instr::Store { width, rs2, rs1, offset } => {
                let addr = self.reg(rs1).wrapping_add(offset as u32);
                let v = self.reg(rs2);
                match width {
                    crate::isa::StoreWidth::B => self.mem.write_u8(addr, v as u8)?,
                    crate::isa::StoreWidth::H => self.mem.write_u16(addr, v as u16)?,
                    crate::isa::StoreWidth::W => self.mem.write_u32(addr, v)?,
                }
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                self.set_reg(rd, op.eval(self.reg(rs1), imm as u32));
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                self.set_reg(rd, op.eval(self.reg(rs1), self.reg(rs2)));
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                self.set_reg(rd, op.eval(self.reg(rs1), self.reg(rs2)));
            }
            Instr::Fence => {}
            Instr::Ebreak => {
                self.exit = Some(Exit::Break { pc });
            }
            Instr::Ecall => {
                let num = self.reg(Reg::A7);
                match num {
                    93 => self.exit = Some(Exit::Exit { code: self.reg(Reg::A0) }),
                    64 => {
                        // write(fd, buf, len): capture the bytes, return len.
                        let buf = self.reg(Reg::A1);
                        let len = self.reg(crate::isa::Reg::x(12));
                        let bytes = self.mem.read_bytes(buf, len)?.to_vec();
                        self.output.extend_from_slice(&bytes);
                        self.set_reg(Reg::A0, len);
                    }
                    _ => return Err(CpuError::UnsupportedSyscall { num, pc }),
                }
            }
        }

        let cycles = self.timing.cycles_for(&instr, taken.unwrap_or(false));
        self.cycles += cycles;
        self.retired += 1;
        self.pc = next_pc;
        Ok(Retired { pc, instr, next_pc, taken, cycles })
    }

    /// Runs until the program halts or `max_steps` instructions retire.
    ///
    /// # Errors
    ///
    /// Propagates [`Cpu::step`] errors; returns [`CpuError::StepLimit`] if the
    /// budget is exhausted without a halt.
    pub fn run(&mut self, max_steps: u64) -> Result<Exit, CpuError> {
        for _ in 0..max_steps {
            self.step()?;
            if let Some(e) = self.exit {
                return Ok(e);
            }
        }
        Err(CpuError::StepLimit { limit: max_steps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn run_asm(src: &str) -> Cpu {
        let p = assemble(src).expect("assembles");
        let mut cpu = Cpu::new(1 << 20);
        cpu.load_program(&p).unwrap();
        cpu.run(1_000_000).expect("halts");
        cpu
    }

    #[test]
    fn arithmetic_loop() {
        // Sum 1..=10.
        let cpu = run_asm(
            "
            li a0, 0
            li a1, 1
        loop:
            add a0, a0, a1
            addi a1, a1, 1
            li t0, 10
            ble a1, t0, loop
            ebreak
        ",
        );
        assert_eq!(cpu.reg(Reg::A0), 55);
    }

    #[test]
    fn memory_and_branches() {
        let cpu = run_asm(
            "
            .data
        buf: .space 16
            .text
            la t0, buf
            li t1, 0x12345678
            sw t1, 0(t0)
            lb t2, 1(t0)
            lhu t3, 2(t0)
            ebreak
        ",
        );
        assert_eq!(cpu.reg(Reg::from_name("t2").unwrap()), 0x56);
        assert_eq!(cpu.reg(Reg::from_name("t3").unwrap()), 0x1234);
    }

    #[test]
    fn exit_syscall() {
        let cpu = run_asm(
            "
            li a0, 7
            li a7, 93
            ecall
        ",
        );
        assert_eq!(cpu.exit(), Some(Exit::Exit { code: 7 }));
    }

    #[test]
    fn write_syscall_collects_output() {
        let cpu = run_asm(
            "
            .data
        msg: .ascii \"hi\"
            .text
            li a0, 1
            la a1, msg
            li a2, 2
            li a7, 64
            ecall
            ebreak
        ",
        );
        assert_eq!(cpu.output(), b"hi");
    }

    #[test]
    fn cycle_accounting_matches_timing_model() {
        let cpu = run_asm(
            "
            li t0, 1     # alu: 1
            li t1, 2     # alu: 1
            mul t2, t0, t1  # mul: 4
            lw t3, 0(zero)  # load: 3
            ebreak       # system: 1
        ",
        );
        assert_eq!(cpu.cycles(), 1 + 1 + 4 + 3 + 1);
        assert_eq!(cpu.retired(), 5);
    }

    #[test]
    fn step_after_halt_is_error() {
        let mut cpu = run_asm("ebreak");
        assert_eq!(cpu.step(), Err(CpuError::Halted));
    }

    #[test]
    fn step_limit() {
        let p = assemble("loop: j loop").unwrap();
        let mut cpu = Cpu::new(1 << 20);
        cpu.load_program(&p).unwrap();
        assert_eq!(cpu.run(10), Err(CpuError::StepLimit { limit: 10 }));
    }

    #[test]
    fn x0_is_hardwired() {
        let cpu = run_asm(
            "
            addi zero, zero, 5
            add a0, zero, zero
            ebreak
        ",
        );
        assert_eq!(cpu.reg(Reg::ZERO), 0);
        assert_eq!(cpu.reg(Reg::A0), 0);
    }
}
