//! A two-pass RV32IM text assembler with the usual GNU-style pseudo
//! instructions and data directives.
//!
//! The workload crate writes every MiBench-like kernel in this dialect, so
//! the assembler intentionally covers what compiled embedded code needs:
//! labels, `%hi`/`%lo`, `li`/`la`, the full branch pseudo family, and the
//! `.text`/`.data`/`.word`/`.byte`/`.ascii`/`.space`/`.align`/`.equ`
//! directives.
//!
//! # Examples
//!
//! ```
//! let program = rv32::asm::assemble("
//!     .data
//! nums:   .word 3, 4
//!     .text
//!     la   t0, nums
//!     lw   a0, 0(t0)
//!     lw   a1, 4(t0)
//!     add  a0, a0, a1
//!     ebreak
//! ").unwrap();
//! assert_eq!(program.instr_count(), 6); // la expands to two instructions
//! ```

use std::collections::HashMap;
use std::fmt;

use crate::encode::encode;
use crate::isa::{AluOp, BranchOp, Instr, LoadWidth, MulOp, Reg, StoreWidth};
use crate::program::Program;

/// Default text-segment base address.
pub const DEFAULT_TEXT_BASE: u32 = 0x0000_1000;
/// Default data-segment base address.
pub const DEFAULT_DATA_BASE: u32 = 0x0004_0000;

/// Assembly error with the 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based line number in the source text.
    pub line: usize,
    /// Problem description.
    pub msg: String,
}

impl fmt::Display for AsmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

impl std::error::Error for AsmError {}

/// Assembles `src` with the default segment bases.
///
/// The entry point is the `_start` symbol if defined, else `main`, else the
/// first text address.
///
/// # Errors
///
/// Returns [`AsmError`] with the offending line on any syntax, range or
/// unknown-symbol problem.
pub fn assemble(src: &str) -> Result<Program, AsmError> {
    Assembler::new().assemble(src)
}

/// Configurable assembler (segment base addresses).
#[derive(Debug, Clone)]
pub struct Assembler {
    text_base: u32,
    data_base: u32,
}

impl Default for Assembler {
    fn default() -> Assembler {
        Assembler::new()
    }
}

#[derive(Copy, Clone, PartialEq, Eq)]
enum Section {
    Text,
    Data,
}

#[derive(Clone)]
enum Stmt {
    Instr { mnemonic: String, operands: Vec<String> },
    Directive { name: String, args: Vec<String> },
}

struct Placed {
    line: usize,
    addr: u32,
    section: Section,
    stmt: Stmt,
}

impl Assembler {
    /// Creates an assembler with the default segment bases.
    pub fn new() -> Assembler {
        Assembler { text_base: DEFAULT_TEXT_BASE, data_base: DEFAULT_DATA_BASE }
    }

    /// Sets the text-segment base address.
    pub fn text_base(mut self, base: u32) -> Assembler {
        self.text_base = base;
        self
    }

    /// Sets the data-segment base address.
    pub fn data_base(mut self, base: u32) -> Assembler {
        self.data_base = base;
        self
    }

    /// Assembles `src` into a [`Program`].
    ///
    /// # Errors
    ///
    /// Returns [`AsmError`] with the offending line on any syntax, range or
    /// unknown-symbol problem.
    pub fn assemble(&self, src: &str) -> Result<Program, AsmError> {
        let mut symbols: HashMap<String, u32> = HashMap::new();
        let mut placed: Vec<Placed> = Vec::new();
        let mut text_cur = self.text_base;
        let mut data_cur = self.data_base;
        let mut section = Section::Text;

        // Pass 1: compute addresses and label values.
        for (idx, raw) in src.lines().enumerate() {
            let line_no = idx + 1;
            let err = |msg: String| AsmError { line: line_no, msg };
            let mut line = strip_comment(raw).trim().to_string();
            // Peel leading labels.
            while let Some((label, rest)) = split_label(&line) {
                let addr = match section {
                    Section::Text => text_cur,
                    Section::Data => data_cur,
                };
                if symbols.insert(label.to_string(), addr).is_some() {
                    return Err(err(format!("duplicate label `{label}`")));
                }
                line = rest.trim().to_string();
            }
            if line.is_empty() {
                continue;
            }
            let stmt = parse_stmt(&line).map_err(&err)?;
            let cur = match section {
                Section::Text => &mut text_cur,
                Section::Data => &mut data_cur,
            };
            match &stmt {
                Stmt::Directive { name, args } => match name.as_str() {
                    ".text" => {
                        section = Section::Text;
                        continue;
                    }
                    ".data" => {
                        section = Section::Data;
                        continue;
                    }
                    ".section" => {
                        let target = args.first().map(String::as_str).unwrap_or("");
                        section = if target.contains("data") || target.contains("bss") {
                            Section::Data
                        } else {
                            Section::Text
                        };
                        continue;
                    }
                    ".globl" | ".global" | ".type" | ".size" | ".option" | ".attribute" => {
                        continue;
                    }
                    ".equ" | ".set" => {
                        if args.len() != 2 {
                            return Err(err(format!("`{name}` takes `name, value`")));
                        }
                        let v = parse_int(&args[1])
                            .ok_or_else(|| err(format!("bad constant `{}`", args[1])))?;
                        symbols.insert(args[0].clone(), v as u32);
                        continue;
                    }
                    ".align" | ".p2align" => {
                        let n = args
                            .first()
                            .and_then(|a| parse_int(a))
                            .ok_or_else(|| err("`.align` needs a power".into()))?;
                        let a = 1u32 << n;
                        *cur = (*cur + a - 1) & !(a - 1);
                        let addr = *cur;
                        placed.push(Placed { line: line_no, addr, section, stmt });
                        continue;
                    }
                    _ => {}
                },
                Stmt::Instr { .. } => {
                    if section == Section::Data {
                        return Err(err("instruction in .data section".into()));
                    }
                }
            }
            let size = self.stmt_size(&stmt, *cur).map_err(err)?;
            placed.push(Placed { line: line_no, addr: *cur, section, stmt });
            *cur += size;
        }

        // Pass 2: emit.
        let mut text: Vec<u32> = Vec::new();
        let mut data: Vec<u8> = vec![0; (data_cur - self.data_base) as usize];
        for p in &placed {
            let err = |msg: String| AsmError { line: p.line, msg };
            match &p.stmt {
                Stmt::Instr { mnemonic, operands } => {
                    let instrs =
                        expand_instr(mnemonic, operands, p.addr, &symbols).map_err(&err)?;
                    // Pass-1 sizing and pass-2 emission must agree, or every
                    // later label would be wrong.
                    debug_assert_eq!(
                        p.addr,
                        self.text_base + 4 * text.len() as u32,
                        "pass-1/pass-2 drift before `{mnemonic}`"
                    );
                    debug_assert_eq!(
                        instrs.len() as u32 * 4,
                        self.stmt_size(&p.stmt, p.addr).unwrap(),
                        "pass-1/pass-2 size mismatch for `{mnemonic}`"
                    );
                    for i in &instrs {
                        let w = encode(i).map_err(|e| err(e.to_string()))?;
                        text.push(w);
                    }
                }
                Stmt::Directive { name, args } => {
                    let bytes = emit_data(name, args, &symbols).map_err(&err)?;
                    match p.section {
                        Section::Data => {
                            let off = (p.addr - self.data_base) as usize;
                            data[off..off + bytes.len()].copy_from_slice(&bytes);
                        }
                        Section::Text => {
                            if !bytes.is_empty() {
                                return Err(err(format!(
                                    "data directive `{name}` in .text is not supported"
                                )));
                            }
                        }
                    }
                }
            }
        }

        let entry = symbols
            .get("_start")
            .or_else(|| symbols.get("main"))
            .copied()
            .unwrap_or(self.text_base);
        Ok(Program {
            text_base: self.text_base,
            text,
            data_base: self.data_base,
            data,
            entry,
            symbols,
        })
    }

    /// Size in bytes the statement occupies (must be identical in both passes).
    fn stmt_size(&self, stmt: &Stmt, _addr: u32) -> Result<u32, String> {
        match stmt {
            Stmt::Instr { mnemonic, operands } => {
                let n = match mnemonic.as_str() {
                    "li" => {
                        let imm = operands.get(1).and_then(|s| parse_int(s)).ok_or_else(|| {
                            "`li` needs a literal immediate (use `la` for symbols)".to_string()
                        })?;
                        if (-2048..=2047).contains(&imm) {
                            1
                        } else {
                            2
                        }
                    }
                    "la" => 2,
                    _ => 1,
                };
                Ok(n * 4)
            }
            Stmt::Directive { name, args } => match name.as_str() {
                ".word" => Ok(4 * args.len() as u32),
                ".half" => Ok(2 * args.len() as u32),
                ".byte" => Ok(args.len() as u32),
                ".space" | ".skip" => {
                    let n = args
                        .first()
                        .and_then(|a| parse_int(a))
                        .ok_or_else(|| "`.space` needs a size".to_string())?;
                    Ok(n as u32)
                }
                ".ascii" => Ok(parse_string(args)?.len() as u32),
                ".asciz" | ".string" => Ok(parse_string(args)?.len() as u32 + 1),
                ".align" | ".p2align" => Ok(0),
                other => Err(format!("unknown directive `{other}`")),
            },
        }
    }
}

/// Strips `#`, `//` and `;` comments, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let bytes = line.as_bytes();
    let mut in_str = false;
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i];
        if in_str {
            if c == b'\\' {
                i += 1;
            } else if c == b'"' {
                in_str = false;
            }
        } else {
            match c {
                b'"' => in_str = true,
                b'#' | b';' => return &line[..i],
                b'/' if i + 1 < bytes.len() && bytes[i + 1] == b'/' => return &line[..i],
                _ => {}
            }
        }
        i += 1;
    }
    line
}

/// Splits a leading `label:` off the line, if present.
fn split_label(line: &str) -> Option<(&str, &str)> {
    let colon = line.find(':')?;
    let (head, tail) = line.split_at(colon);
    let head = head.trim();
    if head.is_empty()
        || !head.chars().next().unwrap().is_ascii_alphabetic()
            && !head.starts_with('_')
            && !head.starts_with('.')
    {
        return None;
    }
    if head.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$') {
        Some((head, &tail[1..]))
    } else {
        None
    }
}

fn parse_stmt(line: &str) -> Result<Stmt, String> {
    let (head, rest) = match line.find(|c: char| c.is_whitespace()) {
        Some(i) => (&line[..i], line[i..].trim()),
        None => (line, ""),
    };
    let head_lc = head.to_ascii_lowercase();
    if head_lc.starts_with('.') {
        let args = split_operands(rest);
        Ok(Stmt::Directive { name: head_lc, args })
    } else {
        let operands = split_operands(rest);
        Ok(Stmt::Instr { mnemonic: head_lc, operands })
    }
}

/// Splits on top-level commas, respecting quotes and parentheses.
fn split_operands(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut in_str = false;
    let mut cur = String::new();
    let mut chars = s.chars().peekable();
    while let Some(c) = chars.next() {
        if in_str {
            cur.push(c);
            if c == '\\' {
                if let Some(n) = chars.next() {
                    cur.push(n);
                }
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                cur.push(c);
            }
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let last = cur.trim();
    if !last.is_empty() {
        out.push(last.to_string());
    }
    out
}

/// Parses a literal integer: decimal, hex (`0x`), binary (`0b`), octal (`0o`),
/// char (`'a'`), optionally negative; underscores are ignored.
pub fn parse_int(s: &str) -> Option<i64> {
    let s = s.trim();
    if let Some(body) = s.strip_prefix('\'').and_then(|r| r.strip_suffix('\'')) {
        let c = match body {
            "\\n" => b'\n',
            "\\t" => b'\t',
            "\\r" => b'\r',
            "\\0" => 0,
            "\\\\" => b'\\',
            "\\'" => b'\'',
            _ => {
                let mut it = body.chars();
                let c = it.next()?;
                if it.next().is_some() || !c.is_ascii() {
                    return None;
                }
                c as u8
            }
        };
        return Some(c as i64);
    }
    let (neg, body) = match s.strip_prefix('-') {
        Some(b) => (true, b),
        None => (false, s.strip_prefix('+').unwrap_or(s)),
    };
    let body = body.replace('_', "");
    let v = if let Some(h) = body.strip_prefix("0x").or_else(|| body.strip_prefix("0X")) {
        i64::from_str_radix(h, 16).ok()?
    } else if let Some(b) = body.strip_prefix("0b").or_else(|| body.strip_prefix("0B")) {
        i64::from_str_radix(b, 2).ok()?
    } else if let Some(o) = body.strip_prefix("0o").or_else(|| body.strip_prefix("0O")) {
        i64::from_str_radix(o, 8).ok()?
    } else {
        body.parse::<i64>().ok()?
    };
    Some(if neg { -v } else { v })
}

/// A resolved operand value.
#[derive(Copy, Clone, Debug)]
enum Value {
    Plain(i64),
    Hi(i64),
    Lo(i64),
}

fn resolve_value(s: &str, symbols: &HashMap<String, u32>) -> Result<Value, String> {
    let s = s.trim();
    if let Some(inner) = s.strip_prefix("%hi(").and_then(|r| r.strip_suffix(')')) {
        return Ok(Value::Hi(resolve_plain(inner, symbols)?));
    }
    if let Some(inner) = s.strip_prefix("%lo(").and_then(|r| r.strip_suffix(')')) {
        return Ok(Value::Lo(resolve_plain(inner, symbols)?));
    }
    Ok(Value::Plain(resolve_plain(s, symbols)?))
}

/// Resolves `literal`, `symbol`, `symbol+literal` or `symbol-literal`.
fn resolve_plain(s: &str, symbols: &HashMap<String, u32>) -> Result<i64, String> {
    let s = s.trim();
    if let Some(v) = parse_int(s) {
        return Ok(v);
    }
    let split_at = s[1..].find(['+', '-']).map(|i| i + 1);
    let (name, rest) = match split_at {
        Some(i) => (&s[..i], &s[i..]),
        None => (s, ""),
    };
    let base = *symbols
        .get(name.trim())
        .ok_or_else(|| format!("unknown symbol `{}`", name.trim()))? as i64;
    if rest.is_empty() {
        return Ok(base);
    }
    let off = parse_int(rest).ok_or_else(|| format!("bad offset `{rest}`"))?;
    Ok(base + off)
}

fn hi20(v: i64) -> i32 {
    (((v as i32).wrapping_add(0x800)) as u32 & 0xffff_f000) as i32
}

fn lo12(v: i64) -> i32 {
    (v as i32).wrapping_sub(hi20(v))
}

fn reg(s: &str) -> Result<Reg, String> {
    Reg::from_name(s.trim()).ok_or_else(|| format!("unknown register `{s}`"))
}

/// Parses `off(reg)` (offset may be empty, a literal, or `%lo(sym)`).
fn mem_operand(s: &str, symbols: &HashMap<String, u32>) -> Result<(i32, Reg), String> {
    let s = s.trim();
    let open = s.rfind('(').ok_or_else(|| format!("expected `off(reg)`, got `{s}`"))?;
    if !s.ends_with(')') {
        return Err(format!("expected `off(reg)`, got `{s}`"));
    }
    let base = reg(&s[open + 1..s.len() - 1])?;
    let off_str = s[..open].trim();
    let off = if off_str.is_empty() {
        0
    } else {
        match resolve_value(off_str, symbols)? {
            Value::Plain(v) => v as i32,
            Value::Lo(a) => lo12(a),
            Value::Hi(_) => return Err("%hi() is not valid as a memory offset".into()),
        }
    };
    Ok((off, base))
}

fn want(ops: &[String], n: usize, mnemonic: &str) -> Result<(), String> {
    if ops.len() == n {
        Ok(())
    } else {
        Err(format!("`{mnemonic}` expects {n} operand(s), got {}", ops.len()))
    }
}

/// Expands one source mnemonic (possibly a pseudo-instruction) to machine
/// instructions at address `pc`.
fn expand_instr(
    mnemonic: &str,
    ops: &[String],
    pc: u32,
    symbols: &HashMap<String, u32>,
) -> Result<Vec<Instr>, String> {
    let alu_rrr = |op: AluOp| -> Result<Vec<Instr>, String> {
        want(ops, 3, mnemonic)?;
        Ok(vec![Instr::Op { op, rd: reg(&ops[0])?, rs1: reg(&ops[1])?, rs2: reg(&ops[2])? }])
    };
    let mul_rrr = |op: MulOp| -> Result<Vec<Instr>, String> {
        want(ops, 3, mnemonic)?;
        Ok(vec![Instr::MulDiv { op, rd: reg(&ops[0])?, rs1: reg(&ops[1])?, rs2: reg(&ops[2])? }])
    };
    let alu_rri = |op: AluOp| -> Result<Vec<Instr>, String> {
        want(ops, 3, mnemonic)?;
        let imm = match resolve_value(&ops[2], symbols)? {
            Value::Plain(v) => v as i32,
            Value::Lo(a) => lo12(a),
            Value::Hi(_) => return Err("%hi() is not valid here".into()),
        };
        Ok(vec![Instr::OpImm { op, rd: reg(&ops[0])?, rs1: reg(&ops[1])?, imm }])
    };
    let load = |width: LoadWidth| -> Result<Vec<Instr>, String> {
        want(ops, 2, mnemonic)?;
        let (offset, rs1) = mem_operand(&ops[1], symbols)?;
        Ok(vec![Instr::Load { width, rd: reg(&ops[0])?, rs1, offset }])
    };
    let store = |width: StoreWidth| -> Result<Vec<Instr>, String> {
        want(ops, 2, mnemonic)?;
        let (offset, rs1) = mem_operand(&ops[1], symbols)?;
        Ok(vec![Instr::Store { width, rs2: reg(&ops[0])?, rs1, offset }])
    };
    let target = |s: &str| -> Result<i32, String> {
        match resolve_value(s, symbols)? {
            Value::Plain(v) => Ok((v - pc as i64) as i32),
            _ => Err("%hi/%lo not valid as a branch target".into()),
        }
    };
    let branch = |op: BranchOp, swap: bool| -> Result<Vec<Instr>, String> {
        want(ops, 3, mnemonic)?;
        let (a, b) = if swap { (1, 0) } else { (0, 1) };
        Ok(vec![Instr::Branch {
            op,
            rs1: reg(&ops[a])?,
            rs2: reg(&ops[b])?,
            offset: target(&ops[2])?,
        }])
    };
    let branchz = |op: BranchOp, zero_first: bool| -> Result<Vec<Instr>, String> {
        want(ops, 2, mnemonic)?;
        let r = reg(&ops[0])?;
        let (rs1, rs2) = if zero_first { (Reg::ZERO, r) } else { (r, Reg::ZERO) };
        Ok(vec![Instr::Branch { op, rs1, rs2, offset: target(&ops[1])? }])
    };

    match mnemonic {
        "add" => alu_rrr(AluOp::Add),
        "sub" => alu_rrr(AluOp::Sub),
        "sll" => alu_rrr(AluOp::Sll),
        "slt" => alu_rrr(AluOp::Slt),
        "sltu" => alu_rrr(AluOp::Sltu),
        "xor" => alu_rrr(AluOp::Xor),
        "srl" => alu_rrr(AluOp::Srl),
        "sra" => alu_rrr(AluOp::Sra),
        "or" => alu_rrr(AluOp::Or),
        "and" => alu_rrr(AluOp::And),
        "mul" => mul_rrr(MulOp::Mul),
        "mulh" => mul_rrr(MulOp::Mulh),
        "mulhsu" => mul_rrr(MulOp::Mulhsu),
        "mulhu" => mul_rrr(MulOp::Mulhu),
        "div" => mul_rrr(MulOp::Div),
        "divu" => mul_rrr(MulOp::Divu),
        "rem" => mul_rrr(MulOp::Rem),
        "remu" => mul_rrr(MulOp::Remu),
        "addi" => alu_rri(AluOp::Add),
        "slti" => alu_rri(AluOp::Slt),
        "sltiu" => alu_rri(AluOp::Sltu),
        "xori" => alu_rri(AluOp::Xor),
        "ori" => alu_rri(AluOp::Or),
        "andi" => alu_rri(AluOp::And),
        "slli" => alu_rri(AluOp::Sll),
        "srli" => alu_rri(AluOp::Srl),
        "srai" => alu_rri(AluOp::Sra),
        "lb" => load(LoadWidth::B),
        "lh" => load(LoadWidth::H),
        "lw" => load(LoadWidth::W),
        "lbu" => load(LoadWidth::Bu),
        "lhu" => load(LoadWidth::Hu),
        "sb" => store(StoreWidth::B),
        "sh" => store(StoreWidth::H),
        "sw" => store(StoreWidth::W),
        "beq" => branch(BranchOp::Eq, false),
        "bne" => branch(BranchOp::Ne, false),
        "blt" => branch(BranchOp::Lt, false),
        "bge" => branch(BranchOp::Ge, false),
        "bltu" => branch(BranchOp::Ltu, false),
        "bgeu" => branch(BranchOp::Geu, false),
        "bgt" => branch(BranchOp::Lt, true),
        "ble" => branch(BranchOp::Ge, true),
        "bgtu" => branch(BranchOp::Ltu, true),
        "bleu" => branch(BranchOp::Geu, true),
        "beqz" => branchz(BranchOp::Eq, false),
        "bnez" => branchz(BranchOp::Ne, false),
        "bltz" => branchz(BranchOp::Lt, false),
        "bgez" => branchz(BranchOp::Ge, false),
        "bgtz" => branchz(BranchOp::Lt, true),
        "blez" => branchz(BranchOp::Ge, true),
        "lui" | "auipc" => {
            want(ops, 2, mnemonic)?;
            let rd = reg(&ops[0])?;
            let imm = match resolve_value(&ops[1], symbols)? {
                Value::Plain(v) => {
                    if !(0..=0xfffff).contains(&v) {
                        return Err(format!("upper immediate {v} out of range [0, 0xfffff]"));
                    }
                    (v << 12) as i32
                }
                Value::Hi(a) => hi20(a),
                Value::Lo(_) => return Err("%lo() is not valid here".into()),
            };
            Ok(vec![if mnemonic == "lui" {
                Instr::Lui { rd, imm }
            } else {
                Instr::Auipc { rd, imm }
            }])
        }
        "jal" => match ops.len() {
            1 => Ok(vec![Instr::Jal { rd: Reg::RA, offset: target(&ops[0])? }]),
            2 => Ok(vec![Instr::Jal { rd: reg(&ops[0])?, offset: target(&ops[1])? }]),
            n => Err(format!("`jal` expects 1 or 2 operands, got {n}")),
        },
        "jalr" => match ops.len() {
            1 => Ok(vec![Instr::Jalr { rd: Reg::RA, rs1: reg(&ops[0])?, offset: 0 }]),
            2 => {
                let (offset, rs1) = mem_operand(&ops[1], symbols)?;
                Ok(vec![Instr::Jalr { rd: reg(&ops[0])?, rs1, offset }])
            }
            3 => Ok(vec![Instr::Jalr {
                rd: reg(&ops[0])?,
                rs1: reg(&ops[1])?,
                offset: match resolve_value(&ops[2], symbols)? {
                    Value::Plain(v) => v as i32,
                    Value::Lo(a) => lo12(a),
                    Value::Hi(_) => return Err("%hi() is not valid here".into()),
                },
            }]),
            n => Err(format!("`jalr` expects 1-3 operands, got {n}")),
        },
        "j" => {
            want(ops, 1, mnemonic)?;
            Ok(vec![Instr::Jal { rd: Reg::ZERO, offset: target(&ops[0])? }])
        }
        "jr" => {
            want(ops, 1, mnemonic)?;
            Ok(vec![Instr::Jalr { rd: Reg::ZERO, rs1: reg(&ops[0])?, offset: 0 }])
        }
        "call" => {
            want(ops, 1, mnemonic)?;
            Ok(vec![Instr::Jal { rd: Reg::RA, offset: target(&ops[0])? }])
        }
        "tail" => {
            want(ops, 1, mnemonic)?;
            Ok(vec![Instr::Jal { rd: Reg::ZERO, offset: target(&ops[0])? }])
        }
        "ret" => {
            want(ops, 0, mnemonic)?;
            Ok(vec![Instr::Jalr { rd: Reg::ZERO, rs1: Reg::RA, offset: 0 }])
        }
        "nop" => {
            want(ops, 0, mnemonic)?;
            Ok(vec![Instr::OpImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 }])
        }
        "mv" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::OpImm { op: AluOp::Add, rd: reg(&ops[0])?, rs1: reg(&ops[1])?, imm: 0 }])
        }
        "not" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::OpImm {
                op: AluOp::Xor,
                rd: reg(&ops[0])?,
                rs1: reg(&ops[1])?,
                imm: -1,
            }])
        }
        "neg" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::Op {
                op: AluOp::Sub,
                rd: reg(&ops[0])?,
                rs1: Reg::ZERO,
                rs2: reg(&ops[1])?,
            }])
        }
        "seqz" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::OpImm {
                op: AluOp::Sltu,
                rd: reg(&ops[0])?,
                rs1: reg(&ops[1])?,
                imm: 1,
            }])
        }
        "snez" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::Op {
                op: AluOp::Sltu,
                rd: reg(&ops[0])?,
                rs1: Reg::ZERO,
                rs2: reg(&ops[1])?,
            }])
        }
        "sltz" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::Op {
                op: AluOp::Slt,
                rd: reg(&ops[0])?,
                rs1: reg(&ops[1])?,
                rs2: Reg::ZERO,
            }])
        }
        "sgtz" => {
            want(ops, 2, mnemonic)?;
            Ok(vec![Instr::Op {
                op: AluOp::Slt,
                rd: reg(&ops[0])?,
                rs1: Reg::ZERO,
                rs2: reg(&ops[1])?,
            }])
        }
        "li" => {
            want(ops, 2, mnemonic)?;
            let rd = reg(&ops[0])?;
            let imm = parse_int(&ops[1]).ok_or_else(|| {
                "`li` needs a literal immediate (use `la` for symbols)".to_string()
            })?;
            if (-2048..=2047).contains(&imm) {
                Ok(vec![Instr::OpImm { op: AluOp::Add, rd, rs1: Reg::ZERO, imm: imm as i32 }])
            } else {
                if imm > u32::MAX as i64 || imm < i32::MIN as i64 {
                    return Err(format!("`li` immediate {imm} does not fit 32 bits"));
                }
                let v = imm as i32;
                Ok(vec![
                    Instr::Lui { rd, imm: hi20(v as i64) },
                    Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: lo12(v as i64) },
                ])
            }
        }
        "la" => {
            want(ops, 2, mnemonic)?;
            let rd = reg(&ops[0])?;
            let v = resolve_plain(&ops[1], symbols)?;
            Ok(vec![
                Instr::Lui { rd, imm: hi20(v) },
                Instr::OpImm { op: AluOp::Add, rd, rs1: rd, imm: lo12(v) },
            ])
        }
        "ecall" => Ok(vec![Instr::Ecall]),
        "ebreak" => Ok(vec![Instr::Ebreak]),
        "fence" => Ok(vec![Instr::Fence]),
        other => Err(format!("unknown mnemonic `{other}`")),
    }
}

fn parse_string(args: &[String]) -> Result<Vec<u8>, String> {
    let joined = args.join(",");
    let s = joined.trim();
    let inner = s
        .strip_prefix('"')
        .and_then(|r| r.strip_suffix('"'))
        .ok_or_else(|| format!("expected a quoted string, got `{s}`"))?;
    let mut out = Vec::new();
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            let e = chars.next().ok_or("dangling escape")?;
            out.push(match e {
                'n' => b'\n',
                't' => b'\t',
                'r' => b'\r',
                '0' => 0,
                '\\' => b'\\',
                '"' => b'"',
                other => return Err(format!("unknown escape `\\{other}`")),
            });
        } else {
            if !c.is_ascii() {
                return Err(format!("non-ASCII character `{c}` in string"));
            }
            out.push(c as u8);
        }
    }
    Ok(out)
}

fn emit_data(
    name: &str,
    args: &[String],
    symbols: &HashMap<String, u32>,
) -> Result<Vec<u8>, String> {
    match name {
        ".word" => {
            let mut out = Vec::with_capacity(4 * args.len());
            for a in args {
                let v = resolve_plain(a, symbols)? as u32;
                out.extend_from_slice(&v.to_le_bytes());
            }
            Ok(out)
        }
        ".half" => {
            let mut out = Vec::with_capacity(2 * args.len());
            for a in args {
                let v = resolve_plain(a, symbols)? as u16;
                out.extend_from_slice(&v.to_le_bytes());
            }
            Ok(out)
        }
        ".byte" => args.iter().map(|a| resolve_plain(a, symbols).map(|v| v as u8)).collect(),
        ".space" | ".skip" => {
            let n = parse_int(&args[0]).ok_or("`.space` needs a size")? as usize;
            let fill = args.get(1).and_then(|a| parse_int(a)).unwrap_or(0) as u8;
            Ok(vec![fill; n])
        }
        ".ascii" => parse_string(args),
        ".asciz" | ".string" => {
            let mut b = parse_string(args)?;
            b.push(0);
            Ok(b)
        }
        ".align" | ".p2align" => Ok(Vec::new()),
        other => Err(format!("unknown directive `{other}`")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_and_branches() {
        let p = assemble(
            "
            li a0, 0
        loop:
            addi a0, a0, 1
            li t0, 3
            blt a0, t0, loop
            ebreak
        ",
        )
        .unwrap();
        assert_eq!(p.instr_count(), 5);
        assert_eq!(p.symbol("loop"), Some(p.text_base + 4));
    }

    #[test]
    fn li_expansion_sizes() {
        let p = assemble("li a0, 5\nebreak").unwrap();
        assert_eq!(p.instr_count(), 2);
        let p = assemble("li a0, 0x12345678\nebreak").unwrap();
        assert_eq!(p.instr_count(), 3);
    }

    #[test]
    fn li_values() {
        for v in
            [0i64, 5, -5, 2047, -2048, 2048, -2049, 0x12345678, 0x7fffffff, -0x80000000, 0xffffffff]
        {
            let p = assemble(&format!("li a0, {v}\nebreak")).unwrap();
            let mut cpu = crate::cpu::Cpu::new(1 << 20);
            cpu.load_program(&p).unwrap();
            cpu.run(10).unwrap();
            assert_eq!(cpu.reg(Reg::A0), v as u32, "li {v}");
        }
    }

    #[test]
    fn la_and_word_directive() {
        let p = assemble(
            "
            .data
        tbl: .word 10, 20, tbl
            .text
            la a0, tbl
            lw a1, 8(a0)
            ebreak
        ",
        )
        .unwrap();
        let tbl = p.symbol("tbl").unwrap();
        let mut cpu = crate::cpu::Cpu::new(1 << 20);
        cpu.load_program(&p).unwrap();
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(Reg::A0), tbl);
        assert_eq!(cpu.reg(Reg::A1), tbl, ".word with a symbol ref");
    }

    #[test]
    fn hi_lo_pairs() {
        let p = assemble(
            "
            .data
            .space 100
        v:  .word 0xabcd1234
            .text
            lui t0, %hi(v)
            lw a0, %lo(v)(t0)
            ebreak
        ",
        )
        .unwrap();
        let mut cpu = crate::cpu::Cpu::new(1 << 20);
        cpu.load_program(&p).unwrap();
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(Reg::A0), 0xabcd1234);
    }

    #[test]
    fn strings_and_alignment() {
        let p = assemble(
            "
            .data
        s:  .asciz \"ab\\n\"
            .align 2
        w:  .word 1
            .text
            ebreak
        ",
        )
        .unwrap();
        assert_eq!(&p.data[..4], b"ab\n\0");
        let w = p.symbol("w").unwrap();
        assert_eq!(w % 4, 0);
        assert_eq!(p.symbol("s").unwrap(), p.data_base);
    }

    #[test]
    fn equ_constants() {
        let p = assemble(
            "
            .equ N, 40
            li a0, 0
            addi a0, a0, N
            ebreak
        ",
        )
        .unwrap();
        let mut cpu = crate::cpu::Cpu::new(1 << 20);
        cpu.load_program(&p).unwrap();
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(Reg::A0), 40);
    }

    #[test]
    fn pseudo_instructions_execute() {
        let p = assemble(
            "
            li t0, 9
            mv a0, t0
            not a1, t0       # -10
            neg a2, t0       # -9
            seqz a3, zero    # 1
            snez a4, t0      # 1
            ebreak
        ",
        )
        .unwrap();
        let mut cpu = crate::cpu::Cpu::new(1 << 20);
        cpu.load_program(&p).unwrap();
        cpu.run(10).unwrap();
        assert_eq!(cpu.reg(Reg::A0), 9);
        assert_eq!(cpu.reg(Reg::A1), -10i32 as u32);
        assert_eq!(cpu.reg(Reg::from_name("a2").unwrap()), -9i32 as u32);
        assert_eq!(cpu.reg(Reg::from_name("a3").unwrap()), 1);
        assert_eq!(cpu.reg(Reg::from_name("a4").unwrap()), 1);
    }

    #[test]
    fn call_ret() {
        let p = assemble(
            "
        main:
            li a0, 1
            call f
            addi a0, a0, 100
            ebreak
        f:  addi a0, a0, 10
            ret
        ",
        )
        .unwrap();
        let mut cpu = crate::cpu::Cpu::new(1 << 20);
        cpu.load_program(&p).unwrap();
        cpu.run(20).unwrap();
        assert_eq!(cpu.reg(Reg::A0), 111);
    }

    #[test]
    fn errors_carry_line_numbers() {
        let e = assemble("nop\nbogus a0, a1\n").unwrap_err();
        assert_eq!(e.line, 2);
        assert!(e.msg.contains("bogus"));
        let e = assemble("addi a0, a1, 5000").unwrap_err();
        assert!(e.msg.contains("out of range"), "{}", e.msg);
        let e = assemble("x: nop\nx: nop").unwrap_err();
        assert!(e.msg.contains("duplicate"));
        let e = assemble("lw a0, 0(a9)").unwrap_err();
        assert!(e.msg.contains("register"));
    }

    #[test]
    fn comments_are_stripped() {
        let p = assemble(
            "
            nop # trailing
            nop // c++ style
            nop ; asm style
            .data
        s: .ascii \"has # no ; comment\"
        ",
        )
        .unwrap();
        assert_eq!(p.instr_count(), 3);
        assert_eq!(p.data.len(), "has # no ; comment".len());
    }

    #[test]
    fn entry_point_selection() {
        let p = assemble("nop\n_start: ebreak").unwrap();
        assert_eq!(p.entry, p.text_base + 4);
        let p = assemble("nop\nmain: ebreak").unwrap();
        assert_eq!(p.entry, p.text_base + 4);
        let p = assemble("nop\nebreak").unwrap();
        assert_eq!(p.entry, p.text_base);
    }
}
