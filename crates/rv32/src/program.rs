//! Assembled program images.

use std::collections::HashMap;
use std::fmt;

use serde::{Deserialize, Serialize};

/// An assembled RV32 program: a text segment, a data segment, an entry point
/// and a symbol table.
///
/// Produced by [`crate::asm::Assembler`]; consumed by
/// [`crate::cpu::Cpu::load_program`].
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct Program {
    /// Base address of the text segment.
    pub text_base: u32,
    /// Machine words of the text segment, in order.
    pub text: Vec<u32>,
    /// Base address of the data segment.
    pub data_base: u32,
    /// Raw bytes of the data segment.
    pub data: Vec<u8>,
    /// Entry-point address (address of the `_start`/first label, see assembler).
    pub entry: u32,
    /// Label name → address.
    pub symbols: HashMap<String, u32>,
}

impl Program {
    /// Looks up a label address.
    ///
    /// # Examples
    ///
    /// ```
    /// let p = rv32::asm::assemble("start: nop\nebreak\n").unwrap();
    /// assert_eq!(p.symbol("start"), Some(p.entry));
    /// ```
    pub fn symbol(&self, name: &str) -> Option<u32> {
        self.symbols.get(name).copied()
    }

    /// Number of instructions in the text segment.
    pub fn instr_count(&self) -> usize {
        self.text.len()
    }

    /// End address (exclusive) of the text segment.
    pub fn text_end(&self) -> u32 {
        self.text_base + 4 * self.text.len() as u32
    }

    /// End address (exclusive) of the data segment.
    pub fn data_end(&self) -> u32 {
        self.data_base + self.data.len() as u32
    }
}

impl fmt::Display for Program {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "program: {} instrs at {:#x}, {} data bytes at {:#x}, entry {:#x}",
            self.text.len(),
            self.text_base,
            self.data.len(),
            self.data_base,
            self.entry
        )?;
        for (i, w) in self.text.iter().enumerate() {
            let pc = self.text_base + 4 * i as u32;
            match crate::decode(*w) {
                Ok(instr) => writeln!(f, "  {pc:#08x}: {instr}")?,
                Err(_) => writeln!(f, "  {pc:#08x}: .word {w:#010x}")?,
            }
        }
        Ok(())
    }
}
