//! # rv32 — an RV32IM instruction-set substrate
//!
//! This crate is the processor substrate for the `uaware-cgra` workspace,
//! which reproduces *"Proactive Aging Mitigation in CGRAs through
//! Utilization-Aware Allocation"* (DAC 2020). The paper evaluates on gem5
//! running RISC-V MiBench binaries; this crate provides the equivalent
//! laptop-scale substrate:
//!
//! * [`isa`] — the RV32IM instruction model ([`isa::Instr`], [`isa::Reg`]).
//! * [`mod@decode`]/[`mod@encode`] — machine-word conversions (lossless round-trip).
//! * [`asm`] — a two-pass text assembler with GNU-style pseudo-instructions,
//!   used by the `mibench` crate to express whole benchmark kernels.
//! * [`mem`] — flat little-endian memory.
//! * [`cpu`] — a single-issue in-order interpreter with a deterministic
//!   per-class cycle model (the gem5 `TimingSimpleCPU` stand-in) and a
//!   retired-instruction stream for the hardware DBT model.
//!
//! # Examples
//!
//! ```
//! use rv32::{asm::assemble, cpu::Cpu, isa::Reg};
//!
//! let program = assemble("
//!     li   a0, 0
//!     li   a1, 1
//! loop:
//!     add  a0, a0, a1          # a0 += a1
//!     addi a1, a1, 1
//!     li   t0, 100
//!     ble  a1, t0, loop
//!     ebreak
//! ")?;
//!
//! let mut cpu = Cpu::new(64 * 1024);
//! cpu.load_program(&program)?;
//! cpu.run(10_000)?;
//! assert_eq!(cpu.reg(Reg::A0), 5050);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]

pub mod asm;
pub mod cpu;
pub mod decode;
pub mod encode;
pub mod isa;
pub mod mem;
pub mod program;

pub use decode::{decode, DecodeError};
pub use encode::{encode, EncodeError};
pub use isa::{Instr, Reg};
pub use program::Program;
