//! 32-bit word → instruction decoding (the inverse of [`mod@crate::encode`]).

use std::fmt;

use crate::isa::{AluOp, BranchOp, Instr, LoadWidth, MulOp, Reg, StoreWidth};

/// Error produced for machine words that are not valid RV32IM encodings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DecodeError {
    /// The undecodable word.
    pub word: u32,
    /// Address the word was fetched from, when known (set by the CPU).
    pub pc: Option<u32>,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.pc {
            Some(pc) => write!(f, "cannot decode word {:#010x} at pc {:#010x}", self.word, pc),
            None => write!(f, "cannot decode word {:#010x}", self.word),
        }
    }
}

impl std::error::Error for DecodeError {}

fn rd(w: u32) -> Reg {
    Reg::new(((w >> 7) & 0x1f) as u8).expect("5-bit field")
}
fn rs1(w: u32) -> Reg {
    Reg::new(((w >> 15) & 0x1f) as u8).expect("5-bit field")
}
fn rs2(w: u32) -> Reg {
    Reg::new(((w >> 20) & 0x1f) as u8).expect("5-bit field")
}
fn funct3(w: u32) -> u32 {
    (w >> 12) & 0x7
}
fn funct7(w: u32) -> u32 {
    w >> 25
}

/// Sign-extends the low `bits` bits of `v`.
fn sext(v: u32, bits: u32) -> i32 {
    let shift = 32 - bits;
    ((v << shift) as i32) >> shift
}

fn imm_i(w: u32) -> i32 {
    sext(w >> 20, 12)
}

fn imm_s(w: u32) -> i32 {
    sext(((w >> 25) << 5) | ((w >> 7) & 0x1f), 12)
}

fn imm_b(w: u32) -> i32 {
    let v = ((w >> 31) & 1) << 12
        | ((w >> 7) & 1) << 11
        | ((w >> 25) & 0x3f) << 5
        | ((w >> 8) & 0xf) << 1;
    sext(v, 13)
}

fn imm_j(w: u32) -> i32 {
    let v = ((w >> 31) & 1) << 20
        | ((w >> 12) & 0xff) << 12
        | ((w >> 20) & 1) << 11
        | ((w >> 21) & 0x3ff) << 1;
    sext(v, 21)
}

/// Decodes a 32-bit machine word into an [`Instr`].
///
/// # Errors
///
/// Returns [`DecodeError`] for reserved/unsupported encodings (including all
/// compressed and floating-point instructions, which are outside RV32IM).
///
/// # Examples
///
/// ```
/// // 0x00a00513 is `addi a0, zero, 10`.
/// let i = rv32::decode(0x00a0_0513)?;
/// assert_eq!(i.to_string(), "addi a0, zero, 10");
/// # Ok::<(), rv32::DecodeError>(())
/// ```
pub fn decode(word: u32) -> Result<Instr, DecodeError> {
    let err = || DecodeError { word, pc: None };
    let opcode = word & 0x7f;
    match opcode {
        0b0110111 => Ok(Instr::Lui { rd: rd(word), imm: (word & 0xffff_f000) as i32 }),
        0b0010111 => Ok(Instr::Auipc { rd: rd(word), imm: (word & 0xffff_f000) as i32 }),
        0b1101111 => Ok(Instr::Jal { rd: rd(word), offset: imm_j(word) }),
        0b1100111 => {
            if funct3(word) != 0 {
                return Err(err());
            }
            Ok(Instr::Jalr { rd: rd(word), rs1: rs1(word), offset: imm_i(word) })
        }
        0b1100011 => {
            let op = match funct3(word) {
                0b000 => BranchOp::Eq,
                0b001 => BranchOp::Ne,
                0b100 => BranchOp::Lt,
                0b101 => BranchOp::Ge,
                0b110 => BranchOp::Ltu,
                0b111 => BranchOp::Geu,
                _ => return Err(err()),
            };
            Ok(Instr::Branch { op, rs1: rs1(word), rs2: rs2(word), offset: imm_b(word) })
        }
        0b0000011 => {
            let width = match funct3(word) {
                0b000 => LoadWidth::B,
                0b001 => LoadWidth::H,
                0b010 => LoadWidth::W,
                0b100 => LoadWidth::Bu,
                0b101 => LoadWidth::Hu,
                _ => return Err(err()),
            };
            Ok(Instr::Load { width, rd: rd(word), rs1: rs1(word), offset: imm_i(word) })
        }
        0b0100011 => {
            let width = match funct3(word) {
                0b000 => StoreWidth::B,
                0b001 => StoreWidth::H,
                0b010 => StoreWidth::W,
                _ => return Err(err()),
            };
            Ok(Instr::Store { width, rs2: rs2(word), rs1: rs1(word), offset: imm_s(word) })
        }
        0b0010011 => {
            let (op, imm) = match funct3(word) {
                0b000 => (AluOp::Add, imm_i(word)),
                0b010 => (AluOp::Slt, imm_i(word)),
                0b011 => (AluOp::Sltu, imm_i(word)),
                0b100 => (AluOp::Xor, imm_i(word)),
                0b110 => (AluOp::Or, imm_i(word)),
                0b111 => (AluOp::And, imm_i(word)),
                0b001 => {
                    if funct7(word) != 0 {
                        return Err(err());
                    }
                    (AluOp::Sll, ((word >> 20) & 0x1f) as i32)
                }
                0b101 => match funct7(word) {
                    0 => (AluOp::Srl, ((word >> 20) & 0x1f) as i32),
                    0b0100000 => (AluOp::Sra, ((word >> 20) & 0x1f) as i32),
                    _ => return Err(err()),
                },
                _ => unreachable!("funct3 is 3 bits"),
            };
            Ok(Instr::OpImm { op, rd: rd(word), rs1: rs1(word), imm })
        }
        0b0110011 => {
            let f3 = funct3(word);
            match funct7(word) {
                0b0000001 => {
                    let op = match f3 {
                        0b000 => MulOp::Mul,
                        0b001 => MulOp::Mulh,
                        0b010 => MulOp::Mulhsu,
                        0b011 => MulOp::Mulhu,
                        0b100 => MulOp::Div,
                        0b101 => MulOp::Divu,
                        0b110 => MulOp::Rem,
                        0b111 => MulOp::Remu,
                        _ => unreachable!("funct3 is 3 bits"),
                    };
                    Ok(Instr::MulDiv { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) })
                }
                0b0000000 => {
                    let op = match f3 {
                        0b000 => AluOp::Add,
                        0b001 => AluOp::Sll,
                        0b010 => AluOp::Slt,
                        0b011 => AluOp::Sltu,
                        0b100 => AluOp::Xor,
                        0b101 => AluOp::Srl,
                        0b110 => AluOp::Or,
                        0b111 => AluOp::And,
                        _ => unreachable!("funct3 is 3 bits"),
                    };
                    Ok(Instr::Op { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) })
                }
                0b0100000 => {
                    let op = match f3 {
                        0b000 => AluOp::Sub,
                        0b101 => AluOp::Sra,
                        _ => return Err(err()),
                    };
                    Ok(Instr::Op { op, rd: rd(word), rs1: rs1(word), rs2: rs2(word) })
                }
                _ => Err(err()),
            }
        }
        0b0001111 => Ok(Instr::Fence),
        0b1110011 => match word >> 7 {
            0 => Ok(Instr::Ecall),
            0x2000 => Ok(Instr::Ebreak),
            _ => Err(err()),
        },
        _ => Err(err()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::encode::encode;

    #[test]
    fn known_words() {
        // Cross-checked against the RISC-V spec examples / GNU as output.
        assert_eq!(decode(0x00a00513).unwrap().to_string(), "addi a0, zero, 10");
        assert_eq!(decode(0x00000013).unwrap().to_string(), "addi zero, zero, 0"); // nop
        assert_eq!(decode(0x00008067).unwrap().to_string(), "jalr zero, 0(ra)"); // ret
        assert_eq!(decode(0xfff00693).unwrap().to_string(), "addi a3, zero, -1");
        assert_eq!(decode(0x00c58633).unwrap().to_string(), "add a2, a1, a2");
        assert_eq!(decode(0x02b50533).unwrap().to_string(), "mul a0, a0, a1");
        assert_eq!(decode(0x0000006f).unwrap().to_string(), "jal zero, 0");
        assert_eq!(decode(0x00100073).unwrap(), Instr::Ebreak);
        assert_eq!(decode(0x00000073).unwrap(), Instr::Ecall);
    }

    #[test]
    fn branch_offsets() {
        // beq a0, a1, -8  (backwards)
        let i = Instr::Branch { op: BranchOp::Eq, rs1: Reg::A0, rs2: Reg::A1, offset: -8 };
        let w = encode(&i).unwrap();
        assert_eq!(decode(w).unwrap(), i);
    }

    #[test]
    fn rejects_garbage() {
        assert!(decode(0xffff_ffff).is_err());
        assert!(decode(0x0000_0000).is_err());
        // Compressed instruction space (low bits != 11).
        assert!(decode(0x0000_4501).is_err());
    }

    #[test]
    fn imm_extremes_round_trip() {
        for imm in [-2048, -1, 0, 1, 2047] {
            let i = Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::A1, imm };
            assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
        }
        for offset in [-4096, -2, 0, 2, 4094] {
            let i = Instr::Branch { op: BranchOp::Ne, rs1: Reg::A0, rs2: Reg::ZERO, offset };
            assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
        }
        for offset in [-(1 << 20), -2, 0, 2, (1 << 20) - 2] {
            let i = Instr::Jal { rd: Reg::RA, offset };
            assert_eq!(decode(encode(&i).unwrap()).unwrap(), i);
        }
    }
}
