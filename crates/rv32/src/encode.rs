//! Instruction → 32-bit word encoding (the inverse of [`mod@crate::decode`]).

use std::fmt;

use crate::isa::{AluOp, BranchOp, Instr, LoadWidth, MulOp, StoreWidth};

/// Error produced when an [`Instr`] cannot be represented as a machine word.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EncodeError {
    /// Immediate does not fit the instruction format's field.
    ImmOutOfRange {
        /// Offending instruction (rendered).
        instr: String,
        /// The immediate value.
        imm: i32,
        /// Human-readable description of the accepted range.
        range: &'static str,
    },
    /// `subi` does not exist in RV32I.
    SubImmediate,
    /// PC-relative offset must be even (2-byte aligned).
    MisalignedOffset {
        /// Offending instruction (rendered).
        instr: String,
        /// The offset value.
        offset: i32,
    },
}

impl fmt::Display for EncodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EncodeError::ImmOutOfRange { instr, imm, range } => {
                write!(f, "immediate {imm} out of range {range} in `{instr}`")
            }
            EncodeError::SubImmediate => write!(f, "`sub` has no immediate form"),
            EncodeError::MisalignedOffset { instr, offset } => {
                write!(f, "pc-relative offset {offset} is not 2-byte aligned in `{instr}`")
            }
        }
    }
}

impl std::error::Error for EncodeError {}

fn check_i12(instr: &Instr, imm: i32) -> Result<u32, EncodeError> {
    if (-2048..=2047).contains(&imm) {
        Ok((imm as u32) & 0xfff)
    } else {
        Err(EncodeError::ImmOutOfRange { instr: instr.to_string(), imm, range: "[-2048, 2047]" })
    }
}

fn r_type(funct7: u32, rs2: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

fn i_type(imm12: u32, rs1: u32, funct3: u32, rd: u32, opcode: u32) -> u32 {
    (imm12 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode
}

/// Encodes an instruction into its 32-bit little-endian machine word.
///
/// # Errors
///
/// Returns [`EncodeError`] when an immediate or offset does not fit its
/// encoding field, or for the non-existent `sub`-immediate form.
///
/// # Examples
///
/// ```
/// use rv32::isa::{AluOp, Instr, Reg};
/// let word = rv32::encode(&Instr::OpImm {
///     op: AluOp::Add,
///     rd: Reg::A0,
///     rs1: Reg::ZERO,
///     imm: 42,
/// })?;
/// assert_eq!(rv32::decode(word)?, Instr::OpImm {
///     op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 42,
/// });
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
pub fn encode(instr: &Instr) -> Result<u32, EncodeError> {
    let i = *instr;
    match i {
        Instr::Lui { rd, imm } | Instr::Auipc { rd, imm } => {
            if imm & 0xfff != 0 {
                return Err(EncodeError::ImmOutOfRange {
                    instr: i.to_string(),
                    imm,
                    range: "low 12 bits must be zero (stored pre-shifted)",
                });
            }
            let opcode = if matches!(i, Instr::Lui { .. }) { 0b0110111 } else { 0b0010111 };
            Ok((imm as u32) | ((rd.num() as u32) << 7) | opcode)
        }
        Instr::Jal { rd, offset } => {
            if offset % 2 != 0 {
                return Err(EncodeError::MisalignedOffset { instr: i.to_string(), offset });
            }
            if !(-(1 << 20)..(1 << 20)).contains(&offset) {
                return Err(EncodeError::ImmOutOfRange {
                    instr: i.to_string(),
                    imm: offset,
                    range: "[-1 MiB, 1 MiB)",
                });
            }
            let o = offset as u32;
            let imm = ((o >> 20) & 1) << 31
                | ((o >> 1) & 0x3ff) << 21
                | ((o >> 11) & 1) << 20
                | ((o >> 12) & 0xff) << 12;
            Ok(imm | ((rd.num() as u32) << 7) | 0b1101111)
        }
        Instr::Jalr { rd, rs1, offset } => {
            let imm = check_i12(&i, offset)?;
            Ok(i_type(imm, rs1.num() as u32, 0b000, rd.num() as u32, 0b1100111))
        }
        Instr::Branch { op, rs1, rs2, offset } => {
            if offset % 2 != 0 {
                return Err(EncodeError::MisalignedOffset { instr: i.to_string(), offset });
            }
            if !(-4096..4096).contains(&offset) {
                return Err(EncodeError::ImmOutOfRange {
                    instr: i.to_string(),
                    imm: offset,
                    range: "[-4096, 4094]",
                });
            }
            let funct3 = match op {
                BranchOp::Eq => 0b000,
                BranchOp::Ne => 0b001,
                BranchOp::Lt => 0b100,
                BranchOp::Ge => 0b101,
                BranchOp::Ltu => 0b110,
                BranchOp::Geu => 0b111,
            };
            let o = offset as u32;
            let word = ((o >> 12) & 1) << 31
                | ((o >> 5) & 0x3f) << 25
                | (rs2.num() as u32) << 20
                | (rs1.num() as u32) << 15
                | funct3 << 12
                | ((o >> 1) & 0xf) << 8
                | ((o >> 11) & 1) << 7
                | 0b1100011;
            Ok(word)
        }
        Instr::Load { width, rd, rs1, offset } => {
            let funct3 = match width {
                LoadWidth::B => 0b000,
                LoadWidth::H => 0b001,
                LoadWidth::W => 0b010,
                LoadWidth::Bu => 0b100,
                LoadWidth::Hu => 0b101,
            };
            let imm = check_i12(&i, offset)?;
            Ok(i_type(imm, rs1.num() as u32, funct3, rd.num() as u32, 0b0000011))
        }
        Instr::Store { width, rs2, rs1, offset } => {
            let funct3 = match width {
                StoreWidth::B => 0b000,
                StoreWidth::H => 0b001,
                StoreWidth::W => 0b010,
            };
            let imm = check_i12(&i, offset)?;
            let word = ((imm >> 5) & 0x7f) << 25
                | (rs2.num() as u32) << 20
                | (rs1.num() as u32) << 15
                | funct3 << 12
                | (imm & 0x1f) << 7
                | 0b0100011;
            Ok(word)
        }
        Instr::OpImm { op, rd, rs1, imm } => {
            let (funct3, funct7) = match op {
                AluOp::Add => (0b000, None),
                AluOp::Slt => (0b010, None),
                AluOp::Sltu => (0b011, None),
                AluOp::Xor => (0b100, None),
                AluOp::Or => (0b110, None),
                AluOp::And => (0b111, None),
                AluOp::Sll => (0b001, Some(0u32)),
                AluOp::Srl => (0b101, Some(0)),
                AluOp::Sra => (0b101, Some(0b0100000)),
                AluOp::Sub => return Err(EncodeError::SubImmediate),
            };
            let imm12 = if let Some(f7) = funct7 {
                if !(0..32).contains(&imm) {
                    return Err(EncodeError::ImmOutOfRange {
                        instr: i.to_string(),
                        imm,
                        range: "[0, 31]",
                    });
                }
                (f7 << 5) | (imm as u32)
            } else {
                check_i12(&i, imm)?
            };
            Ok(i_type(imm12, rs1.num() as u32, funct3, rd.num() as u32, 0b0010011))
        }
        Instr::Op { op, rd, rs1, rs2 } => {
            let (funct3, funct7) = match op {
                AluOp::Add => (0b000, 0),
                AluOp::Sub => (0b000, 0b0100000),
                AluOp::Sll => (0b001, 0),
                AluOp::Slt => (0b010, 0),
                AluOp::Sltu => (0b011, 0),
                AluOp::Xor => (0b100, 0),
                AluOp::Srl => (0b101, 0),
                AluOp::Sra => (0b101, 0b0100000),
                AluOp::Or => (0b110, 0),
                AluOp::And => (0b111, 0),
            };
            Ok(r_type(
                funct7,
                rs2.num() as u32,
                rs1.num() as u32,
                funct3,
                rd.num() as u32,
                0b0110011,
            ))
        }
        Instr::MulDiv { op, rd, rs1, rs2 } => {
            let funct3 = match op {
                MulOp::Mul => 0b000,
                MulOp::Mulh => 0b001,
                MulOp::Mulhsu => 0b010,
                MulOp::Mulhu => 0b011,
                MulOp::Div => 0b100,
                MulOp::Divu => 0b101,
                MulOp::Rem => 0b110,
                MulOp::Remu => 0b111,
            };
            Ok(r_type(
                0b0000001,
                rs2.num() as u32,
                rs1.num() as u32,
                funct3,
                rd.num() as u32,
                0b0110011,
            ))
        }
        Instr::Fence => Ok(0x0ff0000f),
        Instr::Ecall => Ok(0x00000073),
        Instr::Ebreak => Ok(0x00100073),
    }
}
