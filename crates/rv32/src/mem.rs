//! Flat little-endian memory model.

use std::fmt;

/// Error for accesses outside the configured memory size.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemError {
    /// Faulting byte address.
    pub addr: u32,
    /// Access size in bytes.
    pub size: u32,
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "out-of-bounds memory access of {} byte(s) at {:#010x}", self.size, self.addr)
    }
}

impl std::error::Error for MemError {}

/// A flat byte-addressable memory starting at address zero.
///
/// All multi-byte accesses are little-endian. Misaligned accesses are
/// permitted (RV32 allows implementations to support them; modelling traps
/// would add nothing to the evaluation).
///
/// # Examples
///
/// ```
/// use rv32::mem::Memory;
/// let mut m = Memory::new(1024);
/// m.write_u32(0x10, 0xdead_beef)?;
/// assert_eq!(m.read_u16(0x10)?, 0xbeef);
/// # Ok::<(), rv32::mem::MemError>(())
/// ```
#[derive(Clone)]
pub struct Memory {
    data: Vec<u8>,
}

impl fmt::Debug for Memory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Memory").field("size", &self.data.len()).finish()
    }
}

impl Memory {
    /// Creates a zero-filled memory of `size` bytes.
    pub fn new(size: usize) -> Memory {
        Memory { data: vec![0; size] }
    }

    /// Memory size in bytes.
    pub fn size(&self) -> usize {
        self.data.len()
    }

    fn check(&self, addr: u32, size: u32) -> Result<usize, MemError> {
        if size == 0 {
            return Ok(addr.min(self.data.len() as u32) as usize);
        }
        let end = addr as u64 + size as u64;
        if end <= self.data.len() as u64 {
            Ok(addr as usize)
        } else {
            Err(MemError { addr, size })
        }
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if `addr` is out of bounds.
    pub fn read_u8(&self, addr: u32) -> Result<u8, MemError> {
        let i = self.check(addr, 1)?;
        Ok(self.data[i])
    }

    /// Reads a little-endian half-word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the 2-byte range is out of bounds.
    pub fn read_u16(&self, addr: u32) -> Result<u16, MemError> {
        let i = self.check(addr, 2)?;
        Ok(u16::from_le_bytes([self.data[i], self.data[i + 1]]))
    }

    /// Reads a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the 4-byte range is out of bounds.
    pub fn read_u32(&self, addr: u32) -> Result<u32, MemError> {
        let i = self.check(addr, 4)?;
        Ok(u32::from_le_bytes([self.data[i], self.data[i + 1], self.data[i + 2], self.data[i + 3]]))
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if `addr` is out of bounds.
    pub fn write_u8(&mut self, addr: u32, v: u8) -> Result<(), MemError> {
        let i = self.check(addr, 1)?;
        self.data[i] = v;
        Ok(())
    }

    /// Writes a little-endian half-word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the 2-byte range is out of bounds.
    pub fn write_u16(&mut self, addr: u32, v: u16) -> Result<(), MemError> {
        let i = self.check(addr, 2)?;
        self.data[i..i + 2].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Writes a little-endian word.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the 4-byte range is out of bounds.
    pub fn write_u32(&mut self, addr: u32, v: u32) -> Result<(), MemError> {
        let i = self.check(addr, 4)?;
        self.data[i..i + 4].copy_from_slice(&v.to_le_bytes());
        Ok(())
    }

    /// Copies `bytes` into memory starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is out of bounds.
    pub fn write_bytes(&mut self, addr: u32, bytes: &[u8]) -> Result<(), MemError> {
        let i = self.check(addr, bytes.len() as u32)?;
        self.data[i..i + bytes.len()].copy_from_slice(bytes);
        Ok(())
    }

    /// Returns a view of `len` bytes starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is out of bounds.
    pub fn read_bytes(&self, addr: u32, len: u32) -> Result<&[u8], MemError> {
        let i = self.check(addr, len)?;
        Ok(&self.data[i..i + len as usize])
    }

    /// Reads `count` consecutive little-endian words.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is out of bounds.
    pub fn read_words(&self, addr: u32, count: u32) -> Result<Vec<u32>, MemError> {
        (0..count).map(|i| self.read_u32(addr + 4 * i)).collect()
    }

    /// Writes consecutive little-endian words starting at `addr`.
    ///
    /// # Errors
    ///
    /// Returns [`MemError`] if the range is out of bounds.
    pub fn write_words(&mut self, addr: u32, words: &[u32]) -> Result<(), MemError> {
        for (i, w) in words.iter().enumerate() {
            self.write_u32(addr + 4 * i as u32, *w)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_round_trip() {
        let mut m = Memory::new(64);
        m.write_u32(0, 0x0403_0201).unwrap();
        assert_eq!(m.read_u8(0).unwrap(), 0x01);
        assert_eq!(m.read_u8(3).unwrap(), 0x04);
        assert_eq!(m.read_u16(1).unwrap(), 0x0302, "misaligned read allowed");
    }

    #[test]
    fn bounds() {
        let mut m = Memory::new(8);
        assert!(m.read_u32(5).is_err());
        assert!(m.read_u32(4).is_ok());
        assert!(m.write_u8(8, 0).is_err());
        assert_eq!(m.read_u32(u32::MAX).unwrap_err(), MemError { addr: u32::MAX, size: 4 });
    }

    #[test]
    fn bulk_access() {
        let mut m = Memory::new(32);
        m.write_words(4, &[1, 2, 3]).unwrap();
        assert_eq!(m.read_words(4, 3).unwrap(), vec![1, 2, 3]);
        m.write_bytes(0, b"abcd").unwrap();
        assert_eq!(m.read_bytes(0, 4).unwrap(), b"abcd");
    }
}
