//! RV32IM instruction-set model: registers, opcodes, and the [`Instr`] type.
//!
//! The model covers the full RV32I base integer ISA plus the M extension
//! (multiply/divide), `fence`, `ecall` and `ebreak` — everything a
//! `-O3`-compiled embedded benchmark needs. Floating point is intentionally
//! absent: the TransRec fabric (and the MiBench subset evaluated in the
//! paper) is integer-only.

use std::fmt;

use serde::{Deserialize, Serialize};

/// An architectural register `x0`–`x31`.
///
/// `x0` is hardwired to zero; writes to it are discarded by the CPU model.
///
/// # Examples
///
/// ```
/// use rv32::isa::Reg;
/// let a0 = Reg::from_name("a0").unwrap();
/// assert_eq!(a0.num(), 10);
/// assert_eq!(a0.abi_name(), "a0");
/// ```
#[derive(Copy, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Reg(u8);

impl Reg {
    /// The hardwired-zero register `x0`.
    pub const ZERO: Reg = Reg(0);
    /// Return address register `x1`/`ra`.
    pub const RA: Reg = Reg(1);
    /// Stack pointer `x2`/`sp`.
    pub const SP: Reg = Reg(2);
    /// First argument / return value register `x10`/`a0`.
    pub const A0: Reg = Reg(10);
    /// Second argument register `x11`/`a1`.
    pub const A1: Reg = Reg(11);
    /// Syscall number register `x17`/`a7`.
    pub const A7: Reg = Reg(17);

    /// Creates a register from its index, returning `None` for indices ≥ 32.
    pub fn new(n: u8) -> Option<Reg> {
        (n < 32).then_some(Reg(n))
    }

    /// Creates a register from its index.
    ///
    /// # Panics
    ///
    /// Panics if `n >= 32`.
    pub const fn x(n: u8) -> Reg {
        assert!(n < 32, "register index out of range");
        Reg(n)
    }

    /// The register index (0–31).
    pub const fn num(self) -> u8 {
        self.0
    }

    /// The RISC-V ABI name (`zero`, `ra`, `sp`, …, `t6`).
    pub fn abi_name(self) -> &'static str {
        ABI_NAMES[self.0 as usize]
    }

    /// Parses either an ABI name (`a0`, `s11`, `fp`, …) or a raw name (`x17`).
    pub fn from_name(name: &str) -> Option<Reg> {
        if let Some(rest) = name.strip_prefix('x') {
            if let Ok(n) = rest.parse::<u8>() {
                return Reg::new(n);
            }
        }
        if name == "fp" {
            return Some(Reg(8));
        }
        ABI_NAMES.iter().position(|&n| n == name).map(|i| Reg(i as u8))
    }

    /// Iterator over all 32 registers in index order.
    pub fn all() -> impl Iterator<Item = Reg> {
        (0..32).map(Reg)
    }
}

const ABI_NAMES: [&str; 32] = [
    "zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2", "s0", "s1", "a0", "a1", "a2", "a3", "a4",
    "a5", "a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7", "s8", "s9", "s10", "s11", "t3", "t4",
    "t5", "t6",
];

impl fmt::Debug for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.abi_name())
    }
}

/// Integer ALU operation (shared by register–register and register–immediate
/// instruction forms).
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum AluOp {
    /// Addition (`add`/`addi`).
    Add,
    /// Subtraction (`sub`; has no immediate form).
    Sub,
    /// Logical shift left.
    Sll,
    /// Signed set-less-than.
    Slt,
    /// Unsigned set-less-than.
    Sltu,
    /// Bitwise exclusive or.
    Xor,
    /// Logical shift right.
    Srl,
    /// Arithmetic shift right.
    Sra,
    /// Bitwise or.
    Or,
    /// Bitwise and.
    And,
}

impl AluOp {
    /// Evaluates the operation on two 32-bit operands.
    ///
    /// Shift amounts use only the low five bits of `b`, as the ISA specifies.
    ///
    /// # Examples
    ///
    /// ```
    /// use rv32::isa::AluOp;
    /// assert_eq!(AluOp::Sra.eval(0x8000_0000, 31), 0xffff_ffff);
    /// assert_eq!(AluOp::Slt.eval(-1i32 as u32, 0), 1);
    /// ```
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            AluOp::Add => a.wrapping_add(b),
            AluOp::Sub => a.wrapping_sub(b),
            AluOp::Sll => a.wrapping_shl(b & 0x1f),
            AluOp::Slt => ((a as i32) < (b as i32)) as u32,
            AluOp::Sltu => (a < b) as u32,
            AluOp::Xor => a ^ b,
            AluOp::Srl => a.wrapping_shr(b & 0x1f),
            AluOp::Sra => ((a as i32).wrapping_shr(b & 0x1f)) as u32,
            AluOp::Or => a | b,
            AluOp::And => a & b,
        }
    }

    /// Mnemonic stem (`add`, `slt`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            AluOp::Add => "add",
            AluOp::Sub => "sub",
            AluOp::Sll => "sll",
            AluOp::Slt => "slt",
            AluOp::Sltu => "sltu",
            AluOp::Xor => "xor",
            AluOp::Srl => "srl",
            AluOp::Sra => "sra",
            AluOp::Or => "or",
            AluOp::And => "and",
        }
    }
}

/// M-extension multiply/divide operation.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum MulOp {
    /// Low 32 bits of signed×signed product.
    Mul,
    /// High 32 bits of signed×signed product.
    Mulh,
    /// High 32 bits of signed×unsigned product.
    Mulhsu,
    /// High 32 bits of unsigned×unsigned product.
    Mulhu,
    /// Signed division (RISC-V semantics: x/0 = −1, overflow wraps).
    Div,
    /// Unsigned division (x/0 = 2³²−1).
    Divu,
    /// Signed remainder (x%0 = x).
    Rem,
    /// Unsigned remainder (x%0 = x).
    Remu,
}

impl MulOp {
    /// Evaluates with full RISC-V corner-case semantics (division by zero and
    /// signed overflow never trap).
    ///
    /// # Examples
    ///
    /// ```
    /// use rv32::isa::MulOp;
    /// assert_eq!(MulOp::Div.eval(7, 0), u32::MAX); // x / 0 == -1
    /// assert_eq!(MulOp::Rem.eval(i32::MIN as u32, u32::MAX), 0); // overflow
    /// ```
    pub fn eval(self, a: u32, b: u32) -> u32 {
        match self {
            MulOp::Mul => a.wrapping_mul(b),
            MulOp::Mulh => (((a as i32 as i64) * (b as i32 as i64)) >> 32) as u32,
            MulOp::Mulhsu => (((a as i32 as i64) * (b as u64 as i64)) >> 32) as u32,
            MulOp::Mulhu => (((a as u64) * (b as u64)) >> 32) as u32,
            MulOp::Div => {
                if b == 0 {
                    u32::MAX
                } else if a == i32::MIN as u32 && b == u32::MAX {
                    a
                } else {
                    ((a as i32) / (b as i32)) as u32
                }
            }
            MulOp::Divu => a.checked_div(b).unwrap_or(u32::MAX),
            MulOp::Rem => {
                if b == 0 {
                    a
                } else if a == i32::MIN as u32 && b == u32::MAX {
                    0
                } else {
                    ((a as i32) % (b as i32)) as u32
                }
            }
            MulOp::Remu => {
                if b == 0 {
                    a
                } else {
                    a % b
                }
            }
        }
    }

    /// Mnemonic (`mul`, `divu`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            MulOp::Mul => "mul",
            MulOp::Mulh => "mulh",
            MulOp::Mulhsu => "mulhsu",
            MulOp::Mulhu => "mulhu",
            MulOp::Div => "div",
            MulOp::Divu => "divu",
            MulOp::Rem => "rem",
            MulOp::Remu => "remu",
        }
    }

    /// `true` for the divide/remainder group, which the CGRA fabric does not
    /// implement (division terminates a trace in the DBT).
    pub fn is_div(self) -> bool {
        matches!(self, MulOp::Div | MulOp::Divu | MulOp::Rem | MulOp::Remu)
    }
}

/// Conditional-branch comparison.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum BranchOp {
    /// Branch if equal.
    Eq,
    /// Branch if not equal.
    Ne,
    /// Branch if signed less-than.
    Lt,
    /// Branch if signed greater-or-equal.
    Ge,
    /// Branch if unsigned less-than.
    Ltu,
    /// Branch if unsigned greater-or-equal.
    Geu,
}

impl BranchOp {
    /// Evaluates the branch condition.
    pub fn taken(self, a: u32, b: u32) -> bool {
        match self {
            BranchOp::Eq => a == b,
            BranchOp::Ne => a != b,
            BranchOp::Lt => (a as i32) < (b as i32),
            BranchOp::Ge => (a as i32) >= (b as i32),
            BranchOp::Ltu => a < b,
            BranchOp::Geu => a >= b,
        }
    }

    /// Mnemonic (`beq`, `bgeu`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            BranchOp::Eq => "beq",
            BranchOp::Ne => "bne",
            BranchOp::Lt => "blt",
            BranchOp::Ge => "bge",
            BranchOp::Ltu => "bltu",
            BranchOp::Geu => "bgeu",
        }
    }
}

/// Load access width and extension behaviour.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum LoadWidth {
    /// `lb`: sign-extended byte.
    B,
    /// `lh`: sign-extended half-word.
    H,
    /// `lw`: word.
    W,
    /// `lbu`: zero-extended byte.
    Bu,
    /// `lhu`: zero-extended half-word.
    Hu,
}

impl LoadWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            LoadWidth::B | LoadWidth::Bu => 1,
            LoadWidth::H | LoadWidth::Hu => 2,
            LoadWidth::W => 4,
        }
    }

    /// Mnemonic (`lb`, `lhu`, …).
    pub fn mnemonic(self) -> &'static str {
        match self {
            LoadWidth::B => "lb",
            LoadWidth::H => "lh",
            LoadWidth::W => "lw",
            LoadWidth::Bu => "lbu",
            LoadWidth::Hu => "lhu",
        }
    }
}

/// Store access width.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum StoreWidth {
    /// `sb`: byte.
    B,
    /// `sh`: half-word.
    H,
    /// `sw`: word.
    W,
}

impl StoreWidth {
    /// Access size in bytes.
    pub fn bytes(self) -> u32 {
        match self {
            StoreWidth::B => 1,
            StoreWidth::H => 2,
            StoreWidth::W => 4,
        }
    }

    /// Mnemonic (`sb`, `sh`, `sw`).
    pub fn mnemonic(self) -> &'static str {
        match self {
            StoreWidth::B => "sb",
            StoreWidth::H => "sh",
            StoreWidth::W => "sw",
        }
    }
}

/// A decoded RV32IM instruction.
///
/// Immediates are stored fully sign-extended (e.g. `Lui` stores the final
/// `imm << 12` value), so consumers never re-apply ISA bit plumbing.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub enum Instr {
    /// `lui rd, imm20` — `rd = imm` (already shifted).
    Lui {
        /// Destination register.
        rd: Reg,
        /// Upper immediate, stored pre-shifted (low 12 bits zero).
        imm: i32,
    },
    /// `auipc rd, imm20` — `rd = pc + imm` (already shifted).
    Auipc {
        /// Destination register.
        rd: Reg,
        /// Upper immediate, stored pre-shifted (low 12 bits zero).
        imm: i32,
    },
    /// `jal rd, offset` — link and jump PC-relative.
    Jal {
        /// Link register (receives `pc + 4`).
        rd: Reg,
        /// Sign-extended PC-relative byte offset.
        offset: i32,
    },
    /// `jalr rd, offset(rs1)` — link and jump register-indirect.
    Jalr {
        /// Link register (receives `pc + 4`).
        rd: Reg,
        /// Base register of the jump target.
        rs1: Reg,
        /// Sign-extended byte offset added to `rs1`.
        offset: i32,
    },
    /// Conditional PC-relative branch.
    Branch {
        /// Comparison performed between `rs1` and `rs2`.
        op: BranchOp,
        /// First compared register.
        rs1: Reg,
        /// Second compared register.
        rs2: Reg,
        /// Sign-extended PC-relative byte offset.
        offset: i32,
    },
    /// Memory load `rd = mem[rs1 + offset]`.
    Load {
        /// Access width / extension.
        width: LoadWidth,
        /// Destination register.
        rd: Reg,
        /// Base address register.
        rs1: Reg,
        /// Sign-extended byte offset.
        offset: i32,
    },
    /// Memory store `mem[rs1 + offset] = rs2`.
    Store {
        /// Access width.
        width: StoreWidth,
        /// Value register.
        rs2: Reg,
        /// Base address register.
        rs1: Reg,
        /// Sign-extended byte offset.
        offset: i32,
    },
    /// Register–immediate ALU operation (`addi`, `slli`, …).
    ///
    /// `op` is never [`AluOp::Sub`]; the encoder rejects it.
    OpImm {
        /// ALU operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// Source register.
        rs1: Reg,
        /// Sign-extended 12-bit immediate (shift ops: 0–31).
        imm: i32,
    },
    /// Register–register ALU operation.
    Op {
        /// ALU operation.
        op: AluOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// M-extension multiply/divide.
    MulDiv {
        /// Multiply/divide operation.
        op: MulOp,
        /// Destination register.
        rd: Reg,
        /// First source register.
        rs1: Reg,
        /// Second source register.
        rs2: Reg,
    },
    /// `fence` (a no-op in this single-hart model).
    Fence,
    /// `ecall` — environment call (the CPU model implements exit/write).
    Ecall,
    /// `ebreak` — halts the CPU model.
    Ebreak,
}

impl Instr {
    /// The register written by this instruction, if any (never `x0`).
    pub fn dest(self) -> Option<Reg> {
        let rd = match self {
            Instr::Lui { rd, .. }
            | Instr::Auipc { rd, .. }
            | Instr::Jal { rd, .. }
            | Instr::Jalr { rd, .. }
            | Instr::Load { rd, .. }
            | Instr::OpImm { rd, .. }
            | Instr::Op { rd, .. }
            | Instr::MulDiv { rd, .. } => rd,
            _ => return None,
        };
        (rd != Reg::ZERO).then_some(rd)
    }

    /// The registers read by this instruction (`x0` reads are kept: they read
    /// the constant zero). At most two.
    pub fn sources(self) -> [Option<Reg>; 2] {
        match self {
            Instr::Lui { .. } | Instr::Auipc { .. } | Instr::Jal { .. } => [None, None],
            Instr::Jalr { rs1, .. } | Instr::Load { rs1, .. } | Instr::OpImm { rs1, .. } => {
                [Some(rs1), None]
            }
            Instr::Branch { rs1, rs2, .. }
            | Instr::Store { rs1, rs2, .. }
            | Instr::Op { rs1, rs2, .. }
            | Instr::MulDiv { rs1, rs2, .. } => [Some(rs1), Some(rs2)],
            Instr::Fence | Instr::Ecall | Instr::Ebreak => [None, None],
        }
    }

    /// `true` for control-transfer instructions (branches and jumps).
    pub fn is_control(self) -> bool {
        matches!(self, Instr::Jal { .. } | Instr::Jalr { .. } | Instr::Branch { .. })
    }

    /// `true` for loads and stores.
    pub fn is_mem(self) -> bool {
        matches!(self, Instr::Load { .. } | Instr::Store { .. })
    }

    /// `true` for system instructions (`fence`, `ecall`, `ebreak`).
    pub fn is_system(self) -> bool {
        matches!(self, Instr::Fence | Instr::Ecall | Instr::Ebreak)
    }
}

impl fmt::Display for Instr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Instr::Lui { rd, imm } => write!(f, "lui {rd}, {:#x}", (imm as u32) >> 12),
            Instr::Auipc { rd, imm } => write!(f, "auipc {rd}, {:#x}", (imm as u32) >> 12),
            Instr::Jal { rd, offset } => write!(f, "jal {rd}, {offset}"),
            Instr::Jalr { rd, rs1, offset } => write!(f, "jalr {rd}, {offset}({rs1})"),
            Instr::Branch { op, rs1, rs2, offset } => {
                write!(f, "{} {rs1}, {rs2}, {offset}", op.mnemonic())
            }
            Instr::Load { width, rd, rs1, offset } => {
                write!(f, "{} {rd}, {offset}({rs1})", width.mnemonic())
            }
            Instr::Store { width, rs2, rs1, offset } => {
                write!(f, "{} {rs2}, {offset}({rs1})", width.mnemonic())
            }
            Instr::OpImm { op, rd, rs1, imm } => {
                let m = match op {
                    AluOp::Sll => "slli",
                    AluOp::Srl => "srli",
                    AluOp::Sra => "srai",
                    _ => return write!(f, "{}i {rd}, {rs1}, {imm}", op.mnemonic()),
                };
                write!(f, "{m} {rd}, {rs1}, {imm}")
            }
            Instr::Op { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::MulDiv { op, rd, rs1, rs2 } => {
                write!(f, "{} {rd}, {rs1}, {rs2}", op.mnemonic())
            }
            Instr::Fence => write!(f, "fence"),
            Instr::Ecall => write!(f, "ecall"),
            Instr::Ebreak => write!(f, "ebreak"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reg_names_round_trip() {
        for r in Reg::all() {
            assert_eq!(Reg::from_name(r.abi_name()), Some(r));
            assert_eq!(Reg::from_name(&format!("x{}", r.num())), Some(r));
        }
        assert_eq!(Reg::from_name("fp"), Some(Reg::x(8)));
        assert_eq!(Reg::from_name("x32"), None);
        assert_eq!(Reg::from_name("bogus"), None);
    }

    #[test]
    fn alu_semantics() {
        assert_eq!(AluOp::Add.eval(u32::MAX, 1), 0);
        assert_eq!(AluOp::Sub.eval(0, 1), u32::MAX);
        assert_eq!(AluOp::Sll.eval(1, 33), 2, "shift amount masked to 5 bits");
        assert_eq!(AluOp::Sra.eval(0x8000_0000, 4), 0xf800_0000);
        assert_eq!(AluOp::Srl.eval(0x8000_0000, 4), 0x0800_0000);
        assert_eq!(AluOp::Slt.eval(1, 2), 1);
        assert_eq!(AluOp::Sltu.eval(u32::MAX, 0), 0);
    }

    #[test]
    fn muldiv_corner_cases() {
        assert_eq!(MulOp::Div.eval(10, 0), u32::MAX);
        assert_eq!(MulOp::Divu.eval(10, 0), u32::MAX);
        assert_eq!(MulOp::Rem.eval(10, 0), 10);
        assert_eq!(MulOp::Remu.eval(10, 0), 10);
        assert_eq!(MulOp::Div.eval(i32::MIN as u32, u32::MAX), i32::MIN as u32);
        assert_eq!(MulOp::Mulh.eval(u32::MAX, u32::MAX), 0); // (-1)*(-1) = 1
        assert_eq!(MulOp::Mulhu.eval(u32::MAX, u32::MAX), 0xffff_fffe);
        assert_eq!(MulOp::Mulhsu.eval(u32::MAX, u32::MAX), u32::MAX);
    }

    #[test]
    fn branch_semantics() {
        assert!(BranchOp::Lt.taken(-1i32 as u32, 0));
        assert!(!BranchOp::Ltu.taken(-1i32 as u32, 0));
        assert!(BranchOp::Geu.taken(u32::MAX, 0));
        assert!(BranchOp::Eq.taken(5, 5));
        assert!(BranchOp::Ne.taken(5, 6));
        assert!(BranchOp::Ge.taken(0, 0));
    }

    #[test]
    fn dest_never_x0() {
        let i = Instr::OpImm { op: AluOp::Add, rd: Reg::ZERO, rs1: Reg::ZERO, imm: 0 };
        assert_eq!(i.dest(), None);
        let i = Instr::OpImm { op: AluOp::Add, rd: Reg::A0, rs1: Reg::ZERO, imm: 0 };
        assert_eq!(i.dest(), Some(Reg::A0));
    }

    #[test]
    fn display_smoke() {
        let i = Instr::Load { width: LoadWidth::W, rd: Reg::A0, rs1: Reg::SP, offset: -4 };
        assert_eq!(i.to_string(), "lw a0, -4(sp)");
        let i = Instr::Branch { op: BranchOp::Ne, rs1: Reg::A0, rs2: Reg::ZERO, offset: 8 };
        assert_eq!(i.to_string(), "bne a0, zero, 8");
    }
}
