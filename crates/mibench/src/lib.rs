//! # mibench — MiBench-like embedded workloads in RV32IM assembly
//!
//! The paper evaluates on ten MiBench benchmarks compiled for RISC-V
//! (bitcount, CRC32, dijkstra, qsort, rijndael-e, sha, stringsearch and the
//! three susan kernels). This crate provides the equivalent workloads as
//! hand-written RV32IM assembly with the same algorithmic cores, seeded
//! input generators, and **native Rust oracles**: every run — on the plain
//! interpreter or through the full GPP + CGRA system — is verified
//! bit-exactly against an independent Rust implementation.
//!
//! # Examples
//!
//! ```
//! let suite = mibench::suite(42);
//! assert_eq!(suite.len(), 10);
//! // Each workload self-verifies on the interpreter.
//! let cpu = suite[0].run_and_verify(1 << 20).unwrap();
//! assert!(cpu.retired() > 1_000);
//! ```

#![warn(missing_docs)]

pub mod kernels;
pub mod workload;

pub use workload::{VerifyError, Workload};

use kernels::susan::Variant;

/// Builds the full ten-benchmark suite (paper §IV.A) for a seed.
///
/// Order: bitcount, crc32, dijkstra, qsort, rijndael, sha, stringsearch,
/// susan_corners, susan_edges, susan_smoothing.
pub fn suite(seed: u64) -> Vec<Workload> {
    vec![
        kernels::bitcount::workload(seed),
        kernels::crc32::workload(seed),
        kernels::dijkstra::workload(seed),
        kernels::qsort::workload(seed),
        kernels::rijndael::workload(seed),
        kernels::sha::workload(seed),
        kernels::stringsearch::workload(seed),
        kernels::susan::workload(Variant::Corners, seed),
        kernels::susan::workload(Variant::Edges, seed),
        kernels::susan::workload(Variant::Smoothing, seed),
    ]
}

/// The benchmark names, in [`suite`] order.
pub const NAMES: [&str; 10] = [
    "bitcount",
    "crc32",
    "dijkstra",
    "qsort",
    "rijndael",
    "sha",
    "stringsearch",
    "susan_corners",
    "susan_edges",
    "susan_smoothing",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_paper_composition() {
        let s = suite(7);
        let names: Vec<&str> = s.iter().map(|w| w.name()).collect();
        assert_eq!(names, NAMES.to_vec());
    }

    #[test]
    fn whole_suite_verifies() {
        for w in suite(3) {
            w.run_and_verify(1 << 20).unwrap_or_else(|e| panic!("{e}"));
        }
    }

    #[test]
    fn different_seeds_change_inputs() {
        let a = suite(1);
        let b = suite(2);
        assert_ne!(
            a[1].expected()[0].1,
            b[1].expected()[0].1,
            "crc of different inputs should differ"
        );
    }
}
