//! `qsort` — iterative quicksort (Lomuto partition, explicit segment stack)
//! over unsigned words, standing in for MiBench auto/qsort.

use crate::workload::{random_words, rng, words_directive, words_to_bytes, Workload};

const N: usize = 128;

/// Builds the workload for `seed`.
pub fn workload(seed: u64) -> Workload {
    let mut r = rng(seed ^ 0x9504);
    let input = random_words(&mut r, N);
    let mut sorted = input.clone();
    sorted.sort_unstable();
    let expected = words_to_bytes(&sorted);

    let source = format!(
        "
    .data
{arr_words}
qstack:
    .space 2048

    .text
    la   s0, arr
    la   s1, qstack
    li   t0, 0
    li   t1, {n_m1}
    sw   t0, 0(s1)
    sw   t1, 4(s1)
    addi s1, s1, 8
main_loop:
    la   t6, qstack
    beq  s1, t6, done_q
    addi s1, s1, -8
    lw   s2, 0(s1)          # lo
    lw   s3, 4(s1)          # hi
    bge  s2, s3, main_loop
    # Lomuto partition around arr[hi]
    slli t0, s3, 2
    add  t0, s0, t0
    lw   s4, 0(t0)          # pivot
    mv   s5, s2             # i (store index)
    mv   s6, s2             # j (scan index)
part_loop:
    slli t1, s6, 2
    add  t1, s0, t1
    lw   t2, 0(t1)
    bgeu t2, s4, no_swap
    slli t3, s5, 2
    add  t3, s0, t3
    lw   t4, 0(t3)
    sw   t2, 0(t3)
    sw   t4, 0(t1)
    addi s5, s5, 1
no_swap:
    addi s6, s6, 1
    blt  s6, s3, part_loop
    # move pivot into place: swap arr[i] <-> arr[hi]
    slli t1, s5, 2
    add  t1, s0, t1
    lw   t2, 0(t1)
    slli t3, s3, 2
    add  t3, s0, t3
    lw   t4, 0(t3)
    sw   t4, 0(t1)
    sw   t2, 0(t3)
    # push (lo, i-1) and (i+1, hi)
    addi t5, s5, -1
    bge  s2, t5, try2
    sw   s2, 0(s1)
    sw   t5, 4(s1)
    addi s1, s1, 8
try2:
    addi t5, s5, 1
    bge  t5, s3, main_loop
    sw   t5, 0(s1)
    sw   s3, 4(s1)
    addi s1, s1, 8
    j    main_loop
done_q:
    ebreak
",
        arr_words = words_directive("arr", &input),
        n_m1 = N - 1,
    );

    Workload::new("qsort", &source, 2_000_000, vec![("arr".into(), expected)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn qsort_verifies_on_interpreter() {
        workload(1).run_and_verify(1 << 20).unwrap();
        workload(1000).run_and_verify(1 << 20).unwrap();
    }
}
