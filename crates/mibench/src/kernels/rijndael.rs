//! `rijndael-e` — AES-128 ECB encryption of a few blocks (MiBench
//! security/rijndael, encrypt direction). Like MiBench's implementation the
//! kernel is word-oriented: the state lives in four registers and each
//! round is sixteen T-table lookups plus round-key XORs, generated as
//! straight-line code — long, ILP-rich, translatable traces. A
//! byte-oriented implementation (FIPS-197-checked) doubles as a second
//! oracle for the T-tables themselves.

use crate::workload::{bytes_directive, random_bytes, rng, Workload};

const BLOCKS: usize = 4;

/// The AES S-box.
const SBOX: [u8; 256] = [
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b, 0xfe, 0xd7, 0xab, 0x76,
    0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0, 0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0,
    0xb7, 0xfd, 0x93, 0x26, 0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2, 0xeb, 0x27, 0xb2, 0x75,
    0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0, 0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84,
    0x53, 0xd1, 0x00, 0xed, 0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f, 0x50, 0x3c, 0x9f, 0xa8,
    0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5, 0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2,
    0xcd, 0x0c, 0x13, 0xec, 0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14, 0xde, 0x5e, 0x0b, 0xdb,
    0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c, 0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79,
    0xe7, 0xc8, 0x37, 0x6d, 0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f, 0x4b, 0xbd, 0x8b, 0x8a,
    0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e, 0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e,
    0xe1, 0xf8, 0x98, 0x11, 0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f, 0xb0, 0x54, 0xbb, 0x16,
];

fn xtime(x: u8) -> u8 {
    let shifted = (x as u32) << 1;
    (if x & 0x80 != 0 { shifted ^ 0x1b } else { shifted }) as u8
}

/// AES-128 key expansion to 11 round keys (176 bytes).
pub fn expand_key(key: &[u8; 16]) -> Vec<u8> {
    let mut rk = key.to_vec();
    let rcon = [0x01u8, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1b, 0x36];
    for &rc in &rcon {
        let n = rk.len();
        let mut t = [rk[n - 4], rk[n - 3], rk[n - 2], rk[n - 1]];
        t.rotate_left(1);
        for b in &mut t {
            *b = SBOX[*b as usize];
        }
        t[0] ^= rc;
        for i in 0..16 {
            let prev = rk[n - 16 + i];
            let x = if i < 4 { t[i] } else { rk[n + i - 4] };
            rk.push(prev ^ x);
        }
    }
    rk
}

/// The four MixColumns/SubBytes T-tables over little-endian state words.
///
/// `ti[x]` is the LE-encoded contribution of byte `x` arriving in row `i`
/// of a column after ShiftRows: T0 = (2S, S, S, 3S), T1 = (3S, 2S, S, S),
/// T2 = (S, 3S, 2S, S), T3 = (S, S, 3S, 2S).
fn t_tables() -> [Vec<u32>; 4] {
    let mut t = [vec![0u32; 256], vec![0u32; 256], vec![0u32; 256], vec![0u32; 256]];
    for x in 0..256usize {
        let s = SBOX[x] as u32;
        let s2 = xtime(SBOX[x]) as u32;
        let s3 = s2 ^ s;
        t[0][x] = s2 | s << 8 | s << 16 | s3 << 24;
        t[1][x] = s3 | s2 << 8 | s << 16 | s << 24;
        t[2][x] = s | s3 << 8 | s2 << 16 | s << 24;
        t[3][x] = s | s << 8 | s3 << 16 | s2 << 24;
    }
    t
}

/// Round keys as little-endian words (44 of them).
fn rk_words(key: &[u8; 16]) -> Vec<u32> {
    expand_key(key).chunks(4).map(|c| u32::from_le_bytes([c[0], c[1], c[2], c[3]])).collect()
}

/// T-table AES-128 ECB encryption over little-endian state words — the
/// word-oriented formulation MiBench's rijndael uses, and exactly what the
/// assembly kernel mirrors. Verified equal to [`encrypt_ecb`].
pub fn encrypt_ecb_ttable(key: &[u8; 16], data: &[u8]) -> Vec<u8> {
    assert_eq!(data.len() % 16, 0);
    let t = t_tables();
    let rk = rk_words(key);
    let mut out = Vec::with_capacity(data.len());
    for block in data.chunks(16) {
        let mut s = [0u32; 4];
        for (c, sc) in s.iter_mut().enumerate() {
            *sc = u32::from_le_bytes([
                block[4 * c],
                block[4 * c + 1],
                block[4 * c + 2],
                block[4 * c + 3],
            ]) ^ rk[c];
        }
        for round in 1..10 {
            let mut n = [0u32; 4];
            for (c, nc) in n.iter_mut().enumerate() {
                *nc = t[0][(s[c] & 0xff) as usize]
                    ^ t[1][((s[(c + 1) % 4] >> 8) & 0xff) as usize]
                    ^ t[2][((s[(c + 2) % 4] >> 16) & 0xff) as usize]
                    ^ t[3][(s[(c + 3) % 4] >> 24) as usize]
                    ^ rk[4 * round + c];
            }
            s = n;
        }
        // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
        let mut n = [0u32; 4];
        for (c, nc) in n.iter_mut().enumerate() {
            *nc = (SBOX[(s[c] & 0xff) as usize] as u32)
                | (SBOX[((s[(c + 1) % 4] >> 8) & 0xff) as usize] as u32) << 8
                | (SBOX[((s[(c + 2) % 4] >> 16) & 0xff) as usize] as u32) << 16
                | (SBOX[(s[(c + 3) % 4] >> 24) as usize] as u32) << 24;
            *nc ^= rk[40 + c];
        }
        for w in n {
            out.extend_from_slice(&w.to_le_bytes());
        }
    }
    out
}

/// Reference AES-128 ECB encryption (the oracle).
pub fn encrypt_ecb(key: &[u8; 16], data: &[u8]) -> Vec<u8> {
    assert_eq!(data.len() % 16, 0);
    let rk = expand_key(key);
    let mut out = Vec::with_capacity(data.len());
    for block in data.chunks(16) {
        let mut s: Vec<u8> = block.iter().zip(&rk[0..16]).map(|(a, b)| a ^ b).collect();
        for round in 1..=10 {
            for b in s.iter_mut() {
                *b = SBOX[*b as usize];
            }
            // ShiftRows on column-major state: new[4c + r] = old[4((c+r)%4) + r].
            let old = s.clone();
            for c in 0..4 {
                for r in 0..4 {
                    s[4 * c + r] = old[4 * ((c + r) % 4) + r];
                }
            }
            if round != 10 {
                for c in 0..4 {
                    let a: Vec<u8> = (0..4).map(|r| s[4 * c + r]).collect();
                    let b: Vec<u8> = a.iter().map(|x| xtime(*x)).collect();
                    s[4 * c] = b[0] ^ b[1] ^ a[1] ^ a[2] ^ a[3];
                    s[4 * c + 1] = a[0] ^ b[1] ^ b[2] ^ a[2] ^ a[3];
                    s[4 * c + 2] = a[0] ^ a[1] ^ b[2] ^ b[3] ^ a[3];
                    s[4 * c + 3] = b[0] ^ a[0] ^ a[1] ^ a[2] ^ b[3];
                }
            }
            for (i, b) in s.iter_mut().enumerate() {
                *b ^= rk[16 * round + i];
            }
        }
        out.extend_from_slice(&s);
    }
    out
}

const STATE_REGS: [&str; 4] = ["a2", "a3", "a4", "a5"];
const OUT_REGS: [&str; 4] = ["t3", "t4", "t5", "t6"];

/// One middle round (T-table lookups + round-key XOR), fully unrolled.
fn round_code(round: usize) -> String {
    let mut c = String::new();
    for col in 0..4usize {
        let sc = |k: usize| STATE_REGS[(col + k) % 4];
        let out = OUT_REGS[col];
        c.push_str(&format!(
            "    andi t0, {s0}, 0xff\n\
             \x20   slli t0, t0, 2\n\
             \x20   add  t0, s4, t0\n\
             \x20   lw   {out}, 0(t0)\n\
             \x20   srli t0, {s1}, 8\n\
             \x20   andi t0, t0, 0xff\n\
             \x20   slli t0, t0, 2\n\
             \x20   add  t0, s5, t0\n\
             \x20   lw   t1, 0(t0)\n\
             \x20   xor  {out}, {out}, t1\n\
             \x20   srli t0, {s2}, 16\n\
             \x20   andi t0, t0, 0xff\n\
             \x20   slli t0, t0, 2\n\
             \x20   add  t0, s6, t0\n\
             \x20   lw   t1, 0(t0)\n\
             \x20   xor  {out}, {out}, t1\n\
             \x20   srli t0, {s3}, 24\n\
             \x20   slli t0, t0, 2\n\
             \x20   add  t0, s7, t0\n\
             \x20   lw   t1, 0(t0)\n\
             \x20   xor  {out}, {out}, t1\n\
             \x20   lw   t1, {rk}(s8)\n\
             \x20   xor  {out}, {out}, t1\n",
            s0 = sc(0),
            s1 = sc(1),
            s2 = sc(2),
            s3 = sc(3),
            out = out,
            rk = 4 * (4 * round + col),
        ));
    }
    for col in 0..4 {
        c.push_str(&format!("    mv   {}, {}\n", STATE_REGS[col], OUT_REGS[col]));
    }
    c
}

/// The final round: plain S-box bytes, ShiftRows via the byte selection,
/// AddRoundKey — no MixColumns.
fn final_round_code() -> String {
    let mut c = String::new();
    for col in 0..4usize {
        let sc = |k: usize| STATE_REGS[(col + k) % 4];
        let out = OUT_REGS[col];
        c.push_str(&format!(
            "    andi t0, {s0}, 0xff\n\
             \x20   add  t0, s9, t0\n\
             \x20   lbu  {out}, 0(t0)\n\
             \x20   srli t0, {s1}, 8\n\
             \x20   andi t0, t0, 0xff\n\
             \x20   add  t0, s9, t0\n\
             \x20   lbu  t1, 0(t0)\n\
             \x20   slli t1, t1, 8\n\
             \x20   or   {out}, {out}, t1\n\
             \x20   srli t0, {s2}, 16\n\
             \x20   andi t0, t0, 0xff\n\
             \x20   add  t0, s9, t0\n\
             \x20   lbu  t1, 0(t0)\n\
             \x20   slli t1, t1, 16\n\
             \x20   or   {out}, {out}, t1\n\
             \x20   srli t0, {s3}, 24\n\
             \x20   add  t0, s9, t0\n\
             \x20   lbu  t1, 0(t0)\n\
             \x20   slli t1, t1, 24\n\
             \x20   or   {out}, {out}, t1\n\
             \x20   lw   t1, {rk}(s8)\n\
             \x20   xor  {out}, {out}, t1\n",
            s0 = sc(0),
            s1 = sc(1),
            s2 = sc(2),
            s3 = sc(3),
            out = out,
            rk = 4 * (40 + col),
        ));
    }
    for col in 0..4 {
        c.push_str(&format!("    mv   {}, {}\n", STATE_REGS[col], OUT_REGS[col]));
    }
    c
}

/// Builds the workload for `seed`.
pub fn workload(seed: u64) -> Workload {
    let mut r = rng(seed ^ 0xae5128);
    let key_bytes = random_bytes(&mut r, 16);
    let key: [u8; 16] = key_bytes.clone().try_into().expect("16 bytes");
    let plaintext = random_bytes(&mut r, BLOCKS * 16);
    let expected = encrypt_ecb_ttable(&key, &plaintext);

    let mut rounds = String::new();
    for round in 1..10 {
        rounds.push_str(&format!("    # ---- round {round} ----\n"));
        rounds.push_str(&round_code(round));
    }
    rounds.push_str("    # ---- final round ----\n");
    rounds.push_str(&final_round_code());

    let t = t_tables();
    let source = format!(
        "
    .data
{t0_words}
{t1_words}
{t2_words}
{t3_words}
{rk_words_src}
{sbox_bytes}
{pt_bytes}
    .align 2
ct:
    .space {ct_len}

    .text
    la   s4, t0tab
    la   s5, t1tab
    la   s6, t2tab
    la   s7, t3tab
    la   s8, rkw
    la   s9, sbox
    la   s1, pt
    la   s2, ct
    li   s0, {blocks}
block_loop:
    # conditional branches reach +-4 KiB; the unrolled rounds are longer,
    # so branch to a local trampoline and use a far jump.
    bnez s0, block_go
    j    done_aes
block_go:
    lw   a2, 0(s1)
    lw   t1, 0(s8)
    xor  a2, a2, t1
    lw   a3, 4(s1)
    lw   t1, 4(s8)
    xor  a3, a3, t1
    lw   a4, 8(s1)
    lw   t1, 8(s8)
    xor  a4, a4, t1
    lw   a5, 12(s1)
    lw   t1, 12(s8)
    xor  a5, a5, t1
{rounds}
    sw   a2, 0(s2)
    sw   a3, 4(s2)
    sw   a4, 8(s2)
    sw   a5, 12(s2)
    addi s1, s1, 16
    addi s2, s2, 16
    addi s0, s0, -1
    j    block_loop
done_aes:
    ebreak
",
        t0_words = crate::workload::words_directive("t0tab", &t[0]),
        t1_words = crate::workload::words_directive("t1tab", &t[1]),
        t2_words = crate::workload::words_directive("t2tab", &t[2]),
        t3_words = crate::workload::words_directive("t3tab", &t[3]),
        rk_words_src = crate::workload::words_directive("rkw", &rk_words(&key)),
        sbox_bytes = bytes_directive("sbox", &SBOX),
        pt_bytes = bytes_directive("pt", &plaintext),
        ct_len = BLOCKS * 16,
        blocks = BLOCKS,
        rounds = rounds,
    );

    Workload::new("rijndael", &source, 2_000_000, vec![("ct".into(), expected)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aes_reference_fips197_vector() {
        // FIPS-197 appendix B: key 2b7e...3c, plaintext 3243...34,
        // ciphertext 3925841d02dc09fbdc118597196a0b32.
        let key: [u8; 16] = [
            0x2b, 0x7e, 0x15, 0x16, 0x28, 0xae, 0xd2, 0xa6, 0xab, 0xf7, 0x15, 0x88, 0x09, 0xcf,
            0x4f, 0x3c,
        ];
        let pt: [u8; 16] = [
            0x32, 0x43, 0xf6, 0xa8, 0x88, 0x5a, 0x30, 0x8d, 0x31, 0x31, 0x98, 0xa2, 0xe0, 0x37,
            0x07, 0x34,
        ];
        let ct = encrypt_ecb(&key, &pt);
        assert_eq!(
            ct,
            vec![
                0x39, 0x25, 0x84, 0x1d, 0x02, 0xdc, 0x09, 0xfb, 0xdc, 0x11, 0x85, 0x97, 0x19, 0x6a,
                0x0b, 0x32
            ]
        );
    }

    #[test]
    fn ttable_matches_byte_oriented() {
        let key: [u8; 16] = *b"0123456789abcdef";
        let data: Vec<u8> = (0..64u8).collect();
        assert_eq!(encrypt_ecb_ttable(&key, &data), encrypt_ecb(&key, &data));
    }

    #[test]
    fn rijndael_verifies_on_interpreter() {
        workload(1).run_and_verify(1 << 20).unwrap();
    }
}
