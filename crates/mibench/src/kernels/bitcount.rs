//! `bitcount` — three bit-counting methods over a word array (MiBench
//! automotive/bitcount's spirit: the same counts computed by differently
//! shaped kernels: a data-dependent loop, a table-driven method, and a
//! branch-free SWAR method).

use crate::workload::{bytes_directive, random_words, rng, words_directive, Workload};

const N: usize = 96;

fn popcount_table() -> Vec<u8> {
    (0..256u32).map(|i| i.count_ones() as u8).collect()
}

/// Builds the workload for `seed`.
pub fn workload(seed: u64) -> Workload {
    let mut r = rng(seed ^ 0xb17c0047);
    let input = random_words(&mut r, N);

    let total: u32 = input.iter().map(|w| w.count_ones()).sum();
    let expected: Vec<u8> = [total, total, total].iter().flat_map(|w| w.to_le_bytes()).collect();

    let source = format!(
        "
    .data
{input_words}
{lut_bytes}
out:
    .word 0, 0, 0

    .text
    # ---- method 1: Kernighan clear-lowest-set-bit loop ----
    la   s0, input
    li   s1, {n}
    li   t0, 0
m1_outer:
    lw   t1, 0(s0)
m1_inner:
    beqz t1, m1_next
    addi t2, t1, -1
    and  t1, t1, t2
    addi t0, t0, 1
    j    m1_inner
m1_next:
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, m1_outer
    la   t3, out
    sw   t0, 0(t3)

    # ---- method 2: per-byte table lookup ----
    la   s0, input
    li   s1, {n}
    la   s2, lut
    li   t0, 0
m2_loop:
    lw   t1, 0(s0)
    andi t2, t1, 0xff
    add  t4, s2, t2
    lbu  t4, 0(t4)
    add  t0, t0, t4
    srli t2, t1, 8
    andi t2, t2, 0xff
    add  t4, s2, t2
    lbu  t4, 0(t4)
    add  t0, t0, t4
    srli t2, t1, 16
    andi t2, t2, 0xff
    add  t4, s2, t2
    lbu  t4, 0(t4)
    add  t0, t0, t4
    srli t2, t1, 24
    add  t4, s2, t2
    lbu  t4, 0(t4)
    add  t0, t0, t4
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, m2_loop
    la   t3, out
    sw   t0, 4(t3)

    # ---- method 3: branch-free SWAR popcount ----
    la   s0, input
    li   s1, {n}
    li   t0, 0
    li   s2, 0x55555555
    li   s3, 0x33333333
    li   s4, 0x0f0f0f0f
    li   s5, 0x01010101
m3_loop:
    lw   t1, 0(s0)
    srli t2, t1, 1
    and  t2, t2, s2
    sub  t1, t1, t2
    srli t2, t1, 2
    and  t2, t2, s3
    and  t1, t1, s3
    add  t1, t1, t2
    srli t2, t1, 4
    add  t1, t1, t2
    and  t1, t1, s4
    mul  t1, t1, s5
    srli t1, t1, 24
    add  t0, t0, t1
    addi s0, s0, 4
    addi s1, s1, -1
    bnez s1, m3_loop
    la   t3, out
    sw   t0, 8(t3)
    ebreak
",
        input_words = words_directive("input", &input),
        lut_bytes = bytes_directive("lut", &popcount_table()),
        n = N,
    );

    Workload::new("bitcount", &source, 2_000_000, vec![("out".into(), expected)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bitcount_verifies_on_interpreter() {
        workload(1).run_and_verify(1 << 20).unwrap();
        workload(99).run_and_verify(1 << 20).unwrap();
    }
}
