//! The ten benchmark kernels (paper §IV.A's MiBench subset).

pub mod bitcount;
pub mod crc32;
pub mod dijkstra;
pub mod qsort;
pub mod rijndael;
pub mod sha;
pub mod stringsearch;
pub mod susan;
