//! `susan` — the three MiBench automotive/susan image kernels over a small
//! grayscale image: smoothing (weighted 3×3 blur via multiply-shift),
//! edges (3×3 USAN response through a brightness LUT) and corners (5×5
//! USAN response). The USAN structure — per-pixel neighbourhood gathers
//! through a lookup table — is what shapes the fabric utilization, and is
//! preserved; SUSAN's non-maxima suppression stage is not (DESIGN.md §3).

use crate::workload::{bytes_directive, random_bytes, rng, Workload};

const W: usize = 20;
const H: usize = 20;
/// Brightness-similarity threshold.
const T: i32 = 27;
/// Edge USAN geometric threshold (3×3, 9 pixels).
const G_EDGE: u32 = 7;
/// Corner USAN geometric threshold (5×5, 25 pixels).
const G_CORNER: u32 = 14;

/// Which of the three susan kernels to build.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Multiply-shift 3×3 smoothing.
    Smoothing,
    /// 3×3 USAN edge response.
    Edges,
    /// 5×5 USAN corner response.
    Corners,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Smoothing => "susan_smoothing",
            Variant::Edges => "susan_edges",
            Variant::Corners => "susan_corners",
        }
    }

    fn border(self) -> usize {
        match self {
            Variant::Smoothing | Variant::Edges => 1,
            Variant::Corners => 2,
        }
    }

    fn threshold(self) -> u32 {
        match self {
            Variant::Smoothing => 0,
            Variant::Edges => G_EDGE,
            Variant::Corners => G_CORNER,
        }
    }
}

/// Similarity LUT: `lut[diff + 255] = 1` if `|diff| < T` else 0.
fn similarity_lut() -> Vec<u8> {
    (0..511i32).map(|i| u8::from((i - 255).abs() < T)).collect()
}

/// Reference implementation (the oracle) for all three variants.
pub fn reference(variant: Variant, img: &[u8]) -> Vec<u8> {
    let lut = similarity_lut();
    let b = variant.border();
    let mut out = vec![0u8; W * H];
    for y in b..H - b {
        for x in b..W - b {
            let c = img[y * W + x] as i32;
            match variant {
                Variant::Smoothing => {
                    let mut sum = 0u32;
                    for dy in -1i32..=1 {
                        for dx in -1i32..=1 {
                            let p = (y as i32 + dy) as usize * W + (x as i32 + dx) as usize;
                            sum += img[p] as u32;
                        }
                    }
                    // (sum * 228) >> 11 approximates sum / 9.
                    out[y * W + x] = ((sum * 228) >> 11) as u8;
                }
                Variant::Edges | Variant::Corners => {
                    let r = b as i32;
                    let mut n = 0u32;
                    for dy in -r..=r {
                        for dx in -r..=r {
                            let p = (y as i32 + dy) as usize * W + (x as i32 + dx) as usize;
                            let d = img[p] as i32 - c;
                            n += lut[(d + 255) as usize] as u32;
                        }
                    }
                    let g = variant.threshold();
                    out[y * W + x] = if n < g { (g - n) as u8 } else { 0 };
                }
            }
        }
    }
    out
}

/// The neighbourhood byte offsets, emitted as a `.word` table the gather
/// loop walks — the same mask-loop structure as MiBench's susan source.
fn offsets(variant: Variant) -> Vec<u32> {
    let r = variant.border() as i32;
    let mut offs = Vec::new();
    for dy in -r..=r {
        for dx in -r..=r {
            offs.push((dy * W as i32 + dx) as u32);
        }
    }
    offs
}

/// The per-pixel gather loop (s3 accumulates; s9 walks the offset table).
fn gather_code(variant: Variant) -> String {
    let n = offsets(variant).len();
    let body = match variant {
        Variant::Smoothing => "    add  s3, s3, t5\n".to_string(),
        // USAN: accumulate the similarity LUT entry for img[p] - center.
        _ => "    sub  t5, t5, s2\n\
              \x20   addi t5, t5, 255\n\
              \x20   add  t6, s8, t5\n\
              \x20   lbu  t5, 0(t6)\n\
              \x20   add  s3, s3, t5\n"
            .to_string(),
    };
    // Bottom-tested (do-while) form, like -O3 loop inversion: the whole
    // iteration including the back edge is one fabric-resolvable trace.
    format!(
        "    li   s4, {n}
    la   s9, offs
gather:
    lw   t4, 0(s9)
    add  t5, t2, t4
    lbu  t5, 0(t5)
{body}    addi s9, s9, 4
    addi s4, s4, -1
    bnez s4, gather
"
    )
}

fn response_code(variant: Variant) -> String {
    match variant {
        Variant::Smoothing => "
    li   t4, 228
    mul  t4, s3, t4
    srli t4, t4, 11
    la   t5, outimg
    add  t5, t5, t1
    sb   t4, 0(t5)
"
        .to_string(),
        _ => format!(
            "
    li   t4, {g}
    la   t5, outimg
    add  t5, t5, t1
    blt  s3, t4, resp
    sb   zero, 0(t5)
    j    cont
resp:
    sub  t4, t4, s3
    sb   t4, 0(t5)
cont:
",
            g = variant.threshold()
        ),
    }
}

/// Builds one susan variant for `seed`.
pub fn workload(variant: Variant, seed: u64) -> Workload {
    let mut r = rng(seed ^ 0x5059a);
    let img = random_bytes(&mut r, W * H);
    let expected = reference(variant, &img);
    let b = variant.border();

    let center_setup = match variant {
        Variant::Smoothing => "",
        _ => "    lbu  s2, 0(t2)\n",
    };

    let source = format!(
        "
    .data
{img_bytes}
{lut_bytes}
{offs_words}
outimg:
    .space {npix}

    .text
    la   s8, lut
    li   s0, {b}            # y
loop_y:
    li   s1, {b}            # x
loop_x:
    li   t0, {w}
    mul  t1, s0, t0
    add  t1, t1, s1         # pixel index
    la   t2, img
    add  t2, t2, t1
{center_setup}    li   s3, 0
{gather}
{response}
    addi s1, s1, 1
    li   t6, {xmax}
    blt  s1, t6, loop_x
    addi s0, s0, 1
    li   t6, {ymax}
    blt  s0, t6, loop_y
    ebreak
",
        img_bytes = bytes_directive("img", &img),
        lut_bytes = bytes_directive("lut", &similarity_lut()),
        offs_words = crate::workload::words_directive("offs", &offsets(variant)),
        npix = W * H,
        b = b,
        ymax = H - b,
        xmax = W - b,
        w = W,
        center_setup = center_setup,
        gather = gather_code(variant),
        response = response_code(variant),
    );

    Workload::new(variant.name(), &source, 2_000_000, vec![("outimg".into(), expected)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoothing_of_flat_image_is_near_identity() {
        let img = vec![100u8; W * H];
        let out = reference(Variant::Smoothing, &img);
        // (900 * 228) >> 11 = 100 (plus truncation)
        assert_eq!(out[W + 1], 100);
    }

    #[test]
    fn edges_flat_image_has_zero_response() {
        let img = vec![100u8; W * H];
        let out = reference(Variant::Edges, &img);
        assert!(out.iter().all(|&v| v == 0), "uniform USAN -> no edges");
    }

    #[test]
    fn corners_sees_a_corner_but_not_a_straight_edge() {
        // A bright quadrant: its corner pixel has a small USAN (9 of 25
        // similar), while pixels along the straight edges keep n >= g.
        let mut img = vec![10u8; W * H];
        for y in H / 2..H {
            for x in W / 2..W {
                img[y * W + x] = 200;
            }
        }
        let out = reference(Variant::Corners, &img);
        assert!(out[(H / 2) * W + W / 2] > 0, "quadrant corner responds");
        // A pure vertical step (far from the corner) must stay silent.
        assert_eq!(out[(H - 3) * W + W / 2], 0, "straight edge suppressed");
    }

    #[test]
    fn susan_smoothing_verifies() {
        workload(Variant::Smoothing, 1).run_and_verify(1 << 20).unwrap();
    }

    #[test]
    fn susan_edges_verifies() {
        workload(Variant::Edges, 1).run_and_verify(1 << 20).unwrap();
    }

    #[test]
    fn susan_corners_verifies() {
        workload(Variant::Corners, 1).run_and_verify(1 << 20).unwrap();
    }
}
