//! `dijkstra` — single-source shortest paths on a dense adjacency matrix
//! with linear min-selection (exactly MiBench network/dijkstra's O(V²)
//! structure).

use rand::Rng;

use crate::workload::{rng, words_directive, words_to_bytes, Workload};

const V: usize = 16;
const INF: u32 = 0x3fff_ffff;

/// Reference shortest-path distances from node 0.
pub fn dijkstra(adj: &[u32]) -> Vec<u32> {
    let mut dist = vec![INF; V];
    let mut visited = [false; V];
    dist[0] = 0;
    for _ in 0..V {
        let mut best = usize::MAX;
        let mut best_d = u32::MAX;
        for (i, d) in dist.iter().enumerate() {
            if !visited[i] && *d < best_d {
                best_d = *d;
                best = i;
            }
        }
        if best == usize::MAX {
            break;
        }
        visited[best] = true;
        for j in 0..V {
            let w = adj[best * V + j];
            if w >= INF {
                continue;
            }
            let nd = best_d + w;
            if nd < dist[j] {
                dist[j] = nd;
            }
        }
    }
    dist
}

/// Builds the workload for `seed`.
pub fn workload(seed: u64) -> Workload {
    let mut r = rng(seed ^ 0xd1175);
    let mut adj = vec![INF; V * V];
    for i in 0..V {
        adj[i * V + i] = 0;
        for j in 0..V {
            if i != j && r.random_range(0..100u32) < 40 {
                adj[i * V + j] = r.random_range(1..100u32);
            }
        }
    }
    let expected = words_to_bytes(&dijkstra(&adj));

    let source = format!(
        "
    .data
{adj_words}
dist:
    .space {dist_bytes}
vis:
    .space {v}

    .text
    # dist[*] = INF; dist[0] = 0; vis[*] = 0
    la   t0, dist
    li   t1, {v}
    li   t2, {inf}
init_d:
    sw   t2, 0(t0)
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, init_d
    la   t0, dist
    sw   zero, 0(t0)
    la   t0, vis
    li   t1, {v}
init_v:
    sb   zero, 0(t0)
    addi t0, t0, 1
    addi t1, t1, -1
    bnez t1, init_v
    li   s0, {v}            # outer iterations
iter:
    beqz s0, done_d
    # linear scan for the nearest unvisited node
    li   s1, -1
    li   s2, 0x7fffffff
    li   t0, 0
scan:
    la   t1, vis
    add  t1, t1, t0
    lbu  t1, 0(t1)
    bnez t1, scan_next
    la   t1, dist
    slli t2, t0, 2
    add  t1, t1, t2
    lw   t1, 0(t1)
    bgeu t1, s2, scan_next
    mv   s2, t1
    mv   s1, t0
scan_next:
    addi t0, t0, 1
    li   t6, {v}
    blt  t0, t6, scan
    bltz s1, done_d
    la   t0, vis
    add  t0, t0, s1
    li   t1, 1
    sb   t1, 0(t0)
    # relax all edges out of s1
    li   t0, 0
    la   t2, adj
    li   t3, {v}
    mul  t4, s1, t3
    slli t4, t4, 2
    add  t2, t2, t4
relax:
    slli t4, t0, 2
    add  t4, t2, t4
    lw   t4, 0(t4)
    li   t5, {inf}
    bgeu t4, t5, relax_next
    add  t4, t4, s2
    la   t5, dist
    slli t6, t0, 2
    add  t5, t5, t6
    lw   t6, 0(t5)
    bgeu t4, t6, relax_next
    sw   t4, 0(t5)
relax_next:
    addi t0, t0, 1
    blt  t0, t3, relax
    addi s0, s0, -1
    j    iter
done_d:
    ebreak
",
        adj_words = words_directive("adj", &adj),
        dist_bytes = V * 4,
        v = V,
        inf = INF,
    );

    Workload::new("dijkstra", &source, 500_000, vec![("dist".into(), expected)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_tiny_graph() {
        // 0 -> 1 (w=5) and nothing else reachable.
        let mut adj = vec![INF; V * V];
        for i in 0..V {
            adj[i * V + i] = 0;
        }
        adj[1] = 5; // adj[0*V + 1]
        let d = dijkstra(&adj);
        assert_eq!(d[0], 0);
        assert_eq!(d[1], 5);
        assert_eq!(d[2], INF);
    }

    #[test]
    fn dijkstra_verifies_on_interpreter() {
        workload(1).run_and_verify(1 << 20).unwrap();
        workload(321).run_and_verify(1 << 20).unwrap();
    }
}
