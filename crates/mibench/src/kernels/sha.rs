//! `sha` — SHA-1 over a random message (MiBench security/sha). The message
//! is padded at build time; the kernel does the per-block compression:
//! 16→80-word schedule expansion plus the 80-round loop.

use crate::workload::{random_bytes, rng, words_directive, Workload};

const MSG_LEN: usize = 200;

/// Reference SHA-1, returning the five state words.
pub fn sha1(msg: &[u8]) -> [u32; 5] {
    let mut h: [u32; 5] = [0x6745_2301, 0xefcd_ab89, 0x98ba_dcfe, 0x1032_5476, 0xc3d2_e1f0];
    for block in pad(msg).chunks(64) {
        let mut w = [0u32; 80];
        for (i, word) in block.chunks(4).enumerate() {
            w[i] = u32::from_be_bytes([word[0], word[1], word[2], word[3]]);
        }
        for i in 16..80 {
            w[i] = (w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16]).rotate_left(1);
        }
        let (mut a, mut b, mut c, mut d, mut e) = (h[0], h[1], h[2], h[3], h[4]);
        for (i, wi) in w.iter().enumerate() {
            let (f, k) = match i / 20 {
                0 => ((b & c) | ((!b) & d), 0x5a82_7999u32),
                1 => (b ^ c ^ d, 0x6ed9_eba1),
                2 => ((b & c) | (b & d) | (c & d), 0x8f1b_bcdc),
                _ => (b ^ c ^ d, 0xca62_c1d6),
            };
            let tmp =
                a.rotate_left(5).wrapping_add(f).wrapping_add(e).wrapping_add(k).wrapping_add(*wi);
            e = d;
            d = c;
            c = b.rotate_left(30);
            b = a;
            a = tmp;
        }
        h[0] = h[0].wrapping_add(a);
        h[1] = h[1].wrapping_add(b);
        h[2] = h[2].wrapping_add(c);
        h[3] = h[3].wrapping_add(d);
        h[4] = h[4].wrapping_add(e);
    }
    h
}

fn pad(msg: &[u8]) -> Vec<u8> {
    let mut m = msg.to_vec();
    let bit_len = (msg.len() as u64) * 8;
    m.push(0x80);
    while m.len() % 64 != 56 {
        m.push(0);
    }
    m.extend_from_slice(&bit_len.to_be_bytes());
    m
}

/// Builds the workload for `seed`.
pub fn workload(seed: u64) -> Workload {
    let mut r = rng(seed ^ 0x54a1);
    let msg = random_bytes(&mut r, MSG_LEN);
    let padded = pad(&msg);
    // Pre-swap to big-endian words so the kernel's `lw` yields the schedule
    // words directly (byte-order handling is not what the paper measures).
    let be_words: Vec<u32> =
        padded.chunks(4).map(|c| u32::from_be_bytes([c[0], c[1], c[2], c[3]])).collect();
    let blocks = padded.len() / 64;

    let digest = sha1(&msg);
    let expected: Vec<u8> = digest.iter().flat_map(|w| w.to_le_bytes()).collect();

    let source = format!(
        "
    .data
{input_words}
wbuf:
    .space 320
out:
    .word 0, 0, 0, 0, 0

    .text
    li   s0, {blocks}
    la   s1, input
    li   s2, 0x67452301
    li   s3, 0xEFCDAB89
    li   s4, 0x98BADCFE
    li   s5, 0x10325476
    li   s6, 0xC3D2E1F0
block_loop:
    beqz s0, finish
    # copy the 16 message words into the schedule buffer
    la   t0, wbuf
    li   t1, 16
copy:
    lw   t2, 0(s1)
    sw   t2, 0(t0)
    addi s1, s1, 4
    addi t0, t0, 4
    addi t1, t1, -1
    bnez t1, copy
    # expand w[16..80): w[i] = rol1(w[i-3] ^ w[i-8] ^ w[i-14] ^ w[i-16])
    la   t0, wbuf
    li   t1, 16
expand:
    slli t2, t1, 2
    add  t2, t0, t2
    lw   t3, -12(t2)
    lw   t4, -32(t2)
    xor  t3, t3, t4
    lw   t4, -56(t2)
    xor  t3, t3, t4
    lw   t4, -64(t2)
    xor  t3, t3, t4
    srli t4, t3, 31
    slli t3, t3, 1
    or   t3, t3, t4
    sw   t3, 0(t2)
    addi t1, t1, 1
    li   t6, 80
    blt  t1, t6, expand
    mv   a2, s2
    mv   a3, s3
    mv   a4, s4
    mv   a5, s5
    mv   a6, s6
    li   a7, 0
    la   s8, wbuf
rounds:
    li   t5, 20
    blt  a7, t5, f1
    li   t5, 40
    blt  a7, t5, f2
    li   t5, 60
    blt  a7, t5, f3
    # rounds 60-79: f = b ^ c ^ d
    xor  t0, a3, a4
    xor  t0, t0, a5
    li   t1, 0xCA62C1D6
    j    fdone
f1: # rounds 0-19: f = (b & c) | (~b & d)
    and  t0, a3, a4
    not  t1, a3
    and  t1, t1, a5
    or   t0, t0, t1
    li   t1, 0x5A827999
    j    fdone
f2: # rounds 20-39: f = b ^ c ^ d
    xor  t0, a3, a4
    xor  t0, t0, a5
    li   t1, 0x6ED9EBA1
    j    fdone
f3: # rounds 40-59: f = majority(b, c, d)
    and  t0, a3, a4
    and  t2, a3, a5
    or   t0, t0, t2
    and  t2, a4, a5
    or   t0, t0, t2
    li   t1, 0x8F1BBCDC
fdone:
    # tmp = rol5(a) + f + e + k + w[i]
    slli t2, a2, 5
    srli t3, a2, 27
    or   t2, t2, t3
    add  t2, t2, t0
    add  t2, t2, a6
    add  t2, t2, t1
    slli t3, a7, 2
    add  t3, s8, t3
    lw   t3, 0(t3)
    add  t2, t2, t3
    mv   a6, a5
    mv   a5, a4
    slli t3, a3, 30
    srli t4, a3, 2
    or   a4, t3, t4
    mv   a3, a2
    mv   a2, t2
    addi a7, a7, 1
    li   t6, 80
    blt  a7, t6, rounds
    add  s2, s2, a2
    add  s3, s3, a3
    add  s4, s4, a4
    add  s5, s5, a5
    add  s6, s6, a6
    addi s0, s0, -1
    j    block_loop
finish:
    la   t0, out
    sw   s2, 0(t0)
    sw   s3, 4(t0)
    sw   s4, 8(t0)
    sw   s5, 12(t0)
    sw   s6, 16(t0)
    ebreak
",
        input_words = words_directive("input", &be_words),
        blocks = blocks,
    );

    Workload::new("sha", &source, 2_000_000, vec![("out".into(), expected)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sha1_reference_known_vector() {
        // SHA-1("abc") = a9993e36 4706816a ba3e2571 7850c26c 9cd0d89d
        let d = sha1(b"abc");
        assert_eq!(d, [0xa999_3e36, 0x4706_816a, 0xba3e_2571, 0x7850_c26c, 0x9cd0_d89d]);
    }

    #[test]
    fn sha_verifies_on_interpreter() {
        workload(1).run_and_verify(1 << 20).unwrap();
        workload(1234).run_and_verify(1 << 20).unwrap();
    }
}
