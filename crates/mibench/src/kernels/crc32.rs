//! `crc32` — table-driven CRC-32 (IEEE 802.3 polynomial) over a byte
//! buffer, as in MiBench telecomm/CRC32.

use crate::workload::{bytes_directive, random_bytes, rng, words_directive, Workload};

const N: usize = 512;
const POLY: u32 = 0xedb8_8320;

fn crc_table() -> Vec<u32> {
    (0..256u32)
        .map(|i| {
            let mut c = i;
            for _ in 0..8 {
                c = if c & 1 != 0 { POLY ^ (c >> 1) } else { c >> 1 };
            }
            c
        })
        .collect()
}

/// Reference CRC-32 (the oracle).
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = crc_table();
    let mut crc = u32::MAX;
    for b in bytes {
        crc = table[((crc ^ *b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    !crc
}

/// Builds the workload for `seed`.
pub fn workload(seed: u64) -> Workload {
    let mut r = rng(seed ^ 0xc4c32);
    let input = random_bytes(&mut r, N);
    let expected = crc32(&input).to_le_bytes().to_vec();

    let source = format!(
        "
    .data
{table_words}
{input_bytes}
    .align 2
out:
    .word 0

    .text
    la   s0, input
    li   s1, {n}
    la   s2, table
    li   t0, -1
loop:                       # bottom-tested: one trace per iteration
    lbu  t1, 0(s0)
    xor  t2, t0, t1
    andi t2, t2, 0xff
    slli t2, t2, 2
    add  t2, s2, t2
    lw   t2, 0(t2)
    srli t0, t0, 8
    xor  t0, t0, t2
    addi s0, s0, 1
    addi s1, s1, -1
    bnez s1, loop
    not  t0, t0
    la   t3, out
    sw   t0, 0(t3)
    ebreak
",
        table_words = words_directive("table", &crc_table()),
        input_bytes = bytes_directive("input", &input),
        n = N,
    );

    Workload::new("crc32", &source, 200_000, vec![("out".into(), expected)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_reference_known_vector() {
        // CRC-32("123456789") = 0xCBF43926 (standard check value).
        assert_eq!(crc32(b"123456789"), 0xcbf4_3926);
    }

    #[test]
    fn crc32_verifies_on_interpreter() {
        workload(1).run_and_verify(1 << 20).unwrap();
        workload(7).run_and_verify(1 << 20).unwrap();
    }
}
