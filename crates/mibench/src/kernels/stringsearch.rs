//! `stringsearch` — Boyer–Moore–Horspool substring search with a planted
//! pattern (MiBench office/stringsearch uses the Pratt-Boyer-Moore family;
//! BMH preserves its skip-table character).

use rand::Rng;

use crate::workload::{bytes_directive, rng, Workload};

const TEXT_LEN: usize = 2048;
const PAT: &[u8] = b"reconfig";

/// Reference: count of (possibly overlapping) occurrences and the first
/// match index, or `-1` if absent.
pub fn search(text: &[u8], pat: &[u8]) -> (u32, i32) {
    let mut count = 0u32;
    let mut first = -1i32;
    if pat.is_empty() || text.len() < pat.len() {
        return (0, -1);
    }
    for pos in 0..=(text.len() - pat.len()) {
        if &text[pos..pos + pat.len()] == pat {
            count += 1;
            if first < 0 {
                first = pos as i32;
            }
        }
    }
    (count, first)
}

/// Builds the workload for `seed`.
pub fn workload(seed: u64) -> Workload {
    let mut r = rng(seed ^ 0x57717);
    // Lowercase-letter haystack with a handful of planted patterns.
    let mut text: Vec<u8> = (0..TEXT_LEN).map(|_| b'a' + r.random_range(0..26u32) as u8).collect();
    for _ in 0..4 {
        let at = r.random_range(0..(TEXT_LEN - PAT.len()) as u32) as usize;
        text[at..at + PAT.len()].copy_from_slice(PAT);
    }

    let (count, first) = search(&text, PAT);
    let mut expected = count.to_le_bytes().to_vec();
    expected.extend_from_slice(&(first as u32).to_le_bytes());

    let source = format!(
        "
    .data
{text_bytes}
{pat_bytes}
skip:
    .space 256
    .align 2
out:
    .word 0, 0

    .text
    # skip[c] = plen for all c
    la   t0, skip
    li   t1, 256
    li   t2, {plen}
fill:
    sb   t2, 0(t0)
    addi t0, t0, 1
    addi t1, t1, -1
    bnez t1, fill
    # skip[pat[i]] = plen - 1 - i  for i in 0 .. plen-1
    la   t0, pat
    li   t1, 0
    li   t3, {plen_m1}
build:
    add  t4, t0, t1
    lbu  t4, 0(t4)
    la   t5, skip
    add  t5, t5, t4
    sub  t6, t3, t1
    sb   t6, 0(t5)
    addi t1, t1, 1
    blt  t1, t3, build
    li   s1, 0              # match count
    li   s2, -1             # first match
    li   s3, 0              # pos
    li   s4, {last_pos}     # final valid start
    la   s5, haystack
    la   s6, pat
    li   s7, {plen}
    bgt  s3, s4, done       # guard: pattern longer than text
search:
    addi t1, s7, -1         # j = plen-1, compare from the tail
cmp:
    add  t2, s3, t1
    add  t2, s5, t2
    lbu  t2, 0(t2)
    add  t3, s6, t1
    lbu  t3, 0(t3)
    bne  t2, t3, mismatch
    addi t1, t1, -1
    bgez t1, cmp
    # full match (fell out of cmp)
    addi s1, s1, 1
    bgez s2, after_first
    mv   s2, s3
after_first:
    addi s3, s3, 1          # overlapping matches: advance by one
    ble  s3, s4, search
    j    done
mismatch:
    # BMH shift: skip[text[pos + plen - 1]]
    add  t2, s3, s7
    addi t2, t2, -1
    add  t2, s5, t2
    lbu  t2, 0(t2)
    la   t3, skip
    add  t3, t3, t2
    lbu  t3, 0(t3)
    add  s3, s3, t3
    ble  s3, s4, search
done:
    la   t0, out
    sw   s1, 0(t0)
    sw   s2, 4(t0)
    ebreak
",
        text_bytes = bytes_directive("haystack", &text),
        pat_bytes = bytes_directive("pat", PAT),
        plen = PAT.len(),
        plen_m1 = PAT.len() - 1,
        last_pos = TEXT_LEN - PAT.len(),
    );

    Workload::new("stringsearch", &source, 500_000, vec![("out".into(), expected)])
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reference_counts_overlaps() {
        assert_eq!(search(b"aaaa", b"aa"), (3, 0));
        assert_eq!(search(b"hello", b"xyz"), (0, -1));
        assert_eq!(search(b"abcabc", b"abc"), (2, 0));
    }

    #[test]
    fn stringsearch_verifies_on_interpreter() {
        workload(1).run_and_verify(1 << 20).unwrap();
        workload(55).run_and_verify(1 << 20).unwrap();
    }
}
