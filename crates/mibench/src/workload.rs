//! The workload framework: a benchmark = an assembled program + seeded
//! inputs + a native Rust oracle that proves the run was correct.

use std::fmt;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use rv32::asm::{assemble, AsmError};
use rv32::cpu::Cpu;
use rv32::Program;

/// A named, checkable benchmark instance.
///
/// The program's input data is baked into its `.data` segment at build time
/// (seeded), and `expected` holds the oracle-computed bytes that must appear
/// at the given symbols when the program halts — however it was executed
/// (plain interpreter or GPP + CGRA system).
pub struct Workload {
    name: String,
    program: Program,
    max_steps: u64,
    expected: Vec<(String, Vec<u8>)>,
}

/// Verification failure: a result region differs from the oracle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Workload name.
    pub workload: String,
    /// Symbol of the mismatching region.
    pub symbol: String,
    /// First differing byte offset.
    pub offset: usize,
    /// Expected byte.
    pub expected: u8,
    /// Actual byte.
    pub actual: u8,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: output `{}` differs at byte {}: expected {:#04x}, got {:#04x}",
            self.workload, self.symbol, self.offset, self.expected, self.actual
        )
    }
}

impl std::error::Error for VerifyError {}

impl Workload {
    /// Builds a workload from assembly source and oracle expectations.
    ///
    /// # Panics
    ///
    /// Panics if the source does not assemble or an expected symbol is
    /// missing — both are bugs in the kernel, not runtime conditions.
    pub fn new(
        name: impl Into<String>,
        source: &str,
        max_steps: u64,
        expected: Vec<(String, Vec<u8>)>,
    ) -> Workload {
        let name = name.into();
        let program = match assemble(source) {
            Ok(p) => p,
            Err(AsmError { line, msg }) => {
                panic!("kernel `{name}` does not assemble: line {line}: {msg}")
            }
        };
        for (sym, _) in &expected {
            assert!(program.symbol(sym).is_some(), "kernel `{name}` lacks expected symbol `{sym}`");
        }
        Workload { name, program, max_steps, expected }
    }

    /// Benchmark name (e.g. `susan_corners`).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The assembled program.
    pub fn program(&self) -> &Program {
        &self.program
    }

    /// Step budget for a run (interpreter steps; generous).
    pub fn max_steps(&self) -> u64 {
        self.max_steps
    }

    /// The oracle's expected memory regions.
    pub fn expected(&self) -> &[(String, Vec<u8>)] {
        &self.expected
    }

    /// Checks a halted CPU against the oracle.
    ///
    /// # Errors
    ///
    /// Returns the first mismatching byte as a [`VerifyError`].
    pub fn verify(&self, cpu: &Cpu) -> Result<(), VerifyError> {
        for (sym, bytes) in &self.expected {
            let addr = self.program.symbol(sym).expect("checked in constructor");
            let got =
                cpu.mem.read_bytes(addr, bytes.len() as u32).expect("expected region in memory");
            if let Some(offset) = (0..bytes.len()).find(|&i| got[i] != bytes[i]) {
                return Err(VerifyError {
                    workload: self.name.clone(),
                    symbol: sym.clone(),
                    offset,
                    expected: bytes[offset],
                    actual: got[offset],
                });
            }
        }
        Ok(())
    }

    /// Convenience: run on a fresh interpreter and verify.
    ///
    /// # Errors
    ///
    /// Returns a string describing the execution or verification failure.
    pub fn run_and_verify(&self, mem_size: usize) -> Result<Cpu, String> {
        let mut cpu = Cpu::new(mem_size);
        cpu.load_program(&self.program).map_err(|e| e.to_string())?;
        cpu.run(self.max_steps).map_err(|e| format!("{}: {e}", self.name))?;
        self.verify(&cpu).map_err(|e| e.to_string())?;
        Ok(cpu)
    }
}

impl fmt::Debug for Workload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Workload")
            .field("name", &self.name)
            .field("instrs", &self.program.instr_count())
            .field("data_bytes", &self.program.data.len())
            .finish()
    }
}

/// Deterministic RNG for input generation.
pub fn rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

/// Renders a `.word` table for the `.data` section.
pub fn words_directive(label: &str, words: &[u32]) -> String {
    let mut out = format!("{label}:\n");
    for chunk in words.chunks(8) {
        let row: Vec<String> = chunk.iter().map(|w| format!("{:#010x}", w)).collect();
        out.push_str(&format!("    .word {}\n", row.join(", ")));
    }
    out
}

/// Renders a `.byte` table for the `.data` section.
pub fn bytes_directive(label: &str, bytes: &[u8]) -> String {
    let mut out = format!("{label}:\n");
    for chunk in bytes.chunks(16) {
        let row: Vec<String> = chunk.iter().map(|b| format!("{b:#04x}")).collect();
        out.push_str(&format!("    .byte {}\n", row.join(", ")));
    }
    out
}

/// Random bytes from a seeded RNG.
pub fn random_bytes(rng: &mut SmallRng, n: usize) -> Vec<u8> {
    (0..n).map(|_| rng.random_range(0..=255u32) as u8).collect()
}

/// Random words from a seeded RNG.
pub fn random_words(rng: &mut SmallRng, n: usize) -> Vec<u32> {
    (0..n).map(|_| rng.random_range(0..=u32::MAX)).collect()
}

/// Little-endian byte view of a word slice (for oracle expectations).
pub fn words_to_bytes(words: &[u32]) -> Vec<u8> {
    words.iter().flat_map(|w| w.to_le_bytes()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_round_trip() {
        let w = Workload::new(
            "toy",
            "
            .data
        out: .word 0
            .text
            li t0, 41
            addi t0, t0, 1
            la t1, out
            sw t0, 0(t1)
            ebreak
        ",
            100,
            vec![("out".into(), 42u32.to_le_bytes().to_vec())],
        );
        w.run_and_verify(1 << 20).unwrap();
    }

    #[test]
    fn verify_catches_mismatch() {
        let w = Workload::new(
            "bad",
            "
            .data
        out: .word 0
            .text
            ebreak
        ",
            10,
            vec![("out".into(), vec![9, 9, 9, 9])],
        );
        let err = w.run_and_verify(1 << 20).unwrap_err();
        assert!(err.contains("differs"), "{err}");
    }

    #[test]
    fn directives_render() {
        let w = words_directive("tbl", &[1, 2, 3]);
        assert!(w.contains("tbl:"));
        assert!(w.contains("0x00000001"));
        let b = bytes_directive("bt", &[0xab; 17]);
        assert_eq!(b.matches(".byte").count(), 2, "chunked rows");
    }

    #[test]
    fn seeded_rng_is_stable() {
        let a = random_bytes(&mut rng(7), 16);
        let b = random_bytes(&mut rng(7), 16);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "does not assemble")]
    fn bad_kernel_panics_at_build() {
        Workload::new("nope", "bogus_instr x9", 1, vec![]);
    }
}
