//! From utilization maps to lifetimes (the glue behind paper Table I and
//! Fig. 8's lower half).

use nbti::{CalibratedAging, DelayCurve};
use serde::{Deserialize, Serialize};

use crate::stats::UtilizationGrid;

/// Aging evaluation of one allocation strategy on one design point.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AgingEvaluation {
    /// Mean per-FU utilization (the paper's "Avg. Util").
    pub avg_utilization: f64,
    /// Worst per-FU utilization — determines the end of life.
    pub worst_utilization: f64,
    /// Years until the worst FU reaches the end-of-life delay degradation.
    pub lifetime_years: f64,
    /// Delay degradation over time of the worst FU (one Fig. 8 curve).
    pub delay_curve: DelayCurve,
}

/// Evaluates a utilization map under an aging model.
///
/// # Examples
///
/// ```
/// use nbti::CalibratedAging;
/// use uaware::{evaluate_aging, UtilizationGrid};
///
/// let grid = UtilizationGrid::from_values(1, 2, vec![0.945, 0.2]);
/// let eval = evaluate_aging(&CalibratedAging::default(), &grid, 10.0, 101);
/// assert!((eval.lifetime_years - 3.0 / 0.945).abs() < 1e-12);
/// ```
pub fn evaluate_aging(
    aging: &CalibratedAging,
    grid: &UtilizationGrid,
    horizon_years: f64,
    curve_points: usize,
) -> AgingEvaluation {
    let worst = grid.max();
    AgingEvaluation {
        avg_utilization: grid.mean(),
        worst_utilization: worst,
        lifetime_years: aging.lifetime_years(worst),
        delay_curve: aging.delay_curve(worst, horizon_years, curve_points),
    }
}

/// Lifetime improvement of `proposed` over `baseline`
/// (paper Table I, last column).
pub fn lifetime_improvement(baseline: &AgingEvaluation, proposed: &AgingEvaluation) -> f64 {
    proposed.lifetime_years / baseline.lifetime_years
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_be_scenario_numbers() {
        let aging = CalibratedAging::default();
        // Paper Fig. 7 worst utilizations for BE: 94.5% baseline, 41.1%
        // proposed (32-FU grid shapes are irrelevant to the evaluation).
        let base =
            evaluate_aging(&aging, &UtilizationGrid::from_values(1, 2, vec![0.945, 0.3]), 10.0, 11);
        let prop = evaluate_aging(
            &aging,
            &UtilizationGrid::from_values(1, 2, vec![0.411, 0.38]),
            10.0,
            11,
        );
        let improvement = lifetime_improvement(&base, &prop);
        assert!((improvement - 2.29).abs() < 0.02, "got {improvement}");
        assert!(base.lifetime_years < 3.2);
        assert!(prop.lifetime_years > 7.0);
    }

    #[test]
    fn curve_belongs_to_worst_fu() {
        let aging = CalibratedAging::default();
        let grid = UtilizationGrid::from_values(1, 3, vec![0.1, 0.9, 0.4]);
        let eval = evaluate_aging(&aging, &grid, 6.0, 13);
        assert_eq!(eval.worst_utilization, 0.9);
        assert_eq!(eval.delay_curve.utilization, 0.9);
        assert_eq!(eval.delay_curve.samples.len(), 13);
    }
}
