//! The exact-mapping oracle policy (DESIGN.md §15).
//!
//! Every heuristic in [`crate::policy`] approximates the same question —
//! where should the next execution land so the fabric wears out as late as
//! possible? [`ExactPolicy`] answers it *optimally* for one epoch at a
//! time: at each epoch boundary it hands the live per-FU stress counters to
//! the vendored branch-and-bound core ([`solve`]) and plays back the
//! proven-optimal pivot sequence. It is far too slow for hardware — that is
//! the point: it is the upper bound that tells us how far the paper's
//! rotation (and the health-aware scan) sit from the true wear optimum, per
//! fabric size, fault density and layout (`results/gap.json`).

use std::collections::VecDeque;

use cgra::Offset;
use solve::OffsetProblem;
use tracing::{event, span, Level};

use crate::policy::{AllocRequest, AllocationPolicy};

/// The exact-mapping oracle: per allocation epoch, a deterministic
/// branch-and-bound solve of the wear-optimal placement — minimize the
/// maximum post-epoch per-FU stress count over all assignments of the
/// epoch's executions to legal pivots (fault mask, capability demands and
/// column bandwidth included via the shared
/// [`placement_ok`](AllocRequest::placement_ok) predicate and the
/// tracker's stress rule).
///
/// With `every == 1` the oracle re-solves on every allocation (a greedy
/// optimal step against the live counters); larger epochs plan that many
/// upcoming executions *jointly*, which can deliberately unbalance early
/// to win later (DESIGN.md §15). Planned pivots are re-validated against
/// the live request when played back; a pivot invalidated by a fresh fault
/// (or changed demands) drops the rest of the plan and re-solves.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use uaware::{AllocationPolicy, AllocRequest, ExactPolicy, UtilizationTracker};
///
/// let fabric = Fabric::be();
/// let mut tracker = UtilizationTracker::new(&fabric);
/// tracker.record_execution(&[(0, 0)], 1); // the corner is warm
/// let mut oracle = ExactPolicy::new(1);
/// let req = AllocRequest {
///     fabric: &fabric,
///     config_switch: false,
///     footprint: &[(0, 0)],
///     tracker: &tracker,
///     faults: None,
///     demands: &[],
/// };
/// let off = oracle.next_offset(&req).unwrap();
/// assert_ne!(off, cgra::Offset::ORIGIN, "the oracle dodges the warm corner");
/// assert_eq!(oracle.name(), "exact");
/// ```
#[derive(Clone, Debug)]
pub struct ExactPolicy {
    every: u32,
    plan: VecDeque<Offset>,
}

impl ExactPolicy {
    /// Creates the oracle with an epoch of `every` jointly-planned
    /// executions (clamped to at least 1).
    pub fn new(every: u32) -> ExactPolicy {
        ExactPolicy { every: every.max(1), plan: VecDeque::new() }
    }

    /// The configured epoch length.
    pub fn every(&self) -> u32 {
        self.every
    }
}

impl AllocationPolicy for ExactPolicy {
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Option<Offset> {
        event!(Level::TRACE, "alloc.exact.decisions", "add" = 1);
        if let Some(&planned) = self.plan.front() {
            if req.placement_ok(planned) {
                self.plan.pop_front();
                event!(Level::TRACE, "alloc.exact.replayed", "add" = 1);
                return Some(planned);
            }
            // A planned pivot became illegal (fresh fault, different
            // demands): the remaining plan was optimized for a world that
            // no longer exists — drop it and re-solve.
            self.plan.clear();
        }
        let problem = OffsetProblem::new(
            req.fabric,
            req.footprint,
            req.tracker.stress_counts(),
            self.every as usize,
            |o| req.placement_ok(o),
        );
        let _solve_span = span!(Level::DEBUG, "solve.bnb").entered();
        let solution = solve::solve(&problem)?;
        let mut offsets: VecDeque<Offset> =
            solution.choices.iter().map(|&c| problem.offset(c)).collect();
        let first = offsets.pop_front().expect("an epoch plans at least one slot");
        self.plan = offsets;
        Some(first)
    }

    fn name(&self) -> String {
        if self.every == 1 {
            "exact".to_string()
        } else {
            format!("exact@every-{}", self.every)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra::op::{MulFunc, OpKind};
    use cgra::{ClassMap, Fabric, FaultMask};

    use crate::stats::UtilizationTracker;

    fn req<'a>(
        fabric: &'a Fabric,
        tracker: &'a UtilizationTracker,
        footprint: &'a [(u32, u32)],
    ) -> AllocRequest<'a> {
        AllocRequest {
            fabric,
            config_switch: false,
            footprint,
            tracker,
            faults: None,
            demands: &[],
        }
    }

    #[test]
    fn epoch_one_matches_single_slot_optimum() {
        let fabric = Fabric::new(2, 4);
        let mut tracker = UtilizationTracker::new(&fabric);
        for _ in 0..5 {
            tracker.record_execution(&[(0, 0), (0, 1)], 2);
        }
        let footprint = [(0u32, 0u32), (0, 1)];
        let mut p = ExactPolicy::new(1);
        let o = p.next_offset(&req(&fabric, &tracker, &footprint)).unwrap();
        // Any pivot avoiding the two hot cells achieves the optimum (5);
        // ties break to the smallest such offset, which is (0, 2).
        assert_eq!(o, Offset::new(0, 2));
    }

    #[test]
    fn planned_epochs_are_replayed_then_resolved() {
        let fabric = Fabric::new(2, 4);
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32)];
        let mut p = ExactPolicy::new(4);
        let r = req(&fabric, &tracker, &footprint);
        let first = p.next_offset(&r).unwrap();
        assert_eq!(p.plan.len(), 3, "the rest of the epoch is queued");
        let mut seen = vec![first];
        for _ in 0..3 {
            seen.push(p.next_offset(&r).unwrap());
        }
        assert!(p.plan.is_empty());
        // Four single-cell executions on a cold 8-FU fabric: the optimal
        // epoch touches four distinct cells.
        seen.sort_unstable_by_key(|o| (o.row, o.col));
        seen.dedup();
        assert_eq!(seen.len(), 4, "a jointly-planned epoch never doubles up needlessly");
    }

    #[test]
    fn a_fresh_fault_invalidates_the_plan() {
        let fabric = Fabric::new(2, 4);
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32)];
        let mut p = ExactPolicy::new(8);
        let bare = req(&fabric, &tracker, &footprint);
        let first = p.next_offset(&bare).unwrap();
        assert_eq!(first, Offset::new(0, 0));
        // Kill the next planned pivot: the replay must skip it and re-solve.
        let next_planned = *p.plan.front().unwrap();
        let mut mask = FaultMask::healthy(&fabric);
        mask.mark_dead(next_planned.row, next_planned.col);
        let masked = AllocRequest { faults: Some(&mask), ..bare };
        let moved = p.next_offset(&masked).unwrap();
        assert_ne!(moved, next_planned, "the dead pivot is never played back");
    }

    #[test]
    fn exhaustion_and_starvation_report_none() {
        let fabric = Fabric::new(2, 4);
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32)];
        let mut all_dead = FaultMask::healthy(&fabric);
        for row in 0..fabric.rows {
            for col in 0..fabric.cols {
                all_dead.mark_dead(row, col);
            }
        }
        let r = req(&fabric, &tracker, &footprint);
        let dead = AllocRequest { faults: Some(&all_dead), ..r };
        assert_eq!(ExactPolicy::new(1).next_offset(&dead), None);
        // Capability starvation: no mul-capable cell on an all-ALU fabric.
        let mut bare_alu = Fabric::fig1();
        bare_alu.classes = ClassMap::Uniform(cgra::CellClass::Alu);
        let t2 = UtilizationTracker::new(&bare_alu);
        let demands = [(0u32, 0u32, OpKind::Mul(MulFunc::Mul))];
        let starved = AllocRequest {
            fabric: &bare_alu,
            config_switch: false,
            footprint: &footprint,
            tracker: &t2,
            faults: None,
            demands: &demands,
        };
        assert_eq!(ExactPolicy::new(1).next_offset(&starved), None);
    }

    #[test]
    fn names_are_canonical() {
        assert_eq!(ExactPolicy::new(1).name(), "exact");
        assert_eq!(ExactPolicy::new(6).name(), "exact@every-6");
        assert_eq!(ExactPolicy::new(0).every(), 1, "epochs clamp to at least one slot");
        assert!(ExactPolicy::new(1).needs_movement());
    }
}
