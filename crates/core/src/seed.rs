//! Deterministic seed derivation for sweep cells (DESIGN.md §9).
//!
//! A parallel sweep must produce byte-identical results no matter how its
//! cells are scheduled, so no cell may draw from a shared RNG stream.
//! Instead every lane of a sweep axis derives its own seed from the
//! experiment's base seed with a pure function of the lane index — the
//! derivation depends only on *which* cell is running, never on *when*.

/// Derives the seed for sweep lane `lane` from `base`.
///
/// Lane 0 is the identity (`base` itself), so a single-lane sweep — the
/// default full-suite evaluation — reproduces the historical
/// `0xDAC2020`-seeded input streams bit for bit. Later lanes are mixed
/// through a SplitMix64 finalizer, giving well-separated, reproducible
/// streams per lane.
///
/// # Examples
///
/// ```
/// use uaware::derive_cell_seed;
///
/// // Lane 0 keeps the base seed; other lanes are decorrelated from it.
/// assert_eq!(derive_cell_seed(0xDAC2020, 0), 0xDAC2020);
/// assert_ne!(derive_cell_seed(0xDAC2020, 1), 0xDAC2020);
/// assert_ne!(derive_cell_seed(0xDAC2020, 1), derive_cell_seed(0xDAC2020, 2));
/// ```
pub fn derive_cell_seed(base: u64, lane: u64) -> u64 {
    if lane == 0 {
        return base;
    }
    // SplitMix64 finalizer over base ⊕ (lane · golden-gamma): the standard
    // stream-splitting construction (same mixer the vendored rand crate
    // uses for seed_from_u64).
    let mut z = base ^ lane.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lane_zero_is_identity() {
        for base in [0u64, 1, 0xDAC2020, u64::MAX] {
            assert_eq!(derive_cell_seed(base, 0), base);
        }
    }

    #[test]
    fn lanes_are_distinct_and_stable() {
        let base = 0xDAC2020u64;
        let seeds: Vec<u64> = (0..64).map(|lane| derive_cell_seed(base, lane)).collect();
        for (i, a) in seeds.iter().enumerate() {
            for (j, b) in seeds.iter().enumerate() {
                if i != j {
                    assert_ne!(a, b, "lanes {i} and {j} collide");
                }
            }
        }
        // Pure function: recomputing gives the same stream.
        assert_eq!(seeds, (0..64).map(|lane| derive_cell_seed(base, lane)).collect::<Vec<u64>>());
    }

    #[test]
    fn different_bases_give_different_streams() {
        assert_ne!(derive_cell_seed(1, 1), derive_cell_seed(2, 1));
    }
}
