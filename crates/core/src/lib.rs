//! # uaware — utilization-aware configuration allocation for CGRAs
//!
//! The primary contribution of *"Proactive Aging Mitigation in CGRAs through
//! Utilization-Aware Allocation"* (Brandalero et al., DAC 2020) as a
//! library. Traditional greedy mappers anchor every configuration at the
//! fabric's top-left corner, so those FUs accumulate NBTI stress and define
//! the system's end of life. This crate moves each new execution's
//! *pivot* along a fabric-covering pattern (with wrap-around), flattening
//! per-FU utilization towards the mean and stretching lifetime by the ratio
//! of worst-case utilizations.
//!
//! * [`pattern`] — movement patterns (paper Fig. 3b): [`Snake`] (default),
//!   [`Raster`], [`ColumnMajor`], [`Fixed`].
//! * [`policy`] — allocation policies: [`BaselinePolicy`],
//!   [`RotationPolicy`] (the contribution), [`RandomPolicy`] and the
//!   future-work [`HealthAwarePolicy`].
//! * [`exact`] — the exact-mapping oracle [`ExactPolicy`]: a per-epoch
//!   branch-and-bound solve (the vendored [`solve`] crate) of the
//!   wear-optimal placement, bounding every heuristic's optimality gap
//!   (DESIGN.md §15).
//! * [`spec`] — policies as data: [`PolicySpec`]/[`PatternSpec`] are the
//!   serializable, parseable sweep points experiment harnesses iterate
//!   (`"rotation:snake@per-load".parse()`, [`PolicySpec::all_specs`]).
//! * [`stats`] — per-FU utilization tracking and distribution statistics
//!   ([`UtilizationTracker`], [`UtilizationGrid`], [`Histogram`]).
//! * [`lifetime`] — NBTI lifetime evaluation of utilization maps.
//! * [`seed`] — deterministic per-cell seed derivation for parallel sweeps
//!   ([`derive_cell_seed`]).
//!
//! # Examples
//!
//! Rotate a two-cell configuration around a BE-sized fabric and watch the
//! utilization flatten:
//!
//! ```
//! use cgra::Fabric;
//! use uaware::{
//!     AllocationPolicy, AllocRequest, BaselinePolicy, RotationPolicy, Snake,
//!     UtilizationTracker,
//! };
//!
//! let fabric = Fabric::be();
//! let footprint = [(0, 0), (0, 1)];
//!
//! let run = |policy: &mut dyn AllocationPolicy| {
//!     let mut tracker = UtilizationTracker::new(&fabric);
//!     for _ in 0..3200 {
//!         let req = AllocRequest {
//!             fabric: &fabric,
//!             config_switch: false,
//!             footprint: &footprint,
//!             tracker: &tracker,
//!             faults: None,
//!             demands: &[],
//!         };
//!         let off = policy.next_offset(&req).expect("pristine fabric always allocates");
//!         let cells: Vec<_> =
//!             footprint.iter().map(|&(r, c)| off.apply(&fabric, r, c)).collect();
//!         tracker.record_execution(&cells, 2);
//!     }
//!     tracker.utilization()
//! };
//!
//! let baseline = run(&mut BaselinePolicy);
//! let rotated = run(&mut RotationPolicy::new(Snake));
//! assert_eq!(baseline.max(), 1.0);            // corner FUs always active
//! assert!(rotated.max() < 0.10);              // stress spread over 32 FUs
//! ```

#![warn(missing_docs)]

pub mod exact;
pub mod lifetime;
pub mod pattern;
pub mod policy;
pub mod seed;
pub mod spec;
pub mod stats;

pub use exact::ExactPolicy;
pub use lifetime::{evaluate_aging, lifetime_improvement, AgingEvaluation};
pub use pattern::{ColumnMajor, Fixed, MovementPattern, Raster, Snake};
pub use policy::{
    AllocRequest, AllocationPolicy, BaselinePolicy, HealthAwarePolicy, MovementGranularity,
    RandomPolicy, RotationPolicy,
};
pub use seed::derive_cell_seed;
pub use spec::{ParseSpecError, PatternSpec, PolicySpec, DEFAULT_RANDOM_SEED};
pub use stats::{Histogram, UtilizationGrid, UtilizationTracker};
