//! Pivot movement patterns (paper Fig. 3b).
//!
//! A pattern maps an execution counter to a pivot [`Offset`]; the rotation
//! policy advances the counter and the configuration follows the pattern
//! through the fabric, wrap-around included. All built-in patterns visit
//! every fabric cell exactly once per `rows × cols` period — the coverage
//! property that makes long-run utilization uniform.

use cgra::{Fabric, Offset};
use serde::{Deserialize, Serialize};

/// A deterministic pivot sequence over the fabric.
///
/// Implementations must be pure functions of `(fabric, step)` so that pivot
/// sequences are reproducible and cheap for hardware (a counter plus a
/// little index arithmetic).
pub trait MovementPattern: std::fmt::Debug {
    /// The pivot for execution number `step`.
    fn offset_at(&self, fabric: &Fabric, step: u64) -> Offset;

    /// Short name for reports.
    fn name(&self) -> &'static str;

    /// Steps after which the pattern repeats (and must have covered the
    /// whole fabric, for balancing patterns).
    fn period(&self, fabric: &Fabric) -> u64 {
        (fabric.fu_count()) as u64
    }
}

impl MovementPattern for Box<dyn MovementPattern> {
    fn offset_at(&self, fabric: &Fabric, step: u64) -> Offset {
        (**self).offset_at(fabric, step)
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn period(&self, fabric: &Fabric) -> u64 {
        (**self).period(fabric)
    }
}

/// Boustrophedon scan (the paper's Fig. 3b): sweep the columns left-to-right
/// on even rows and right-to-left on odd rows, moving one cell per
/// execution. The pivot never jumps more than one cell, so consecutive
/// executions stress adjacent FUs — gentle on thermal gradients.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Snake;

impl MovementPattern for Snake {
    fn offset_at(&self, fabric: &Fabric, step: u64) -> Offset {
        let idx = (step % self.period(fabric)) as u32;
        let row = idx / fabric.cols;
        let within = idx % fabric.cols;
        let col = if row.is_multiple_of(2) { within } else { fabric.cols - 1 - within };
        Offset::new(row, col)
    }

    fn name(&self) -> &'static str {
        "snake"
    }
}

/// Plain raster scan: column advances each execution, row advances on wrap.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Raster;

impl MovementPattern for Raster {
    fn offset_at(&self, fabric: &Fabric, step: u64) -> Offset {
        let idx = (step % self.period(fabric)) as u32;
        Offset::new(idx / fabric.cols, idx % fabric.cols)
    }

    fn name(&self) -> &'static str {
        "raster"
    }
}

/// Column-major scan: row advances each execution, column advances on wrap.
/// Moves work between rows fastest — useful when row counts are small.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ColumnMajor;

impl MovementPattern for ColumnMajor {
    fn offset_at(&self, fabric: &Fabric, step: u64) -> Offset {
        let idx = (step % self.period(fabric)) as u32;
        Offset::new(idx % fabric.rows, idx / fabric.rows)
    }

    fn name(&self) -> &'static str {
        "column-major"
    }
}

/// A fixed offset (no movement) — degenerate pattern used for testing and
/// as the baseline's implicit behaviour.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Fixed(pub Offset);

impl MovementPattern for Fixed {
    fn offset_at(&self, _fabric: &Fabric, _step: u64) -> Offset {
        self.0
    }

    fn name(&self) -> &'static str {
        "fixed"
    }

    fn period(&self, _fabric: &Fabric) -> u64 {
        1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    fn covers_all(pattern: &dyn MovementPattern, fabric: &Fabric) {
        let period = pattern.period(fabric);
        assert_eq!(period, fabric.fu_count() as u64);
        let visited: HashSet<(u32, u32)> = (0..period)
            .map(|s| {
                let o = pattern.offset_at(fabric, s);
                assert!(o.in_range(fabric), "step {s} out of range");
                (o.row, o.col)
            })
            .collect();
        assert_eq!(visited.len(), fabric.fu_count() as usize, "{}", pattern.name());
        // And it repeats.
        assert_eq!(pattern.offset_at(fabric, 0), pattern.offset_at(fabric, period));
    }

    #[test]
    fn full_coverage_on_all_scenarios() {
        for fabric in [Fabric::fig1(), Fabric::be(), Fabric::bp(), Fabric::bu()] {
            covers_all(&Snake, &fabric);
            covers_all(&Raster, &fabric);
            covers_all(&ColumnMajor, &fabric);
        }
    }

    #[test]
    fn snake_moves_one_cell_per_step() {
        let fabric = Fabric::be();
        for s in 0..2 * fabric.fu_count() as u64 {
            let a = Snake.offset_at(&fabric, s);
            let b = Snake.offset_at(&fabric, s + 1);
            let dr = (a.row as i64 - b.row as i64).abs();
            let dc = (a.col as i64 - b.col as i64).abs();
            // One step in exactly one dimension (row wrap at the period end
            // jumps back to the origin row, still a single-row move for W=2).
            assert!(dr + dc >= 1, "pattern must move");
            assert!(dr <= 1, "row moves at most one");
        }
    }

    #[test]
    fn snake_matches_figure3_shape() {
        // 2x4 toy fabric: expect (0,0) (0,1) (0,2) (0,3) (1,3) (1,2) (1,1) (1,0).
        let f = Fabric::new(2, 4);
        let seq: Vec<(u32, u32)> = (0..8)
            .map(|s| {
                let o = Snake.offset_at(&f, s);
                (o.row, o.col)
            })
            .collect();
        assert_eq!(seq, vec![(0, 0), (0, 1), (0, 2), (0, 3), (1, 3), (1, 2), (1, 1), (1, 0)]);
    }

    #[test]
    fn fixed_never_moves() {
        let f = Fabric::be();
        let p = Fixed(Offset::new(1, 3));
        for s in [0, 5, 1000] {
            assert_eq!(p.offset_at(&f, s), Offset::new(1, 3));
        }
    }
}
