//! Declarative policy specification (DESIGN.md §8).
//!
//! The paper's evaluation is a sweep — policies × patterns × granularities ×
//! fabrics — so policies must be *data*, not closures: a [`PolicySpec`] is a
//! serializable, comparable, parseable value that [builds](PolicySpec::build)
//! the corresponding [`AllocationPolicy`] on demand. Experiment harnesses
//! store and iterate specs; only the innermost runner ever instantiates a
//! policy.
//!
//! Specs round-trip through compact strings (the `--policy` CLI grammar):
//!
//! | String | Meaning |
//! |---|---|
//! | `baseline` | corner-anchored greedy mapping |
//! | `rotation` | snake pattern, per-execution movement (the paper) |
//! | `rotation:raster` | explicit pattern, per-execution movement |
//! | `rotation:snake@per-load` | explicit pattern and granularity |
//! | `rotation@every-8` | snake pattern, advance every 8 executions |
//! | `random:42` | uniform-random pivots from seed 42 |
//! | `health-aware` | the oracle scan (paper future work) |
//! | `exact` | branch-and-bound wear optimum, re-solved per allocation |
//! | `exact@every-8` | the optimum planned jointly over 8-execution epochs |

use std::fmt;
use std::str::FromStr;

use cgra::Fabric;
use serde::{Deserialize, Serialize};

use crate::exact::ExactPolicy;
use crate::pattern::{ColumnMajor, MovementPattern, Raster, Snake};
use crate::policy::{
    AllocationPolicy, BaselinePolicy, HealthAwarePolicy, MovementGranularity, RandomPolicy,
    RotationPolicy,
};

/// Default seed for [`PolicySpec::Random`] when none is given (the
/// workspace-wide experiment seed).
pub const DEFAULT_RANDOM_SEED: u64 = 0xDAC2020;

/// A movement pattern as data: the serializable selector for the built-in
/// fabric-covering patterns (paper Fig. 3b).
///
/// # Examples
///
/// ```
/// use uaware::PatternSpec;
///
/// let p: PatternSpec = "column-major".parse().unwrap();
/// assert_eq!(p, PatternSpec::ColumnMajor);
/// assert_eq!(p.to_string(), "column-major");
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PatternSpec {
    /// Boustrophedon scan (the paper's choice).
    #[default]
    Snake,
    /// Plain raster scan.
    Raster,
    /// Column-major scan.
    ColumnMajor,
}

impl PatternSpec {
    /// Every built-in full-coverage pattern, in sweep order.
    pub const ALL: [PatternSpec; 3] =
        [PatternSpec::Snake, PatternSpec::Raster, PatternSpec::ColumnMajor];

    /// Instantiates the pattern.
    pub fn build(&self) -> Box<dyn MovementPattern> {
        match self {
            PatternSpec::Snake => Box::new(Snake),
            PatternSpec::Raster => Box::new(Raster),
            PatternSpec::ColumnMajor => Box::new(ColumnMajor),
        }
    }

    /// The pattern's compact name (`snake`, `raster`, `column-major`).
    pub fn name(&self) -> &'static str {
        match self {
            PatternSpec::Snake => "snake",
            PatternSpec::Raster => "raster",
            PatternSpec::ColumnMajor => "column-major",
        }
    }
}

impl fmt::Display for PatternSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for PatternSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<PatternSpec, ParseSpecError> {
        match s {
            "snake" => Ok(PatternSpec::Snake),
            "raster" => Ok(PatternSpec::Raster),
            "column-major" => Ok(PatternSpec::ColumnMajor),
            other => Err(ParseSpecError::new(format!(
                "unknown pattern `{other}` (expected snake, raster or column-major)"
            ))),
        }
    }
}

/// An allocation policy as data (DESIGN.md §8): the enumerable, serializable
/// point every sweep iterates over. [`build`](PolicySpec::build) turns a spec
/// into a fresh policy instance; [`fmt::Display`]/[`FromStr`] round-trip the
/// compact string grammar used by the `--policy` CLI flag.
///
/// # Examples
///
/// ```
/// use uaware::{MovementGranularity, PatternSpec, PolicySpec};
///
/// let spec: PolicySpec = "rotation:snake@per-load".parse().unwrap();
/// assert_eq!(
///     spec,
///     PolicySpec::Rotation {
///         pattern: PatternSpec::Snake,
///         granularity: MovementGranularity::PerLoad,
///     }
/// );
/// // The built policy reports the spec's canonical name.
/// assert_eq!(spec.build().name(), spec.to_string());
/// // And the string form round-trips.
/// assert_eq!(spec.to_string().parse::<PolicySpec>().unwrap(), spec);
/// ```
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicySpec {
    /// Corner-anchored greedy mapping (no movement hardware required).
    #[default]
    Baseline,
    /// The paper's utilization-aware rotation.
    Rotation {
        /// The fabric-covering movement pattern.
        pattern: PatternSpec,
        /// How often the pivot advances.
        granularity: MovementGranularity,
    },
    /// Uniform-random pivot per execution.
    Random {
        /// RNG seed (deterministic experiments).
        seed: u64,
    },
    /// The oracle scan steering allocation with run-time aging information.
    HealthAware,
    /// The exact-mapping oracle (DESIGN.md §15): per allocation epoch, a
    /// branch-and-bound solve of the wear-optimal placement — the upper
    /// bound every heuristic's optimality gap is measured against
    /// (`results/gap.json`).
    Exact {
        /// Epoch length: how many upcoming executions each solve plans
        /// jointly (`1` = re-solve on every allocation; must be ≥ 1, the
        /// grammar rejects `every-0`).
        every: u32,
    },
}

impl PolicySpec {
    /// The paper's default proposal: snake rotation, advanced per execution.
    pub fn rotation() -> PolicySpec {
        PolicySpec::Rotation {
            pattern: PatternSpec::Snake,
            granularity: MovementGranularity::PerExecution,
        }
    }

    /// Instantiates a fresh policy for this spec.
    pub fn build(&self) -> Box<dyn AllocationPolicy> {
        match *self {
            PolicySpec::Baseline => Box::new(BaselinePolicy),
            PolicySpec::Rotation { pattern, granularity } => {
                Box::new(RotationPolicy::with_granularity(pattern.build(), granularity))
            }
            PolicySpec::Random { seed } => Box::new(RandomPolicy::seeded(seed)),
            PolicySpec::HealthAware => Box::new(HealthAwarePolicy),
            PolicySpec::Exact { every } => Box::new(ExactPolicy::new(every)),
        }
    }

    /// Whether policies built from this spec need the movement hardware
    /// extensions (paper §III.B). Mirrors
    /// [`AllocationPolicy::needs_movement`] without instantiating.
    pub fn needs_movement(&self) -> bool {
        !matches!(self, PolicySpec::Baseline)
    }

    /// Every spec the standard sweep evaluates on `fabric`: the baseline,
    /// per-execution rotation for each built-in pattern, the coarser snake
    /// granularities (including a periodic step scaled to half the fabric's
    /// coverage period), the seeded random ablation and the health-aware
    /// oracle. The [`Exact`](PolicySpec::Exact) oracle is deliberately
    /// excluded — it is the bound the standard series are measured
    /// *against* (the `gap` experiment), not a sweep point itself.
    ///
    /// # Examples
    ///
    /// ```
    /// use cgra::Fabric;
    /// use uaware::PolicySpec;
    ///
    /// let specs = PolicySpec::all_specs(&Fabric::be());
    /// assert!(specs.len() >= 7);
    /// assert!(specs.iter().all(|s| s.to_string().parse::<PolicySpec>().unwrap() == *s));
    /// ```
    pub fn all_specs(fabric: &Fabric) -> Vec<PolicySpec> {
        let mut specs = vec![PolicySpec::Baseline];
        for pattern in PatternSpec::ALL {
            specs.push(PolicySpec::Rotation {
                pattern,
                granularity: MovementGranularity::PerExecution,
            });
        }
        specs.push(PolicySpec::Rotation {
            pattern: PatternSpec::Snake,
            granularity: MovementGranularity::PerLoad,
        });
        specs.push(PolicySpec::Rotation {
            pattern: PatternSpec::Snake,
            granularity: MovementGranularity::Periodic((fabric.fu_count() / 2).max(1)),
        });
        specs.push(PolicySpec::Random { seed: DEFAULT_RANDOM_SEED });
        specs.push(PolicySpec::HealthAware);
        specs
    }
}

impl fmt::Display for PolicySpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicySpec::Baseline => f.write_str("baseline"),
            PolicySpec::Rotation { pattern, granularity } => {
                write!(f, "rotation:{pattern}@{granularity}")
            }
            PolicySpec::Random { seed } => write!(f, "random:{seed}"),
            PolicySpec::HealthAware => f.write_str("health-aware"),
            PolicySpec::Exact { every: 1 } => f.write_str("exact"),
            PolicySpec::Exact { every } => write!(f, "exact@every-{every}"),
        }
    }
}

impl FromStr for PolicySpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<PolicySpec, ParseSpecError> {
        let (head, rest) = match s.find([':', '@']) {
            Some(i) => (&s[..i], Some((s.as_bytes()[i] as char, &s[i + 1..]))),
            None => (s, None),
        };
        match (head, rest) {
            ("baseline", None) => Ok(PolicySpec::Baseline),
            ("health-aware", None) => Ok(PolicySpec::HealthAware),
            ("random", None) => Ok(PolicySpec::Random { seed: DEFAULT_RANDOM_SEED }),
            ("random", Some((':', seed))) => {
                let seed = seed.parse().map_err(|_| {
                    ParseSpecError::new(format!("invalid random seed `{seed}` in `{s}`"))
                })?;
                Ok(PolicySpec::Random { seed })
            }
            ("exact", None) => Ok(PolicySpec::Exact { every: 1 }),
            ("exact", Some(('@', gran))) => {
                match gran.strip_prefix("every-").and_then(|n| n.parse::<u32>().ok()) {
                    Some(every) if every >= 1 => Ok(PolicySpec::Exact { every }),
                    _ => Err(ParseSpecError::new(format!(
                        "invalid exact epoch `{gran}` in `{s}` (expected every-<n>, n ≥ 1)"
                    ))),
                }
            }
            ("rotation", rest) => {
                let (pattern, granularity) = match rest {
                    None => (None, None),
                    Some(('@', gran)) => (None, Some(gran)),
                    Some((':', tail)) => match tail.split_once('@') {
                        Some((pat, gran)) => (Some(pat), Some(gran)),
                        None => (Some(tail), None),
                    },
                    Some(_) => unreachable!("find() only matched `:` or `@`"),
                };
                Ok(PolicySpec::Rotation {
                    pattern: pattern.map_or(Ok(PatternSpec::Snake), str::parse)?,
                    granularity: granularity
                        .map_or(Ok(MovementGranularity::PerExecution), str::parse)?,
                })
            }
            _ => Err(ParseSpecError::new(format!(
                "unknown policy spec `{s}` (expected baseline, rotation[:pattern][@granularity], \
                 random[:seed], health-aware or exact[@every-<n>])"
            ))),
        }
    }
}

/// A policy/pattern/granularity string failed to parse.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseSpecError {
    message: String,
}

impl ParseSpecError {
    /// Wraps a diagnostic message (for tools layering their own spec
    /// grammars, e.g. CLI flag parsers).
    pub fn new(message: String) -> ParseSpecError {
        ParseSpecError { message }
    }
}

impl fmt::Display for ParseSpecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for ParseSpecError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn canonical_strings_parse_to_the_expected_specs() {
        let cases = [
            ("baseline", PolicySpec::Baseline),
            ("health-aware", PolicySpec::HealthAware),
            ("random:42", PolicySpec::Random { seed: 42 }),
            ("rotation:snake@per-exec", PolicySpec::rotation()),
            (
                "rotation:raster@per-load",
                PolicySpec::Rotation {
                    pattern: PatternSpec::Raster,
                    granularity: MovementGranularity::PerLoad,
                },
            ),
            (
                "rotation:column-major@every-8",
                PolicySpec::Rotation {
                    pattern: PatternSpec::ColumnMajor,
                    granularity: MovementGranularity::Periodic(8),
                },
            ),
            ("exact", PolicySpec::Exact { every: 1 }),
            ("exact@every-4", PolicySpec::Exact { every: 4 }),
        ];
        for (s, spec) in cases {
            assert_eq!(s.parse::<PolicySpec>().unwrap(), spec, "{s}");
            assert_eq!(spec.to_string(), s, "{spec:?}");
        }
    }

    #[test]
    fn shorthand_forms_fill_in_defaults() {
        assert_eq!("rotation".parse::<PolicySpec>().unwrap(), PolicySpec::rotation());
        assert_eq!(
            "rotation:raster".parse::<PolicySpec>().unwrap(),
            PolicySpec::Rotation {
                pattern: PatternSpec::Raster,
                granularity: MovementGranularity::PerExecution,
            }
        );
        assert_eq!(
            "rotation@per-load".parse::<PolicySpec>().unwrap(),
            PolicySpec::Rotation {
                pattern: PatternSpec::Snake,
                granularity: MovementGranularity::PerLoad,
            }
        );
        assert_eq!(
            "random".parse::<PolicySpec>().unwrap(),
            PolicySpec::Random { seed: DEFAULT_RANDOM_SEED }
        );
    }

    #[test]
    fn malformed_strings_are_rejected() {
        for s in [
            "",
            "rotations",
            "baseline:snake",
            "health-aware@per-load",
            "random:notanumber",
            "rotation:diagonal",
            "rotation:snake@sometimes",
            "rotation:snake@every-",
            "rotation:snake@every-x",
            "exact:snake",
            "exact@",
            "exact@every-0",
            "exact@every-",
            "exact@per-load",
        ] {
            assert!(s.parse::<PolicySpec>().is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn built_policies_report_canonical_names() {
        for spec in PolicySpec::all_specs(&Fabric::be()) {
            assert_eq!(spec.build().name(), spec.to_string());
        }
    }

    #[test]
    fn needs_movement_matches_built_policies() {
        for spec in PolicySpec::all_specs(&Fabric::bp()) {
            assert_eq!(spec.needs_movement(), spec.build().needs_movement(), "{spec}");
        }
    }

    #[test]
    fn specs_survive_json() {
        for spec in PolicySpec::all_specs(&Fabric::bu()) {
            let json = serde_json::to_string(&spec).unwrap();
            let back: PolicySpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn exact_round_trips_and_builds() {
        for spec in [PolicySpec::Exact { every: 1 }, PolicySpec::Exact { every: 6 }] {
            assert_eq!(spec.to_string().parse::<PolicySpec>().unwrap(), spec);
            assert_eq!(spec.build().name(), spec.to_string());
            assert!(spec.needs_movement() && spec.build().needs_movement());
            let json = serde_json::to_string(&spec).unwrap();
            assert_eq!(serde_json::from_str::<PolicySpec>(&json).unwrap(), spec, "{json}");
        }
        let excluded = PolicySpec::all_specs(&Fabric::be());
        assert!(
            !excluded.iter().any(|s| matches!(s, PolicySpec::Exact { .. })),
            "the oracle is the yardstick, not a standard sweep point"
        );
    }
}
