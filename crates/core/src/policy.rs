//! Allocation policies: who decides where a configuration lands.
//!
//! The paper's contribution is the *rotation* policy — move the pivot along
//! a fabric-covering pattern on every execution — implemented here next to
//! the corner-anchored baseline it replaces, a random policy (the
//! alternative the paper dismisses as interconnect-hostile; our wrap-around
//! fabric can express it, making it a useful ablation), and a health-aware
//! policy that realizes the paper's future-work item of steering allocation
//! with run-time aging information.

use std::fmt;
use std::str::FromStr;

use cgra::{Fabric, Offset};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::pattern::MovementPattern;
use crate::spec::ParseSpecError;
use crate::stats::UtilizationTracker;

/// How often the rotation policy advances the pivot (DESIGN.md §4.4).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MovementGranularity {
    /// Advance on every execution (the paper's behaviour).
    #[default]
    PerExecution,
    /// Advance only when a different configuration is loaded into the
    /// fabric; repeated executions of a resident configuration stay put
    /// (cheaper, weaker balancing — the ablation bench quantifies it).
    PerLoad,
    /// Advance every `n` executions.
    Periodic(u32),
}

impl fmt::Display for MovementGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MovementGranularity::PerExecution => f.write_str("per-exec"),
            MovementGranularity::PerLoad => f.write_str("per-load"),
            MovementGranularity::Periodic(n) => write!(f, "every-{n}"),
        }
    }
}

impl FromStr for MovementGranularity {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<MovementGranularity, ParseSpecError> {
        match s {
            "per-exec" | "per-execution" => Ok(MovementGranularity::PerExecution),
            "per-load" => Ok(MovementGranularity::PerLoad),
            _ => match s.strip_prefix("every-").and_then(|n| n.parse().ok()) {
                Some(n) => Ok(MovementGranularity::Periodic(n)),
                None => Err(ParseSpecError::new(format!(
                    "unknown granularity `{s}` (expected per-exec, per-load or every-<n>)"
                ))),
            },
        }
    }
}

/// Context handed to a policy for one upcoming configuration execution.
#[derive(Clone, Copy, Debug)]
pub struct AllocRequest<'a> {
    /// The target fabric.
    pub fabric: &'a Fabric,
    /// `true` if this execution requires loading a configuration different
    /// from the resident one.
    pub config_switch: bool,
    /// Virtual cells the configuration occupies (for footprint-aware
    /// policies).
    pub footprint: &'a [(u32, u32)],
    /// Live utilization state (for health-aware policies).
    pub tracker: &'a UtilizationTracker,
}

/// A pivot-selection policy.
///
/// Runners that need to instantiate policies from data use
/// [`PolicySpec`](crate::PolicySpec) — a fresh instance per run via
/// [`PolicySpec::build`](crate::PolicySpec::build) — instead of passing
/// factory closures around.
pub trait AllocationPolicy: std::fmt::Debug {
    /// Chooses the pivot for the next execution.
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Offset;

    /// Instance-level name for reports: includes the configured pattern,
    /// granularity or seed, matching the policy's
    /// [`PolicySpec`](crate::PolicySpec) string (e.g.
    /// `rotation:snake@per-load`, `random:42`).
    fn name(&self) -> String;

    /// Whether the policy needs the movement hardware extensions
    /// (§III.B). The baseline runs on the unmodified reconfiguration logic.
    fn needs_movement(&self) -> bool {
        true
    }
}

/// The aging-unaware baseline: every configuration anchors at the top-left
/// corner, exactly like traditional greedy mappers.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselinePolicy;

impl AllocationPolicy for BaselinePolicy {
    fn next_offset(&mut self, _req: &AllocRequest<'_>) -> Offset {
        Offset::ORIGIN
    }

    fn name(&self) -> String {
        "baseline".to_string()
    }

    fn needs_movement(&self) -> bool {
        false
    }
}

/// The paper's utilization-aware allocation: advance the pivot along a
/// movement pattern at the configured granularity.
///
/// # Examples
///
/// ```
/// use cgra::{Fabric, Offset};
/// use uaware::{AllocationPolicy, AllocRequest, RotationPolicy, Snake, UtilizationTracker};
///
/// let fabric = Fabric::be();
/// let tracker = UtilizationTracker::new(&fabric);
/// let mut policy = RotationPolicy::new(Snake);
/// let req = AllocRequest { fabric: &fabric, config_switch: false, footprint: &[], tracker: &tracker };
/// assert_eq!(policy.next_offset(&req), Offset::new(0, 0));
/// assert_eq!(policy.next_offset(&req), Offset::new(0, 1));
/// ```
#[derive(Clone, Debug)]
pub struct RotationPolicy<P> {
    pattern: P,
    granularity: MovementGranularity,
    step: u64,
    execs_since_move: u32,
    current: Option<Offset>,
}

impl<P: MovementPattern> RotationPolicy<P> {
    /// Per-execution rotation along `pattern` (the paper's default).
    pub fn new(pattern: P) -> RotationPolicy<P> {
        RotationPolicy::with_granularity(pattern, MovementGranularity::PerExecution)
    }

    /// Rotation with an explicit movement granularity.
    pub fn with_granularity(pattern: P, granularity: MovementGranularity) -> RotationPolicy<P> {
        RotationPolicy { pattern, granularity, step: 0, execs_since_move: 0, current: None }
    }

    /// The movement pattern in use.
    pub fn pattern(&self) -> &P {
        &self.pattern
    }

    /// Executions performed so far.
    pub fn step(&self) -> u64 {
        self.step
    }
}

impl<P: MovementPattern> AllocationPolicy for RotationPolicy<P> {
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Offset {
        let advance = match self.granularity {
            MovementGranularity::PerExecution => true,
            MovementGranularity::PerLoad => req.config_switch || self.current.is_none(),
            MovementGranularity::Periodic(n) => {
                self.execs_since_move += 1;
                self.current.is_none() || self.execs_since_move >= n.max(1)
            }
        };

        if advance {
            let o = self.pattern.offset_at(req.fabric, self.step);
            self.step += 1;
            self.execs_since_move = 0;
            self.current = Some(o);
            o
        } else {
            self.current.expect("current set when not advancing")
        }
    }

    fn name(&self) -> String {
        format!("rotation:{}@{}", self.pattern.name(), self.granularity)
    }
}

/// Uniform-random pivot per execution. Balances utilization in expectation
/// but needs the same movement hardware and gives up the pattern's
/// determinism; kept as an ablation point.
#[derive(Clone, Debug)]
pub struct RandomPolicy {
    seed: u64,
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates a random policy from a seed (deterministic experiments).
    pub fn seeded(seed: u64) -> RandomPolicy {
        RandomPolicy { seed, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The seed this policy was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl AllocationPolicy for RandomPolicy {
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Offset {
        Offset::new(
            self.rng.random_range(0..req.fabric.rows),
            self.rng.random_range(0..req.fabric.cols),
        )
    }

    fn name(&self) -> String {
        format!("random:{}", self.seed)
    }
}

/// The paper's future-work policy: use run-time aging information to adapt
/// the allocation. For each execution it scans all `rows × cols` pivots and
/// picks the one minimizing the maximum projected stress count over the
/// configuration's footprint (ties break towards the smallest offset).
///
/// This is the "detecting the optimal allocation at run time" option the
/// paper calls prohibitively expensive in hardware — implemented here as an
/// oracle upper bound for the rotation policy to be compared against.
#[derive(Copy, Clone, Debug, Default)]
pub struct HealthAwarePolicy;

impl AllocationPolicy for HealthAwarePolicy {
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Offset {
        // The scan runs once per offload, so it must stay allocation-free:
        // compare raw per-FU execution counts (same ordering as the
        // normalized utilization), prune a pivot as soon as it matches the
        // incumbent, and stop outright on a zero-stress pivot — nothing can
        // beat it, and ties break towards the smallest offset anyway.
        let fabric = req.fabric;
        let tracker = req.tracker;
        let mut best = Offset::ORIGIN;
        let mut best_cost = u64::MAX;
        for row in 0..fabric.rows {
            for col in 0..fabric.cols {
                let off = Offset::new(row, col);
                let mut cost = 0u64;
                for &(r, c) in req.footprint {
                    let (pr, pc) = off.apply(fabric, r, c);
                    cost = cost.max(tracker.exec_count(pr, pc));
                    if cost >= best_cost {
                        break;
                    }
                }
                if cost < best_cost {
                    best_cost = cost;
                    best = off;
                    if cost == 0 {
                        return best;
                    }
                }
            }
        }
        best
    }

    fn name(&self) -> String {
        "health-aware".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::Raster;

    fn req<'a>(
        fabric: &'a Fabric,
        tracker: &'a UtilizationTracker,
        footprint: &'a [(u32, u32)],
        config_switch: bool,
    ) -> AllocRequest<'a> {
        AllocRequest { fabric, config_switch, footprint, tracker }
    }

    #[test]
    fn baseline_is_pinned_and_needs_no_hardware() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let mut p = BaselinePolicy;
        for _ in 0..5 {
            assert_eq!(p.next_offset(&req(&fabric, &tracker, &[], false)), Offset::ORIGIN);
        }
        assert!(!p.needs_movement());
    }

    #[test]
    fn rotation_follows_pattern_per_execution() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let mut p = RotationPolicy::new(Raster);
        let r = req(&fabric, &tracker, &[], false);
        assert_eq!(p.next_offset(&r), Offset::new(0, 0));
        assert_eq!(p.next_offset(&r), Offset::new(0, 1));
        assert_eq!(p.next_offset(&r), Offset::new(0, 2));
        assert!(p.needs_movement());
    }

    #[test]
    fn per_load_granularity_only_moves_on_switches() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let mut p = RotationPolicy::with_granularity(Raster, MovementGranularity::PerLoad);
        let stay = req(&fabric, &tracker, &[], false);
        let switch = req(&fabric, &tracker, &[], true);
        let first = p.next_offset(&switch);
        assert_eq!(p.next_offset(&stay), first);
        assert_eq!(p.next_offset(&stay), first);
        let second = p.next_offset(&switch);
        assert_ne!(second, first);
    }

    #[test]
    fn periodic_granularity_moves_every_n() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let mut p = RotationPolicy::with_granularity(Raster, MovementGranularity::Periodic(3));
        let r = req(&fabric, &tracker, &[], false);
        let offsets: Vec<Offset> = (0..7).map(|_| p.next_offset(&r)).collect();
        assert_eq!(offsets[0], offsets[1]);
        assert_eq!(offsets[1], offsets[2]);
        assert_ne!(offsets[2], offsets[3]);
        assert_eq!(offsets[3], offsets[4]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let fabric = Fabric::bp();
        let tracker = UtilizationTracker::new(&fabric);
        let r = req(&fabric, &tracker, &[], false);
        let mut a = RandomPolicy::seeded(42);
        let mut b = RandomPolicy::seeded(42);
        let mut c = RandomPolicy::seeded(7);
        let seq_a: Vec<Offset> = (0..50).map(|_| a.next_offset(&r)).collect();
        let seq_b: Vec<Offset> = (0..50).map(|_| b.next_offset(&r)).collect();
        let seq_c: Vec<Offset> = (0..50).map(|_| c.next_offset(&r)).collect();
        assert_eq!(seq_a, seq_b, "same seed, same sequence");
        assert_ne!(seq_a, seq_c, "different seed, different sequence");
        assert!(seq_a.iter().all(|o| o.in_range(&fabric)));
    }

    #[test]
    fn health_aware_avoids_hot_cells() {
        let fabric = Fabric::be();
        let mut tracker = UtilizationTracker::new(&fabric);
        // Hammer the top-left cell.
        for _ in 0..10 {
            tracker.record_execution(&[(0, 0)], 1);
        }
        let footprint = [(0u32, 0u32)];
        let mut p = HealthAwarePolicy;
        let o = p.next_offset(&req(&fabric, &tracker, &footprint, false));
        assert_ne!(o, Offset::ORIGIN, "must dodge the stressed corner");
    }
}
