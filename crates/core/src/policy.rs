//! Allocation policies: who decides where a configuration lands.
//!
//! The paper's contribution is the *rotation* policy — move the pivot along
//! a fabric-covering pattern on every execution — implemented here next to
//! the corner-anchored baseline it replaces, a random policy (the
//! alternative the paper dismisses as interconnect-hostile; our wrap-around
//! fabric can express it, making it a useful ablation), and a health-aware
//! policy that realizes the paper's future-work item of steering allocation
//! with run-time aging information.

use std::fmt;
use std::str::FromStr;

use cgra::op::OpKind;
use cgra::{Fabric, FaultMask, Offset};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use tracing::{event, Level};

use crate::pattern::MovementPattern;
use crate::spec::ParseSpecError;
use crate::stats::UtilizationTracker;

/// How often the rotation policy advances the pivot (DESIGN.md §4.4).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum MovementGranularity {
    /// Advance on every execution (the paper's behaviour).
    #[default]
    PerExecution,
    /// Advance only when a different configuration is loaded into the
    /// fabric; repeated executions of a resident configuration stay put
    /// (cheaper, weaker balancing — the ablation bench quantifies it).
    PerLoad,
    /// Advance every `n` executions.
    Periodic(u32),
}

impl fmt::Display for MovementGranularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MovementGranularity::PerExecution => f.write_str("per-exec"),
            MovementGranularity::PerLoad => f.write_str("per-load"),
            MovementGranularity::Periodic(n) => write!(f, "every-{n}"),
        }
    }
}

impl FromStr for MovementGranularity {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<MovementGranularity, ParseSpecError> {
        match s {
            "per-exec" | "per-execution" => Ok(MovementGranularity::PerExecution),
            "per-load" => Ok(MovementGranularity::PerLoad),
            _ => match s.strip_prefix("every-").and_then(|n| n.parse().ok()) {
                Some(n) => Ok(MovementGranularity::Periodic(n)),
                None => Err(ParseSpecError::new(format!(
                    "unknown granularity `{s}` (expected per-exec, per-load or every-<n>)"
                ))),
            },
        }
    }
}

/// Context handed to a policy for one upcoming configuration execution.
#[derive(Clone, Copy, Debug)]
pub struct AllocRequest<'a> {
    /// The target fabric.
    pub fabric: &'a Fabric,
    /// `true` if this execution requires loading a configuration different
    /// from the resident one.
    pub config_switch: bool,
    /// Virtual cells the configuration occupies (for footprint-aware
    /// policies).
    pub footprint: &'a [(u32, u32)],
    /// Live utilization state (for health-aware policies).
    pub tracker: &'a UtilizationTracker,
    /// Permanent-failure map of the fabric, if the deployment has one
    /// (DESIGN.md §11). `None` means a pristine fabric; policies must never
    /// place a footprint cell on a dead FU.
    pub faults: Option<&'a FaultMask>,
    /// Anchor-capability demands of the configuration (DESIGN.md §14): the
    /// virtual cells that must land on a mem-/mul-capable FU, with the op
    /// kind each anchors (`Configuration::demands`). Empty for pure-ALU
    /// configurations; ignored entirely on uniform fabrics.
    pub demands: &'a [(u32, u32, OpKind)],
}

impl AllocRequest<'_> {
    /// `true` if anchoring the request's footprint at `offset` touches only
    /// live FUs (trivially true on a pristine fabric) *and* lands every
    /// capability-demanding anchor on a capable cell (trivially true on a
    /// uniform fabric, DESIGN.md §14).
    pub fn placement_ok(&self, offset: Offset) -> bool {
        self.capable(offset)
            && match self.faults {
                Some(mask) if !mask.is_pristine() => {
                    mask.placement_ok(self.fabric, self.footprint, offset)
                }
                _ => true,
            }
    }

    /// `true` if every capability-demanding anchor lands on a capable cell
    /// when the footprint is pivoted to `offset` (DESIGN.md §14).
    fn capable(&self, offset: Offset) -> bool {
        if self.fabric.is_uniform() || self.demands.is_empty() {
            return true;
        }
        self.demands.iter().all(|&(r, c, kind)| {
            let (pr, pc) = offset.apply(self.fabric, r, c);
            self.fabric.supports(pr, pc, kind)
        })
    }

    /// `true` if the request carries a mask with at least one dead FU —
    /// the slow-path guard every policy uses to keep its pristine-fabric
    /// decision stream bit-identical to the historical (mask-less) one.
    fn degraded(&self) -> bool {
        self.faults.is_some_and(|mask| !mask.is_pristine())
    }

    /// `true` if some offsets may be illegal — dead FUs under the mask, or
    /// capability demands on a heterogeneous fabric. The widened slow-path
    /// guard (DESIGN.md §14): on uniform pristine fabrics it stays `false`,
    /// keeping every policy's decision stream bit-identical to the
    /// historical one no matter what demands the configuration carries.
    fn constrained(&self) -> bool {
        self.degraded() || (!self.fabric.is_uniform() && !self.demands.is_empty())
    }
}

/// A pivot-selection policy.
///
/// Runners that need to instantiate policies from data use
/// [`PolicySpec`](crate::PolicySpec) — a fresh instance per run via
/// [`PolicySpec::build`](crate::PolicySpec::build) — instead of passing
/// factory closures around.
pub trait AllocationPolicy: std::fmt::Debug {
    /// Chooses the pivot for the next execution, or `None` when every
    /// placement the policy can express touches a dead FU
    /// ([`AllocRequest::faults`]) — the device's end of life (DESIGN.md
    /// §11).
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Option<Offset>;

    /// Instance-level name for reports: includes the configured pattern,
    /// granularity or seed, matching the policy's
    /// [`PolicySpec`](crate::PolicySpec) string (e.g.
    /// `rotation:snake@per-load`, `random:42`).
    fn name(&self) -> String;

    /// Whether the policy needs the movement hardware extensions
    /// (§III.B). The baseline runs on the unmodified reconfiguration logic.
    fn needs_movement(&self) -> bool {
        true
    }
}

/// The aging-unaware baseline: every configuration anchors at the top-left
/// corner, exactly like traditional greedy mappers. With no movement
/// hardware the origin is also its *only* legal placement, so the first
/// corner-FU failure kills the device (DESIGN.md §11).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselinePolicy;

impl AllocationPolicy for BaselinePolicy {
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Option<Offset> {
        event!(Level::TRACE, "alloc.baseline.decisions", "add" = 1);
        req.placement_ok(Offset::ORIGIN).then_some(Offset::ORIGIN)
    }

    fn name(&self) -> String {
        "baseline".to_string()
    }

    fn needs_movement(&self) -> bool {
        false
    }
}

/// The paper's utilization-aware allocation: advance the pivot along a
/// movement pattern at the configured granularity.
///
/// # Examples
///
/// ```
/// use cgra::{Fabric, Offset};
/// use uaware::{AllocationPolicy, AllocRequest, RotationPolicy, Snake, UtilizationTracker};
///
/// let fabric = Fabric::be();
/// let tracker = UtilizationTracker::new(&fabric);
/// let mut policy = RotationPolicy::new(Snake);
/// let req = AllocRequest {
///     fabric: &fabric,
///     config_switch: false,
///     footprint: &[],
///     tracker: &tracker,
///     faults: None,
///     demands: &[],
/// };
/// assert_eq!(policy.next_offset(&req), Some(Offset::new(0, 0)));
/// assert_eq!(policy.next_offset(&req), Some(Offset::new(0, 1)));
/// ```
#[derive(Clone, Debug)]
pub struct RotationPolicy<P> {
    pattern: P,
    granularity: MovementGranularity,
    step: u64,
    execs_since_move: u32,
    current: Option<Offset>,
}

impl<P: MovementPattern> RotationPolicy<P> {
    /// Per-execution rotation along `pattern` (the paper's default).
    pub fn new(pattern: P) -> RotationPolicy<P> {
        RotationPolicy::with_granularity(pattern, MovementGranularity::PerExecution)
    }

    /// Rotation with an explicit movement granularity.
    pub fn with_granularity(pattern: P, granularity: MovementGranularity) -> RotationPolicy<P> {
        RotationPolicy { pattern, granularity, step: 0, execs_since_move: 0, current: None }
    }

    /// The movement pattern in use.
    pub fn pattern(&self) -> &P {
        &self.pattern
    }

    /// Executions performed so far.
    pub fn step(&self) -> u64 {
        self.step
    }
}

impl<P: MovementPattern> AllocationPolicy for RotationPolicy<P> {
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Option<Offset> {
        event!(Level::TRACE, "alloc.rotation.decisions", "add" = 1);
        // A dead FU under the resident pivot forces a move even at coarse
        // granularities — staying put would execute on failed silicon.
        let resident_ok = self.current.is_some_and(|o| req.placement_ok(o));
        let advance = match self.granularity {
            MovementGranularity::PerExecution => true,
            MovementGranularity::PerLoad => req.config_switch || !resident_ok,
            MovementGranularity::Periodic(n) => {
                self.execs_since_move += 1;
                !resident_ok || self.execs_since_move >= n.max(1)
            }
        };

        if advance {
            // Walk the pattern past any pivot whose placement straddles a
            // dead FU or an incapable anchor cell (the movement hardware
            // skips failed columns the same way it wraps edges). One full
            // period with no legal pivot means the policy is out of
            // placements.
            for _ in 0..self.pattern.period(req.fabric).max(1) {
                let o = self.pattern.offset_at(req.fabric, self.step);
                self.step += 1;
                if req.placement_ok(o) {
                    self.execs_since_move = 0;
                    self.current = Some(o);
                    return Some(o);
                }
            }
            None
        } else {
            Some(self.current.expect("resident pivot set when not advancing"))
        }
    }

    fn name(&self) -> String {
        format!("rotation:{}@{}", self.pattern.name(), self.granularity)
    }
}

/// Uniform-random pivot per execution. Balances utilization in expectation
/// but needs the same movement hardware and gives up the pattern's
/// determinism; kept as an ablation point.
#[derive(Clone, Debug)]
pub struct RandomPolicy {
    seed: u64,
    rng: SmallRng,
}

impl RandomPolicy {
    /// Creates a random policy from a seed (deterministic experiments).
    pub fn seeded(seed: u64) -> RandomPolicy {
        RandomPolicy { seed, rng: SmallRng::seed_from_u64(seed) }
    }

    /// The seed this policy was created from.
    pub fn seed(&self) -> u64 {
        self.seed
    }
}

impl AllocationPolicy for RandomPolicy {
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Option<Offset> {
        event!(Level::TRACE, "alloc.random.decisions", "add" = 1);
        if !req.constrained() {
            // Unconstrained fast path: two draws, bit-identical to the
            // historical mask-less stream.
            return Some(Offset::new(
                self.rng.random_range(0..req.fabric.rows),
                self.rng.random_range(0..req.fabric.cols),
            ));
        }
        // Constrained fabric: draw uniformly among the legal pivots —
        // complete (never misses a surviving placement) and still a pure
        // function of the seed. Like the health-aware scan, this runs once
        // per offload, so it stays allocation-free: count the legal pivots
        // in one row-major pass, draw an index, and walk to it in a second.
        let pivots = |req: &AllocRequest<'_>| {
            let cols = req.fabric.cols;
            (0..req.fabric.rows).flat_map(move |r| (0..cols).map(move |c| Offset::new(r, c)))
        };
        let legal = pivots(req).filter(|o| req.placement_ok(*o)).count();
        if legal == 0 {
            return None;
        }
        let pick = self.rng.random_range(0..legal);
        pivots(req).filter(|o| req.placement_ok(*o)).nth(pick)
    }

    fn name(&self) -> String {
        format!("random:{}", self.seed)
    }
}

/// The paper's future-work policy: use run-time aging information to adapt
/// the allocation. For each execution it scans all `rows × cols` pivots and
/// picks the one minimizing the maximum projected stress count over the
/// configuration's footprint (ties break towards the smallest offset).
///
/// This is the "detecting the optimal allocation at run time" option the
/// paper calls prohibitively expensive in hardware — implemented here as an
/// oracle upper bound for the rotation policy to be compared against.
#[derive(Copy, Clone, Debug, Default)]
pub struct HealthAwarePolicy;

impl AllocationPolicy for HealthAwarePolicy {
    fn next_offset(&mut self, req: &AllocRequest<'_>) -> Option<Offset> {
        event!(Level::TRACE, "alloc.health-aware.decisions", "add" = 1);
        // The scan runs once per offload, so it must stay allocation-free:
        // compare raw per-FU execution counts (same ordering as the
        // normalized utilization), prune a pivot as soon as it matches the
        // incumbent, and stop outright on a zero-stress pivot — nothing can
        // beat it, and ties break towards the smallest offset anyway.
        // Pivots whose placement straddles a dead FU or an incapable anchor
        // cell are skipped outright (DESIGN.md §11, §14); with every pivot
        // illegal the scan reports `None`.
        let fabric = req.fabric;
        let tracker = req.tracker;
        let constrained = req.constrained();
        let mut best = None;
        let mut best_cost = u64::MAX;
        for row in 0..fabric.rows {
            for col in 0..fabric.cols {
                let off = Offset::new(row, col);
                if constrained && !req.placement_ok(off) {
                    continue;
                }
                let mut cost = 0u64;
                for &(r, c) in req.footprint {
                    let (pr, pc) = off.apply(fabric, r, c);
                    cost = cost.max(tracker.exec_count(pr, pc));
                    if cost >= best_cost {
                        break;
                    }
                }
                if cost < best_cost || best.is_none() {
                    best_cost = cost;
                    best = Some(off);
                    if cost == 0 {
                        return best;
                    }
                }
            }
        }
        best
    }

    fn name(&self) -> String {
        "health-aware".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Raster, Snake};
    use cgra::op::MulFunc;
    use cgra::{CellClass, ClassMap};

    fn req<'a>(
        fabric: &'a Fabric,
        tracker: &'a UtilizationTracker,
        footprint: &'a [(u32, u32)],
        config_switch: bool,
    ) -> AllocRequest<'a> {
        AllocRequest { fabric, config_switch, footprint, tracker, faults: None, demands: &[] }
    }

    fn masked<'a>(base: &AllocRequest<'a>, mask: &'a FaultMask) -> AllocRequest<'a> {
        AllocRequest { faults: Some(mask), ..*base }
    }

    fn demanding<'a>(
        base: &AllocRequest<'a>,
        demands: &'a [(u32, u32, OpKind)],
    ) -> AllocRequest<'a> {
        AllocRequest { demands, ..*base }
    }

    const MUL: OpKind = OpKind::Mul(MulFunc::Mul);

    #[test]
    fn placement_respects_capability_demands() {
        // Row stripes on fig1 (4x8): even rows full, odd rows bare ALUs.
        let mut fabric = Fabric::fig1();
        fabric.classes = ClassMap::RowStripes;
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32), (0, 1), (0, 2), (0, 3)];
        let demands = [(0u32, 0u32, MUL)];
        let base = req(&fabric, &tracker, &footprint, false);
        let r = demanding(&base, &demands);
        assert!(r.placement_ok(Offset::new(0, 0)), "anchor lands on a full row");
        assert!(!r.placement_ok(Offset::new(1, 0)), "anchor lands on a bare-ALU row");
        assert!(r.placement_ok(Offset::new(2, 3)), "wrapping keeps the anchor capable");
        // Without demands the same fabric constrains nothing.
        assert!(base.placement_ok(Offset::new(1, 0)));
    }

    #[test]
    fn rotation_and_baseline_skip_incapable_anchors() {
        let mut fabric = Fabric::fig1();
        fabric.classes = ClassMap::RowStripes;
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32)];
        let demands = [(0u32, 0u32, MUL)];
        let base = req(&fabric, &tracker, &footprint, false);
        let r = demanding(&base, &demands);
        // Column-major rotation visits rows in order; odd rows are skipped.
        let mut p = RotationPolicy::new(crate::pattern::ColumnMajor);
        assert_eq!(p.next_offset(&r), Some(Offset::new(0, 0)));
        assert_eq!(p.next_offset(&r), Some(Offset::new(2, 0)), "skips the bare-ALU row 1");
        // The baseline's origin stays capable here; shift the stripes so it
        // is not and the baseline reports no placement.
        let mut shifted = fabric;
        shifted.classes = ClassMap::Checker;
        let odd_anchor = [(0u32, 1u32, MUL)];
        let stuck = AllocRequest { fabric: &shifted, demands: &odd_anchor, ..base };
        assert_eq!(BaselinePolicy.next_offset(&stuck), None);
    }

    #[test]
    fn random_and_health_aware_only_pick_capable_pivots() {
        let mut fabric = Fabric::fig1();
        fabric.classes = ClassMap::ColStripes;
        let mut tracker = UtilizationTracker::new(&fabric);
        tracker.record_execution(&[(0, 0)], 1); // make (0,0) non-optimal
        let footprint = [(0u32, 0u32), (0, 1)];
        let demands = [(0u32, 0u32, MUL)];
        let base = req(&fabric, &tracker, &footprint, false);
        let r = demanding(&base, &demands);
        let mut rnd = RandomPolicy::seeded(7);
        for _ in 0..100 {
            let o = rnd.next_offset(&r).unwrap();
            assert_eq!(o.col % 2, 0, "random must only draw capable anchors, got {o}");
        }
        let o = HealthAwarePolicy.next_offset(&r).unwrap();
        assert_eq!(o.col % 2, 0, "health-aware must only scan capable anchors, got {o}");
        assert_ne!(o, Offset::ORIGIN, "still dodges the stressed corner");
    }

    #[test]
    fn unsatisfiable_demands_exhaust_every_policy() {
        // An all-ALU fabric can anchor no multiply anywhere.
        let mut fabric = Fabric::fig1();
        fabric.classes = ClassMap::Uniform(CellClass::Alu);
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32)];
        let demands = [(0u32, 0u32, MUL)];
        let base = req(&fabric, &tracker, &footprint, false);
        let r = demanding(&base, &demands);
        assert_eq!(BaselinePolicy.next_offset(&r), None);
        assert_eq!(RotationPolicy::new(Snake).next_offset(&r), None);
        assert_eq!(RandomPolicy::seeded(7).next_offset(&r), None);
        assert_eq!(HealthAwarePolicy.next_offset(&r), None);
    }

    #[test]
    fn uniform_fabric_ignores_demands_bit_identically() {
        // On a uniform fabric a request with demands must be completely
        // indistinguishable from one without — including the random
        // policy's draw count (the DESIGN.md §14 fast path).
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32), (0, 1)];
        let demands =
            [(0u32, 0u32, MUL), (0, 1, OpKind::Load { func: cgra::op::LoadFunc::W, offset: 0 })];
        let bare = req(&fabric, &tracker, &footprint, false);
        let with_demands = demanding(&bare, &demands);
        let mut a = RandomPolicy::seeded(42);
        let mut b = RandomPolicy::seeded(42);
        for _ in 0..50 {
            assert_eq!(a.next_offset(&bare), b.next_offset(&with_demands));
        }
        let mut ra = RotationPolicy::new(Snake);
        let mut rb = RotationPolicy::new(Snake);
        for _ in 0..50 {
            assert_eq!(ra.next_offset(&bare), rb.next_offset(&with_demands));
        }
    }

    #[test]
    fn baseline_is_pinned_and_needs_no_hardware() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let mut p = BaselinePolicy;
        for _ in 0..5 {
            assert_eq!(p.next_offset(&req(&fabric, &tracker, &[], false)), Some(Offset::ORIGIN));
        }
        assert!(!p.needs_movement());
    }

    #[test]
    fn rotation_follows_pattern_per_execution() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let mut p = RotationPolicy::new(Raster);
        let r = req(&fabric, &tracker, &[], false);
        assert_eq!(p.next_offset(&r), Some(Offset::new(0, 0)));
        assert_eq!(p.next_offset(&r), Some(Offset::new(0, 1)));
        assert_eq!(p.next_offset(&r), Some(Offset::new(0, 2)));
        assert!(p.needs_movement());
    }

    #[test]
    fn per_load_granularity_only_moves_on_switches() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let mut p = RotationPolicy::with_granularity(Raster, MovementGranularity::PerLoad);
        let stay = req(&fabric, &tracker, &[], false);
        let switch = req(&fabric, &tracker, &[], true);
        let first = p.next_offset(&switch);
        assert_eq!(p.next_offset(&stay), first);
        assert_eq!(p.next_offset(&stay), first);
        let second = p.next_offset(&switch);
        assert_ne!(second, first);
    }

    #[test]
    fn periodic_granularity_moves_every_n() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let mut p = RotationPolicy::with_granularity(Raster, MovementGranularity::Periodic(3));
        let r = req(&fabric, &tracker, &[], false);
        let offsets: Vec<Option<Offset>> = (0..7).map(|_| p.next_offset(&r)).collect();
        assert_eq!(offsets[0], offsets[1]);
        assert_eq!(offsets[1], offsets[2]);
        assert_ne!(offsets[2], offsets[3]);
        assert_eq!(offsets[3], offsets[4]);
    }

    #[test]
    fn random_is_deterministic_per_seed_and_in_range() {
        let fabric = Fabric::bp();
        let tracker = UtilizationTracker::new(&fabric);
        let r = req(&fabric, &tracker, &[], false);
        let mut a = RandomPolicy::seeded(42);
        let mut b = RandomPolicy::seeded(42);
        let mut c = RandomPolicy::seeded(7);
        let seq_a: Vec<Offset> = (0..50).map(|_| a.next_offset(&r).unwrap()).collect();
        let seq_b: Vec<Offset> = (0..50).map(|_| b.next_offset(&r).unwrap()).collect();
        let seq_c: Vec<Offset> = (0..50).map(|_| c.next_offset(&r).unwrap()).collect();
        assert_eq!(seq_a, seq_b, "same seed, same sequence");
        assert_ne!(seq_a, seq_c, "different seed, different sequence");
        assert!(seq_a.iter().all(|o| o.in_range(&fabric)));
    }

    #[test]
    fn health_aware_avoids_hot_cells() {
        let fabric = Fabric::be();
        let mut tracker = UtilizationTracker::new(&fabric);
        // Hammer the top-left cell.
        for _ in 0..10 {
            tracker.record_execution(&[(0, 0)], 1);
        }
        let footprint = [(0u32, 0u32)];
        let mut p = HealthAwarePolicy;
        let o = p.next_offset(&req(&fabric, &tracker, &footprint, false)).unwrap();
        assert_ne!(o, Offset::ORIGIN, "must dodge the stressed corner");
    }

    #[test]
    fn pristine_mask_leaves_decision_streams_untouched() {
        // A mask with no dead cells must be indistinguishable from no mask
        // at all — including the random policy's draw count.
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32), (0, 1)];
        let mask = FaultMask::healthy(&fabric);
        let bare = req(&fabric, &tracker, &footprint, false);
        let with_mask = masked(&bare, &mask);
        let mut a = RandomPolicy::seeded(42);
        let mut b = RandomPolicy::seeded(42);
        for _ in 0..50 {
            assert_eq!(a.next_offset(&bare), b.next_offset(&with_mask));
        }
        let mut ra = RotationPolicy::new(Snake);
        let mut rb = RotationPolicy::new(Snake);
        for _ in 0..50 {
            assert_eq!(ra.next_offset(&bare), rb.next_offset(&with_mask));
        }
    }

    #[test]
    fn baseline_dies_with_its_corner() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32)];
        let mut mask = FaultMask::healthy(&fabric);
        mask.mark_dead(0, 0);
        let r = req(&fabric, &tracker, &footprint, false);
        assert_eq!(BaselinePolicy.next_offset(&masked(&r, &mask)), None);
        // A failure elsewhere leaves the baseline untouched.
        let mut elsewhere = FaultMask::healthy(&fabric);
        elsewhere.mark_dead(1, 9);
        assert_eq!(BaselinePolicy.next_offset(&masked(&r, &elsewhere)), Some(Offset::ORIGIN));
    }

    #[test]
    fn rotation_skips_dead_pivots_and_reports_exhaustion() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32)];
        let mut mask = FaultMask::healthy(&fabric);
        mask.mark_dead(0, 1); // the raster pattern's second stop
        let mut p = RotationPolicy::new(Raster);
        let r = req(&fabric, &tracker, &footprint, false);
        let m = masked(&r, &mask);
        assert_eq!(p.next_offset(&m), Some(Offset::new(0, 0)));
        assert_eq!(p.next_offset(&m), Some(Offset::new(0, 2)), "skips the dead pivot");
        // Kill everything: the walk exhausts a full period and gives up.
        let mut all_dead = FaultMask::healthy(&fabric);
        for row in 0..fabric.rows {
            for col in 0..fabric.cols {
                all_dead.mark_dead(row, col);
            }
        }
        assert_eq!(p.next_offset(&masked(&r, &all_dead)), None);
    }

    #[test]
    fn coarse_rotation_vacates_a_freshly_dead_resident_pivot() {
        let fabric = Fabric::be();
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32)];
        let mut p = RotationPolicy::with_granularity(Raster, MovementGranularity::PerLoad);
        let stay = req(&fabric, &tracker, &footprint, false);
        let resident = p.next_offset(&stay).unwrap();
        assert_eq!(p.next_offset(&stay), Some(resident), "no switch, stays put");
        // The FU under the resident pivot fails: the next request must move
        // even without a configuration switch.
        let mut mask = FaultMask::healthy(&fabric);
        mask.mark_dead(resident.row, resident.col);
        let moved = p.next_offset(&masked(&stay, &mask)).unwrap();
        assert_ne!(moved, resident, "dead resident pivot forces a move");
    }

    #[test]
    fn random_only_draws_legal_placements() {
        let fabric = Fabric::new(2, 4);
        let tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32)];
        let mut mask = FaultMask::healthy(&fabric);
        // Leave exactly two cells alive.
        for (r, c) in [(0, 0), (0, 1), (0, 2), (1, 0), (1, 1), (1, 2)] {
            mask.mark_dead(r, c);
        }
        let mut p = RandomPolicy::seeded(7);
        let r = req(&fabric, &tracker, &footprint, false);
        let m = masked(&r, &mask);
        for _ in 0..100 {
            let o = p.next_offset(&m).unwrap();
            assert!(!mask.is_dead(o.apply(&fabric, 0, 0).0, o.apply(&fabric, 0, 0).1));
        }
        mask.mark_dead(0, 3);
        mask.mark_dead(1, 3);
        assert_eq!(p.next_offset(&masked(&r, &mask)), None, "no legal placement left");
    }

    #[test]
    fn health_aware_skips_dead_cells() {
        let fabric = Fabric::new(2, 4);
        let mut tracker = UtilizationTracker::new(&fabric);
        // (1,3) is the coolest cell, but it is dead; (1,2) is next-coolest.
        for (cell, n) in [
            ((0, 0), 9),
            ((0, 1), 8),
            ((0, 2), 7),
            ((0, 3), 6),
            ((1, 0), 5),
            ((1, 1), 4),
            ((1, 2), 3),
        ] {
            for _ in 0..n {
                tracker.record_execution(&[cell], 1);
            }
        }
        let mut mask = FaultMask::healthy(&fabric);
        mask.mark_dead(1, 3);
        let footprint = [(0u32, 0u32)];
        let r = req(&fabric, &tracker, &footprint, false);
        let o = HealthAwarePolicy.next_offset(&masked(&r, &mask)).unwrap();
        assert_eq!(o.apply(&fabric, 0, 0), (1, 2), "coolest *live* cell wins");
        // All cells dead: even the oracle is out of options.
        let mut all_dead = FaultMask::healthy(&fabric);
        for row in 0..fabric.rows {
            for col in 0..fabric.cols {
                all_dead.mark_dead(row, col);
            }
        }
        assert_eq!(HealthAwarePolicy.next_offset(&masked(&r, &all_dead)), None);
    }
}
