//! Per-FU utilization accounting and distribution statistics.

use cgra::Fabric;
use serde::{Deserialize, Serialize};
use tracing::{event, Level};

/// Records which physical FU cells each configuration execution touched.
///
/// Two weightings are tracked (DESIGN.md §4.1):
///
/// * **execution-weighted** (the paper's headline metric, "used by X% of the
///   CGRA configurations"): the fraction of configuration executions in
///   which the FU was active;
/// * **column-time weighted**: the fraction of executed fabric column-slots
///   during which the FU was busy.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use uaware::UtilizationTracker;
///
/// let fabric = Fabric::be();
/// let mut t = UtilizationTracker::new(&fabric);
/// t.record_execution(&[(0, 0), (0, 1)], 2);
/// t.record_execution(&[(0, 0)], 1);
/// let grid = t.utilization();
/// assert_eq!(grid.value(0, 0), 1.0);  // active in both executions
/// assert_eq!(grid.value(0, 1), 0.5);  // active in one of two
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilizationTracker {
    rows: u32,
    cols: u32,
    col_bandwidth: u32,
    exec_counts: Vec<u64>,
    busy_slots: Vec<u64>,
    stress_counts: Vec<u64>,
    executions: u64,
    total_col_slots: u64,
}

impl UtilizationTracker {
    /// Creates a tracker matching `fabric`'s geometry, carrying the
    /// fabric's per-column interconnect budget for the bandwidth-contention
    /// stress accounting (DESIGN.md §14).
    pub fn new(fabric: &Fabric) -> UtilizationTracker {
        let n = fabric.fu_count() as usize;
        UtilizationTracker {
            rows: fabric.rows,
            cols: fabric.cols,
            col_bandwidth: fabric.col_bandwidth,
            exec_counts: vec![0; n],
            busy_slots: vec![0; n],
            stress_counts: vec![0; n],
            executions: 0,
            total_col_slots: 0,
        }
    }

    /// Records one configuration execution: the physical cells it occupied
    /// and the number of columns it ran for.
    ///
    /// With a finite column bandwidth budget `b`, each active cell in a
    /// column occupied by `o > b` FUs accrues `ceil(o / b)` stress instead
    /// of 1 — the serialization slots an over-subscribed interconnect costs
    /// show up as extra effective NBTI duty on the winner FUs (DESIGN.md
    /// §14). With the default unlimited budget, stress equals the execution
    /// count and every downstream number is bit-identical to the
    /// pre-bandwidth model.
    ///
    /// # Panics
    ///
    /// Panics if a cell lies outside the tracked geometry.
    pub fn record_execution(&mut self, active_cells: &[(u32, u32)], cols_used: u32) {
        event!(Level::TRACE, "tracker.executions", "add" = 1);
        self.executions += 1;
        self.total_col_slots += cols_used as u64;
        let mut oversub_cells = 0u64;
        for &(r, c) in active_cells {
            assert!(r < self.rows && c < self.cols, "cell ({r},{c}) outside fabric");
            let i = (r * self.cols + c) as usize;
            self.exec_counts[i] += 1;
            self.busy_slots[i] += 1;
            let stress = if self.col_bandwidth == 0 {
                1
            } else {
                // Column occupancy of this execution; the scan stays
                // allocation-free and only runs on budgeted fabrics.
                let occupancy = active_cells.iter().filter(|&&(_, cc)| cc == c).count() as u64;
                occupancy.div_ceil(self.col_bandwidth as u64)
            };
            if stress > 1 {
                oversub_cells += 1;
            }
            self.stress_counts[i] += stress;
        }
        if oversub_cells > 0 {
            event!(Level::TRACE, "cgra.bandwidth.oversub", "add" = oversub_cells);
        }
    }

    /// Merges another tracker's observations (e.g. per-benchmark trackers
    /// into a suite-level one).
    ///
    /// # Panics
    ///
    /// Panics on geometry mismatch.
    pub fn merge(&mut self, other: &UtilizationTracker) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "geometry mismatch");
        assert_eq!(self.col_bandwidth, other.col_bandwidth, "bandwidth budget mismatch");
        for (a, b) in self.exec_counts.iter_mut().zip(&other.exec_counts) {
            *a += b;
        }
        for (a, b) in self.busy_slots.iter_mut().zip(&other.busy_slots) {
            *a += b;
        }
        for (a, b) in self.stress_counts.iter_mut().zip(&other.stress_counts) {
            *a += b;
        }
        self.executions += other.executions;
        self.total_col_slots += other.total_col_slots;
    }

    /// Total configuration executions recorded.
    pub fn executions(&self) -> u64 {
        self.executions
    }

    /// Tracked fabric rows.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Tracked fabric columns.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// The raw per-FU execution counters in row-major order — the
    /// numerators of [`utilization`](Self::utilization). Epoch-sampling
    /// observers snapshot this slice (integer state, exactly mergeable)
    /// instead of the derived `f64` grid (DESIGN.md §10).
    pub fn exec_counts(&self) -> &[u64] {
        &self.exec_counts
    }

    /// Raw execution count of the FU at `(row, col)` — the numerator of
    /// [`utilization`](Self::utilization), exposed so per-decision consumers
    /// (the health-aware scan) can rank cells without materializing a grid.
    ///
    /// # Panics
    ///
    /// Panics if the cell lies outside the tracked geometry.
    pub fn exec_count(&self, row: u32, col: u32) -> u64 {
        assert!(row < self.rows && col < self.cols, "cell ({row},{col}) outside fabric");
        self.exec_counts[(row * self.cols + col) as usize]
    }

    /// Execution-weighted utilization grid (the paper's metric).
    pub fn utilization(&self) -> UtilizationGrid {
        let denom = self.executions.max(1) as f64;
        UtilizationGrid {
            rows: self.rows,
            cols: self.cols,
            values: self.exec_counts.iter().map(|c| *c as f64 / denom).collect(),
        }
    }

    /// The raw per-FU stress counters in row-major order — the numerators
    /// of [`duty_cycles`](Self::duty_cycles). On an unlimited-bandwidth
    /// fabric they equal [`exec_counts`](Self::exec_counts); on a budgeted
    /// one, cells on over-subscribed columns run ahead (DESIGN.md §14).
    pub fn stress_counts(&self) -> &[u64] {
        &self.stress_counts
    }

    /// The per-FU NBTI duty cycles of a run that spanned `elapsed_cycles`
    /// system cycles (DESIGN.md §11): under the paper's model a unit's
    /// stress duty *is* its execution-weighted utilization, but a raw
    /// `exec_counts / executions` division is hazardous at the edges —
    /// an empty run (`executions == 0`) or a zero-length one
    /// (`elapsed_cycles == 0`, e.g. a mission that never got to execute)
    /// exerted no stress at all, so both must yield the all-zero grid
    /// instead of a division callers would have to guard by hand.
    ///
    /// On a fabric with a finite column bandwidth budget the numerator is
    /// the *stress* count — execution count plus the serialization surplus
    /// of over-subscribed columns — capped at a duty of 1.0, since an FU
    /// cannot be stressed for more than the full run (DESIGN.md §14). With
    /// the default unlimited budget this is bit-identical to
    /// [`utilization`](Self::utilization).
    ///
    /// # Examples
    ///
    /// ```
    /// use cgra::Fabric;
    /// use uaware::UtilizationTracker;
    ///
    /// let mut t = UtilizationTracker::new(&Fabric::be());
    /// assert_eq!(t.duty_cycles(0).max(), 0.0);      // zero-length run
    /// assert_eq!(t.duty_cycles(1_000).max(), 0.0);  // no executions yet
    /// t.record_execution(&[(0, 0)], 2);
    /// assert_eq!(t.duty_cycles(1_000).value(0, 0), 1.0);
    /// ```
    pub fn duty_cycles(&self, elapsed_cycles: u64) -> UtilizationGrid {
        if elapsed_cycles == 0 || self.executions == 0 {
            return UtilizationGrid {
                rows: self.rows,
                cols: self.cols,
                values: vec![0.0; self.exec_counts.len()],
            };
        }
        let denom = self.executions.max(1) as f64;
        UtilizationGrid {
            rows: self.rows,
            cols: self.cols,
            values: self.stress_counts.iter().map(|c| (*c as f64 / denom).min(1.0)).collect(),
        }
    }

    /// Column-time-weighted utilization grid.
    pub fn time_utilization(&self) -> UtilizationGrid {
        let denom = self.total_col_slots.max(1) as f64;
        UtilizationGrid {
            rows: self.rows,
            cols: self.cols,
            values: self.busy_slots.iter().map(|c| *c as f64 / denom).collect(),
        }
    }
}

/// A per-FU utilization map with distribution statistics.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct UtilizationGrid {
    rows: u32,
    cols: u32,
    values: Vec<f64>,
}

impl UtilizationGrid {
    /// Builds a grid from row-major values.
    ///
    /// # Panics
    ///
    /// Panics if `values.len() != rows * cols` or any value is outside
    /// `[0, 1]`.
    pub fn from_values(rows: u32, cols: u32, values: Vec<f64>) -> UtilizationGrid {
        assert_eq!(values.len(), (rows * cols) as usize, "value count mismatch");
        assert!(values.iter().all(|v| (0.0..=1.0).contains(v)), "utilization outside [0, 1]");
        UtilizationGrid { rows, cols, values }
    }

    /// Builds an execution-weighted grid from raw per-FU execution counters
    /// (a [`UtilizationTracker::exec_counts`] snapshot) and the execution
    /// total they were taken at. With `executions == 0` every cell is 0.
    ///
    /// # Panics
    ///
    /// Panics if `counts.len() != rows * cols` or any count exceeds
    /// `executions`.
    ///
    /// # Examples
    ///
    /// ```
    /// use uaware::UtilizationGrid;
    ///
    /// let g = UtilizationGrid::from_counts(1, 2, &[3, 1], 4);
    /// assert_eq!(g.value(0, 0), 0.75);
    /// assert_eq!(g.value(0, 1), 0.25);
    /// ```
    pub fn from_counts(rows: u32, cols: u32, counts: &[u64], executions: u64) -> UtilizationGrid {
        let denom = executions.max(1) as f64;
        UtilizationGrid::from_values(rows, cols, counts.iter().map(|c| *c as f64 / denom).collect())
    }

    /// Grid height.
    pub fn rows(&self) -> u32 {
        self.rows
    }

    /// Grid width.
    pub fn cols(&self) -> u32 {
        self.cols
    }

    /// Utilization of the FU at `(row, col)`.
    ///
    /// # Panics
    ///
    /// Panics if out of range.
    pub fn value(&self, row: u32, col: u32) -> f64 {
        assert!(row < self.rows && col < self.cols, "cell out of range");
        self.values[(row * self.cols + col) as usize]
    }

    /// Row-major values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Highest per-FU utilization — the component that dies first.
    pub fn max(&self) -> f64 {
        self.values.iter().copied().fold(0.0, f64::max)
    }

    /// Lowest per-FU utilization.
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(1.0, f64::min)
    }

    /// Mean utilization (the paper's "average occupation").
    pub fn mean(&self) -> f64 {
        self.values.iter().sum::<f64>() / self.values.len() as f64
    }

    /// Population standard deviation.
    pub fn std_dev(&self) -> f64 {
        let m = self.mean();
        (self.values.iter().map(|v| (v - m).powi(2)).sum::<f64>() / self.values.len() as f64).sqrt()
    }

    /// Coefficient of variation (σ/µ); 0 for perfectly balanced utilization.
    pub fn cov(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Gini coefficient of the utilization distribution (0 = perfectly
    /// uniform, →1 = all stress on one FU).
    pub fn gini(&self) -> f64 {
        let n = self.values.len() as f64;
        let mut sorted = self.values.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN utilizations"));
        let total: f64 = sorted.iter().sum();
        if total == 0.0 {
            return 0.0;
        }
        let weighted: f64 = sorted.iter().enumerate().map(|(i, v)| (i as f64 + 1.0) * v).sum();
        (2.0 * weighted) / (n * total) - (n + 1.0) / n
    }

    /// Histogram of per-FU utilizations over `[0, 1]` with `bins` equal bins
    /// (paper Fig. 8, top: the utilization PDF).
    ///
    /// # Panics
    ///
    /// Panics if `bins == 0`.
    pub fn histogram(&self, bins: usize) -> Histogram {
        assert!(bins > 0, "need at least one bin");
        let mut counts = vec![0u64; bins];
        for v in &self.values {
            let i = ((v * bins as f64) as usize).min(bins - 1);
            counts[i] += 1;
        }
        Histogram { bins, counts, total: self.values.len() as u64 }
    }

    /// Renders the grid as the percent heatmap the paper's Figs. 1 and 7
    /// print (row 1 at the bottom, like the paper's axes).
    pub fn render_heatmap(&self) -> String {
        let mut out = String::new();
        for row in (0..self.rows).rev() {
            out.push_str(&format!("row {:>2} |", row + 1));
            for col in 0..self.cols {
                out.push_str(&format!(" {:>4.0}%", 100.0 * self.value(row, col)));
            }
            out.push('\n');
        }
        out.push_str("        ");
        for col in 0..self.cols {
            out.push_str(&format!(" c{:<4}", col + 1));
        }
        out.push('\n');
        out
    }
}

/// A binned utilization distribution.
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Histogram {
    /// Number of equal-width bins over `[0, 1]`.
    pub bins: usize,
    /// FU count per bin.
    pub counts: Vec<u64>,
    /// Total FUs.
    pub total: u64,
}

impl Histogram {
    /// Probability density per bin (integrates to 1 over `[0, 1]`).
    pub fn density(&self) -> Vec<f64> {
        let w = 1.0 / self.bins as f64;
        self.counts.iter().map(|c| *c as f64 / (self.total.max(1) as f64 * w)).collect()
    }

    /// `(bin_center, density)` pairs, ready for plotting.
    pub fn series(&self) -> Vec<(f64, f64)> {
        let w = 1.0 / self.bins as f64;
        self.density().into_iter().enumerate().map(|(i, d)| ((i as f64 + 0.5) * w, d)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid(values: Vec<f64>) -> UtilizationGrid {
        UtilizationGrid::from_values(1, values.len() as u32, values)
    }

    #[test]
    fn tracker_weightings_differ() {
        let fabric = Fabric::be();
        let mut t = UtilizationTracker::new(&fabric);
        // Execution 1: cell (0,0) active, 10 columns.
        t.record_execution(&[(0, 0)], 10);
        // Execution 2: cell (0,1) active, 2 columns.
        t.record_execution(&[(0, 1)], 2);
        let exec = t.utilization();
        assert_eq!(exec.value(0, 0), 0.5);
        assert_eq!(exec.value(0, 1), 0.5);
        let time = t.time_utilization();
        assert!((time.value(0, 0) - 1.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn duty_cycles_guard_degenerate_runs() {
        let fabric = Fabric::be();
        let mut t = UtilizationTracker::new(&fabric);
        // Zero-length and empty runs both exert zero stress.
        assert!(t.duty_cycles(0).values().iter().all(|&v| v == 0.0));
        assert!(t.duty_cycles(500).values().iter().all(|&v| v == 0.0));
        t.record_execution(&[(0, 0), (1, 1)], 2);
        t.record_execution(&[(0, 0)], 2);
        let duty = t.duty_cycles(1_000);
        assert_eq!(duty.value(0, 0), 1.0);
        assert_eq!(duty.value(1, 1), 0.5);
        assert_eq!(duty, t.utilization(), "a non-degenerate run matches the paper metric");
        // A recorded run of zero elapsed cycles is still degenerate.
        assert!(t.duty_cycles(0).values().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn bandwidth_budget_inflates_duty_on_oversubscribed_columns() {
        let mut fabric = Fabric::fig1(); // 4 x 8
        fabric.col_bandwidth = 2;
        let mut t = UtilizationTracker::new(&fabric);
        // Column 0 hosts 3 active FUs against a budget of 2 -> each accrues
        // ceil(3/2) = 2 stress; column 1 hosts 1 FU -> within budget.
        t.record_execution(&[(0, 0), (1, 0), (2, 0), (0, 1)], 2);
        t.record_execution(&[(0, 1)], 1);
        assert_eq!(t.exec_count(0, 0), 1, "execution counts stay the paper metric");
        assert_eq!(t.stress_counts()[0], 2);
        let duty = t.duty_cycles(1_000);
        assert_eq!(duty.value(0, 0), 1.0, "2 stress / 2 executions");
        assert_eq!(duty.value(0, 1), 1.0, "within budget: stress == executions");
        assert_eq!(t.utilization().value(0, 0), 0.5, "utilization is unaffected");
        // Heavier oversubscription saturates at a duty of 1.0.
        let mut starved = fabric;
        starved.col_bandwidth = 1;
        let mut s = UtilizationTracker::new(&starved);
        s.record_execution(&[(0, 0), (1, 0), (2, 0), (3, 0)], 1);
        s.record_execution(&[(0, 7)], 1);
        assert_eq!(s.stress_counts()[0], 4);
        assert_eq!(s.duty_cycles(10).value(0, 0), 1.0, "duty caps at the full run");
    }

    #[test]
    fn unlimited_bandwidth_keeps_duty_equal_to_utilization() {
        let fabric = Fabric::fig1();
        let mut t = UtilizationTracker::new(&fabric);
        t.record_execution(&[(0, 0), (1, 0), (2, 0), (3, 0)], 2);
        t.record_execution(&[(0, 0)], 1);
        assert_eq!(t.stress_counts(), t.exec_counts());
        assert_eq!(t.duty_cycles(100), t.utilization());
    }

    #[test]
    fn merge_adds_observations() {
        let fabric = Fabric::be();
        let mut a = UtilizationTracker::new(&fabric);
        let mut b = UtilizationTracker::new(&fabric);
        a.record_execution(&[(0, 0)], 1);
        b.record_execution(&[(1, 1)], 1);
        a.merge(&b);
        assert_eq!(a.executions(), 2);
        assert_eq!(a.utilization().value(0, 0), 0.5);
        assert_eq!(a.utilization().value(1, 1), 0.5);
    }

    #[test]
    fn statistics() {
        let g = grid(vec![0.0, 0.5, 1.0, 0.5]);
        assert_eq!(g.max(), 1.0);
        assert_eq!(g.min(), 0.0);
        assert_eq!(g.mean(), 0.5);
        assert!(g.std_dev() > 0.0);
        assert!(g.cov() > 0.0);
        let uniform = grid(vec![0.4; 8]);
        assert!(uniform.cov().abs() < 1e-12);
        assert!(uniform.gini().abs() < 1e-12);
        // All stress on one FU: Gini approaches (n-1)/n.
        let skewed = grid(vec![0.0, 0.0, 0.0, 1.0]);
        assert!((skewed.gini() - 0.75).abs() < 1e-12);
    }

    #[test]
    fn histogram_density_integrates_to_one() {
        let g = grid(vec![0.05, 0.1, 0.2, 0.9, 0.97, 0.5, 0.5, 0.45]);
        let h = g.histogram(20);
        assert_eq!(h.counts.iter().sum::<u64>(), 8);
        let integral: f64 = h.density().iter().sum::<f64>() / 20.0;
        assert!((integral - 1.0).abs() < 1e-12);
        assert_eq!(h.series().len(), 20);
    }

    #[test]
    fn histogram_boundary_values() {
        let g = grid(vec![0.0, 1.0]);
        let h = g.histogram(10);
        assert_eq!(h.counts[0], 1);
        assert_eq!(h.counts[9], 1, "u=1.0 lands in the last bin");
    }

    #[test]
    fn heatmap_renders_every_cell() {
        let g = UtilizationGrid::from_values(2, 3, vec![0.1, 0.2, 0.3, 0.4, 0.5, 0.6]);
        let s = g.render_heatmap();
        for pct in ["10%", "20%", "30%", "40%", "50%", "60%"] {
            assert!(s.contains(pct), "missing {pct} in:\n{s}");
        }
    }

    #[test]
    #[should_panic(expected = "outside fabric")]
    fn tracker_rejects_bad_cells() {
        let mut t = UtilizationTracker::new(&Fabric::be());
        t.record_execution(&[(5, 0)], 1);
    }
}
