//! Property tests for the contribution crate: rotation converges to
//! near-uniform utilization for arbitrary configuration footprints, and the
//! policies respect their contracts.

use proptest::prelude::*;

use cgra::{Fabric, Offset};
use uaware::{
    AllocRequest, AllocationPolicy, BaselinePolicy, ColumnMajor, HealthAwarePolicy,
    MovementPattern, Raster, RotationPolicy, Snake, UtilizationTracker,
};

fn any_fabric() -> impl Strategy<Value = Fabric> {
    ((1u32..=8), (4u32..=32)).prop_map(|(r, c)| Fabric::new(r, c))
}

/// A random, connected-ish footprint of up to 8 cells inside the fabric.
fn any_footprint(fabric: Fabric) -> impl Strategy<Value = Vec<(u32, u32)>> {
    let rows = fabric.rows;
    let cols = fabric.cols;
    proptest::collection::btree_set((0u32..rows, 0u32..cols), 1..=8)
        .prop_map(|set| set.into_iter().collect())
}

fn drive(
    policy: &mut dyn AllocationPolicy,
    fabric: &Fabric,
    footprint: &[(u32, u32)],
    executions: u64,
) -> UtilizationTracker {
    let mut tracker = UtilizationTracker::new(fabric);
    for _ in 0..executions {
        let off = {
            let req = AllocRequest {
                fabric,
                config_switch: false,
                footprint,
                tracker: &tracker,
                faults: None,
                demands: &[],
            };
            policy.next_offset(&req).expect("pristine fabric always allocates")
        };
        assert!(off.in_range(fabric), "{}: offset out of range", policy.name());
        let cells: Vec<(u32, u32)> =
            footprint.iter().map(|&(r, c)| off.apply(fabric, r, c)).collect();
        tracker.record_execution(&cells, 4);
    }
    tracker
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn rotation_converges_to_uniformity(
        fabric in any_fabric(),
        seed_footprint in (0u32..8, 0u32..32),
    ) {
        let footprint = vec![(
            seed_footprint.0 % fabric.rows,
            seed_footprint.1 % fabric.cols,
        )];
        // Whole number of pattern periods: every cell visited equally often.
        let periods = 3u64;
        let execs = periods * fabric.fu_count() as u64;
        let tracker = drive(&mut RotationPolicy::new(Snake), &fabric, &footprint, execs);
        let grid = tracker.utilization();
        // One-cell footprint + full coverage => exactly uniform utilization.
        prop_assert!((grid.max() - grid.min()).abs() < 1e-9,
            "max {} min {}", grid.max(), grid.min());
        prop_assert!((grid.mean() - 1.0 / fabric.fu_count() as f64).abs() < 1e-9);
    }

    #[test]
    fn rotation_beats_baseline_for_any_footprint(
        (fabric, footprint) in any_fabric().prop_flat_map(|f| {
            any_footprint(f).prop_map(move |fp| (f, fp))
        }),
    ) {
        prop_assume!((footprint.len() as u32) < fabric.fu_count());
        let execs = 4 * fabric.fu_count() as u64;
        let base = drive(&mut BaselinePolicy, &fabric, &footprint, execs).utilization();
        let rot = drive(&mut RotationPolicy::new(Snake), &fabric, &footprint, execs)
            .utilization();
        prop_assert!(rot.max() < base.max() + 1e-12,
            "rotation {} vs baseline {}", rot.max(), base.max());
        // Baseline concentrates all stress on the footprint.
        prop_assert!((base.max() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn patterns_have_equal_long_run_behaviour(
        fabric in any_fabric(),
    ) {
        // All full-coverage patterns give identical (uniform) long-run
        // distributions for a single-cell footprint.
        let footprint = vec![(0, 0)];
        let execs = 2 * fabric.fu_count() as u64;
        let snake = drive(&mut RotationPolicy::new(Snake), &fabric, &footprint, execs)
            .utilization();
        let raster = drive(&mut RotationPolicy::new(Raster), &fabric, &footprint, execs)
            .utilization();
        let colmaj = drive(&mut RotationPolicy::new(ColumnMajor), &fabric, &footprint, execs)
            .utilization();
        prop_assert!((snake.max() - raster.max()).abs() < 1e-12);
        prop_assert!((raster.max() - colmaj.max()).abs() < 1e-12);
        prop_assert!((snake.gini() - raster.gini()).abs() < 1e-9);
    }

    #[test]
    fn health_aware_never_picks_the_hottest_start(
        fabric in any_fabric(),
        hot in (0u32..8, 0u32..32),
    ) {
        prop_assume!(fabric.fu_count() > 1);
        let hot = (hot.0 % fabric.rows, hot.1 % fabric.cols);
        let mut tracker = UtilizationTracker::new(&fabric);
        for _ in 0..5 {
            tracker.record_execution(&[hot], 1);
        }
        let footprint = [(0u32, 0u32)];
        let req = AllocRequest {
            fabric: &fabric,
            config_switch: false,
            footprint: &footprint,
            tracker: &tracker,
            faults: None,
            demands: &[],
        };
        let off = HealthAwarePolicy.next_offset(&req).unwrap();
        prop_assert_ne!(off.apply(&fabric, 0, 0), hot,
            "oracle must avoid the stressed cell");
    }

    #[test]
    fn pattern_periods_cover_exactly_once(fabric in any_fabric(), start in 0u64..1000) {
        // Coverage holds from any starting step, not only step 0.
        for pattern in [&Snake as &dyn MovementPattern, &Raster, &ColumnMajor] {
            let period = pattern.period(&fabric);
            let mut seen = std::collections::HashSet::new();
            for s in start..start + period {
                let o = pattern.offset_at(&fabric, s);
                seen.insert((o.row, o.col));
            }
            prop_assert_eq!(seen.len() as u64, period, "{}", pattern.name());
        }
    }

    #[test]
    fn baseline_is_stateless(fabric in any_fabric(), n in 1usize..50) {
        let tracker = UtilizationTracker::new(&fabric);
        let mut p = BaselinePolicy;
        for _ in 0..n {
            let req = AllocRequest {
                fabric: &fabric,
                config_switch: true,
                footprint: &[],
                tracker: &tracker,
                faults: None,
                demands: &[],
            };
            prop_assert_eq!(p.next_offset(&req), Some(Offset::ORIGIN));
        }
    }
}
