//! Pinned decision streams: the exact offsets every policy produced on
//! uniform pristine fabrics *before* heterogeneous fabrics existed. The
//! literals below were captured from the pre-`FabricSpec` implementation;
//! any refactor of the allocation path must keep them bit-identical —
//! whether or not the request carries capability demands or a healthy fault
//! mask (ISSUE 8 acceptance, DESIGN.md §14).

use cgra::op::{LoadFunc, MulFunc, OpKind};
use cgra::{Fabric, FaultMask};
use uaware::{
    AllocRequest, AllocationPolicy, BaselinePolicy, ExactPolicy, HealthAwarePolicy, RandomPolicy,
    RotationPolicy, Snake, UtilizationTracker,
};

/// The decision stream captured on the pre-heterogeneity implementation:
/// `RandomPolicy::seeded(0xDAC2020)` on the uniform BE fabric.
const PINNED_RANDOM: [(u32, u32); 12] = [
    (0, 4),
    (0, 8),
    (0, 4),
    (0, 2),
    (0, 10),
    (0, 9),
    (0, 13),
    (1, 4),
    (0, 13),
    (0, 12),
    (0, 11),
    (1, 3),
];

fn warmed_tracker(fabric: &Fabric) -> UtilizationTracker {
    let mut tracker = UtilizationTracker::new(fabric);
    for i in 0..6u32 {
        tracker.record_execution(&[(i % 2, i % 16), (i % 2, (i + 1) % 16)], 2);
    }
    tracker
}

fn stream(policy: &mut dyn AllocationPolicy, req: &AllocRequest<'_>, n: usize) -> Vec<(u32, u32)> {
    (0..n).map(|_| policy.next_offset(req).map(|o| (o.row, o.col)).unwrap()).collect()
}

fn assert_pinned(req: &AllocRequest<'_>, label: &str) {
    assert_eq!(
        stream(&mut BaselinePolicy, req, 4),
        vec![(0, 0); 4],
        "baseline stream changed ({label})"
    );
    assert_eq!(
        stream(&mut RotationPolicy::new(Snake), req, 12),
        (0..12).map(|c| (0, c)).collect::<Vec<_>>(),
        "rotation stream changed ({label})"
    );
    assert_eq!(
        stream(&mut RandomPolicy::seeded(0xDAC2020), req, 12),
        PINNED_RANDOM.to_vec(),
        "random stream changed ({label})"
    );
    assert_eq!(
        stream(&mut HealthAwarePolicy, req, 4),
        vec![(0, 7); 4],
        "health-aware stream changed ({label})"
    );
}

#[test]
fn uniform_pristine_streams_match_the_pre_heterogeneity_capture() {
    let fabric = Fabric::be();
    let tracker = warmed_tracker(&fabric);
    let footprint = [(0u32, 0u32), (0, 1), (1, 0)];
    let bare = AllocRequest {
        fabric: &fabric,
        config_switch: false,
        footprint: &footprint,
        tracker: &tracker,
        faults: None,
        demands: &[],
    };
    assert_pinned(&bare, "bare request");

    // Capability demands on a *uniform* fabric must not perturb a single
    // decision — the DESIGN.md §14 fast path.
    let demands = [
        (0u32, 0u32, OpKind::Mul(MulFunc::Mul)),
        (1, 0, OpKind::Load { func: LoadFunc::W, offset: 0 }),
    ];
    assert_pinned(&AllocRequest { demands: &demands, ..bare }, "with demands");

    // Neither must a healthy fault mask (the PR-5 guarantee), alone or
    // combined with demands.
    let mask = FaultMask::healthy(&fabric);
    assert_pinned(&AllocRequest { faults: Some(&mask), ..bare }, "with healthy mask");
    assert_pinned(
        &AllocRequest { faults: Some(&mask), demands: &demands, ..bare },
        "with healthy mask and demands",
    );
}

/// The exact oracle's decision stream on the same warmed fixture, captured
/// when the branch-and-bound core landed (DESIGN.md §15): a jointly-planned
/// 12-slot epoch spreading the footprint leximin-optimally over the BE
/// fabric's cold cells.
const PINNED_EXACT_EPOCH: [(u32, u32); 12] = [
    (0, 7),
    (0, 9),
    (0, 11),
    (0, 13),
    (1, 15),
    (0, 5),
    (0, 8),
    (0, 10),
    (0, 12),
    (0, 14),
    (0, 0),
    (0, 2),
];

#[test]
fn exact_streams_match_the_branch_and_bound_capture() {
    let fabric = Fabric::be();
    let tracker = warmed_tracker(&fabric);
    let footprint = [(0u32, 0u32), (0, 1), (1, 0)];
    let bare = AllocRequest {
        fabric: &fabric,
        config_switch: false,
        footprint: &footprint,
        tracker: &tracker,
        faults: None,
        demands: &[],
    };
    let assert_exact = |req: &AllocRequest<'_>, label: &str| {
        // Re-solving against a static tracker is a fixed point: the greedy
        // oracle keeps electing the same leximin-optimal pivot.
        assert_eq!(
            stream(&mut ExactPolicy::new(1), req, 4),
            vec![(0, 7); 4],
            "exact stream changed ({label})"
        );
        assert_eq!(
            stream(&mut ExactPolicy::new(12), req, 12),
            PINNED_EXACT_EPOCH.to_vec(),
            "exact@every-12 stream changed ({label})"
        );
    };
    assert_exact(&bare, "bare request");
    // Like the heuristics, the oracle must not let uniform-fabric demands
    // or a healthy mask perturb a single decision (DESIGN.md §14).
    let demands = [
        (0u32, 0u32, OpKind::Mul(MulFunc::Mul)),
        (1, 0, OpKind::Load { func: LoadFunc::W, offset: 0 }),
    ];
    let mask = FaultMask::healthy(&fabric);
    assert_exact(&AllocRequest { demands: &demands, ..bare }, "with demands");
    assert_exact(
        &AllocRequest { faults: Some(&mask), demands: &demands, ..bare },
        "with healthy mask and demands",
    );
}

#[test]
fn fabric_uniform_streams_match_fabric_new() {
    // `Fabric::uniform` must be indistinguishable from the historical
    // constructor all the way down to the decision streams.
    let fabric = Fabric::uniform(2, 16);
    assert_eq!(fabric, Fabric::be());
    let tracker = warmed_tracker(&fabric);
    let footprint = [(0u32, 0u32), (0, 1), (1, 0)];
    let req = AllocRequest {
        fabric: &fabric,
        config_switch: false,
        footprint: &footprint,
        tracker: &tracker,
        faults: None,
        demands: &[],
    };
    assert_pinned(&req, "Fabric::uniform");
}
