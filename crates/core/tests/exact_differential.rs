//! Differential properties for the exact-mapping oracle (DESIGN.md §15).
//!
//! Two guarantees back the optimality-gap experiment: on small fabrics the
//! branch-and-bound solve equals a brute-force enumeration of every offset
//! tuple (the oracle really is exact), and no heuristic policy's achieved
//! worst-FU stress ever undercuts the jointly-planned exact epoch (the gap
//! table's denominator really is a lower bound).

use proptest::prelude::*;

use cgra::op::{MulFunc, OpKind};
use cgra::{CellClass, ClassMap, Fabric, FaultMask, Offset};
use solve::{solve, MinimaxProblem, OffsetProblem};
use uaware::{AllocRequest, AllocationPolicy, ExactPolicy, PolicySpec, UtilizationTracker};

fn any_small_fabric() -> impl Strategy<Value = Fabric> {
    // Four columns is the geometry floor (memory ops span four columns).
    ((2u32..=4), Just(4u32), any_class_map(), (0u32..=2)).prop_map(|(r, c, classes, bw)| {
        let mut fabric = Fabric::new(r, c);
        fabric.classes = classes;
        fabric.col_bandwidth = bw;
        fabric
    })
}

fn any_class_map() -> impl Strategy<Value = ClassMap> {
    prop_oneof![
        Just(ClassMap::Uniform(CellClass::Full)),
        Just(ClassMap::Uniform(CellClass::Alu)),
        Just(ClassMap::Checker),
        Just(ClassMap::RowStripes),
        Just(ClassMap::ColStripes),
    ]
}

/// Evaluates every `choices^slots` assignment tuple and returns the true
/// minimax objective — exponential, which is why it only runs on ≤4×4
/// fabrics with ≤3 slots.
fn brute_force_minimax(p: &OffsetProblem) -> Option<u64> {
    let (n, k) = (p.slots(), p.choices());
    if k == 0 {
        return None;
    }
    let mut best: Option<u64> = None;
    let mut tuple = vec![0usize; n];
    loop {
        let mut loads: Vec<u64> = (0..p.resources()).map(|r| p.initial_load(r)).collect();
        for (slot, &c) in tuple.iter().enumerate() {
            for &(res, d) in p.deltas(slot, c) {
                loads[res as usize] += d;
            }
        }
        let objective = loads.into_iter().max().unwrap_or(0);
        best = Some(best.map_or(objective, |b| b.min(objective)));
        let mut i = 0;
        loop {
            if i == n {
                return best;
            }
            tuple[i] += 1;
            if tuple[i] < k {
                break;
            }
            tuple[i] = 0;
            i += 1;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn bnb_equals_brute_force_enumeration(
        fabric in any_small_fabric(),
        dead in proptest::collection::vec((0u32..4, 0u32..4), 0..=5),
        initial in proptest::collection::vec(0u64..20, 16),
        slots in 1usize..=3,
        with_demand in 0u8..=1,
    ) {
        let mut mask = FaultMask::healthy(&fabric);
        for (r, c) in dead {
            mask.mark_dead(r % fabric.rows, c % fabric.cols);
        }
        let footprint = [(0u32, 0u32), (0, 1)];
        let demands = [(0u32, 0u32, OpKind::Mul(MulFunc::Mul))];
        let demands: &[(u32, u32, OpKind)] = if with_demand == 1 { &demands } else { &[] };
        let tracker = UtilizationTracker::new(&fabric);
        let req = AllocRequest {
            fabric: &fabric,
            config_switch: true,
            footprint: &footprint,
            tracker: &tracker,
            faults: Some(&mask),
            demands,
        };
        let loads = &initial[..fabric.fu_count() as usize];
        let p = OffsetProblem::new(&fabric, &footprint, loads, slots, |o| req.placement_ok(o));
        match solve(&p) {
            None => prop_assert!(!p.is_feasible(), "solver gave up on a feasible instance"),
            Some(s) => {
                // The returned tuple really achieves the claimed objective…
                let mut achieved: Vec<u64> = loads.to_vec();
                prop_assert_eq!(s.choices.len(), slots);
                for (slot, &c) in s.choices.iter().enumerate() {
                    for &(res, d) in p.deltas(slot, c) {
                        achieved[res as usize] += d;
                    }
                }
                prop_assert_eq!(achieved.into_iter().max().unwrap(), s.objective);
                // …and the objective is the exhaustively-verified optimum.
                prop_assert_eq!(s.objective, brute_force_minimax(&p).unwrap());
            }
        }
    }

    #[test]
    fn exact_epoch_dominates_every_heuristic(
        fabric in any_small_fabric(),
        dead in proptest::collection::vec((0u32..4, 0u32..4), 0..=4),
        epoch in 4usize..=8,
    ) {
        // Under static legality (a fixed mask, no demand churn), any
        // heuristic's K-allocation pivot sequence is one feasible solution
        // of the same K-slot minimax problem the `exact@every-K` oracle
        // solves — so the oracle's achieved worst-FU stress can never
        // exceed the heuristic's.
        let mut mask = FaultMask::healthy(&fabric);
        for (r, c) in dead {
            mask.mark_dead(r % fabric.rows, c % fabric.cols);
        }
        let footprint = [(0u32, 0u32), (0, 1)];
        if !mask.any_placement(&fabric, &footprint) {
            return Ok(()); // nothing to compare: every policy must starve
        }
        let run = |policy: &mut dyn AllocationPolicy| -> Option<u64> {
            let mut tracker = UtilizationTracker::new(&fabric);
            for _ in 0..epoch {
                let off = {
                    let req = AllocRequest {
                        fabric: &fabric,
                        config_switch: true,
                        footprint: &footprint,
                        tracker: &tracker,
                        faults: Some(&mask),
                        demands: &[],
                    };
                    policy.next_offset(&req)?
                };
                let cells: Vec<(u32, u32)> =
                    footprint.iter().map(|&(r, c)| off.apply(&fabric, r, c)).collect();
                for &(r, c) in &cells {
                    assert!(!mask.is_dead(r, c), "placed on dead FU ({r},{c})");
                }
                tracker.record_execution(&cells, 2);
            }
            Some(tracker.stress_counts().iter().copied().max().unwrap())
        };
        let exact_max = run(&mut ExactPolicy::new(epoch as u32))
            .expect("a legal placement exists, the oracle must find it");
        for spec in PolicySpec::all_specs(&fabric) {
            // A heuristic may legitimately starve where movement is possible
            // (the origin-pinned baseline on a dead corner) — no sequence to
            // compare against then.
            if let Some(heuristic_max) = run(spec.build().as_mut()) {
                prop_assert!(
                    exact_max <= heuristic_max,
                    "{} beat the oracle: {} < {} on {}×{} (bw {})",
                    spec, heuristic_max, exact_max, fabric.rows, fabric.cols,
                    fabric.col_bandwidth
                );
            }
        }
        // The single-step oracle is greedy-optimal per allocation; it has no
        // joint-plan guarantee, but it must still never starve here.
        let _ = run(&mut ExactPolicy::new(1)).expect("greedy oracle starved on a live fabric");
    }
}

/// The doc-example shape, pinned: a warm corner pushes the oracle off it.
#[test]
fn oracle_dodges_warm_cells_deterministically() {
    let fabric = Fabric::new(3, 4);
    let mut tracker = UtilizationTracker::new(&fabric);
    tracker.record_execution(&[(0, 0), (0, 1)], 2);
    let mut oracle = ExactPolicy::new(1);
    let req = AllocRequest {
        fabric: &fabric,
        config_switch: true,
        footprint: &[(0, 0), (0, 1)],
        tracker: &tracker,
        faults: None,
        demands: &[],
    };
    let off = oracle.next_offset(&req).expect("pristine 3×3 allocates");
    assert_ne!(off, Offset::ORIGIN);
}
