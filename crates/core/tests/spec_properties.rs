//! Property tests for the declarative spec layer (DESIGN.md §8): every
//! spec-built policy honours the offset contract on arbitrary fabrics, and
//! the compact string grammar round-trips losslessly.

use proptest::prelude::*;

use cgra::op::{LoadFunc, MulFunc, OpKind};
use cgra::{CellClass, ClassMap, Fabric, FabricSpec, Offset};
use uaware::{AllocRequest, MovementGranularity, PatternSpec, PolicySpec, UtilizationTracker};

fn any_fabric() -> impl Strategy<Value = Fabric> {
    ((1u32..=8), (4u32..=32)).prop_map(|(r, c)| Fabric::new(r, c))
}

fn any_class_map() -> impl Strategy<Value = ClassMap> {
    prop_oneof![
        Just(ClassMap::Uniform(CellClass::Full)),
        Just(ClassMap::Uniform(CellClass::Alu)),
        Just(ClassMap::Uniform(CellClass::AluMem)),
        Just(ClassMap::Uniform(CellClass::AluMul)),
        Just(ClassMap::Checker),
        Just(ClassMap::RowStripes),
        Just(ClassMap::ColStripes),
    ]
}

fn any_fabric_spec() -> impl Strategy<Value = FabricSpec> {
    ((1u32..=64), (1u32..=64), any_class_map(), (1u16..=64), (0u32..=8)).prop_map(
        |(rows, cols, classes, ctx_lines, col_bandwidth)| FabricSpec {
            rows,
            cols,
            classes,
            ctx_lines,
            col_bandwidth,
        },
    )
}

/// A buildable heterogeneous fabric (geometry large enough for memory ops).
fn any_het_fabric() -> impl Strategy<Value = Fabric> {
    ((1u32..=8), (4u32..=32), any_class_map(), (0u32..=4)).prop_map(|(r, c, classes, bw)| {
        let mut fabric = Fabric::new(r, c);
        fabric.classes = classes;
        fabric.col_bandwidth = bw;
        fabric
    })
}

fn any_granularity() -> impl Strategy<Value = MovementGranularity> {
    prop_oneof![
        Just(MovementGranularity::PerExecution),
        Just(MovementGranularity::PerLoad),
        (0u32..=512).prop_map(MovementGranularity::Periodic),
    ]
}

fn any_pattern() -> impl Strategy<Value = PatternSpec> {
    prop_oneof![Just(PatternSpec::Snake), Just(PatternSpec::Raster), Just(PatternSpec::ColumnMajor),]
}

fn any_spec() -> impl Strategy<Value = PolicySpec> {
    prop_oneof![
        Just(PolicySpec::Baseline),
        Just(PolicySpec::HealthAware),
        (0u64..=u64::MAX).prop_map(|seed| PolicySpec::Random { seed }),
        (any_pattern(), any_granularity())
            .prop_map(|(pattern, granularity)| PolicySpec::Rotation { pattern, granularity }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn spec_strings_round_trip(spec in any_spec()) {
        let s = spec.to_string();
        let back: PolicySpec = s.parse().unwrap_or_else(|e| panic!("`{s}`: {e}"));
        prop_assert_eq!(back, spec, "{}", s);
        // Display is canonical: re-displaying the parsed value is stable.
        prop_assert_eq!(back.to_string(), s);
    }

    #[test]
    fn spec_built_policies_stay_in_range(
        (fabric, spec) in (any_fabric(), any_spec()),
        switches in proptest::collection::vec(0u8..=1, 16..=64),
    ) {
        let mut policy = spec.build();
        prop_assert_eq!(policy.name(), spec.to_string());
        prop_assert_eq!(policy.needs_movement(), spec.needs_movement());
        let mut tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32), (0, 1 % fabric.cols), (1 % fabric.rows, 0)];
        for cs in switches {
            let off = {
                let req = AllocRequest {
                    fabric: &fabric,
                    config_switch: cs == 1,
                    footprint: &footprint,
                    tracker: &tracker,
                    faults: None,
                    demands: &[],
                };
                policy.next_offset(&req).expect("pristine fabric always allocates")
            };
            prop_assert!(off.in_range(&fabric), "{}: offset {} out of range", spec, off);
            let cells: Vec<(u32, u32)> =
                footprint.iter().map(|&(r, c)| off.apply(&fabric, r, c)).collect();
            tracker.record_execution(&cells, 2);
        }
    }

    #[test]
    fn spec_built_policies_respect_fault_masks(
        (fabric, spec) in (any_fabric(), any_spec()),
        dead in proptest::collection::vec((0u32..8, 0u32..32), 0..=12),
        switches in proptest::collection::vec(0u8..=1, 8..=24),
    ) {
        // Whatever the mask, a policy either returns a placement that only
        // touches live FUs or reports allocation exhaustion — it never
        // silently lands work on dead silicon (DESIGN.md §11).
        let mut mask = cgra::FaultMask::healthy(&fabric);
        for (r, c) in dead {
            mask.mark_dead(r % fabric.rows, c % fabric.cols);
        }
        let mut policy = spec.build();
        let mut tracker = UtilizationTracker::new(&fabric);
        let footprint = [(0u32, 0u32), (0, 1 % fabric.cols)];
        for cs in switches {
            let off = {
                let req = AllocRequest {
                    fabric: &fabric,
                    config_switch: cs == 1,
                    footprint: &footprint,
                    tracker: &tracker,
                    faults: Some(&mask),
                    demands: &[],
                };
                policy.next_offset(&req)
            };
            match off {
                Some(off) => {
                    prop_assert!(off.in_range(&fabric));
                    let cells: Vec<(u32, u32)> =
                        footprint.iter().map(|&(r, c)| off.apply(&fabric, r, c)).collect();
                    for &(r, c) in &cells {
                        prop_assert!(!mask.is_dead(r, c),
                            "{}: placed on dead FU ({r},{c})", spec);
                    }
                    tracker.record_execution(&cells, 2);
                }
                None => {
                    // Exhaustion must be real for movement policies: no
                    // offset anywhere fits the footprint. (The baseline is
                    // pinned to the origin, so its only option is the one
                    // that just failed.)
                    if spec.needs_movement() {
                        prop_assert!(!mask.any_placement(&fabric, &footprint),
                            "{}: gave up although a legal placement exists", spec);
                    }
                }
            }
        }
    }

    #[test]
    fn fabric_spec_strings_round_trip(spec in any_fabric_spec()) {
        // (a) `FabricSpec` ⇄ string round-trips for arbitrary geometries and
        // mixes (DESIGN.md §14), mirroring the policy-spec guarantee.
        let s = spec.to_string();
        let back: FabricSpec = s.parse().unwrap_or_else(|e| panic!("`{s}`: {e}"));
        prop_assert_eq!(back, spec, "{}", s);
        // Display is canonical: re-displaying the parsed value is stable.
        prop_assert_eq!(back.to_string(), s);
        // JSON survives too.
        let json = serde_json::to_string(&spec).unwrap();
        prop_assert_eq!(serde_json::from_str::<FabricSpec>(&json).unwrap(), spec, "{}", json);
        // And a built fabric reduces back to the very same spec.
        if let Ok(fabric) = spec.build() {
            prop_assert_eq!(FabricSpec::from_fabric(&fabric), spec);
        }
    }

    #[test]
    fn spec_built_policies_respect_capabilities_and_faults(
        (fabric, spec) in (any_het_fabric(), any_spec()),
        dead in proptest::collection::vec((0u32..8, 0u32..32), 0..=10),
        switches in proptest::collection::vec(0u8..=1, 8..=24),
    ) {
        // (b) On any heterogeneous fabric with faults, every policy-returned
        // offset satisfies both the capability and the fault `placement_ok`
        // (DESIGN.md §11 + §14); `None` must mean no offset satisfies both.
        let mut mask = cgra::FaultMask::healthy(&fabric);
        for (r, c) in dead {
            mask.mark_dead(r % fabric.rows, c % fabric.cols);
        }
        let footprint = [(0u32, 0u32), (0, 1 % fabric.cols), (1 % fabric.rows, 2 % fabric.cols)];
        let demands = [
            (0u32, 0u32, OpKind::Mul(MulFunc::Mul)),
            (1 % fabric.rows, 2 % fabric.cols, OpKind::Load { func: LoadFunc::W, offset: 0 }),
        ];
        let legal = |off: Offset| {
            demands.iter().all(|&(r, c, kind)| {
                let (pr, pc) = off.apply(&fabric, r, c);
                fabric.supports(pr, pc, kind)
            }) && footprint.iter().all(|&(r, c)| {
                let (pr, pc) = off.apply(&fabric, r, c);
                !mask.is_dead(pr, pc)
            })
        };
        let mut policy = spec.build();
        let mut tracker = UtilizationTracker::new(&fabric);
        for cs in switches {
            let off = {
                let req = AllocRequest {
                    fabric: &fabric,
                    config_switch: cs == 1,
                    footprint: &footprint,
                    tracker: &tracker,
                    faults: Some(&mask),
                    demands: &demands,
                };
                policy.next_offset(&req)
            };
            match off {
                Some(off) => {
                    prop_assert!(off.in_range(&fabric));
                    prop_assert!(legal(off),
                        "{}: offset {} violates capability or fault constraints", spec, off);
                    let cells: Vec<(u32, u32)> =
                        footprint.iter().map(|&(r, c)| off.apply(&fabric, r, c)).collect();
                    tracker.record_execution(&cells, 2);
                }
                None if spec.needs_movement() => {
                    // Exhaustion must be real: no pivot anywhere satisfies
                    // both constraint families.
                    let any_legal = (0..fabric.rows)
                        .flat_map(|r| (0..fabric.cols).map(move |c| Offset::new(r, c)))
                        .any(legal);
                    prop_assert!(!any_legal,
                        "{}: gave up although a legal placement exists", spec);
                }
                None => {
                    prop_assert!(!legal(Offset::ORIGIN),
                        "{}: baseline gave up although its origin is legal", spec);
                }
            }
        }
    }

    #[test]
    fn all_specs_are_distinct_and_round_trip(fabric in any_fabric()) {
        let specs = PolicySpec::all_specs(&fabric);
        for (i, a) in specs.iter().enumerate() {
            prop_assert_eq!(a.to_string().parse::<PolicySpec>().unwrap(), *a);
            for b in &specs[i + 1..] {
                prop_assert_ne!(a, b, "duplicate sweep point {}", a);
            }
        }
    }
}
