//! The full TransRec machine (paper Fig. 2): GPP core + DBT + configuration
//! cache + CGRA reconfigurable unit, wired to an allocation policy.
//!
//! Execution loop per the paper's steps: the application runs on the GPP
//! (1); retired instructions stream into the DBT (2), which builds
//! configurations into the PC-indexed cache (3); every fetch checks the
//! cache (4); on a hit the input context is transferred (5), the CGRA
//! executes the configuration at the pivot the policy chose (6), and the
//! outputs commit back to the register file (7).
//!
//! Execution is organized as observable, resumable [`Session`]s
//! (DESIGN.md §10): [`System::session`] loads a program and hands back a
//! handle that advances the machine one scheduling decision at a time
//! ([`Session::step`]), by cycle budget ([`Session::run_for`]) or to
//! completion ([`Session::finish`]); [`System::run`] is the run-to-exit
//! convenience wrapper. Every decision is published to the attached
//! [`Observer`]s as [`SimEvent`]s — the built-in counters are themselves
//! one observer over that stream ([`telemetry::StatsObserver`](crate::telemetry::StatsObserver)).

use std::collections::HashMap;
use std::fmt;

use cgra::op::OpKind;
use cgra::{
    ExecError, Executor, Fabric, FabricError, FaultMask, Offset, ReconfigUnit,
    RESIDENT_ROTATE_CYCLES,
};
use dbt::membus::MemoryBus;
use dbt::{CachedConfig, ConfigCache, Translator, TranslatorParams};
use rv32::cpu::{Cpu, CpuError, Exit, TimingModel};
use rv32::mem::MemError;
use rv32::Program;
use serde::{Deserialize, Serialize};
use uaware::{AllocRequest, AllocationPolicy, PolicySpec, UtilizationTracker};

use crate::telemetry::{
    EventCtx, Observer, OffloadOverheads, ProbeReport, ProbeSpec, SimEvent, StatsObserver,
};

/// Static system parameters.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SystemConfig {
    /// The CGRA fabric.
    pub fabric: Fabric,
    /// Configuration-cache capacity (entries).
    pub cache_capacity: usize,
    /// DBT parameters.
    pub translator: TranslatorParams,
    /// GPP memory size in bytes.
    pub mem_size: usize,
    /// GPP timing model.
    pub timing: TimingModel,
    /// Whether the movement hardware extensions (§III.B) are present.
    /// Without them, only origin-anchored policies can run.
    pub movement_hardware: bool,
    /// Register words transferred to/from the context per cycle (steps 5/7).
    pub transfer_words_per_cycle: u32,
    /// Skip offloading when the fabric would be slower than the GPP.
    pub offload_heuristic: bool,
    /// Safety valve for run lengths.
    pub max_steps: u64,
    /// Permanent fault mask applied at construction (DESIGN.md §15). Putting
    /// faults in the *config* lets sweep harnesses — which clone one
    /// [`SystemConfig`] per cell — run every policy against the same damaged
    /// fabric. [`SystemBuilder::fault_mask`] still overrides per build.
    pub faults: Option<FaultMask>,
    /// Treat allocation exhaustion on a faulty fabric as starvation (the
    /// configuration stays on the GPP, `offloads_starved` counts it) instead
    /// of a fatal [`SystemError::AllocationExhausted`]. Off by default: the
    /// closed-loop wear engine relies on exhaustion to detect device death,
    /// while gap experiments want degraded-but-operational behavior.
    pub fault_fallback: bool,
}

impl SystemConfig {
    /// Defaults for a given fabric: 256-entry cache, default DBT and timing,
    /// movement hardware present, 2 words/cycle context transfer.
    pub fn new(fabric: Fabric) -> SystemConfig {
        SystemConfig {
            fabric,
            cache_capacity: 256,
            translator: TranslatorParams::default(),
            mem_size: 1 << 20,
            timing: TimingModel::default(),
            movement_hardware: true,
            transfer_words_per_cycle: 2,
            offload_heuristic: true,
            max_steps: 50_000_000,
            faults: None,
            fault_fallback: false,
        }
    }
}

/// Cycle and event counters for one run.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct SystemStats {
    /// Cycles spent executing instructions on the GPP.
    pub gpp_cycles: u64,
    /// Cycles the CGRA spent computing.
    pub cgra_exec_cycles: u64,
    /// Cycles spent streaming configurations into the fabric.
    pub reconfig_cycles: u64,
    /// Cycles rotating a resident configuration to a new pivot.
    pub rotate_cycles: u64,
    /// Cycles transferring the input/output contexts.
    pub transfer_cycles: u64,
    /// Configuration executions on the fabric.
    pub offloads: u64,
    /// Instructions covered by those executions.
    pub offloaded_instrs: u64,
    /// Instructions retired by the GPP itself.
    pub gpp_retired: u64,
    /// Offloads skipped by the profitability heuristic.
    pub offloads_skipped: u64,
    /// Cached configurations kept on the GPP because no pivot satisfied
    /// their capability demands on this fabric's class mix (DESIGN.md §14).
    pub offloads_starved: u64,
    /// Loads/stores performed by the fabric.
    pub cgra_loads: u64,
    /// Stores performed by the fabric.
    pub cgra_stores: u64,
    /// Active FU column-slots (Σ occupied cells over all executions).
    pub cgra_active_fu_slots: u64,
    /// Executed fabric columns (Σ cols_used over all executions).
    pub cgra_columns: u64,
    /// Configuration-cache lookups (one per fetch-check).
    pub cache_lookups: u64,
}

impl SystemStats {
    /// Total system cycles (GPP + all offload components).
    pub fn total_cycles(&self) -> u64 {
        self.gpp_cycles
            + self.cgra_exec_cycles
            + self.reconfig_cycles
            + self.rotate_cycles
            + self.transfer_cycles
    }

    /// Dynamic instructions (GPP-retired + offloaded).
    pub fn total_instrs(&self) -> u64 {
        self.gpp_retired + self.offloaded_instrs
    }
}

/// A [`SystemBuilder`] configuration that cannot produce a runnable system.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BuildError {
    /// The policy spec moves configurations away from the origin, but the
    /// movement hardware extensions (paper §III.B) are disabled — the run
    /// would fault on its first non-origin pivot.
    MovementHardwareAbsent {
        /// The offending policy spec (canonical string form).
        policy: String,
    },
    /// The fabric itself is invalid — empty, or too narrow for its memory
    /// latency (the former [`Fabric::new`] panics, typed; DESIGN.md §14).
    Fabric(FabricError),
}

impl fmt::Display for BuildError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BuildError::MovementHardwareAbsent { policy } => write!(
                f,
                "policy `{policy}` needs the movement hardware extensions, \
                 but movement_hardware is false"
            ),
            BuildError::Fabric(e) => write!(f, "invalid fabric: {e}"),
        }
    }
}

impl std::error::Error for BuildError {}

impl From<FabricError> for BuildError {
    fn from(e: FabricError) -> BuildError {
        BuildError::Fabric(e)
    }
}

/// Errors from a system run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SystemError {
    /// GPP fault.
    Cpu(CpuError),
    /// Fabric fault.
    Exec(ExecError),
    /// Program image problem.
    Mem(MemError),
    /// A policy asked for movement without the hardware extensions.
    MovementUnsupported {
        /// The offending offset.
        offset: Offset,
    },
    /// The allocation policy found no placement avoiding the fault mask's
    /// dead FUs — the device's end of life (DESIGN.md §11). Capability
    /// starvation on a heterogeneous fabric is *not* this error: when a
    /// fault-free placement still exists but no pivot satisfies the
    /// configuration's capability demands, the configuration stays on the
    /// GPP instead (DESIGN.md §14). With
    /// [`SystemConfig::fault_fallback`] enabled, fault exhaustion also
    /// falls back to the GPP rather than raising this error (DESIGN.md
    /// §15).
    AllocationExhausted {
        /// Start PC of the configuration that could not be placed.
        pc: u32,
    },
    /// The run exceeded `max_steps`.
    StepLimit {
        /// The exhausted budget.
        limit: u64,
    },
    /// The system could not be constructed in the first place.
    Build(BuildError),
}

impl fmt::Display for SystemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SystemError::Cpu(e) => write!(f, "{e}"),
            SystemError::Exec(e) => write!(f, "{e}"),
            SystemError::Mem(e) => write!(f, "{e}"),
            SystemError::MovementUnsupported { offset } => {
                write!(f, "policy requested offset {offset} but the movement extensions are absent")
            }
            SystemError::AllocationExhausted { pc } => {
                write!(f, "no fault-free placement remains for configuration at pc {pc:#x}")
            }
            SystemError::StepLimit { limit } => write!(f, "system step limit {limit} exceeded"),
            SystemError::Build(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SystemError {}

impl From<BuildError> for SystemError {
    fn from(e: BuildError) -> SystemError {
        SystemError::Build(e)
    }
}

impl From<CpuError> for SystemError {
    fn from(e: CpuError) -> SystemError {
        SystemError::Cpu(e)
    }
}

impl From<ExecError> for SystemError {
    fn from(e: ExecError) -> SystemError {
        SystemError::Exec(e)
    }
}

impl From<MemError> for SystemError {
    fn from(e: MemError) -> SystemError {
        SystemError::Mem(e)
    }
}

/// How an offload changed the resident configuration (drives the
/// [`SimEvent::ConfigLoaded`]/[`SimEvent::Rotated`] emissions).
enum ResidentTransition {
    /// Same configuration at the same pivot (or a warm re-execution).
    None,
    /// The resident configuration moved to a new pivot.
    Rotated {
        /// The pivot it moved away from.
        from: Offset,
    },
    /// A different configuration was streamed in.
    Loaded {
        /// Raw streaming cost over the configuration-bus lines.
        stream_cycles: u64,
    },
}

/// The TransRec system simulator.
pub struct System {
    config: SystemConfig,
    cpu: Cpu,
    translator: Translator,
    cache: ConfigCache,
    policy: Box<dyn AllocationPolicy>,
    tracker: UtilizationTracker,
    /// Permanent FU failures the allocation must route around
    /// (DESIGN.md §11). `None` models a pristine fabric.
    faults: Option<FaultMask>,
    reconfig_unit: ReconfigUnit,
    resident: Option<(u32, Offset)>,
    /// Whether the GPP has retired anything since the last offload (if not,
    /// a re-execution of the resident configuration finds its input context
    /// still valid and skips the transfer).
    gpp_dirty: bool,
    gpp_estimates: HashMap<u32, u64>,
    /// The built-in stats fold over the event stream (DESIGN.md §10).
    stats: StatsObserver,
    /// Attached telemetry probes; each sees the identical stream.
    probes: Vec<Box<dyn Observer>>,
    /// Ensures `on_finish` fires exactly once per session.
    finish_notified: bool,
}

impl fmt::Debug for System {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("System")
            .field("fabric", &self.config.fabric)
            .field("policy", &self.policy.name())
            .field("stats", self.stats.stats())
            .finish()
    }
}

/// Fluent, validating constructor for [`System`] (DESIGN.md §8).
///
/// Start from [`System::builder`], override the [`SystemConfig`] knobs you
/// care about, pick the allocation policy as a [`PolicySpec`] value, and
/// [`build`](SystemBuilder::build). Construction fails with a typed
/// [`BuildError`] when the spec and the hardware configuration contradict
/// each other (a movement policy without the movement extensions), instead
/// of the run faulting later at the first non-origin pivot.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use transrec::{BuildError, System};
/// use uaware::PolicySpec;
///
/// let sys = System::builder(Fabric::be())
///     .policy(PolicySpec::rotation())
///     .cache_capacity(128)
///     .build()
///     .unwrap();
/// assert_eq!(sys.policy_name(), "rotation:snake@per-exec");
///
/// // Rotation without the movement extensions is rejected at build time.
/// let err = System::builder(Fabric::be())
///     .policy(PolicySpec::rotation())
///     .movement_hardware(false)
///     .build()
///     .unwrap_err();
/// assert!(matches!(err, BuildError::MovementHardwareAbsent { .. }));
/// ```
#[derive(Clone, Debug)]
pub struct SystemBuilder {
    config: SystemConfig,
    spec: PolicySpec,
    probes: Vec<ProbeSpec>,
    faults: Option<FaultMask>,
}

impl SystemBuilder {
    /// The allocation policy (defaults to [`PolicySpec::Baseline`]).
    pub fn policy(mut self, spec: PolicySpec) -> SystemBuilder {
        self.spec = spec;
        self
    }

    /// Starts the system with permanent FU failures already present
    /// (DESIGN.md §11) — e.g. resuming a part-worn device. The mask can
    /// also be swapped later via [`System::set_fault_mask`].
    pub fn fault_mask(mut self, mask: FaultMask) -> SystemBuilder {
        self.faults = Some(mask);
        self
    }

    /// Attaches a telemetry probe, selected as data (repeatable). The
    /// observer is instantiated at [`build`](SystemBuilder::build) time;
    /// its output comes back through [`System::probe_reports`].
    pub fn probe(mut self, spec: ProbeSpec) -> SystemBuilder {
        self.probes.push(spec);
        self
    }

    /// Configuration-cache capacity in entries.
    pub fn cache_capacity(mut self, entries: usize) -> SystemBuilder {
        self.config.cache_capacity = entries;
        self
    }

    /// Whether the movement hardware extensions (paper §III.B) are present.
    pub fn movement_hardware(mut self, present: bool) -> SystemBuilder {
        self.config.movement_hardware = present;
        self
    }

    /// GPP memory size in bytes.
    pub fn mem_size(mut self, bytes: usize) -> SystemBuilder {
        self.config.mem_size = bytes;
        self
    }

    /// GPP timing model.
    pub fn timing(mut self, timing: TimingModel) -> SystemBuilder {
        self.config.timing = timing;
        self
    }

    /// Register words transferred to/from the context per cycle.
    pub fn transfer_words_per_cycle(mut self, words: u32) -> SystemBuilder {
        self.config.transfer_words_per_cycle = words;
        self
    }

    /// Skip offloading when the fabric would be slower than the GPP.
    pub fn offload_heuristic(mut self, enabled: bool) -> SystemBuilder {
        self.config.offload_heuristic = enabled;
        self
    }

    /// Safety valve for run lengths.
    pub fn max_steps(mut self, steps: u64) -> SystemBuilder {
        self.config.max_steps = steps;
        self
    }

    /// The policy spec currently selected.
    pub fn spec(&self) -> &PolicySpec {
        &self.spec
    }

    /// The accumulated [`SystemConfig`].
    pub fn config(&self) -> &SystemConfig {
        &self.config
    }

    /// Validates the spec against the hardware configuration and constructs
    /// the system.
    ///
    /// # Errors
    ///
    /// [`BuildError::MovementHardwareAbsent`] when the policy needs the
    /// movement extensions but `movement_hardware(false)` was requested;
    /// [`BuildError::Fabric`] when the fabric value itself is invalid
    /// (hand-built or deserialized — [`Fabric::new`] rejects these at
    /// construction, but `Fabric` fields are public).
    pub fn build(self) -> Result<System, BuildError> {
        self.config.fabric.validate()?;
        if self.spec.needs_movement() && !self.config.movement_hardware {
            return Err(BuildError::MovementHardwareAbsent { policy: self.spec.to_string() });
        }
        let mut system = System::new(self.config, self.spec.build());
        if self.faults.is_some() {
            system.set_fault_mask(self.faults);
        }
        for probe in &self.probes {
            system.attach_observer(probe.build());
        }
        Ok(system)
    }
}

impl System {
    /// Starts a [`SystemBuilder`] with [`SystemConfig::new`] defaults for
    /// `fabric` and the baseline policy.
    pub fn builder(fabric: Fabric) -> SystemBuilder {
        SystemBuilder {
            config: SystemConfig::new(fabric),
            spec: PolicySpec::Baseline,
            probes: Vec::new(),
            faults: None,
        }
    }

    /// Builds a system from a configuration and an already-instantiated
    /// allocation policy — the unchecked escape hatch for policies that are
    /// not expressible as a [`PolicySpec`]. Prefer [`System::builder`],
    /// which validates the spec against the hardware configuration.
    pub fn new(config: SystemConfig, policy: Box<dyn AllocationPolicy>) -> System {
        let reconfig_unit = if config.movement_hardware {
            ReconfigUnit::with_movement()
        } else {
            ReconfigUnit::baseline()
        };
        System {
            cpu: Cpu::with_timing(config.mem_size, config.timing),
            translator: Translator::with_params(config.fabric, config.translator),
            cache: ConfigCache::new(config.cache_capacity),
            policy,
            tracker: UtilizationTracker::new(&config.fabric),
            faults: config.faults.clone(),
            reconfig_unit,
            resident: None,
            gpp_dirty: true,
            gpp_estimates: HashMap::new(),
            stats: StatsObserver::new(),
            probes: Vec::new(),
            finish_notified: false,
            config,
        }
    }

    /// Attaches an arbitrary observer to the event stream. Prefer
    /// [`SystemBuilder::probe`] for the built-in probes (they stay data);
    /// this is the escape hatch for custom instrumentation.
    pub fn attach_observer(&mut self, observer: Box<dyn Observer>) {
        self.probes.push(observer);
    }

    /// Collects the serializable reports of every attached probe, in
    /// attachment order (observers without a report are skipped).
    pub fn probe_reports(&self) -> Vec<ProbeReport> {
        self.probes.iter().filter_map(|p| p.report()).collect()
    }

    /// The GPP (for inspecting architectural state after a run).
    pub fn cpu(&self) -> &Cpu {
        &self.cpu
    }

    /// Run statistics so far — the fold of the built-in
    /// [`StatsObserver`] over the event stream.
    pub fn stats(&self) -> &SystemStats {
        self.stats.stats()
    }

    /// The utilization tracker (per-FU stress observations).
    pub fn tracker(&self) -> &UtilizationTracker {
        &self.tracker
    }

    /// Installs (or clears) the permanent-failure map the allocation policy
    /// must route around (DESIGN.md §11). The lifetime engine updates the
    /// mask between missions as FUs cross their end of life; once no legal
    /// placement remains, runs fail with
    /// [`SystemError::AllocationExhausted`].
    ///
    /// # Panics
    ///
    /// Panics if the mask geometry does not match the system's fabric.
    pub fn set_fault_mask(&mut self, mask: Option<FaultMask>) {
        if let Some(mask) = &mask {
            assert_eq!(
                (mask.rows(), mask.cols()),
                (self.config.fabric.rows, self.config.fabric.cols),
                "fault mask geometry must match the fabric"
            );
        }
        self.faults = mask;
    }

    /// The installed permanent-failure map, if any.
    pub fn fault_mask(&self) -> Option<&FaultMask> {
        self.faults.as_ref()
    }

    /// Configuration-cache statistics.
    pub fn cache_stats(&self) -> &dbt::CacheStats {
        self.cache.stats()
    }

    /// The allocation policy's instance-level name (pattern, granularity
    /// and seed included, e.g. `rotation:snake@per-load`).
    pub fn policy_name(&self) -> String {
        self.policy.name()
    }

    /// What the covered instructions would cost on the GPP.
    fn estimate_gpp_cycles(&self, cc: &CachedConfig) -> u64 {
        let t = &self.config.timing;
        let exit = match cc.exit {
            dbt::TraceExit::Branch { .. } => t.branch + t.taken_extra,
            dbt::TraceExit::Jump { .. } => t.jump,
            dbt::TraceExit::Sequential => 0,
        };
        exit + cc
            .config
            .ops()
            .iter()
            .map(|op| match op.kind {
                OpKind::Alu(_) => t.alu,
                OpKind::Mul(_) => t.mul,
                OpKind::Load { .. } => t.load,
                OpKind::Store { .. } => t.store,
            })
            .sum::<u64>()
    }

    /// Publishes one event to the built-in stats fold and every attached
    /// probe (identical stream, attachment order).
    fn emit(&mut self, event: SimEvent) {
        crate::telemetry::emit_metric(&event);
        let ctx = EventCtx { cycle: self.cpu.cycles(), tracker: &self.tracker };
        self.stats.on_event(&ctx, &event);
        for probe in &mut self.probes {
            probe.on_event(&ctx, &event);
        }
    }

    /// Fires `on_finish` exactly once per session, the first time the
    /// program's exit is observed.
    fn notify_finish(&mut self) {
        if self.finish_notified {
            return;
        }
        self.finish_notified = true;
        let ctx = EventCtx { cycle: self.cpu.cycles(), tracker: &self.tracker };
        self.stats.on_finish(&ctx);
        for probe in &mut self.probes {
            probe.on_finish(&ctx);
        }
    }

    /// Offload cost components for `cc` at the current resident state,
    /// plus how the offload changes the resident configuration.
    ///
    /// Overlap model (DESIGN.md §4): the input-context transfer overlaps
    /// with configuration streaming (both happen before execution, on
    /// independent paths), and outputs drain through the ROB *during*
    /// execution — only the residual beyond the execution time stalls the
    /// commit (paper Fig. 4, "To ROB").
    fn offload_overheads(
        &self,
        cc: &CachedConfig,
        offset: Offset,
    ) -> (OffloadOverheads, ResidentTransition) {
        let wpc = self.config.transfer_words_per_cycle as u64;
        let same_config = matches!(self.resident, Some((pc, _)) if pc == cc.start_pc);
        // A back-to-back re-execution of the resident configuration with no
        // intervening GPP activity finds the input context still valid
        // (loop-carried values feed back, invariants were already loaded).
        let input = if same_config && !self.gpp_dirty {
            0
        } else {
            (cc.input_regs.len() as u64).div_ceil(wpc)
        };
        let exec = self.config.fabric.exec_cycles(cc.config.cols_used());
        let out_drain = (cc.output_regs.len() as u64).div_ceil(wpc).saturating_sub(exec);
        let (reconfig_extra, rotate, transition) = match self.resident {
            Some((pc, old)) if pc == cc.start_pc && old == offset => {
                (0, 0, ResidentTransition::None)
            }
            Some((pc, old)) if pc == cc.start_pc => {
                // Rotating the resident configuration: the per-column barrel
                // shift proceeds behind the previous execution's
                // left-to-right wave, so back-to-back executions hide it
                // completely (the paper's "no significant performance
                // overhead"). It is only exposed after GPP activity.
                let rotate = if self.gpp_dirty { RESIDENT_ROTATE_CYCLES } else { 0 };
                (0, rotate, ResidentTransition::Rotated { from: old })
            }
            _ => {
                let load =
                    self.reconfig_unit.load_cycles(&self.config.fabric, cc.config.cols_used());
                (load.saturating_sub(input), 0, ResidentTransition::Loaded { stream_cycles: load })
            }
        };
        (OffloadOverheads { input, out_drain, reconfig_extra, rotate }, transition)
    }

    /// Executes one offload (paper steps 5–7). Returns `false` — without
    /// executing anything — when the allocation is *capability-starved*:
    /// no pivot satisfies the configuration's non-ALU demands on this
    /// fabric's class mix although a fault-free placement still exists, so
    /// the configuration must stay on the GPP (DESIGN.md §14).
    fn offload(&mut self, cc: &CachedConfig) -> Result<bool, SystemError> {
        let fabric = self.config.fabric;
        let footprint: Vec<(u32, u32)> = cc.config.cells().collect();
        let demands: Vec<(u32, u32, OpKind)> = cc.config.demands().collect();
        let config_switch = !matches!(self.resident, Some((pc, _)) if pc == cc.start_pc);
        let offset = self.policy.next_offset(&AllocRequest {
            fabric: &fabric,
            config_switch,
            footprint: &footprint,
            tracker: &self.tracker,
            faults: self.faults.as_ref(),
            demands: &demands,
        });
        let Some(offset) = offset else {
            // Genuine fault exhaustion — no offset fits the footprint on
            // the live FUs — is the device's end of life (DESIGN.md §11).
            // Anything else the policy gave up on is the class mix's fault,
            // not the silicon's: keep the configuration on the GPP.
            let fault_placeable =
                self.faults.as_ref().is_none_or(|m| m.any_placement(&fabric, &footprint));
            if fault_placeable && !fabric.is_uniform() && !demands.is_empty() {
                self.emit(SimEvent::AllocationStarved { pc: cc.start_pc });
                return Ok(false);
            }
            // Degraded-but-operational mode (DESIGN.md §15): gap experiments
            // inject faults into otherwise-healthy fabrics and want the GPP
            // to absorb whatever the policy cannot place — including the
            // immobile baseline's dead origin — not the run to die.
            if self.config.fault_fallback && self.faults.is_some() {
                self.emit(SimEvent::AllocationStarved { pc: cc.start_pc });
                return Ok(false);
            }
            return Err(SystemError::AllocationExhausted { pc: cc.start_pc });
        };
        if offset != Offset::ORIGIN && !self.config.movement_hardware {
            return Err(SystemError::MovementUnsupported { offset });
        }
        let (ov, transition) = self.offload_overheads(cc, offset);
        self.emit(SimEvent::OffloadStarted { pc: cc.start_pc, offset, config_switch });

        let inputs: Vec<u32> = cc.input_regs.iter().map(|r| self.cpu.reg(*r)).collect();
        let outcome = Executor::new(&fabric).execute(
            &cc.config,
            offset,
            &inputs,
            &mut MemoryBus::new(&mut self.cpu.mem),
        )?;
        for (reg, value) in cc.output_regs.iter().zip(&outcome.outputs) {
            self.cpu.set_reg(*reg, *value);
        }
        let next_pc = match cc.exit {
            dbt::TraceExit::Branch { taken, not_taken } => {
                let idx = cc.cond_output_index.expect("branch exit carries a condition");
                if outcome.outputs[idx] != 0 {
                    taken
                } else {
                    not_taken
                }
            }
            _ => cc.next_pc(),
        };
        self.cpu.set_pc(next_pc);
        self.resident = Some((cc.start_pc, offset));

        self.tracker.record_execution(&outcome.active_cells, cc.config.cols_used());
        self.cpu.add_cycles(outcome.cycles + ov.total());
        match transition {
            ResidentTransition::None => {}
            ResidentTransition::Rotated { from } => self.emit(SimEvent::Rotated {
                pc: cc.start_pc,
                from,
                to: offset,
                cycles: ov.rotate,
            }),
            ResidentTransition::Loaded { stream_cycles } => self.emit(SimEvent::ConfigLoaded {
                pc: cc.start_pc,
                cols_used: cc.config.cols_used(),
                stream_cycles,
                exposed_cycles: ov.reconfig_extra,
            }),
        }
        self.emit(SimEvent::OffloadCompleted {
            pc: cc.start_pc,
            offset,
            instr_count: cc.instr_count,
            exec_cycles: outcome.cycles,
            overheads: ov,
            loads: outcome.loads as u64,
            stores: outcome.stores as u64,
            active_fus: outcome.active_cells.len() as u64,
            cols_used: cc.config.cols_used(),
        });
        self.gpp_dirty = false;
        Ok(true)
    }

    /// Loads `program` and returns a resumable [`Session`] over it with a
    /// fresh step budget.
    ///
    /// Loading a program is a context switch for the DBT: the PC-indexed
    /// configuration cache, the in-flight trace and the profitability
    /// estimates are flushed (translations of a previous program at
    /// overlapping addresses must never execute against the new one), and
    /// the fabric's resident configuration is dropped. *Wear* state —
    /// statistics, per-FU utilization and attached probes — persists
    /// across sessions on the same system (it accumulates, like the
    /// hardware's counters and the silicon's stress would).
    ///
    /// # Errors
    ///
    /// [`SystemError::Mem`] if the program image does not fit.
    pub fn session(&mut self, program: &Program) -> Result<Session<'_>, SystemError> {
        self.cpu.load_program(program)?;
        self.cache.clear();
        self.translator = Translator::with_params(self.config.fabric, self.config.translator);
        self.gpp_estimates.clear();
        self.resident = None;
        self.gpp_dirty = true;
        self.finish_notified = false;
        Ok(Session { steps_left: self.config.max_steps, system: self })
    }

    /// Re-opens a session on the already-loaded program *without*
    /// resetting architectural state: the execution resumes exactly where
    /// the previous session handle left off (the handle can be dropped at
    /// any pause point and the system inspected in between). Only the
    /// step budget is fresh.
    pub fn session_resume(&mut self) -> Session<'_> {
        Session { steps_left: self.config.max_steps, system: self }
    }

    /// Loads and runs `program` to completion — the thin convenience
    /// wrapper over [`System::session`] + [`Session::finish`].
    ///
    /// # Errors
    ///
    /// Propagates GPP/fabric faults; returns [`SystemError::StepLimit`] if
    /// the program does not halt within the configured budget.
    pub fn run(&mut self, program: &Program) -> Result<Exit, SystemError> {
        self.session(program)?.finish()
    }
}

/// Outcome of advancing a [`Session`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SessionStatus {
    /// The program has not halted yet; the session can keep stepping.
    Running,
    /// The program halted with this exit.
    Exited(Exit),
}

impl SessionStatus {
    /// `true` while the program has not halted.
    pub fn is_running(&self) -> bool {
        matches!(self, SessionStatus::Running)
    }
}

/// A resumable execution of one program on a [`System`] (DESIGN.md §10).
///
/// A session advances the machine one *scheduling decision* at a time —
/// either one offloaded configuration execution or one GPP instruction —
/// and can pause between decisions: step with [`step`](Session::step),
/// advance a cycle budget with [`run_for`](Session::run_for), inspect the
/// system through [`system`](Session::system), resume, and
/// [`finish`](Session::finish) when done. Attached observers see the
/// event stream live, whichever way the session is driven.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use transrec::{SessionStatus, System};
///
/// let program = rv32::asm::assemble(
///     "
///     li   a0, 0
///     li   a1, 200
/// loop:
///     addi t0, a1, 3
///     slli t1, t0, 2
///     xor  t2, t1, a1
///     add  a0, a0, t2
///     addi a1, a1, -1
///     bnez a1, loop
///     ebreak
/// ",
/// )
/// .unwrap();
/// let mut sys = System::builder(Fabric::be()).build().unwrap();
/// let mut session = sys.session(&program).unwrap();
/// // Pause mid-run, look at the machine, resume.
/// while session.system().stats().offloads < 5 {
///     assert!(session.step().unwrap().is_running());
/// }
/// assert!(sys.cpu().reg(rv32::Reg::A1) > 0, "paused mid-loop");
/// let mut session = sys.session_resume();
/// let exit = session.finish().unwrap();
/// assert!(matches!(exit, rv32::cpu::Exit::Break { .. }));
/// assert_eq!(sys.cpu().reg(rv32::Reg::A1), 0);
/// ```
pub struct Session<'a> {
    system: &'a mut System,
    steps_left: u64,
}

impl Session<'_> {
    /// The underlying system (live statistics, tracker, CPU state).
    pub fn system(&self) -> &System {
        self.system
    }

    /// Remaining step budget (dynamic instructions, offloaded or retired).
    pub fn steps_left(&self) -> u64 {
        self.steps_left
    }

    /// Advances one scheduling decision: checks the configuration cache at
    /// the current PC (step 4) and either executes one offload (steps
    /// 5–7) or retires one GPP instruction and feeds the DBT (steps 1–3).
    /// Calling `step` on a halted program is a no-op returning
    /// [`SessionStatus::Exited`].
    ///
    /// # Errors
    ///
    /// Propagates GPP/fabric faults; returns [`SystemError::StepLimit`]
    /// once the session's budget is exhausted.
    pub fn step(&mut self) -> Result<SessionStatus, SystemError> {
        let sys = &mut *self.system;
        if let Some(exit) = sys.cpu.exit() {
            sys.notify_finish();
            return Ok(SessionStatus::Exited(exit));
        }
        if self.steps_left == 0 {
            return Err(SystemError::StepLimit { limit: sys.config.max_steps });
        }
        let pc = sys.cpu.pc();
        // Step 4: check the configuration cache for this PC.
        if let Some(cc) = sys.cache.lookup(pc) {
            let cc = cc.clone();
            // Steady-state estimate (resident configuration with a warm
            // input context): the regime that matters for hot code.
            let mut skip = None;
            if sys.config.offload_heuristic {
                let gpp_est = *sys.gpp_estimates.get(&pc).expect("estimate recorded at insertion");
                let wpc = sys.config.transfer_words_per_cycle as u64;
                let exec = sys.config.fabric.exec_cycles(cc.config.cols_used());
                let out_drain = (cc.output_regs.len() as u64).div_ceil(wpc).saturating_sub(exec);
                if exec + out_drain > gpp_est {
                    skip = Some((gpp_est, exec + out_drain));
                }
            }
            match skip {
                None => {
                    if sys.offload(&cc)? {
                        self.steps_left = self.steps_left.saturating_sub(cc.instr_count as u64);
                        return Ok(self.status());
                    }
                    // Capability-starved (DESIGN.md §14): fall through to
                    // the GPP path below, like a heuristic skip.
                }
                Some((gpp_cycles, cgra_cycles)) => {
                    sys.emit(SimEvent::OffloadSkipped { pc, gpp_cycles, cgra_cycles })
                }
            }
        }
        // Step 1/2: execute on the GPP, feed the DBT.
        let before = sys.cpu.cycles();
        let retired = sys.cpu.step()?;
        let cycles = sys.cpu.cycles() - before;
        self.steps_left -= 1;
        sys.gpp_dirty = true;
        sys.emit(SimEvent::GppRetired { pc: retired.pc, cycles });
        let cached = sys.cache.contains(retired.pc);
        for built in sys.translator.observe(&retired, cached) {
            // Step 3: install into the configuration cache.
            sys.gpp_estimates.insert(built.start_pc, sys.estimate_gpp_cycles(&built));
            let (insert_pc, instr_count) = (built.start_pc, built.instr_count);
            if let Some(evicted) = sys.cache.insert(built) {
                sys.emit(SimEvent::CacheEvicted { pc: evicted });
            }
            sys.emit(SimEvent::CacheInserted { pc: insert_pc, instr_count });
        }
        Ok(self.status())
    }

    /// Runs until at least `cycles` more system cycles have elapsed (or
    /// the program halts). Simulation time advances in whole scheduling
    /// decisions, so the session may overshoot the target by one
    /// decision's cycle cost; `run_for(0)` reports the current status
    /// without advancing.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Session::step).
    pub fn run_for(&mut self, cycles: u64) -> Result<SessionStatus, SystemError> {
        let _loop_span = tracing::span!(tracing::Level::INFO, "system.session").entered();
        let target = self.system.cpu.cycles().saturating_add(cycles);
        while self.system.cpu.cycles() < target {
            if let SessionStatus::Exited(exit) = self.step()? {
                return Ok(SessionStatus::Exited(exit));
            }
        }
        // A halted program reports Exited even when the cycle target is
        // already met (`run_for(0)`), so status polling can never spin.
        Ok(self.status())
    }

    /// Runs to completion and returns the program's exit.
    ///
    /// # Errors
    ///
    /// Same as [`step`](Session::step).
    pub fn finish(&mut self) -> Result<Exit, SystemError> {
        let _loop_span = tracing::span!(tracing::Level::INFO, "system.session").entered();
        loop {
            if let SessionStatus::Exited(exit) = self.step()? {
                return Ok(exit);
            }
        }
    }

    /// Current status without advancing, notifying observers if the halt
    /// is being observed for the first time.
    fn status(&mut self) -> SessionStatus {
        match self.system.cpu.exit() {
            Some(exit) => {
                self.system.notify_finish();
                SessionStatus::Exited(exit)
            }
            None => SessionStatus::Running,
        }
    }
}

/// Runs `program` on a plain GPP (no CGRA) — the 1× reference of Fig. 6.
///
/// # Errors
///
/// Propagates CPU faults and the step limit.
pub fn run_gpp_only(
    program: &Program,
    mem_size: usize,
    timing: TimingModel,
    max_steps: u64,
) -> Result<Cpu, CpuError> {
    let mut cpu = Cpu::with_timing(mem_size, timing);
    cpu.load_program(program).map_err(CpuError::Mem)?;
    cpu.run(max_steps)?;
    Ok(cpu)
}

#[cfg(test)]
mod tests {
    use super::*;
    use uaware::{RotationPolicy, Snake};

    fn sys_with(spec: PolicySpec) -> System {
        System::builder(Fabric::be()).policy(spec).build().expect("valid spec/config")
    }

    fn toy_program() -> Program {
        rv32::asm::assemble(
            "
            li   a0, 0
            li   a1, 0
        loop:
            addi t0, a1, 3
            slli t1, t0, 2
            xor  t2, t1, a1
            and  t3, t2, t0
            add  a0, a0, t3
            addi a1, a1, 1
            li   t4, 400
            blt  a1, t4, loop
            ebreak
        ",
        )
        .unwrap()
    }

    fn reference_result() -> u32 {
        let mut a0 = 0u32;
        for a1 in 0..400u32 {
            let t0 = a1.wrapping_add(3);
            let t1 = t0 << 2;
            let t2 = t1 ^ a1;
            let t3 = t2 & t0;
            a0 = a0.wrapping_add(t3);
        }
        a0
    }

    #[test]
    fn system_produces_architectural_results() {
        let mut sys = sys_with(PolicySpec::Baseline);
        sys.run(&toy_program()).unwrap();
        assert_eq!(sys.cpu().reg(rv32::Reg::A0), reference_result());
        assert!(sys.stats().offloads > 300, "hot loop must offload");
    }

    #[test]
    fn rotation_gives_same_results_as_baseline() {
        let mut base = sys_with(PolicySpec::Baseline);
        base.run(&toy_program()).unwrap();
        let mut rot = sys_with(PolicySpec::rotation());
        rot.run(&toy_program()).unwrap();
        assert_eq!(base.cpu().reg(rv32::Reg::A0), rot.cpu().reg(rv32::Reg::A0));
        // And it actually moved work around.
        assert!(rot.tracker().utilization().max() < base.tracker().utilization().max());
    }

    #[test]
    fn builder_rejects_movement_spec_without_hardware() {
        // Every movement spec must be refused at construction time, before
        // any instruction runs.
        for spec in uaware::PolicySpec::all_specs(&Fabric::be()) {
            let result =
                System::builder(Fabric::be()).policy(spec).movement_hardware(false).build();
            match result {
                Err(BuildError::MovementHardwareAbsent { policy }) => {
                    assert!(spec.needs_movement(), "{spec} rejected but needs no movement");
                    assert_eq!(policy, spec.to_string());
                }
                Err(e) => panic!("{spec}: unexpected build error {e}"),
                Ok(_) => assert!(!spec.needs_movement(), "{spec} must be rejected"),
            }
        }
    }

    #[test]
    fn movement_without_hardware_still_faults_at_runtime() {
        // The unchecked System::new escape hatch keeps the runtime guard.
        let config = SystemConfig { movement_hardware: false, ..SystemConfig::new(Fabric::be()) };
        let mut sys = System::new(config, Box::new(RotationPolicy::new(Snake)));
        let err = sys.run(&toy_program()).unwrap_err();
        assert!(matches!(err, SystemError::MovementUnsupported { .. }));
    }

    #[test]
    fn baseline_runs_without_movement_hardware() {
        let mut sys = System::builder(Fabric::be()).movement_hardware(false).build().unwrap();
        sys.run(&toy_program()).unwrap();
        assert_eq!(sys.cpu().reg(rv32::Reg::A0), reference_result());
    }

    #[test]
    fn builder_overrides_reach_the_config() {
        let builder = System::builder(Fabric::bp())
            .policy(PolicySpec::HealthAware)
            .cache_capacity(64)
            .mem_size(1 << 18)
            .transfer_words_per_cycle(4)
            .offload_heuristic(false)
            .max_steps(1234);
        assert_eq!(builder.spec(), &PolicySpec::HealthAware);
        let cfg = builder.config();
        assert_eq!(cfg.cache_capacity, 64);
        assert_eq!(cfg.mem_size, 1 << 18);
        assert_eq!(cfg.transfer_words_per_cycle, 4);
        assert!(!cfg.offload_heuristic);
        assert_eq!(cfg.max_steps, 1234);
        let sys = builder.build().unwrap();
        assert_eq!(sys.policy_name(), "health-aware");
    }

    fn mul_program() -> Program {
        // The hot loop carries a multiply, so its configuration demands an
        // `alu+mul`-capable anchor (DESIGN.md §14).
        rv32::asm::assemble(
            "
            li   a0, 0
            li   a1, 1
        loop:
            addi t0, a1, 3
            mul  t1, t0, a1
            xor  t2, t1, a1
            add  a0, a0, t2
            addi a1, a1, 1
            li   t4, 400
            blt  a1, t4, loop
            ebreak
        ",
        )
        .unwrap()
    }

    fn mul_reference() -> u32 {
        let mut a0 = 0u32;
        for a1 in 1..400u32 {
            let t0 = a1.wrapping_add(3);
            let t1 = t0.wrapping_mul(a1);
            let t2 = t1 ^ a1;
            a0 = a0.wrapping_add(t2);
        }
        a0
    }

    #[test]
    fn capability_starvation_falls_back_to_the_gpp() {
        // An ALU-only fabric can never anchor the loop's multiply: the run
        // must complete correctly on the GPP instead of dying with
        // AllocationExhausted (DESIGN.md §14).
        let mut fabric = Fabric::be();
        fabric.classes = cgra::ClassMap::Uniform(cgra::CellClass::Alu);
        let mut sys = System::builder(fabric).policy(PolicySpec::rotation()).build().unwrap();
        sys.run(&mul_program()).unwrap();
        assert_eq!(sys.cpu().reg(rv32::Reg::A0), mul_reference());
        assert!(sys.stats().offloads_starved > 0, "the mul config must starve");
    }

    #[test]
    fn heterogeneous_fabric_places_demanding_configs_on_capable_cells() {
        // Row 0 is fully capable, row 1 ALU-only: the mul configuration
        // still offloads, and its anchors never land on row-1 cells.
        let mut fabric = Fabric::be();
        fabric.classes = cgra::ClassMap::RowStripes;
        let mut sys = System::builder(fabric).policy(PolicySpec::rotation()).build().unwrap();
        sys.run(&mul_program()).unwrap();
        assert_eq!(sys.cpu().reg(rv32::Reg::A0), mul_reference());
        assert!(sys.stats().offloads > 300, "capable rows must keep offloading");
        assert_eq!(sys.stats().offloads_starved, 0);
    }

    #[test]
    fn builder_types_an_invalid_fabric() {
        // `Fabric` fields are public, so a hand-built (or deserialized)
        // value can be invalid; the builder rejects it with the typed
        // error instead of a downstream panic.
        let mut fabric = Fabric::be();
        fabric.cols = 0;
        let err = System::builder(fabric).build().unwrap_err();
        assert!(matches!(err, BuildError::Fabric(FabricError::EmptyFabric)), "{err}");
    }

    #[test]
    fn corner_failure_kills_a_baseline_run() {
        let mut mask = FaultMask::healthy(&Fabric::be());
        mask.mark_dead(0, 0);
        let mut sys = System::builder(Fabric::be())
            .policy(PolicySpec::Baseline)
            .fault_mask(mask)
            .build()
            .unwrap();
        let err = sys.run(&toy_program()).unwrap_err();
        assert!(matches!(err, SystemError::AllocationExhausted { .. }), "{err}");
    }

    #[test]
    fn rotation_routes_around_a_dead_corner() {
        let mut mask = FaultMask::healthy(&Fabric::be());
        mask.mark_dead(0, 0);
        let mut sys = System::builder(Fabric::be())
            .policy(PolicySpec::rotation())
            .fault_mask(mask.clone())
            .build()
            .unwrap();
        sys.run(&toy_program()).unwrap();
        assert_eq!(sys.cpu().reg(rv32::Reg::A0), reference_result());
        assert_eq!(sys.fault_mask(), Some(&mask));
        // No execution ever touched the dead FU.
        assert_eq!(sys.tracker().exec_count(0, 0), 0, "dead corner must stay idle");
        assert!(sys.stats().offloads > 0);
    }

    #[test]
    #[should_panic(expected = "geometry must match")]
    fn fault_mask_geometry_is_validated() {
        let mut sys = System::builder(Fabric::be()).build().unwrap();
        sys.set_fault_mask(Some(FaultMask::healthy(&Fabric::bp())));
    }

    #[test]
    fn offloading_beats_gpp_on_the_hot_loop() {
        let gpp =
            run_gpp_only(&toy_program(), 1 << 20, TimingModel::default(), 10_000_000).unwrap();
        let mut sys = sys_with(PolicySpec::Baseline);
        sys.run(&toy_program()).unwrap();
        assert!(
            sys.cpu().cycles() < gpp.cycles(),
            "system {} vs gpp {}",
            sys.cpu().cycles(),
            gpp.cycles()
        );
    }

    #[test]
    fn stats_account_all_cycles() {
        let mut sys = sys_with(PolicySpec::Baseline);
        sys.run(&toy_program()).unwrap();
        assert_eq!(sys.stats().total_cycles(), sys.cpu().cycles());
    }

    #[test]
    fn step_limit_detected() {
        let mut sys = System::builder(Fabric::be()).max_steps(100).build().unwrap();
        let err = sys.run(&toy_program()).unwrap_err();
        assert!(matches!(err, SystemError::StepLimit { .. }));
    }
}
