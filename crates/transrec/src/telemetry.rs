//! Typed event-stream telemetry for observable sessions (DESIGN.md §10).
//!
//! The paper's core evidence is *temporal* — Fig. 8 plots worst-FU delay
//! over time, Table I projects lifetime from stress accumulation — so the
//! simulator's execution loop publishes everything it does as a stream of
//! [`SimEvent`]s that [`Observer`]s consume. The built-in counters
//! ([`SystemStats`]) are themselves just one observer over that stream
//! ([`StatsObserver`]), so third parties can instrument a run without
//! forking the loop: attach an observer and every scheduling decision,
//! offload, rotation and cache movement arrives as data.
//!
//! Probes mirror the policy-as-data design (DESIGN.md §8): a [`ProbeSpec`]
//! is a serde-able value with a compact string form (`util-trace@every-50000`)
//! that [`build`](ProbeSpec::build)s the corresponding observer, so the
//! parallel sweep engine carries telemetry across threads without closures
//! and every probe's output lands in the report JSON as a [`ProbeReport`].
//!
//! # Examples
//!
//! Trace how rotation flattens the stress map *during* a run:
//!
//! ```
//! use cgra::Fabric;
//! use transrec::telemetry::{ProbeReport, ProbeSpec};
//! use transrec::System;
//! use uaware::PolicySpec;
//!
//! let program = rv32::asm::assemble(
//!     "
//!     li   a0, 0
//!     li   a1, 800
//! loop:
//!     addi a0, a0, 3
//!     xor  a2, a0, a1
//!     and  a3, a2, a0
//!     addi a1, a1, -1
//!     bnez a1, loop
//!     ebreak
//! ",
//! )
//! .unwrap();
//!
//! let spec: ProbeSpec = "util-trace@every-500".parse().unwrap();
//! let mut sys =
//!     System::builder(Fabric::be()).policy(PolicySpec::rotation()).probe(spec).build().unwrap();
//! sys.run(&program).unwrap();
//! let reports = sys.probe_reports();
//! let [ProbeReport::UtilTrace(trace)] = reports.as_slice() else { unreachable!() };
//! // Cumulative worst-FU utilization decays towards the flat final map.
//! let worst = trace.worst_series();
//! assert!(worst.first().unwrap().1 > worst.last().unwrap().1);
//! ```

use std::fmt;
use std::str::FromStr;

use cgra::Offset;
use serde::{Deserialize, Serialize};
use uaware::{ParseSpecError, UtilizationGrid, UtilizationTracker};

use crate::system::SystemStats;

/// Default epoch length (system cycles) for [`ProbeSpec::UtilTrace`]:
/// fine enough that every mibench workload (3.6k–93k cycles on BE)
/// contributes interior samples, coarse enough that a full-suite trace
/// stays a few dozen snapshots.
pub const DEFAULT_EPOCH_CYCLES: u64 = 10_000;

/// Cycle components of one offload after overlap (DESIGN.md §4.5), as
/// carried by [`SimEvent::OffloadCompleted`].
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct OffloadOverheads {
    /// Input-context transfer cycles.
    pub input: u64,
    /// Output drain cycles not hidden behind execution.
    pub out_drain: u64,
    /// Configuration-load cycles not hidden behind the input transfer.
    pub reconfig_extra: u64,
    /// Resident-rotation cycles.
    pub rotate: u64,
}

impl OffloadOverheads {
    /// Total overhead cycles charged on top of the execution itself.
    pub fn total(&self) -> u64 {
        self.input + self.out_drain + self.reconfig_extra + self.rotate
    }
}

/// One observable step of the execution loop (paper Fig. 2 / its steps
/// 1–7). Every event of one scheduling decision is emitted in the loop's
/// own deterministic order, so the stream — and anything folded over it —
/// is a pure function of (system configuration, policy, program).
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum SimEvent {
    /// The GPP retired one instruction (steps 1/2); `cycles` is that
    /// step's cycle cost.
    GppRetired {
        /// PC of the retired instruction.
        pc: u32,
        /// GPP cycles charged for the step.
        cycles: u64,
    },
    /// A cached configuration passed the profitability check and is about
    /// to execute at the policy-chosen pivot (start of steps 5–7).
    OffloadStarted {
        /// Start PC of the configuration.
        pc: u32,
        /// The pivot the allocation policy chose.
        offset: Offset,
        /// `true` if a different configuration was resident (or none).
        config_switch: bool,
    },
    /// A non-resident configuration was streamed into the fabric.
    ConfigLoaded {
        /// Start PC of the configuration.
        pc: u32,
        /// Columns occupied by the configuration.
        cols_used: u32,
        /// Raw streaming cost over the configuration-bus lines.
        stream_cycles: u64,
        /// The residual not hidden behind the input transfer (what the run
        /// actually paid; equals the `reconfig_extra` overhead component).
        exposed_cycles: u64,
    },
    /// The resident configuration was rotated to a new pivot (§III.B
    /// movement hardware).
    Rotated {
        /// Start PC of the resident configuration.
        pc: u32,
        /// Previous pivot.
        from: Offset,
        /// New pivot.
        to: Offset,
        /// Exposed rotate cycles (0 when hidden behind the previous
        /// execution's drain, DESIGN.md §4.4).
        cycles: u64,
    },
    /// An offload finished: outputs committed, tracker updated, cycles
    /// charged (end of steps 5–7).
    OffloadCompleted {
        /// Start PC of the configuration.
        pc: u32,
        /// The pivot it executed at.
        offset: Offset,
        /// Instructions the configuration covers.
        instr_count: u32,
        /// Fabric execution cycles.
        exec_cycles: u64,
        /// Overhead breakdown after overlap.
        overheads: OffloadOverheads,
        /// Loads performed by the fabric.
        loads: u64,
        /// Stores performed by the fabric.
        stores: u64,
        /// Occupied FU cells (anchor cells) of this execution.
        active_fus: u64,
        /// Columns the configuration spans.
        cols_used: u32,
    },
    /// The profitability heuristic kept a cached configuration on the GPP.
    OffloadSkipped {
        /// Start PC of the configuration.
        pc: u32,
        /// Estimated GPP cost of the covered instructions.
        gpp_cycles: u64,
        /// Estimated steady-state fabric cost it lost to.
        cgra_cycles: u64,
    },
    /// No pivot satisfied a cached configuration's capability demands on
    /// this fabric's class mix (although a fault-free placement exists);
    /// the configuration stays on the GPP (DESIGN.md §14).
    AllocationStarved {
        /// Start PC of the starved configuration.
        pc: u32,
    },
    /// The DBT installed a configuration into the cache (step 3).
    CacheInserted {
        /// Start PC of the new entry.
        pc: u32,
        /// Instructions the configuration covers.
        instr_count: u32,
    },
    /// The cache evicted its LRU entry to make room.
    CacheEvicted {
        /// Start PC of the displaced entry.
        pc: u32,
    },
    /// A service request entered a device's queue (traffic subsystem,
    /// DESIGN.md §13).
    RequestArrived {
        /// Request index within the serving day.
        request: u64,
        /// Index of the requested workload in the device's suite.
        workload: u32,
        /// Queue depth after the request was admitted (the request
        /// itself included).
        queue_depth: u32,
    },
    /// A queued request finished service (on the fabric, or on the GPP
    /// when backpressure deferred it — DESIGN.md §13).
    RequestServed {
        /// Request index within the serving day.
        request: u64,
        /// Cycles the request waited in the queue before service began.
        wait_cycles: u64,
        /// Cycles the service itself took.
        service_cycles: u64,
        /// `true` when utilization-aware backpressure deferred the
        /// request to the GPP instead of offloading it.
        deferred: bool,
    },
    /// Backpressure dropped a request at arrival: the queue was already
    /// at its shedding threshold (DESIGN.md §13).
    RequestShed {
        /// Request index within the serving day.
        request: u64,
        /// Queue depth that triggered the shed.
        queue_depth: u32,
    },
}

/// Mirrors one [`SimEvent`] into the active tracing dispatch as a named
/// counter event, so a [`MetricsCollector`](obs::MetricsCollector) sees
/// exactly the stream [`StatsObserver`] folds (DESIGN.md §16). Costs one
/// relaxed atomic load when no subscriber is installed. The traffic
/// `Request*` events are metered at their decision sites in the serving
/// queue instead (they are only *constructed* here when probes watch), so
/// they deliberately fall through.
pub(crate) fn emit_metric(event: &SimEvent) {
    if !tracing::dispatch_active() {
        return;
    }
    use tracing::{event, Level};
    match event {
        SimEvent::GppRetired { .. } => event!(Level::TRACE, "system.gpp_retired", "add" = 1),
        SimEvent::OffloadStarted { .. } => event!(Level::TRACE, "system.offloads", "add" = 1),
        SimEvent::ConfigLoaded { .. } => event!(Level::TRACE, "system.config_loads", "add" = 1),
        SimEvent::Rotated { .. } => event!(Level::TRACE, "system.rotations", "add" = 1),
        SimEvent::OffloadCompleted { .. } => {
            event!(Level::TRACE, "system.offloads_completed", "add" = 1)
        }
        SimEvent::OffloadSkipped { .. } => {
            event!(Level::TRACE, "system.offloads_skipped", "add" = 1)
        }
        SimEvent::AllocationStarved { .. } => {
            event!(Level::TRACE, "system.offloads_starved", "add" = 1)
        }
        SimEvent::CacheInserted { .. } => event!(Level::TRACE, "system.cache_inserted", "add" = 1),
        SimEvent::CacheEvicted { .. } => event!(Level::TRACE, "system.cache_evicted", "add" = 1),
        SimEvent::RequestArrived { .. }
        | SimEvent::RequestServed { .. }
        | SimEvent::RequestShed { .. } => {}
    }
}

/// Context handed to observers with every hook call: where the run is
/// (total system cycles so far) and the live per-FU stress observations.
pub struct EventCtx<'a> {
    /// Total system cycles elapsed (GPP + offload components).
    pub cycle: u64,
    /// The system's utilization tracker at the time of the event.
    pub tracker: &'a UtilizationTracker,
}

/// A consumer of the simulation event stream. All hooks default to no-ops,
/// so an observer implements only what it cares about.
///
/// Observers attach to a [`System`](crate::System) via
/// [`SystemBuilder::probe`](crate::SystemBuilder::probe) (as data, through
/// a [`ProbeSpec`]) or [`System::attach_observer`](crate::System::attach_observer)
/// (any implementation). Hooks run synchronously inside the execution
/// loop; they must not assume anything about wall-clock time, only about
/// `ctx.cycle` — that keeps every derived measurement byte-identical
/// under the parallel sweep engine (DESIGN.md §10).
pub trait Observer {
    /// Called for every emitted event.
    fn on_event(&mut self, ctx: &EventCtx<'_>, event: &SimEvent) {
        let _ = (ctx, event);
    }

    /// Called exactly once per session, when the program's exit is first
    /// observed (after the final event of the run).
    fn on_finish(&mut self, ctx: &EventCtx<'_>) {
        let _ = ctx;
    }

    /// The probe's serializable result, if it produces one. Collected by
    /// [`System::probe_reports`](crate::System::probe_reports) and carried
    /// into [`BenchmarkRun`](crate::BenchmarkRun)s by the suite runners.
    fn report(&self) -> Option<ProbeReport> {
        None
    }
}

/// The built-in observer that folds the event stream into [`SystemStats`].
///
/// This is the *only* producer of the system's counters — `System` owns
/// one and every attached probe sees the identical stream, so an
/// externally attached second `StatsObserver` (probe spec `stats`) must
/// reproduce the built-in counters struct-equal; the telemetry
/// equivalence test pins that across the full mibench suite.
///
/// One counter is derived rather than carried by a dedicated event:
/// every scheduling decision begins with exactly one configuration-cache
/// lookup and ends in either an offload or a GPP step, so
/// `cache_lookups` advances on [`SimEvent::OffloadStarted`] and
/// [`SimEvent::GppRetired`] (DESIGN.md §10).
#[derive(Clone, Debug, Default)]
pub struct StatsObserver {
    totals: SystemStats,
}

impl StatsObserver {
    /// A fresh observer with zeroed counters.
    pub fn new() -> StatsObserver {
        StatsObserver::default()
    }

    /// The counters accumulated so far.
    pub fn stats(&self) -> &SystemStats {
        &self.totals
    }
}

impl Observer for StatsObserver {
    fn on_event(&mut self, _ctx: &EventCtx<'_>, event: &SimEvent) {
        let t = &mut self.totals;
        match *event {
            SimEvent::GppRetired { cycles, .. } => {
                t.gpp_cycles += cycles;
                t.gpp_retired += 1;
                t.cache_lookups += 1;
            }
            SimEvent::OffloadStarted { .. } => t.cache_lookups += 1,
            SimEvent::OffloadCompleted {
                instr_count,
                exec_cycles,
                overheads,
                loads,
                stores,
                active_fus,
                cols_used,
                ..
            } => {
                t.cgra_exec_cycles += exec_cycles;
                t.reconfig_cycles += overheads.reconfig_extra;
                t.rotate_cycles += overheads.rotate;
                t.transfer_cycles += overheads.input + overheads.out_drain;
                t.offloads += 1;
                t.offloaded_instrs += instr_count as u64;
                t.cgra_loads += loads;
                t.cgra_stores += stores;
                t.cgra_active_fu_slots += active_fus;
                t.cgra_columns += cols_used as u64;
            }
            SimEvent::OffloadSkipped { .. } => t.offloads_skipped += 1,
            SimEvent::AllocationStarved { .. } => t.offloads_starved += 1,
            SimEvent::ConfigLoaded { .. }
            | SimEvent::Rotated { .. }
            | SimEvent::CacheInserted { .. }
            | SimEvent::CacheEvicted { .. }
            | SimEvent::RequestArrived { .. }
            | SimEvent::RequestServed { .. }
            | SimEvent::RequestShed { .. } => {}
        }
    }

    fn report(&self) -> Option<ProbeReport> {
        Some(ProbeReport::Stats(self.totals))
    }
}

/// One epoch sample: the tracker's raw integer state at a known cycle.
///
/// Samples store the execution-count *numerators* rather than derived
/// `f64` utilizations so that sequential runs compose exactly
/// ([`UtilTrace::concat`]) — integer addition commutes with nothing and
/// rounds nowhere (DESIGN.md §10).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct EpochSnapshot {
    /// System cycle the sample was taken at.
    pub cycle: u64,
    /// Configuration executions recorded so far.
    pub executions: u64,
    /// Per-FU execution counts, row-major.
    pub exec_counts: Vec<u64>,
}

impl EpochSnapshot {
    /// Cumulative worst per-FU utilization at this sample (0 before the
    /// first execution).
    pub fn worst(&self) -> f64 {
        if self.executions == 0 {
            0.0
        } else {
            self.exec_counts.iter().copied().max().unwrap_or(0) as f64 / self.executions as f64
        }
    }

    /// The sample as an execution-weighted [`UtilizationGrid`].
    ///
    /// # Panics
    ///
    /// Panics if `rows * cols` does not match the stored count vector.
    pub fn grid(&self, rows: u32, cols: u32) -> UtilizationGrid {
        UtilizationGrid::from_counts(rows, cols, &self.exec_counts, self.executions)
    }
}

/// A utilization-over-time series: the tracker grid sampled every `every`
/// cycles plus a final end-of-run sample (the [`EpochSnapshots`] probe's
/// report payload).
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct UtilTrace {
    /// Sampling interval in system cycles.
    pub every: u64,
    /// Tracked fabric rows.
    pub rows: u32,
    /// Tracked fabric columns.
    pub cols: u32,
    /// Samples in strictly increasing cycle order; the last sample is the
    /// run's final state.
    pub samples: Vec<EpochSnapshot>,
}

impl UtilTrace {
    /// The cycle of the final sample (0 for an empty trace).
    pub fn total_cycles(&self) -> u64 {
        self.samples.last().map_or(0, |s| s.cycle)
    }

    /// The latest sample at or before `cycle`, falling back to the first
    /// sample for cycles before the first epoch boundary.
    pub fn at_cycle(&self, cycle: u64) -> Option<&EpochSnapshot> {
        match self.samples.iter().rposition(|s| s.cycle <= cycle) {
            Some(i) => Some(&self.samples[i]),
            None => self.samples.first(),
        }
    }

    /// `(cycle, cumulative worst-FU utilization)` per sample — the series
    /// Fig. 8's in-run delay curves are built from.
    pub fn worst_series(&self) -> Vec<(u64, f64)> {
        self.samples.iter().map(|s| (s.cycle, s.worst())).collect()
    }

    /// First sampled cycle from which the worst-FU utilization stays
    /// within `tolerance` (relative) of its final value — see
    /// [`settle_cycle`]. 0 for an empty trace.
    pub fn settle_cycle(&self, tolerance: f64) -> u64 {
        settle_cycle(&self.worst_series(), tolerance)
    }

    /// Composes traces of *sequential* runs on the same fabric geometry
    /// into one suite-level trace, exactly as if the runs had shared a
    /// tracker: each trace's samples are offset by the cycles and counts
    /// accumulated by the runs before it (DESIGN.md §10).
    ///
    /// Returns an empty trace for an empty input.
    ///
    /// # Panics
    ///
    /// Panics on a geometry or sampling-interval mismatch between traces.
    pub fn concat<'a>(traces: impl IntoIterator<Item = &'a UtilTrace>) -> UtilTrace {
        let mut out: Option<UtilTrace> = None;
        let mut base_cycle = 0u64;
        let mut base_execs = 0u64;
        let mut base_counts: Vec<u64> = Vec::new();
        for t in traces {
            let merged = out.get_or_insert_with(|| UtilTrace {
                every: t.every,
                rows: t.rows,
                cols: t.cols,
                samples: Vec::new(),
            });
            assert_eq!((merged.rows, merged.cols), (t.rows, t.cols), "geometry mismatch");
            assert_eq!(merged.every, t.every, "sampling-interval mismatch");
            for s in &t.samples {
                merged.samples.push(EpochSnapshot {
                    cycle: base_cycle + s.cycle,
                    executions: base_execs + s.executions,
                    exec_counts: s
                        .exec_counts
                        .iter()
                        .enumerate()
                        .map(|(i, c)| base_counts.get(i).copied().unwrap_or(0) + c)
                        .collect(),
                });
            }
            if let Some(last) = merged.samples.last() {
                base_cycle = last.cycle;
                base_execs = last.executions;
                base_counts = last.exec_counts.clone();
            }
        }
        out.unwrap_or(UtilTrace { every: 0, rows: 0, cols: 0, samples: Vec::new() })
    }
}

/// The convergence scan shared by the `bench` convergence report and the
/// `aging_forecast` example: the first sampled cycle of a `(cycle,
/// worst-FU utilization)` series from which every later sample stays
/// within `tolerance` (relative) of the final value — how fast a policy
/// flattens stress (DESIGN.md §10). 0 for an empty series.
pub fn settle_cycle(worst_series: &[(u64, f64)], tolerance: f64) -> u64 {
    let final_worst = worst_series.last().map_or(0.0, |(_, w)| *w);
    let tol = tolerance * final_worst;
    let mut settle = 0;
    for &(cycle, worst) in worst_series.iter().rev() {
        if (worst - final_worst).abs() > tol {
            break;
        }
        settle = cycle;
    }
    settle
}

/// The utilization-snapshot observer: samples the tracker grid every `N`
/// cycles (quantized to event boundaries — simulation time advances in
/// jumps, so a sample is taken at the first event whose cycle reaches the
/// epoch boundary) and once more at the end of the run.
#[derive(Clone, Debug)]
pub struct EpochSnapshots {
    next: u64,
    trace: UtilTrace,
}

impl EpochSnapshots {
    /// A snapshot observer sampling every `every` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(every: u64) -> EpochSnapshots {
        assert!(every > 0, "epoch length must be positive");
        EpochSnapshots {
            next: every,
            trace: UtilTrace { every, rows: 0, cols: 0, samples: Vec::new() },
        }
    }

    /// The trace collected so far.
    pub fn trace(&self) -> &UtilTrace {
        &self.trace
    }

    fn push(&mut self, ctx: &EventCtx<'_>) {
        self.trace.rows = ctx.tracker.rows();
        self.trace.cols = ctx.tracker.cols();
        self.trace.samples.push(EpochSnapshot {
            cycle: ctx.cycle,
            executions: ctx.tracker.executions(),
            exec_counts: ctx.tracker.exec_counts().to_vec(),
        });
    }
}

impl Observer for EpochSnapshots {
    fn on_event(&mut self, ctx: &EventCtx<'_>, _event: &SimEvent) {
        if ctx.cycle >= self.next {
            // One sample per event even when a single decision jumps over
            // several epoch boundaries (time advances in whole decisions),
            // keeping the sample cycles strictly increasing.
            self.push(ctx);
            while self.next <= ctx.cycle {
                self.next += self.trace.every;
            }
        }
    }

    fn on_finish(&mut self, ctx: &EventCtx<'_>) {
        // Cycles are monotone, so the final sample is missing exactly when
        // the last epoch boundary predates the end of the run.
        if self.trace.samples.last().map(|s| s.cycle) != Some(ctx.cycle) {
            self.push(ctx);
        }
    }

    fn report(&self) -> Option<ProbeReport> {
        Some(ProbeReport::UtilTrace(self.trace.clone()))
    }
}

/// Per-kind event totals (the `event-counts` probe's report payload).
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EventCounts {
    /// [`SimEvent::GppRetired`] events.
    pub gpp_retired: u64,
    /// [`SimEvent::OffloadStarted`] events.
    pub offloads_started: u64,
    /// [`SimEvent::OffloadCompleted`] events.
    pub offloads_completed: u64,
    /// [`SimEvent::OffloadSkipped`] events.
    pub offloads_skipped: u64,
    /// [`SimEvent::AllocationStarved`] events (DESIGN.md §14).
    pub allocations_starved: u64,
    /// [`SimEvent::ConfigLoaded`] events.
    pub config_loads: u64,
    /// [`SimEvent::Rotated`] events.
    pub rotations: u64,
    /// [`SimEvent::CacheInserted`] events.
    pub cache_insertions: u64,
    /// [`SimEvent::CacheEvicted`] events.
    pub cache_evictions: u64,
    /// [`SimEvent::RequestArrived`] events.
    pub requests_arrived: u64,
    /// [`SimEvent::RequestServed`] events.
    pub requests_served: u64,
    /// [`SimEvent::RequestShed`] events.
    pub requests_shed: u64,
}

/// Observer counting events by kind — the cheapest useful probe, and the
/// reference example for writing new ones.
#[derive(Copy, Clone, Debug, Default)]
pub struct EventCounter {
    counts: EventCounts,
}

impl EventCounter {
    /// The totals so far.
    pub fn counts(&self) -> &EventCounts {
        &self.counts
    }
}

impl Observer for EventCounter {
    fn on_event(&mut self, _ctx: &EventCtx<'_>, event: &SimEvent) {
        let c = &mut self.counts;
        match event {
            SimEvent::GppRetired { .. } => c.gpp_retired += 1,
            SimEvent::OffloadStarted { .. } => c.offloads_started += 1,
            SimEvent::OffloadCompleted { .. } => c.offloads_completed += 1,
            SimEvent::OffloadSkipped { .. } => c.offloads_skipped += 1,
            SimEvent::AllocationStarved { .. } => c.allocations_starved += 1,
            SimEvent::ConfigLoaded { .. } => c.config_loads += 1,
            SimEvent::Rotated { .. } => c.rotations += 1,
            SimEvent::CacheInserted { .. } => c.cache_insertions += 1,
            SimEvent::CacheEvicted { .. } => c.cache_evictions += 1,
            SimEvent::RequestArrived { .. } => c.requests_arrived += 1,
            SimEvent::RequestServed { .. } => c.requests_served += 1,
            SimEvent::RequestShed { .. } => c.requests_shed += 1,
        }
    }

    fn report(&self) -> Option<ProbeReport> {
        Some(ProbeReport::EventCounts(self.counts))
    }
}

/// Default sampling interval of the [`ProbeSpec::QueueDepth`] probe: one
/// minute of serving time at the traffic subsystem's default device clock
/// (DESIGN.md §13).
pub const DEFAULT_QUEUE_EPOCH_CYCLES: u64 = 6_000_000;

/// A queue-depth-over-time series (the `queue-depth` probe's report
/// payload): the device queue sampled every `every` cycles, plus the
/// observed depth maximum and shed total (DESIGN.md §13).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueDepthSeries {
    /// Sampling interval in system cycles.
    pub every: u64,
    /// `(cycle, queue depth)` samples in strictly increasing cycle order;
    /// the last sample is the end-of-run state.
    pub samples: Vec<(u64, u32)>,
    /// Deepest queue observed at any event.
    pub max_depth: u32,
    /// Requests shed by backpressure.
    pub sheds: u64,
}

/// Observer tracking device-queue depth from the request events
/// ([`SimEvent::RequestArrived`] / [`SimEvent::RequestServed`] /
/// [`SimEvent::RequestShed`]), sampled on the same epoch scheme as
/// [`EpochSnapshots`].
#[derive(Clone, Debug)]
pub struct QueueDepthTrace {
    next: u64,
    depth: u32,
    series: QueueDepthSeries,
}

impl QueueDepthTrace {
    /// A queue-depth observer sampling every `every` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `every` is zero.
    pub fn new(every: u64) -> QueueDepthTrace {
        assert!(every > 0, "epoch length must be positive");
        QueueDepthTrace {
            next: every,
            depth: 0,
            series: QueueDepthSeries { every, ..QueueDepthSeries::default() },
        }
    }

    /// The series collected so far.
    pub fn series(&self) -> &QueueDepthSeries {
        &self.series
    }

    fn push(&mut self, cycle: u64) {
        self.series.samples.push((cycle, self.depth));
    }
}

impl Observer for QueueDepthTrace {
    fn on_event(&mut self, ctx: &EventCtx<'_>, event: &SimEvent) {
        match *event {
            SimEvent::RequestArrived { queue_depth, .. } => {
                self.depth = queue_depth;
                self.series.max_depth = self.series.max_depth.max(queue_depth);
            }
            SimEvent::RequestServed { .. } => self.depth = self.depth.saturating_sub(1),
            SimEvent::RequestShed { .. } => self.series.sheds += 1,
            _ => return,
        }
        if ctx.cycle >= self.next {
            self.push(ctx.cycle);
            while self.next <= ctx.cycle {
                self.next += self.series.every;
            }
        }
    }

    fn on_finish(&mut self, ctx: &EventCtx<'_>) {
        if self.series.samples.last().map(|(c, _)| *c) != Some(ctx.cycle) {
            self.push(ctx.cycle);
        }
    }

    fn report(&self) -> Option<ProbeReport> {
        Some(ProbeReport::QueueDepth(self.series.clone()))
    }
}

/// A probe as data: the serializable, parseable selector for the built-in
/// observers, mirroring the [`PolicySpec`](uaware::PolicySpec) grammar
/// (DESIGN.md §10). Sweep plans and builders carry `ProbeSpec` values —
/// never observer instances — so telemetry crosses threads as plain data
/// and each sweep cell instantiates its own observers.
///
/// | String | Meaning |
/// |---|---|
/// | `stats` | an independent [`StatsObserver`] (equivalence checking) |
/// | `util-trace` | [`EpochSnapshots`] at the default 10 000-cycle epoch |
/// | `util-trace@every-50000` | explicit epoch length |
/// | `event-counts` | per-kind event totals ([`EventCounter`]) |
/// | `queue-depth[@every-<n>]` | device-queue depth series ([`QueueDepthTrace`]) |
///
/// # Examples
///
/// ```
/// use transrec::telemetry::ProbeSpec;
///
/// let p: ProbeSpec = "util-trace@every-500".parse().unwrap();
/// assert_eq!(p, ProbeSpec::UtilTrace { every: 500 });
/// assert_eq!(p.to_string(), "util-trace@every-500");
/// assert_eq!("util-trace".parse::<ProbeSpec>().unwrap().to_string(), "util-trace@every-10000");
/// ```
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ProbeSpec {
    /// An independent [`StatsObserver`] replaying the stream.
    Stats,
    /// An [`EpochSnapshots`] observer sampling every `every` cycles.
    UtilTrace {
        /// Sampling interval in system cycles.
        every: u64,
    },
    /// An [`EventCounter`].
    EventCounts,
    /// A [`QueueDepthTrace`] observer sampling every `every` cycles
    /// (DESIGN.md §13).
    QueueDepth {
        /// Sampling interval in system cycles.
        every: u64,
    },
}

impl ProbeSpec {
    /// A utilization trace sampled every `every` cycles.
    pub fn util_trace(every: u64) -> ProbeSpec {
        ProbeSpec::UtilTrace { every }
    }

    /// Instantiates a fresh observer for this spec.
    ///
    /// # Panics
    ///
    /// Panics on `UtilTrace { every: 0 }` (an unconstructable spec via the
    /// string grammar; reachable only by literal).
    pub fn build(&self) -> Box<dyn Observer> {
        match *self {
            ProbeSpec::Stats => Box::new(StatsObserver::new()),
            ProbeSpec::UtilTrace { every } => Box::new(EpochSnapshots::new(every)),
            ProbeSpec::EventCounts => Box::new(EventCounter::default()),
            ProbeSpec::QueueDepth { every } => Box::new(QueueDepthTrace::new(every)),
        }
    }
}

impl fmt::Display for ProbeSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProbeSpec::Stats => f.write_str("stats"),
            ProbeSpec::UtilTrace { every } => write!(f, "util-trace@every-{every}"),
            ProbeSpec::EventCounts => f.write_str("event-counts"),
            ProbeSpec::QueueDepth { every } => write!(f, "queue-depth@every-{every}"),
        }
    }
}

impl FromStr for ProbeSpec {
    type Err = ParseSpecError;

    fn from_str(s: &str) -> Result<ProbeSpec, ParseSpecError> {
        let (head, tail) = match s.split_once('@') {
            Some((h, t)) => (h, Some(t)),
            None => (s, None),
        };
        match (head, tail) {
            ("stats", None) => Ok(ProbeSpec::Stats),
            ("event-counts", None) => Ok(ProbeSpec::EventCounts),
            ("util-trace", None) => Ok(ProbeSpec::UtilTrace { every: DEFAULT_EPOCH_CYCLES }),
            ("queue-depth", None) => {
                Ok(ProbeSpec::QueueDepth { every: DEFAULT_QUEUE_EPOCH_CYCLES })
            }
            ("util-trace" | "queue-depth", Some(tail)) => {
                let every = tail
                    .strip_prefix("every-")
                    .and_then(|n| n.parse::<u64>().ok())
                    .filter(|n| *n > 0)
                    .ok_or_else(|| {
                        ParseSpecError::new(format!(
                            "invalid epoch `{tail}` in `{s}` (expected every-<cycles>)"
                        ))
                    })?;
                if head == "util-trace" {
                    Ok(ProbeSpec::UtilTrace { every })
                } else {
                    Ok(ProbeSpec::QueueDepth { every })
                }
            }
            _ => Err(ParseSpecError::new(format!(
                "unknown probe spec `{s}` (expected stats, util-trace[@every-<n>], \
                 queue-depth[@every-<n>] or event-counts)"
            ))),
        }
    }
}

/// The serializable result of one probe on one run, carried by
/// [`BenchmarkRun`](crate::BenchmarkRun) so sweep output stays pure data.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum ProbeReport {
    /// Counters replayed by an independent [`StatsObserver`].
    Stats(SystemStats),
    /// A [`UtilTrace`] from an [`EpochSnapshots`] probe.
    UtilTrace(UtilTrace),
    /// Totals from an [`EventCounter`] probe.
    EventCounts(EventCounts),
    /// A depth series from a [`QueueDepthTrace`] probe (DESIGN.md §13).
    QueueDepth(QueueDepthSeries),
}

impl ProbeReport {
    /// The utilization trace, if this report carries one.
    pub fn as_util_trace(&self) -> Option<&UtilTrace> {
        match self {
            ProbeReport::UtilTrace(t) => Some(t),
            _ => None,
        }
    }

    /// The event totals, if this report carries them.
    pub fn as_event_counts(&self) -> Option<&EventCounts> {
        match self {
            ProbeReport::EventCounts(c) => Some(c),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_specs_round_trip_their_canonical_strings() {
        let cases = [
            ("stats", ProbeSpec::Stats),
            ("event-counts", ProbeSpec::EventCounts),
            ("util-trace@every-50000", ProbeSpec::UtilTrace { every: 50_000 }),
            ("util-trace@every-7", ProbeSpec::UtilTrace { every: 7 }),
            ("queue-depth@every-9000", ProbeSpec::QueueDepth { every: 9_000 }),
        ];
        for (s, spec) in cases {
            assert_eq!(s.parse::<ProbeSpec>().unwrap(), spec, "{s}");
            assert_eq!(spec.to_string(), s, "{spec:?}");
        }
        assert_eq!(
            "util-trace".parse::<ProbeSpec>().unwrap(),
            ProbeSpec::UtilTrace { every: DEFAULT_EPOCH_CYCLES }
        );
        assert_eq!(
            "queue-depth".parse::<ProbeSpec>().unwrap(),
            ProbeSpec::QueueDepth { every: DEFAULT_QUEUE_EPOCH_CYCLES }
        );
    }

    #[test]
    fn malformed_probe_specs_are_rejected() {
        for s in [
            "",
            "util",
            "util-trace@",
            "util-trace@every-",
            "util-trace@every-0",
            "util-trace@every-x",
            "util-trace@sometimes",
            "queue-depth@every-0",
            "queue-depth@sometimes",
            "stats@every-5",
            "event-counts@every-5",
        ] {
            assert!(s.parse::<ProbeSpec>().is_err(), "`{s}` should not parse");
        }
    }

    #[test]
    fn probe_specs_survive_json() {
        for spec in [
            ProbeSpec::Stats,
            ProbeSpec::EventCounts,
            ProbeSpec::UtilTrace { every: 123 },
            ProbeSpec::QueueDepth { every: 77 },
        ] {
            let json = serde_json::to_string(&spec).unwrap();
            let back: ProbeSpec = serde_json::from_str(&json).unwrap();
            assert_eq!(back, spec, "{json}");
        }
    }

    #[test]
    fn concat_offsets_sequential_traces_exactly() {
        let a = UtilTrace {
            every: 10,
            rows: 1,
            cols: 2,
            samples: vec![
                EpochSnapshot { cycle: 10, executions: 2, exec_counts: vec![2, 0] },
                EpochSnapshot { cycle: 25, executions: 5, exec_counts: vec![3, 2] },
            ],
        };
        let b = UtilTrace {
            every: 10,
            rows: 1,
            cols: 2,
            samples: vec![EpochSnapshot { cycle: 12, executions: 3, exec_counts: vec![0, 3] }],
        };
        let merged = UtilTrace::concat([&a, &b]);
        assert_eq!(merged.samples.len(), 3);
        let last = merged.samples.last().unwrap();
        assert_eq!(last.cycle, 25 + 12);
        assert_eq!(last.executions, 8);
        assert_eq!(last.exec_counts, vec![3, 5]);
        assert_eq!(merged.total_cycles(), 37);
        // worst utilization of the merged final state: 5/8.
        assert!((last.worst() - 5.0 / 8.0).abs() < 1e-12);
    }

    #[test]
    fn concat_of_nothing_is_empty() {
        let t = UtilTrace::concat([]);
        assert!(t.samples.is_empty());
        assert_eq!(t.total_cycles(), 0);
    }

    #[test]
    fn at_cycle_picks_latest_at_or_before() {
        let t = UtilTrace {
            every: 10,
            rows: 1,
            cols: 1,
            samples: vec![
                EpochSnapshot { cycle: 10, executions: 1, exec_counts: vec![1] },
                EpochSnapshot { cycle: 20, executions: 4, exec_counts: vec![4] },
            ],
        };
        assert_eq!(t.at_cycle(5).unwrap().cycle, 10, "pre-epoch falls back to first");
        assert_eq!(t.at_cycle(10).unwrap().cycle, 10);
        assert_eq!(t.at_cycle(19).unwrap().cycle, 10);
        assert_eq!(t.at_cycle(1000).unwrap().cycle, 20);
    }

    #[test]
    fn snapshot_worst_handles_zero_executions() {
        let s = EpochSnapshot { cycle: 0, executions: 0, exec_counts: vec![0, 0] };
        assert_eq!(s.worst(), 0.0);
    }

    #[test]
    fn one_event_crossing_many_boundaries_samples_once() {
        // A single scheduling decision can jump several epoch boundaries
        // (time advances in whole decisions); the trace must still keep
        // strictly increasing sample cycles with no duplicates.
        let tracker = uaware::UtilizationTracker::new(&cgra::Fabric::be());
        let mut obs = EpochSnapshots::new(10);
        let ev = SimEvent::GppRetired { pc: 0, cycles: 1 };
        obs.on_event(&EventCtx { cycle: 55, tracker: &tracker }, &ev);
        assert_eq!(obs.trace().samples.len(), 1, "five boundaries, one sample");
        obs.on_event(&EventCtx { cycle: 57, tracker: &tracker }, &ev);
        assert_eq!(obs.trace().samples.len(), 1, "no new boundary, no new sample");
        obs.on_event(&EventCtx { cycle: 60, tracker: &tracker }, &ev);
        let samples = &obs.trace().samples;
        assert_eq!(samples.len(), 2);
        assert!(samples.windows(2).all(|w| w[0].cycle < w[1].cycle));
    }

    #[test]
    fn queue_depth_trace_follows_request_events() {
        let tracker = uaware::UtilizationTracker::new(&cgra::Fabric::be());
        let mut obs = QueueDepthTrace::new(100);
        let ctx = |cycle| EventCtx { cycle, tracker: &tracker };
        obs.on_event(
            &ctx(10),
            &SimEvent::RequestArrived { request: 0, workload: 0, queue_depth: 1 },
        );
        obs.on_event(
            &ctx(50),
            &SimEvent::RequestArrived { request: 1, workload: 1, queue_depth: 2 },
        );
        obs.on_event(&ctx(120), &SimEvent::RequestShed { request: 2, queue_depth: 2 });
        obs.on_event(
            &ctx(130),
            &SimEvent::RequestServed {
                request: 0,
                wait_cycles: 0,
                service_cycles: 120,
                deferred: false,
            },
        );
        obs.on_finish(&ctx(300));
        let series = obs.series();
        assert_eq!(series.max_depth, 2);
        assert_eq!(series.sheds, 1);
        // First epoch boundary crossed by the shed at cycle 120, plus the
        // end-of-run sample after the serve brought the depth back to 1.
        assert_eq!(series.samples, vec![(120, 2), (300, 1)]);
    }

    #[test]
    fn event_counter_tallies_request_events() {
        let tracker = uaware::UtilizationTracker::new(&cgra::Fabric::be());
        let ctx = EventCtx { cycle: 1, tracker: &tracker };
        let mut counter = EventCounter::default();
        counter
            .on_event(&ctx, &SimEvent::RequestArrived { request: 0, workload: 0, queue_depth: 1 });
        counter.on_event(
            &ctx,
            &SimEvent::RequestServed {
                request: 0,
                wait_cycles: 2,
                service_cycles: 3,
                deferred: true,
            },
        );
        counter.on_event(&ctx, &SimEvent::RequestShed { request: 1, queue_depth: 9 });
        let c = counter.counts();
        assert_eq!((c.requests_arrived, c.requests_served, c.requests_shed), (1, 1, 1));
    }

    #[test]
    fn settle_cycle_finds_the_stable_suffix() {
        let series = [(10, 1.0), (20, 0.6), (30, 0.52), (40, 0.49), (50, 0.5)];
        assert_eq!(settle_cycle(&series, 0.05), 30, "0.52 is inside the 5% band, 0.6 is not");
        assert_eq!(settle_cycle(&series, 0.5), 20, "a loose band settles early");
        assert_eq!(settle_cycle(&[], 0.05), 0);
        // A series that leaves the band late settles only at its end.
        let late = [(10, 0.5), (20, 1.0), (30, 0.5)];
        assert_eq!(settle_cycle(&late, 0.05), 30);
    }
}
