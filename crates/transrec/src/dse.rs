//! Design-space exploration (paper §IV.B / Fig. 6) and whole-suite
//! evaluation runs.

use serde::{Deserialize, Serialize};

use cgra::{Fabric, FabricSpec};
use mibench::Workload;
use uaware::{PolicySpec, UtilizationTracker};

use crate::energy::{gpp_only_energy, system_energy, EnergyParams};
use crate::system::{run_gpp_only, System, SystemConfig, SystemError, SystemStats};
use crate::telemetry::{ProbeReport, ProbeSpec, UtilTrace};

/// The paper's exploration grid: length L ∈ {8,16,24,32} columns ×
/// width W ∈ {2,4,8} rows.
pub fn dse_grid() -> Vec<(u32, u32)> {
    let mut grid = Vec::new();
    for l in [8u32, 16, 24, 32] {
        for w in [2u32, 4, 8] {
            grid.push((l, w));
        }
    }
    grid
}

/// One benchmark's outcome on one system configuration.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct BenchmarkRun {
    /// Benchmark name.
    pub name: String,
    /// System cycles.
    pub system_cycles: u64,
    /// Stand-alone GPP cycles (the 1× reference).
    pub gpp_cycles: u64,
    /// System energy (GPP-cycle-energy units).
    pub system_energy: f64,
    /// GPP-only energy.
    pub gpp_energy: f64,
    /// Full stats.
    pub stats: SystemStats,
    /// Whether the workload's oracle verified the run.
    pub verified: bool,
    /// Telemetry-probe reports, in probe-spec order (empty when the run
    /// carried no probes).
    pub probes: Vec<ProbeReport>,
}

impl BenchmarkRun {
    /// Speedup over the stand-alone GPP.
    pub fn speedup(&self) -> f64 {
        self.gpp_cycles as f64 / self.system_cycles as f64
    }

    /// Relative energy (system / GPP-only).
    pub fn relative_energy(&self) -> f64 {
        self.system_energy / self.gpp_energy
    }
}

/// A whole-suite evaluation on one fabric with one policy.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct SuiteRun {
    /// Fabric columns (L).
    pub cols: u32,
    /// Fabric rows (W).
    pub rows: u32,
    /// The fabric as a canonical [`FabricSpec`] string (geometry plus
    /// class mix, context lines and bandwidth budget — DESIGN.md §14),
    /// the key heterogeneous sweeps report under.
    pub fabric_spec: String,
    /// Policy name.
    pub policy: String,
    /// Per-benchmark results.
    pub benchmarks: Vec<BenchmarkRun>,
    /// Merged per-FU utilization across the suite.
    pub tracker: UtilizationTracker,
}

impl SuiteRun {
    /// Geometric-mean speedup across benchmarks (paper-style ×GPP).
    pub fn speedup(&self) -> f64 {
        geo_mean(self.benchmarks.iter().map(BenchmarkRun::speedup))
    }

    /// Geometric-mean relative energy.
    pub fn relative_energy(&self) -> f64 {
        geo_mean(self.benchmarks.iter().map(BenchmarkRun::relative_energy))
    }

    /// Relative execution time (1 / speedup), the x-axis of Fig. 6.
    pub fn relative_time(&self) -> f64 {
        1.0 / self.speedup()
    }

    /// Mean per-FU utilization ("occupation" in Fig. 6).
    pub fn avg_occupation(&self) -> f64 {
        self.tracker.utilization().mean()
    }

    /// `true` if every benchmark verified.
    pub fn all_verified(&self) -> bool {
        self.benchmarks.iter().all(|b| b.verified)
    }

    /// The suite-level utilization trace: every benchmark's `util-trace`
    /// probe report chained with [`UtilTrace::concat`] into the series a
    /// suite-shared tracker would have produced (DESIGN.md §10). `None`
    /// if any benchmark lacks a trace (no such probe attached).
    pub fn util_trace(&self) -> Option<UtilTrace> {
        let traces: Option<Vec<&UtilTrace>> = self
            .benchmarks
            .iter()
            .map(|b| b.probes.iter().find_map(|p| p.as_util_trace()))
            .collect();
        Some(UtilTrace::concat(traces?))
    }
}

fn geo_mean(values: impl Iterator<Item = f64>) -> f64 {
    let (mut log_sum, mut n) = (0.0f64, 0u32);
    for v in values {
        log_sum += v.ln();
        n += 1;
    }
    if n == 0 {
        1.0
    } else {
        (log_sum / n as f64).exp()
    }
}

/// The policy-and-telemetry half of a suite evaluation, as one value —
/// what varies between cells of a sweep while the [`SystemConfig`] and
/// workloads stay fixed. [`run_suite_with_options`] is the single suite
/// entrypoint; the positional `run_suite*` functions are thin wrappers
/// over it.
#[derive(Copy, Clone, Debug)]
pub struct SuiteOptions<'a> {
    /// The allocation policy (one fresh instance per benchmark).
    pub policy: PolicySpec,
    /// Telemetry probes, instantiated fresh for every benchmark
    /// (DESIGN.md §10); each probe's report lands in the corresponding
    /// [`BenchmarkRun::probes`] slot, in spec order.
    pub probes: &'a [ProbeSpec],
    /// Precomputed [`gpp_reference`] cycles, one per workload — the sweep
    /// engine's hot path, where the policy-independent GPP baseline must
    /// not be recomputed per policy. `None` computes it inline.
    pub gpp_reference: Option<&'a [u64]>,
}

impl SuiteOptions<'_> {
    /// Options for a plain policy run: no probes, GPP reference computed
    /// inline.
    pub fn new(policy: PolicySpec) -> SuiteOptions<'static> {
        SuiteOptions { policy, probes: &[], gpp_reference: None }
    }
}

/// Runs the full suite on `base_config` under `options` (one fresh policy
/// instance per benchmark; the utilization trackers are merged across the
/// suite like the paper's aggregated utilization).
///
/// # Errors
///
/// Propagates the first [`SystemError`]; rejects a movement spec on a
/// movement-less configuration before anything runs.
///
/// # Panics
///
/// Panics if a precomputed `options.gpp_reference` and `workloads` have
/// different lengths.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use transrec::{run_suite_with_options, EnergyParams, SuiteOptions, SystemConfig};
///
/// let workloads = &mibench::suite(7)[..1];
/// let options = SuiteOptions::new("rotation:snake@per-load".parse().unwrap());
/// let config = SystemConfig::new(Fabric::be());
/// let run = run_suite_with_options(&config, workloads, &EnergyParams::default(), options)
///     .unwrap();
/// assert!(run.all_verified());
/// assert_eq!(run.policy, "rotation:snake@per-load");
/// assert_eq!(run.fabric_spec, "2x16");
/// ```
pub fn run_suite_with_options(
    base_config: &SystemConfig,
    workloads: &[Workload],
    energy: &EnergyParams,
    options: SuiteOptions<'_>,
) -> Result<SuiteRun, SystemError> {
    let spec = options.policy;
    // Fail fast on an invalid spec/hardware pairing before spending time on
    // the GPP reference simulations.
    if spec.needs_movement() && !base_config.movement_hardware {
        return Err(
            crate::system::BuildError::MovementHardwareAbsent { policy: spec.to_string() }.into()
        );
    }
    let computed;
    let gpp_cycles: &[u64] = match options.gpp_reference {
        Some(cycles) => cycles,
        None => {
            computed = gpp_reference(base_config, workloads)?;
            &computed
        }
    };
    assert_eq!(gpp_cycles.len(), workloads.len(), "one GPP reference per workload");
    let fabric = base_config.fabric;
    let mut merged = UtilizationTracker::new(&fabric);
    let mut benchmarks = Vec::with_capacity(workloads.len());
    for (w, &gpp_cycles) in workloads.iter().zip(gpp_cycles) {
        let mut system = System::new(base_config.clone(), spec.build());
        for probe in options.probes {
            system.attach_observer(probe.build());
        }
        system.run(w.program())?;
        let verified = w.verify(system.cpu()).is_ok();
        let stats = *system.stats();
        benchmarks.push(BenchmarkRun {
            name: w.name().to_string(),
            system_cycles: stats.total_cycles(),
            gpp_cycles,
            system_energy: system_energy(energy, &fabric, &stats).total(),
            gpp_energy: gpp_only_energy(energy, gpp_cycles),
            stats,
            verified,
            probes: system.probe_reports(),
        });
        merged.merge(system.tracker());
    }
    Ok(SuiteRun {
        cols: fabric.cols,
        rows: fabric.rows,
        fabric_spec: FabricSpec::from_fabric(&fabric).to_string(),
        policy: spec.to_string(),
        benchmarks,
        tracker: merged,
    })
}

/// Runs the full suite on `fabric` with the policy described by `spec` —
/// the historical positional wrapper over [`run_suite_with_options`].
///
/// # Errors
///
/// Propagates the first [`SystemError`]; rejects a movement spec on a
/// movement-less configuration before anything runs.
///
/// # Examples
///
/// ```
/// use cgra::Fabric;
/// use transrec::{run_suite, EnergyParams};
/// use uaware::PolicySpec;
///
/// let workloads = &mibench::suite(7)[..1];
/// let spec: PolicySpec = "rotation:snake@per-load".parse().unwrap();
/// let run = run_suite(Fabric::be(), workloads, &EnergyParams::default(), &spec).unwrap();
/// assert!(run.all_verified());
/// assert_eq!(run.policy, "rotation:snake@per-load");
/// ```
pub fn run_suite(
    fabric: Fabric,
    workloads: &[Workload],
    energy: &EnergyParams,
    spec: &PolicySpec,
) -> Result<SuiteRun, SystemError> {
    run_suite_with_options(&SystemConfig::new(fabric), workloads, energy, SuiteOptions::new(*spec))
}

/// [`run_suite`] with an explicit [`SystemConfig`] — the historical
/// positional wrapper over [`run_suite_with_options`].
///
/// # Errors
///
/// Propagates the first [`SystemError`].
pub fn run_suite_with(
    base_config: SystemConfig,
    workloads: &[Workload],
    energy: &EnergyParams,
    spec: &PolicySpec,
) -> Result<SuiteRun, SystemError> {
    run_suite_with_options(&base_config, workloads, energy, SuiteOptions::new(*spec))
}

/// The stand-alone GPP reference cycles for `workloads` under `config`'s
/// memory/timing/step parameters — the policy-independent half of a suite
/// run, computed once per (GPP parameters × workloads) and reused across
/// every policy of a sweep (DESIGN.md §9).
///
/// # Errors
///
/// Propagates the first CPU fault as [`SystemError::Cpu`].
pub fn gpp_reference(
    config: &SystemConfig,
    workloads: &[Workload],
) -> Result<Vec<u64>, SystemError> {
    workloads
        .iter()
        .map(|w| {
            run_gpp_only(w.program(), config.mem_size, config.timing, config.max_steps)
                .map(|cpu| cpu.cycles())
                .map_err(SystemError::Cpu)
        })
        .collect()
}

/// [`run_suite_with`] against a precomputed [`gpp_reference`] — the
/// historical positional wrapper over [`run_suite_with_options`].
///
/// # Errors
///
/// Propagates the first [`SystemError`]; rejects a movement spec on a
/// movement-less configuration before anything runs.
///
/// # Panics
///
/// Panics if `gpp_cycles` and `workloads` have different lengths.
pub fn run_suite_with_baseline(
    base_config: &SystemConfig,
    workloads: &[Workload],
    energy: &EnergyParams,
    spec: &PolicySpec,
    gpp_cycles: &[u64],
    probes: &[ProbeSpec],
) -> Result<SuiteRun, SystemError> {
    let options = SuiteOptions { policy: *spec, probes, gpp_reference: Some(gpp_cycles) };
    run_suite_with_options(base_config, workloads, energy, options)
}

/// Runs the paper's full DSE grid (Fig. 6) with one policy spec, sharded
/// across `jobs` workers via [`run_sweep`](crate::sweep::run_sweep)
/// (`jobs = 0` means all cores, `jobs = 1` is the sequential path; the
/// results are byte-identical either way). Workloads are built from
/// `seed` exactly as `mibench::suite(seed)` would.
///
/// # Errors
///
/// Propagates the first [`SystemError`] in grid order.
pub fn run_dse(
    seed: u64,
    energy: &EnergyParams,
    spec: &PolicySpec,
    jobs: usize,
) -> Result<Vec<SuiteRun>, SystemError> {
    let mut plan = crate::sweep::SweepPlan::new(seed).energy(*energy).policy(*spec);
    for (l, w) in dse_grid() {
        plan = plan.fabric(Fabric::new(w, l));
    }
    crate::sweep::run_sweep(&plan, jobs)
}
