//! System energy model (behind paper Fig. 6's energy axis).
//!
//! Component powers/energies are expressed in *GPP-cycle-energy units*: the
//! stand-alone GPP consumes 1.0 per busy cycle, so the relative energy of a
//! TransRec run is simply `total / gpp_only_cycles`. The defaults are
//! calibrated so the paper's zones hold (DESIGN.md §4.6): a small fabric
//! saves energy because the shorter runtime outweighs its leakage, while
//! large fabrics pay leakage on many idle FUs at low occupation.

use serde::{Deserialize, Serialize};

use cgra::Fabric;

use crate::system::SystemStats;

/// Energy/power coefficients in GPP-cycle-energy units.
#[derive(Copy, Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct EnergyParams {
    /// GPP dynamic energy per busy cycle (the normalization unit).
    pub gpp_active: f64,
    /// GPP power fraction while waiting for the fabric (clock-gated core +
    /// caches staying warm).
    pub gpp_idle_frac: f64,
    /// DBT hardware energy per GPP-retired instruction.
    pub dbt_per_instr: f64,
    /// Dynamic energy per active FU column-slot.
    pub fu_active: f64,
    /// Leakage power per FU per system cycle.
    pub fu_leak: f64,
    /// Crossbar/context energy per executed fabric column.
    pub xbar_per_column: f64,
    /// Energy per configuration column streamed into the fabric.
    pub reconfig_per_column: f64,
    /// Energy per context word transferred.
    pub transfer_per_word: f64,
    /// Configuration-cache leakage per system cycle.
    pub cache_leak: f64,
    /// Energy per configuration-cache lookup.
    pub cache_lookup: f64,
}

impl Default for EnergyParams {
    fn default() -> EnergyParams {
        EnergyParams {
            gpp_active: 1.0,
            gpp_idle_frac: 0.75,
            dbt_per_instr: 0.05,
            fu_active: 0.080,
            fu_leak: 0.0055,
            xbar_per_column: 0.050,
            reconfig_per_column: 0.060,
            transfer_per_word: 0.050,
            cache_leak: 0.120,
            cache_lookup: 0.012,
        }
    }
}

/// Energy of one run, by component (GPP-cycle-energy units).
#[derive(Copy, Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// GPP dynamic energy (busy cycles).
    pub gpp_active: f64,
    /// GPP idle energy while the fabric computes.
    pub gpp_idle: f64,
    /// DBT hardware energy.
    pub dbt: f64,
    /// Fabric dynamic energy (active FUs + crossbars).
    pub cgra_dynamic: f64,
    /// Fabric leakage over the whole run.
    pub cgra_leakage: f64,
    /// Reconfiguration + context-transfer energy.
    pub reconfig: f64,
    /// Configuration-cache energy (leakage + lookups).
    pub cache: f64,
}

impl EnergyBreakdown {
    /// Total energy.
    pub fn total(&self) -> f64 {
        self.gpp_active
            + self.gpp_idle
            + self.dbt
            + self.cgra_dynamic
            + self.cgra_leakage
            + self.reconfig
            + self.cache
    }
}

/// Evaluates the energy of a TransRec run.
pub fn system_energy(
    params: &EnergyParams,
    fabric: &Fabric,
    stats: &SystemStats,
) -> EnergyBreakdown {
    let total_cycles = stats.total_cycles() as f64;
    let offload_cycles = total_cycles - stats.gpp_cycles as f64;
    let columns_loaded = stats.reconfig_cycles as f64 * fabric.cfg_lines as f64;
    let words = 2.0 * stats.transfer_cycles as f64;
    EnergyBreakdown {
        gpp_active: stats.gpp_cycles as f64 * params.gpp_active,
        gpp_idle: offload_cycles * params.gpp_idle_frac * params.gpp_active,
        dbt: stats.gpp_retired as f64 * params.dbt_per_instr,
        cgra_dynamic: stats.cgra_active_fu_slots as f64 * params.fu_active
            + stats.cgra_columns as f64 * params.xbar_per_column,
        cgra_leakage: fabric.fu_count() as f64 * total_cycles * params.fu_leak,
        reconfig: columns_loaded * params.reconfig_per_column + words * params.transfer_per_word,
        cache: total_cycles * params.cache_leak + stats.cache_lookups as f64 * params.cache_lookup,
    }
}

/// Energy of the stand-alone GPP reference run.
pub fn gpp_only_energy(params: &EnergyParams, gpp_cycles: u64) -> f64 {
    gpp_cycles as f64 * params.gpp_active
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats() -> SystemStats {
        SystemStats {
            gpp_cycles: 1000,
            cgra_exec_cycles: 400,
            reconfig_cycles: 50,
            rotate_cycles: 10,
            transfer_cycles: 100,
            offloads: 100,
            offloaded_instrs: 1200,
            gpp_retired: 900,
            offloads_skipped: 0,
            offloads_starved: 0,
            cgra_loads: 50,
            cgra_stores: 20,
            cgra_active_fu_slots: 1500,
            cgra_columns: 800,
            cache_lookups: 1000,
        }
    }

    #[test]
    fn breakdown_sums() {
        let b = system_energy(&EnergyParams::default(), &Fabric::be(), &stats());
        let manual = b.gpp_active
            + b.gpp_idle
            + b.dbt
            + b.cgra_dynamic
            + b.cgra_leakage
            + b.reconfig
            + b.cache;
        assert!((b.total() - manual).abs() < 1e-12);
        assert!(b.total() > 0.0);
    }

    #[test]
    fn larger_fabric_leaks_more() {
        let s = stats();
        let be = system_energy(&EnergyParams::default(), &Fabric::be(), &s);
        let bu = system_energy(&EnergyParams::default(), &Fabric::bu(), &s);
        assert!(bu.cgra_leakage > 7.9 * be.cgra_leakage, "8x the FUs");
        assert_eq!(be.gpp_active, bu.gpp_active);
    }

    #[test]
    fn offload_shortens_runtime_but_adds_components() {
        let p = EnergyParams::default();
        let s = stats();
        let sys = system_energy(&p, &Fabric::be(), &s);
        // Hypothetical GPP-only cycles; the model can go either way, so
        // just check the relative math is sane.
        let gpp = gpp_only_energy(&p, 2500);
        let rel = sys.total() / gpp;
        assert!(rel > 0.3 && rel < 3.0, "rel {rel}");
    }
}
