//! The paper's selected design points (§IV.B): BE, BP and BU.

use cgra::Fabric;
use serde::{Deserialize, Serialize};

/// A named design point from the paper's DSE.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Scenario {
    /// Scenario tag ("BE", "BP", "BU").
    pub name: &'static str,
    /// What the point optimizes.
    pub description: &'static str,
    /// Fabric columns (L).
    pub cols: u32,
    /// Fabric rows (W).
    pub rows: u32,
}

impl Scenario {
    /// The fabric for this scenario.
    pub fn fabric(&self) -> Fabric {
        Fabric::new(self.rows, self.cols)
    }
}

/// BE — best energy consumption (L16, W2).
pub const BE: Scenario =
    Scenario { name: "BE", description: "best energy consumption", cols: 16, rows: 2 };

/// BP — best performance (L32, W4).
pub const BP: Scenario =
    Scenario { name: "BP", description: "best performance", cols: 32, rows: 4 };

/// BU — best (lowest) utilization (L32, W8).
pub const BU: Scenario =
    Scenario { name: "BU", description: "best (lowest) utilization", cols: 32, rows: 8 };

/// The three evaluation scenarios, in paper order.
pub const ALL: [Scenario; 3] = [BE, BP, BU];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scenarios_match_paper() {
        assert_eq!((BE.cols, BE.rows), (16, 2));
        assert_eq!((BP.cols, BP.rows), (32, 4));
        assert_eq!((BU.cols, BU.rows), (32, 8));
        assert_eq!(BE.fabric(), Fabric::be());
        assert_eq!(BP.fabric(), Fabric::bp());
        assert_eq!(BU.fabric(), Fabric::bu());
    }
}
