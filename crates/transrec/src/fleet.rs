//! Fleet-scale closed-loop lifetime simulation (DESIGN.md §11).
//!
//! One *device* is a [`System`] deployed for years: its workload mix runs
//! as a sequence of *missions* (one pass of the suite, modeling
//! [`FleetPlan::mission_years`] of deployment), each mission's per-FU
//! stress folds into a persistent [`lifetime::DeviceLifetime`], FUs that
//! cross end of life flip dead in the [`cgra::FaultMask`] the next
//! mission's allocation must route around, and the device retires when the
//! policy reports [`SystemError::AllocationExhausted`]. A *fleet* fans N
//! such devices (per-device workload seeds via [`uaware::derive_cell_seed`])
//! × M policies across the same thread pool the sweep engine uses, with
//! the same guarantee: [`run_fleet`]'s report is byte-identical for every
//! `jobs` value.
//!
//! Missions are deterministic given (configuration, policy, workloads,
//! fault mask), so the engine simulates a mission **once per fault-mask
//! state** and replays its duty grid until the next failure changes the
//! mask — a device's cost is `1 + #mask-changes` suite simulations, not
//! `#missions` (DESIGN.md §11).
//!
//! # Examples
//!
//! ```
//! use cgra::Fabric;
//! use transrec::fleet::{run_fleet, FleetPlan};
//! use transrec::sweep::SuiteSpec;
//! use uaware::PolicySpec;
//!
//! let plan = FleetPlan::new(0xDAC2020, Fabric::be())
//!     .policy(PolicySpec::Baseline)
//!     .policy(PolicySpec::HealthAware)
//!     .devices(2)
//!     .suite(SuiteSpec::subset("bitcount", vec![0]))
//!     .mission_years(0.5)
//!     .horizon_years(20.0);
//! let report = run_fleet(&plan, 1).unwrap();
//! let base = report.policy("baseline").unwrap();
//! let oracle = report.policy("health-aware").unwrap();
//! // Reallocation around failures outlives the corner-pinned baseline.
//! assert!(oracle.stats.mttf_years > base.stats.mttf_years);
//! ```

use lifetime::{DeviceLifetime, FleetStats, FuFailed, SurvivalCurve};
use mibench::Workload;
use nbti::CalibratedAging;
use serde::{Deserialize, Serialize};
use threadpool::ThreadPool;
use uaware::{derive_cell_seed, PolicySpec, UtilizationGrid, UtilizationTracker};

use crate::sweep::SuiteSpec;
use crate::system::{BuildError, System, SystemConfig, SystemError};

/// Default deployment time one mission (one pass of the suite) models.
pub const DEFAULT_MISSION_YEARS: f64 = 0.5;

/// Default fleet observation horizon in years (long enough that every
/// policy's cascade completes on the paper's BE scenario).
pub const DEFAULT_HORIZON_YEARS: f64 = 40.0;

/// A fleet experiment as data: N device instances × M policies, each
/// device running its own seed-derived workload mix mission after mission
/// until death or the horizon (DESIGN.md §11).
#[derive(Clone, Debug)]
pub struct FleetPlan {
    /// Base experiment seed; device `d` builds its workloads from
    /// [`derive_cell_seed`]`(base_seed, d)` (device 0 keeps the base seed).
    pub base_seed: u64,
    /// The system configuration every device ships with.
    pub config: SystemConfig,
    /// The policy axis (each policy sees the same device population).
    pub policies: Vec<PolicySpec>,
    /// Device instances per policy.
    pub devices: usize,
    /// The workload mix of one mission.
    pub suite: SuiteSpec,
    /// Deployment years one mission models.
    pub mission_years: f64,
    /// Observation horizon: devices alive at this time are censored.
    pub horizon_years: f64,
    /// The aging calibration wear accumulates under.
    pub aging: CalibratedAging,
    /// `true` (the closed loop): end-of-life FUs go dead in the fault mask
    /// and allocation must route around them. `false` (open loop): wear
    /// accumulates and failures are recorded, but placement never changes
    /// — the mode the analytic cross-check runs in.
    pub inject_faults: bool,
    /// First-failure histogram bins over `[0, horizon_years]`.
    pub histogram_bins: usize,
}

impl FleetPlan {
    /// A fleet of 8 devices on `fabric` running the full mibench mix, with
    /// the closed loop on and the default mission/horizon. Add policies
    /// with the chainable builders.
    pub fn new(base_seed: u64, fabric: cgra::Fabric) -> FleetPlan {
        FleetPlan {
            base_seed,
            config: SystemConfig::new(fabric),
            policies: Vec::new(),
            devices: 8,
            suite: SuiteSpec::full(),
            mission_years: DEFAULT_MISSION_YEARS,
            horizon_years: DEFAULT_HORIZON_YEARS,
            aging: CalibratedAging::default(),
            inject_faults: true,
            histogram_bins: 20,
        }
    }

    /// Replaces the system configuration.
    pub fn config(mut self, config: SystemConfig) -> FleetPlan {
        self.config = config;
        self
    }

    /// Adds a policy to the policy axis.
    pub fn policy(mut self, spec: PolicySpec) -> FleetPlan {
        self.policies.push(spec);
        self
    }

    /// Adds several policies to the policy axis.
    pub fn policies(mut self, specs: impl IntoIterator<Item = PolicySpec>) -> FleetPlan {
        self.policies.extend(specs);
        self
    }

    /// Sets the number of device instances per policy.
    pub fn devices(mut self, devices: usize) -> FleetPlan {
        self.devices = devices;
        self
    }

    /// Replaces the per-mission workload mix.
    pub fn suite(mut self, suite: SuiteSpec) -> FleetPlan {
        self.suite = suite;
        self
    }

    /// Sets the deployment years one mission models.
    pub fn mission_years(mut self, years: f64) -> FleetPlan {
        self.mission_years = years;
        self
    }

    /// Sets the observation horizon.
    pub fn horizon_years(mut self, years: f64) -> FleetPlan {
        self.horizon_years = years;
        self
    }

    /// Replaces the aging calibration.
    pub fn aging(mut self, aging: CalibratedAging) -> FleetPlan {
        self.aging = aging;
        self
    }

    /// Enables or disables the failure→allocation feedback loop.
    pub fn inject_faults(mut self, inject: bool) -> FleetPlan {
        self.inject_faults = inject;
        self
    }

    /// The derived workload seed of device `device`.
    pub fn device_seed(&self, device: usize) -> u64 {
        derive_cell_seed(self.base_seed, device as u64)
    }
}

/// One device's full deployment history inside a fleet report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceOutcome {
    /// Device index inside the fleet (also its seed lane).
    pub device: usize,
    /// The workload-input seed the device ran.
    pub seed: u64,
    /// Deployment time of death, `None` if alive at the horizon.
    pub death_years: Option<f64>,
    /// Deployment time of the first FU failure, if any FU failed.
    pub first_failure_years: Option<f64>,
    /// Missions completed before death/horizon.
    pub missions: u64,
    /// Missions that were actually simulated (the rest replayed a cached
    /// duty grid — the closed loop only re-runs after a mask change).
    pub simulated_missions: u64,
    /// Every end-of-life crossing, in event order.
    pub failures: Vec<FuFailed>,
}

/// One policy's aggregated fleet results.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyFleet {
    /// Policy spec string.
    pub policy: String,
    /// MTTF, death counts and the first-failure histogram.
    pub stats: FleetStats,
    /// The fleet survival curve.
    pub survival: SurvivalCurve,
    /// Per-device histories, in device order.
    pub devices: Vec<DeviceOutcome>,
}

/// The serializable result of [`run_fleet`] (`results/survival.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Base experiment seed.
    pub base_seed: u64,
    /// Fabric rows.
    pub rows: u32,
    /// Fabric columns.
    pub cols: u32,
    /// Workload-suite label.
    pub suite: String,
    /// Devices per policy.
    pub devices: usize,
    /// Deployment years one mission models.
    pub mission_years: f64,
    /// Observation horizon in years.
    pub horizon_years: f64,
    /// Whether failures fed back into allocation.
    pub inject_faults: bool,
    /// Per-policy aggregates, in plan order.
    pub policies: Vec<PolicyFleet>,
}

impl FleetReport {
    /// The aggregate for the policy whose spec string is `policy`.
    pub fn policy(&self, policy: &str) -> Option<&PolicyFleet> {
        self.policies.iter().find(|p| p.policy == policy)
    }
}

/// Runs the suite once against the device's current fault mask and
/// returns the duty-cycle grid its executions exerted. `Ok(None)` means
/// the allocation is exhausted — the device is dead.
fn run_mission(
    config: &SystemConfig,
    spec: &PolicySpec,
    workloads: &[Workload],
    mask: &cgra::FaultMask,
) -> Result<Option<UtilizationGrid>, SystemError> {
    let mut merged = UtilizationTracker::new(&config.fabric);
    let mut cycles = 0u64;
    for w in workloads {
        let mut system = System::new(config.clone(), spec.build());
        system.set_fault_mask(Some(mask.clone()));
        match system.run(w.program()) {
            Ok(_) => {}
            Err(SystemError::AllocationExhausted { .. }) => return Ok(None),
            Err(e) => return Err(e),
        }
        assert!(
            w.verify(system.cpu()).is_ok(),
            "oracle failure under {spec} with {} dead FUs",
            mask.dead_count()
        );
        cycles += system.stats().total_cycles();
        merged.merge(system.tracker());
    }
    Ok(Some(merged.duty_cycles(cycles)))
}

/// Simulates one device's whole deployment: run a mission, fold its duty
/// into the wear state, inject failures, repeat — re-simulating only when
/// the fault mask changed (DESIGN.md §11).
fn simulate_device(
    plan: &FleetPlan,
    spec: &PolicySpec,
    device: usize,
    workloads: &[Workload],
) -> Result<DeviceOutcome, SystemError> {
    let mut life = DeviceLifetime::new(&plan.config.fabric, plan.aging, plan.inject_faults);
    let mut cached: Option<(u32, UtilizationGrid)> = None;
    let mut simulated = 0u64;
    while life.elapsed_years() < plan.horizon_years {
        // The mask is monotone, so its dead count keys the cached mission.
        let key = life.fault_mask().dead_count();
        if cached.as_ref().is_none_or(|(k, _)| *k != key) {
            simulated += 1;
            match run_mission(&plan.config, spec, workloads, life.fault_mask())? {
                Some(duty) => cached = Some((key, duty)),
                None => {
                    life.retire();
                    break;
                }
            }
        }
        let (_, duty) = cached.as_ref().expect("mission cached above");
        life.advance_mission(duty, plan.mission_years);
    }
    Ok(DeviceOutcome {
        device,
        seed: plan.device_seed(device),
        death_years: life.death_years(),
        first_failure_years: life.first_failure_years(),
        missions: life.missions(),
        simulated_missions: simulated,
        failures: life.failures().to_vec(),
    })
}

/// Runs every (policy × device) cell of `plan`, sharded across `jobs`
/// workers (`0` = all cores, `1` = sequential), and aggregates per-policy
/// survival curves, MTTF and first-failure histograms. Like
/// [`run_sweep`](crate::sweep::run_sweep), the report is **byte-identical
/// for every worker count**: device seeds are derived, cells share no
/// state, and results merge in plan order.
///
/// # Errors
///
/// A movement policy on a movement-less configuration is rejected before
/// anything runs; otherwise the error of the lowest-indexed failing cell
/// is returned. ([`SystemError::AllocationExhausted`] is *not* an error
/// here — it is a device death, part of the result.)
///
/// # Panics
///
/// Panics on a non-positive (or non-finite) `mission_years` or
/// `horizon_years` — like a malformed [`SuiteSpec`], a plan-construction
/// bug, not a runtime condition (a zero-length mission would never
/// advance the deployment clock).
pub fn run_fleet(plan: &FleetPlan, jobs: usize) -> Result<FleetReport, SystemError> {
    assert!(
        plan.mission_years > 0.0 && plan.mission_years.is_finite(),
        "mission_years must be positive and finite, got {}",
        plan.mission_years
    );
    assert!(
        plan.horizon_years > 0.0 && plan.horizon_years.is_finite(),
        "horizon_years must be positive and finite, got {}",
        plan.horizon_years
    );
    for spec in &plan.policies {
        if spec.needs_movement() && !plan.config.movement_hardware {
            return Err(BuildError::MovementHardwareAbsent { policy: spec.to_string() }.into());
        }
    }
    let pool = if jobs == 0 { ThreadPool::with_default_workers() } else { ThreadPool::new(jobs) };

    // Each device's workload mix is built once and shared across policies,
    // so every policy faces the identical population.
    let fleets: Vec<Vec<Workload>> = pool.par_map((0..plan.devices).collect(), |_, device| {
        plan.suite.workloads(plan.device_seed(device))
    });

    let cells: Vec<(usize, usize)> =
        (0..plan.policies.len()).flat_map(|p| (0..plan.devices).map(move |d| (p, d))).collect();
    let outcomes: Vec<Result<DeviceOutcome, SystemError>> =
        pool.par_map(cells, |_, (p, d)| simulate_device(plan, &plan.policies[p], d, &fleets[d]));
    let mut results: Vec<DeviceOutcome> = Vec::with_capacity(outcomes.len());
    for outcome in outcomes {
        results.push(outcome?);
    }

    let policies = plan
        .policies
        .iter()
        .enumerate()
        .map(|(p, spec)| {
            let devices: Vec<DeviceOutcome> =
                results[p * plan.devices..(p + 1) * plan.devices].to_vec();
            let deaths: Vec<Option<f64>> = devices.iter().map(|d| d.death_years).collect();
            let firsts: Vec<Option<f64>> = devices.iter().map(|d| d.first_failure_years).collect();
            PolicyFleet {
                policy: spec.to_string(),
                stats: FleetStats::from_observations(
                    &deaths,
                    &firsts,
                    plan.horizon_years,
                    plan.histogram_bins,
                ),
                survival: SurvivalCurve::from_deaths(&deaths, plan.horizon_years),
                devices,
            }
        })
        .collect();

    Ok(FleetReport {
        base_seed: plan.base_seed,
        rows: plan.config.fabric.rows,
        cols: plan.config.fabric.cols,
        suite: plan.suite.name.clone(),
        devices: plan.devices,
        mission_years: plan.mission_years,
        horizon_years: plan.horizon_years,
        inject_faults: plan.inject_faults,
        policies,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra::Fabric;

    /// A one-benchmark mix keeps the closed loop fast in debug builds.
    fn mini_plan() -> FleetPlan {
        FleetPlan::new(7, Fabric::be())
            .suite(SuiteSpec::subset("crc", vec![1]))
            .devices(2)
            .mission_years(1.0)
            .horizon_years(30.0)
    }

    #[test]
    fn baseline_dies_at_its_analytic_lifetime() {
        let plan = mini_plan().policy(PolicySpec::Baseline);
        let report = run_fleet(&plan, 1).unwrap();
        let fleet = report.policy("baseline").unwrap();
        assert_eq!(fleet.devices.len(), 2);
        for device in &fleet.devices {
            // The corner FU runs in ~every execution, so the first failure
            // lands near the 3-year anchor and death follows within one
            // mission (the baseline has no second placement).
            let first = device.first_failure_years.expect("corner FU must fail");
            let death = device.death_years.expect("baseline cannot survive its corner");
            assert!((2.9..=3.5).contains(&first), "first failure at {first}");
            assert!(death >= first && death <= first + plan.mission_years + 1e-9);
            assert!(!device.failures.is_empty());
            assert!(
                device.simulated_missions < device.missions,
                "unchanged-mask missions must replay, not re-simulate"
            );
        }
        assert_eq!(fleet.stats.deaths, 2);
        assert_eq!(fleet.survival.points.last().unwrap().1, 0.0);
    }

    #[test]
    fn open_loop_never_retires_anyone() {
        let plan = mini_plan().policy(PolicySpec::Baseline).inject_faults(false);
        let report = run_fleet(&plan, 1).unwrap();
        let fleet = report.policy("baseline").unwrap();
        for device in &fleet.devices {
            assert_eq!(device.death_years, None, "open loop records failures only");
            assert!(device.first_failure_years.is_some());
        }
        assert_eq!(fleet.stats.deaths, 0);
        assert_eq!(fleet.stats.mttf_years, plan.horizon_years, "all censored at the horizon");
    }

    #[test]
    fn fleet_rejects_movement_specs_without_hardware() {
        let mut plan = mini_plan().policy(PolicySpec::rotation());
        plan.config.movement_hardware = false;
        let err = run_fleet(&plan, 1).unwrap_err();
        assert!(matches!(err, SystemError::Build(BuildError::MovementHardwareAbsent { .. })));
    }

    #[test]
    fn device_seeds_vary_but_device_zero_keeps_the_base() {
        let plan = mini_plan();
        assert_eq!(plan.device_seed(0), 7);
        assert_ne!(plan.device_seed(1), plan.device_seed(0));
    }
}
