//! Fleet-scale closed-loop lifetime simulation (DESIGN.md §11, §12).
//!
//! One *device* is a [`System`] deployed for years: its workload mix runs
//! as a sequence of *missions* (one pass of the suite, modeling
//! [`FleetPlan::mission_years`] of deployment), each mission's per-FU
//! stress folds into persistent wear, FUs that cross end of life flip dead
//! in the [`cgra::FaultMask`] the next mission's allocation must route
//! around, and the device retires when the policy reports
//! [`SystemError::AllocationExhausted`]. A *fleet* fans N such devices
//! × M policies across the same thread pool the sweep engine uses, with
//! the same guarantee: [`run_fleet`]'s report is byte-identical for every
//! `jobs` value — and, at fleet scale, for every shard split and every
//! kill/resume point of a checkpointed campaign.
//!
//! The engine runs in two phases (DESIGN.md §12):
//!
//! 1. **Trajectories.** Missions are deterministic given (configuration,
//!    policy, workloads, fault mask), so devices in the same *equivalence
//!    class* — same workload-seed lane ([`FleetPlan::lanes`]), same
//!    manufacturing [`Defect`]s — share one closed-loop simulation. Each
//!    (policy × class) cell is simulated once on the reference
//!    [`lifetime::DeviceLifetime`] path, re-running the suite only when
//!    the fault mask changes and recording a replay script of (duty grid,
//!    mission count) segments: a homogeneous fleet costs one suite run per
//!    distinct failure trajectory, not per device.
//! 2. **Columnar replay.** Devices stream through contiguous shards of
//!    [`FleetPlan::shard_devices`]; each shard replays its classes'
//!    scripts on a [`lifetime::WearBatch`] slab (one contiguous `f64` row
//!    per device, advanced by the tight `age += dt·u` loop) that is
//!    bit-identical to the per-device path, and folds per-device death and
//!    first-failure times into a per-policy [`lifetime::FleetAccum`] — a
//!    merge monoid, so shard partials aggregate exactly regardless of the
//!    split. Memory stays bounded by one shard, never the population.
//!
//! A campaign with a checkpoint path ([`CampaignOptions`]) persists a
//! versioned [`run_fleet_campaign`] checkpoint after phase 1 and after
//! every wave of shards, so a killed run resumes where it stopped and
//! still produces byte-identical `results/survival.json`.
//!
//! # Examples
//!
//! ```
//! use cgra::Fabric;
//! use transrec::fleet::{run_fleet, FleetPlan};
//! use transrec::sweep::SuiteSpec;
//! use uaware::PolicySpec;
//!
//! let plan = FleetPlan::new(0xDAC2020, Fabric::be())
//!     .policy(PolicySpec::Baseline)
//!     .policy(PolicySpec::HealthAware)
//!     .devices(2)
//!     .suite(SuiteSpec::subset("bitcount", vec![0]))
//!     .mission_years(0.5)
//!     .horizon_years(20.0);
//! let report = run_fleet(&plan, 1).unwrap();
//! let base = report.policy("baseline").unwrap();
//! let oracle = report.policy("health-aware").unwrap();
//! // Reallocation around failures outlives the corner-pinned baseline.
//! assert!(oracle.stats.mttf_years > base.stats.mttf_years);
//! ```

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use lifetime::{DeviceLifetime, FleetAccum, FleetStats, FuFailed, SurvivalCurve, WearBatch};
use mibench::Workload;
use nbti::CalibratedAging;
use obs::Registry;
use serde::{Deserialize, Serialize};
use threadpool::ThreadPool;
use tracing::{span, Level};
use uaware::{derive_cell_seed, PolicySpec, UtilizationGrid, UtilizationTracker};

use crate::sweep::SuiteSpec;
use crate::system::{BuildError, System, SystemConfig, SystemError};

/// Default deployment time one mission (one pass of the suite) models.
pub const DEFAULT_MISSION_YEARS: f64 = 0.5;

/// Default fleet observation horizon in years (long enough that every
/// policy's cascade completes on the paper's BE scenario).
pub const DEFAULT_HORIZON_YEARS: f64 = 40.0;

/// Default devices per streaming shard: bounds phase-2 memory at one
/// `shard × fu_count` wear slab (a few MB) regardless of fleet size.
pub const DEFAULT_SHARD_DEVICES: usize = 4096;

/// Default number of leading devices whose full per-device histories are
/// retained in the report (the rest only enter the aggregates).
pub const DEFAULT_DETAIL_DEVICES: usize = 32;

/// A manufacturing defect: one FU of one device is dead from the first
/// mission on (DESIGN.md §12). Defects fork a device out of its workload
/// lane's equivalence class into its own failure trajectory.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct Defect {
    /// The affected device index.
    pub device: usize,
    /// Fabric row of the dead FU.
    pub row: u32,
    /// Fabric column of the dead FU.
    pub col: u32,
}

/// A fleet experiment as data: N device instances × M policies, each
/// device running its seed lane's workload mix mission after mission until
/// death or the horizon (DESIGN.md §11, §12).
#[derive(Clone, Debug)]
pub struct FleetPlan {
    /// Base experiment seed; device `d` builds its workloads from
    /// [`derive_cell_seed`]`(base_seed, lane_of(d))` (lane 0 keeps the
    /// base seed).
    pub base_seed: u64,
    /// The system configuration every device ships with.
    pub config: SystemConfig,
    /// The policy axis (each policy sees the same device population).
    pub policies: Vec<PolicySpec>,
    /// Device instances per policy.
    pub devices: usize,
    /// The workload mix of one mission.
    pub suite: SuiteSpec,
    /// Deployment years one mission models.
    pub mission_years: f64,
    /// Observation horizon: devices alive at this time are censored.
    pub horizon_years: f64,
    /// The aging calibration wear accumulates under.
    pub aging: CalibratedAging,
    /// `true` (the closed loop): end-of-life FUs go dead in the fault mask
    /// and allocation must route around them. `false` (open loop): wear
    /// accumulates and failures are recorded, but placement never changes
    /// — the mode the analytic cross-check runs in.
    pub inject_faults: bool,
    /// First-failure histogram bins over `[0, horizon_years]`.
    pub histogram_bins: usize,
    /// Distinct workload-seed lanes. Device `d` runs lane `d % lanes`, so
    /// a fleet of 1M devices over 8 lanes shares 8 equivalence classes per
    /// policy. `None` (the default) gives every device its own lane — the
    /// legacy per-device-seed population.
    pub lanes: Option<usize>,
    /// Devices per streaming shard of the columnar replay phase. Never
    /// affects results (pinned by tests) — only memory and scheduling.
    pub shard_devices: usize,
    /// How many leading devices keep full [`DeviceOutcome`] detail.
    pub detail_devices: usize,
    /// Manufacturing defects seeded before the first mission.
    pub defects: Vec<Defect>,
}

impl FleetPlan {
    /// A fleet of 8 devices on `fabric` running the full mibench mix, with
    /// the closed loop on and the default mission/horizon. Add policies
    /// with the chainable builders.
    pub fn new(base_seed: u64, fabric: cgra::Fabric) -> FleetPlan {
        FleetPlan {
            base_seed,
            config: SystemConfig::new(fabric),
            policies: Vec::new(),
            devices: 8,
            suite: SuiteSpec::full(),
            mission_years: DEFAULT_MISSION_YEARS,
            horizon_years: DEFAULT_HORIZON_YEARS,
            aging: CalibratedAging::default(),
            inject_faults: true,
            histogram_bins: 20,
            lanes: None,
            shard_devices: DEFAULT_SHARD_DEVICES,
            detail_devices: DEFAULT_DETAIL_DEVICES,
            defects: Vec::new(),
        }
    }

    /// Replaces the system configuration.
    pub fn config(mut self, config: SystemConfig) -> FleetPlan {
        self.config = config;
        self
    }

    /// Adds a policy to the policy axis.
    pub fn policy(mut self, spec: PolicySpec) -> FleetPlan {
        self.policies.push(spec);
        self
    }

    /// Adds several policies to the policy axis.
    pub fn policies(mut self, specs: impl IntoIterator<Item = PolicySpec>) -> FleetPlan {
        self.policies.extend(specs);
        self
    }

    /// Sets the number of device instances per policy.
    pub fn devices(mut self, devices: usize) -> FleetPlan {
        self.devices = devices;
        self
    }

    /// Replaces the per-mission workload mix.
    pub fn suite(mut self, suite: SuiteSpec) -> FleetPlan {
        self.suite = suite;
        self
    }

    /// Sets the deployment years one mission models.
    pub fn mission_years(mut self, years: f64) -> FleetPlan {
        self.mission_years = years;
        self
    }

    /// Sets the observation horizon.
    pub fn horizon_years(mut self, years: f64) -> FleetPlan {
        self.horizon_years = years;
        self
    }

    /// Replaces the aging calibration.
    pub fn aging(mut self, aging: CalibratedAging) -> FleetPlan {
        self.aging = aging;
        self
    }

    /// Enables or disables the failure→allocation feedback loop.
    pub fn inject_faults(mut self, inject: bool) -> FleetPlan {
        self.inject_faults = inject;
        self
    }

    /// Sets the number of workload-seed lanes (DESIGN.md §12).
    pub fn lanes(mut self, lanes: usize) -> FleetPlan {
        self.lanes = Some(lanes);
        self
    }

    /// Sets the streaming shard size of the columnar replay phase.
    pub fn shard_devices(mut self, shard: usize) -> FleetPlan {
        self.shard_devices = shard;
        self
    }

    /// Sets how many leading devices keep full per-device detail.
    pub fn detail_devices(mut self, detail: usize) -> FleetPlan {
        self.detail_devices = detail;
        self
    }

    /// Seeds a manufacturing defect: `device`'s FU at `(row, col)` is dead
    /// from the first mission on.
    pub fn defect(mut self, device: usize, row: u32, col: u32) -> FleetPlan {
        self.defects.push(Defect { device, row, col });
        self
    }

    /// The number of distinct workload lanes the plan resolves to:
    /// [`FleetPlan::lanes`] clamped to the device count, or one lane per
    /// device when unset.
    pub fn effective_lanes(&self) -> usize {
        self.lanes.unwrap_or(self.devices).min(self.devices)
    }

    /// The workload lane of device `device`.
    pub fn lane_of(&self, device: usize) -> usize {
        device % self.effective_lanes().max(1)
    }

    /// The derived workload seed of device `device` (its lane's seed).
    pub fn device_seed(&self, device: usize) -> u64 {
        derive_cell_seed(self.base_seed, self.lane_of(device) as u64)
    }
}

/// One device's full deployment history inside a fleet report.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DeviceOutcome {
    /// Device index inside the fleet.
    pub device: usize,
    /// The workload-input seed the device ran (its lane's seed).
    pub seed: u64,
    /// Deployment time of death, `None` if alive at the horizon.
    pub death_years: Option<f64>,
    /// Deployment time of the first FU failure, if any FU failed.
    pub first_failure_years: Option<f64>,
    /// Missions completed before death/horizon.
    pub missions: u64,
    /// Suite simulations this device's equivalence class charged to it:
    /// the class representative (its lowest device index) carries the
    /// class's full count, every other member reports 0 — missions beyond
    /// those replayed a recorded duty grid (DESIGN.md §12).
    pub simulated_missions: u64,
    /// Every end-of-life crossing, in event order.
    pub failures: Vec<FuFailed>,
}

/// One policy's aggregated fleet results.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PolicyFleet {
    /// Policy spec string.
    pub policy: String,
    /// MTTF, death counts and the first-failure histogram.
    pub stats: FleetStats,
    /// The fleet survival curve.
    pub survival: SurvivalCurve,
    /// Distinct equivalence classes the population collapsed into.
    pub classes: usize,
    /// Suite simulations actually run across all classes (the cost the
    /// class sharing amortizes over the whole fleet).
    pub simulated_missions: u64,
    /// Missions lived across the whole fleet (simulated or replayed).
    pub total_missions: u64,
    /// Per-device histories of the first
    /// [`FleetReport::detail_devices`] devices, in device order.
    pub devices: Vec<DeviceOutcome>,
}

/// The serializable result of [`run_fleet`] (`results/survival.json`).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FleetReport {
    /// Base experiment seed.
    pub base_seed: u64,
    /// Fabric rows.
    pub rows: u32,
    /// Fabric columns.
    pub cols: u32,
    /// Workload-suite label.
    pub suite: String,
    /// Devices per policy.
    pub devices: usize,
    /// Distinct workload lanes the population was drawn from.
    pub lanes: usize,
    /// How many leading devices carry full per-device detail.
    pub detail_devices: usize,
    /// Deployment years one mission models.
    pub mission_years: f64,
    /// Observation horizon in years.
    pub horizon_years: f64,
    /// Whether failures fed back into allocation.
    pub inject_faults: bool,
    /// Per-policy aggregates, in plan order.
    pub policies: Vec<PolicyFleet>,
}

impl FleetReport {
    /// The aggregate for the policy whose spec string is `policy`.
    pub fn policy(&self, policy: &str) -> Option<&PolicyFleet> {
        self.policies.iter().find(|p| p.policy == policy)
    }
}

/// Runs the suite once against the device's current fault mask and
/// returns the duty-cycle grid its executions exerted. `Ok(None)` means
/// the allocation is exhausted — the device is dead.
fn run_mission(
    config: &SystemConfig,
    spec: &PolicySpec,
    workloads: &[Workload],
    mask: &cgra::FaultMask,
) -> Result<Option<UtilizationGrid>, SystemError> {
    let mut merged = UtilizationTracker::new(&config.fabric);
    let mut cycles = 0u64;
    for w in workloads {
        let mut system = System::new(config.clone(), spec.build());
        system.set_fault_mask(Some(mask.clone()));
        match system.run(w.program()) {
            Ok(_) => {}
            Err(SystemError::AllocationExhausted { .. }) => return Ok(None),
            Err(e) => return Err(e),
        }
        assert!(
            w.verify(system.cpu()).is_ok(),
            "oracle failure under {spec} with {} dead FUs",
            mask.dead_count()
        );
        cycles += system.stats().total_cycles();
        merged.merge(system.tracker());
    }
    Ok(Some(merged.duty_cycles(cycles)))
}

/// One equivalence class's recorded deployment: the closed loop as a
/// replay script of `(duty grid, missions)` segments, simulated once on
/// the reference [`DeviceLifetime`] path and replayed on the columnar
/// [`WearBatch`] for every class member (DESIGN.md §12).
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct ClassTrajectory {
    /// Each segment replays one simulated mission's duty grid for `count`
    /// consecutive missions (until the fault mask changed).
    segments: Vec<(UtilizationGrid, u64)>,
    /// The device retired (allocation exhausted) after the last segment.
    died: bool,
    /// Suite simulations actually run for this class.
    simulated_missions: u64,
}

/// The fleet's partition into `(lane, defects)` equivalence classes —
/// identical for every policy, built once per campaign.
struct ClassMap {
    /// Class index of every device.
    class_of: Vec<u32>,
    /// Per class: the workload lane and the (sorted, deduplicated) defect
    /// cells its members share.
    keys: Vec<(usize, Vec<(u32, u32)>)>,
    /// Per class: its representative — the lowest member device index,
    /// which carries the class's `simulated_missions` in the report.
    representatives: Vec<usize>,
}

impl ClassMap {
    /// Partitions `plan`'s population. Classes are numbered in order of
    /// first appearance (by device index), so the map is deterministic.
    fn build(plan: &FleetPlan) -> ClassMap {
        let lanes = plan.effective_lanes().max(1);
        let mut defects: BTreeMap<usize, Vec<(u32, u32)>> = BTreeMap::new();
        for d in &plan.defects {
            defects.entry(d.device).or_default().push((d.row, d.col));
        }
        for cells in defects.values_mut() {
            cells.sort_unstable();
            cells.dedup();
        }
        let mut class_of = Vec::with_capacity(plan.devices);
        let mut keys: Vec<(usize, Vec<(u32, u32)>)> = Vec::new();
        let mut representatives = Vec::new();
        // Fast path for the (vast) defect-free majority: one class per lane,
        // resolved without touching the key map.
        let mut lane_class: Vec<Option<u32>> = vec![None; lanes];
        let mut keyed: BTreeMap<(usize, Vec<(u32, u32)>), u32> = BTreeMap::new();
        for device in 0..plan.devices {
            let lane = device % lanes;
            let class = match defects.get(&device) {
                None => *lane_class[lane].get_or_insert_with(|| {
                    keys.push((lane, Vec::new()));
                    representatives.push(device);
                    (keys.len() - 1) as u32
                }),
                Some(cells) => *keyed.entry((lane, cells.clone())).or_insert_with(|| {
                    keys.push((lane, cells.clone()));
                    representatives.push(device);
                    (keys.len() - 1) as u32
                }),
            };
            class_of.push(class);
        }
        ClassMap { class_of, keys, representatives }
    }

    /// Number of distinct classes.
    fn count(&self) -> usize {
        self.keys.len()
    }
}

/// Simulates one (policy × class) cell's whole deployment on the reference
/// path: run a mission, fold its duty into the wear state, inject
/// failures, repeat — re-simulating only when the fault mask changed — and
/// record the replay script (DESIGN.md §11, §12).
fn simulate_trajectory(
    plan: &FleetPlan,
    spec: &PolicySpec,
    workloads: &[Workload],
    defects: &[(u32, u32)],
) -> Result<ClassTrajectory, SystemError> {
    let mut life = DeviceLifetime::new(&plan.config.fabric, plan.aging, plan.inject_faults);
    for &(row, col) in defects {
        life.seed_fault(row, col);
    }
    let mut cached: Option<(u32, UtilizationGrid)> = None;
    let mut segments: Vec<(UtilizationGrid, u64)> = Vec::new();
    let mut simulated = 0u64;
    let mut died = false;
    while life.elapsed_years() < plan.horizon_years {
        // The mask is monotone, so its dead count keys the cached mission.
        let key = life.fault_mask().dead_count();
        if cached.as_ref().is_none_or(|(k, _)| *k != key) {
            simulated += 1;
            match run_mission(&plan.config, spec, workloads, life.fault_mask())? {
                Some(duty) => {
                    segments.push((duty.clone(), 0));
                    cached = Some((key, duty));
                }
                None => {
                    died = true;
                    break;
                }
            }
        }
        let (_, duty) = cached.as_ref().expect("mission cached above");
        life.advance_mission(duty, plan.mission_years);
        segments.last_mut().expect("segment pushed above").1 += 1;
    }
    Ok(ClassTrajectory { segments, died, simulated_missions: simulated })
}

/// One (policy × shard) cell's partial result, ready to merge in shard
/// order.
struct ShardCell {
    accum: FleetAccum,
    total_missions: u64,
    details: Vec<DeviceOutcome>,
    /// Weight-scaled metrics of the shard's class replays (empty unless
    /// [`CampaignOptions::collect_metrics`] is set).
    metrics: Registry,
}

/// Replays one shard of devices for one policy on the columnar wear slab
/// (DESIGN.md §12): group the shard's devices by class, advance each class
/// through its trajectory with [`WearBatch::advance_class`], and fold the
/// per-device observations into a shard-local [`FleetAccum`].
fn run_shard_cell(
    plan: &FleetPlan,
    classes: &ClassMap,
    trajectories: &[ClassTrajectory],
    policy: usize,
    shard: usize,
    collect_metrics: bool,
) -> ShardCell {
    let start = shard * plan.shard_devices;
    let end = ((shard + 1) * plan.shard_devices).min(plan.devices);
    let mut batch = WearBatch::new(&plan.config.fabric, plan.aging, end - start);
    let mut groups: BTreeMap<u32, Vec<usize>> = BTreeMap::new();
    for device in start..end {
        groups.entry(classes.class_of[device]).or_default().push(device - start);
    }
    let mut accum = FleetAccum::new();
    let mut total_missions = 0u64;
    let mut details = Vec::new();
    let mut metrics = Registry::new();
    for (&class, lanes) in &groups {
        let trajectory = &trajectories[policy * classes.count() + class as usize];
        let mut failures: Vec<FuFailed> = Vec::new();
        {
            // One replay stands for `lanes.len()` devices, so its registry
            // folds in weight-scaled — the same equivalence-class fast path
            // as `FleetAccum::observe_weighted`. Class replays emit
            // member-count-independent events only, which is what makes
            // the scaled fold shard-split invariant (DESIGN.md §16).
            let mut replay = || {
                for (duty, count) in &trajectory.segments {
                    for _ in 0..*count {
                        failures.extend(batch.advance_class(lanes, duty, plan.mission_years));
                    }
                }
            };
            if collect_metrics {
                let ((), reg) = obs::collect(replay);
                metrics.add_scaled(&reg, lanes.len() as u64);
            } else {
                replay();
            }
        }
        let rep_lane = lanes[0];
        let death_years = trajectory.died.then(|| batch.elapsed_years(rep_lane));
        let first_failure_years = failures.first().map(|f| f.at_years);
        accum.observe_weighted(death_years, first_failure_years, lanes.len() as u64);
        total_missions += batch.missions(rep_lane) * lanes.len() as u64;
        for &lane in lanes {
            let device = start + lane;
            if device < plan.detail_devices {
                details.push(DeviceOutcome {
                    device,
                    seed: plan.device_seed(device),
                    death_years,
                    first_failure_years,
                    missions: batch.missions(lane),
                    simulated_missions: if classes.representatives[class as usize] == device {
                        trajectory.simulated_missions
                    } else {
                        0
                    },
                    failures: failures.clone(),
                });
            }
        }
    }
    details.sort_by_key(|d| d.device);
    ShardCell { accum, total_missions, details, metrics }
}

/// Checkpoint format version; bumped on any layout change so stale files
/// are rejected instead of misread (DESIGN.md §12). v2 added the metrics
/// registry (DESIGN.md §16).
const CHECKPOINT_VERSION: u32 = 2;

/// Checkpoint file magic.
const CHECKPOINT_MAGIC: &str = "uaware-fleet-checkpoint";

/// A campaign's persisted mid-run state: the phase-1 trajectories plus
/// every completed shard's merged partials (DESIGN.md §12). Shards are
/// deterministic functions of (plan, trajectories), so an interrupted
/// shard simply re-runs on resume — the checkpoint only ever stores
/// *completed* work, which is what makes resume byte-identical.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
struct FleetCheckpoint {
    /// File magic: [`CHECKPOINT_MAGIC`].
    magic: String,
    /// Format version: [`CHECKPOINT_VERSION`].
    version: u32,
    /// FNV-1a hash of the plan's debug form; a resume under a different
    /// plan (or shard split) is rejected.
    fingerprint: u64,
    /// Phase-1 replay scripts, policy-major (`p * classes + c`).
    trajectories: Vec<ClassTrajectory>,
    /// Completed shard indices, always the prefix `0..k`.
    completed_shards: Vec<usize>,
    /// Per-policy streaming aggregates over the completed shards.
    accums: Vec<FleetAccum>,
    /// Per-policy fleet-wide mission totals over the completed shards.
    total_missions: Vec<u64>,
    /// Per-policy detailed outcomes collected so far, in device order.
    details: Vec<Vec<DeviceOutcome>>,
    /// The metrics registry folded over phase 1 and the completed shards
    /// (empty unless [`CampaignOptions::collect_metrics`] was set).
    /// Persisting it is what keeps `results/metrics.json` byte-identical
    /// across kill/resume points (DESIGN.md §16).
    metrics: Registry,
}

/// FNV-1a 64-bit over `bytes` (also fingerprints serving checkpoints).
pub(crate) fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x100_0000_01b3);
    }
    hash
}

/// The plan fingerprint a checkpoint is bound to. `f64` debug formatting
/// is shortest-roundtrip, so two plans fingerprint equal iff every knob
/// (including the shard split) is bit-identical.
fn plan_fingerprint(plan: &FleetPlan) -> u64 {
    fnv1a64(format!("v{CHECKPOINT_VERSION}:{plan:?}").as_bytes())
}

/// Atomically persists `checkpoint` (write-then-rename, so a kill mid-save
/// leaves the previous checkpoint intact).
///
/// # Panics
///
/// Panics on IO failure — checkpoints exist to make kills safe; silently
/// losing one would defeat them.
fn save_checkpoint(path: &Path, checkpoint: &FleetCheckpoint) {
    let json = serde_json::to_string(checkpoint).expect("checkpoint serializes");
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, json).unwrap_or_else(|e| panic!("write {}: {e}", tmp.display()));
    std::fs::rename(&tmp, path).unwrap_or_else(|e| panic!("rename to {}: {e}", path.display()));
}

/// Loads and validates a checkpoint, if one exists at `path`.
///
/// # Panics
///
/// Panics on unreadable/corrupt files, version mismatches, or a
/// fingerprint that does not match `plan` — resuming someone else's
/// campaign must fail loudly, not produce silently different numbers.
fn load_checkpoint(path: &Path, plan: &FleetPlan) -> Option<FleetCheckpoint> {
    if !path.exists() {
        return None;
    }
    let json = std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("read checkpoint {}: {e}", path.display()));
    let checkpoint: FleetCheckpoint = serde_json::from_str(&json)
        .unwrap_or_else(|e| panic!("corrupt checkpoint {}: {e:?}", path.display()));
    assert_eq!(checkpoint.magic, CHECKPOINT_MAGIC, "not a fleet checkpoint: {}", path.display());
    assert_eq!(
        checkpoint.version,
        CHECKPOINT_VERSION,
        "checkpoint {} has unsupported version",
        path.display()
    );
    assert_eq!(
        checkpoint.fingerprint,
        plan_fingerprint(plan),
        "checkpoint {} belongs to a different plan",
        path.display()
    );
    assert!(
        checkpoint.completed_shards.iter().copied().eq(0..checkpoint.completed_shards.len()),
        "checkpoint {} has a non-prefix shard set",
        path.display()
    );
    Some(checkpoint)
}

/// Campaign-level controls of [`run_fleet_campaign`]: checkpointing and
/// cooperative early stop (DESIGN.md §12).
#[derive(Clone, Debug, Default)]
pub struct CampaignOptions {
    /// Persist progress to this path (and resume from it if it exists).
    pub checkpoint: Option<PathBuf>,
    /// Checkpoint after every wave of this many shards (`0` acts as `1`).
    /// Only meaningful with a checkpoint path; also the parallel wave
    /// width, so raise it to at least the worker count on big campaigns.
    pub checkpoint_every_shards: usize,
    /// Stop (with a checkpoint, if configured) once this many shards have
    /// completed, returning [`CampaignStatus::Paused`] — the hook the
    /// kill/resume regression tests and the CI resume leg drive.
    pub stop_after_shards: Option<usize>,
    /// Collect the deterministic metrics registry while the campaign runs
    /// and fold it into [`obs::global`] on completion (DESIGN.md §16). Off
    /// by default: per-event collection has a real cost on the phase-1
    /// simulation hot paths, and most callers (tests, benches) do not read
    /// the registry.
    pub collect_metrics: bool,
}

/// What [`run_fleet_campaign`] came back with.
#[derive(Clone, Debug, PartialEq)]
pub enum CampaignStatus {
    /// The campaign ran to the horizon; here is the full report.
    Complete(Box<FleetReport>),
    /// The campaign stopped early at a shard boundary
    /// ([`CampaignOptions::stop_after_shards`]); re-run with the same
    /// checkpoint path to continue.
    Paused {
        /// Shards completed so far (also the resume point).
        completed_shards: usize,
        /// Total shards in the campaign.
        total_shards: usize,
    },
}

/// Runs every (policy × device) cell of `plan` — [`run_fleet`] with
/// checkpoint/resume and early-stop control. Sharded across `jobs` workers
/// (`0` = all cores, `1` = sequential); the report is **byte-identical for
/// every worker count, every shard split, and every kill/resume point**:
/// trajectories are deterministic per class, shard replay is a pure
/// function of (plan, trajectories), and the per-policy aggregates merge
/// through [`FleetAccum`]'s canonical monoid in shard order.
///
/// # Errors
///
/// A movement policy on a movement-less configuration is rejected before
/// anything runs; otherwise the error of the lowest-indexed failing
/// (policy × class) cell is returned.
/// ([`SystemError::AllocationExhausted`] is *not* an error here — it is a
/// device death, part of the result.)
///
/// # Panics
///
/// Panics on a non-positive (or non-finite) `mission_years` or
/// `horizon_years`, a zero `shard_devices` or `lanes`, an out-of-range
/// [`Defect`] — plan-construction bugs — and on checkpoint IO failures or
/// a checkpoint that does not match the plan.
pub fn run_fleet_campaign(
    plan: &FleetPlan,
    jobs: usize,
    options: &CampaignOptions,
) -> Result<CampaignStatus, SystemError> {
    assert!(
        plan.mission_years > 0.0 && plan.mission_years.is_finite(),
        "mission_years must be positive and finite, got {}",
        plan.mission_years
    );
    assert!(
        plan.horizon_years > 0.0 && plan.horizon_years.is_finite(),
        "horizon_years must be positive and finite, got {}",
        plan.horizon_years
    );
    assert!(plan.shard_devices > 0, "shard_devices must be positive");
    assert!(
        plan.devices == 0 || plan.effective_lanes() > 0,
        "a populated fleet needs at least one workload lane"
    );
    for d in &plan.defects {
        assert!(
            d.device < plan.devices
                && d.row < plan.config.fabric.rows
                && d.col < plan.config.fabric.cols,
            "defect {d:?} outside the fleet"
        );
    }
    for spec in &plan.policies {
        if spec.needs_movement() && !plan.config.movement_hardware {
            return Err(BuildError::MovementHardwareAbsent { policy: spec.to_string() }.into());
        }
    }
    let pool = if jobs == 0 { ThreadPool::with_default_workers() } else { ThreadPool::new(jobs) };
    let classes = ClassMap::build(plan);
    let total_shards = plan.devices.div_ceil(plan.shard_devices);

    // Phase 1 (or resume): one reference simulation per (policy × class).
    let resumed = options.checkpoint.as_deref().and_then(|path| load_checkpoint(path, plan));
    let (trajectories, mut completed, mut accums, mut total_missions, mut details, mut metrics) =
        match resumed {
            Some(ck) => (
                ck.trajectories,
                ck.completed_shards.len(),
                ck.accums,
                ck.total_missions,
                ck.details,
                ck.metrics,
            ),
            None => {
                let _phase = span!(Level::INFO, "fleet.trajectories").entered();
                // Each lane's workload mix is built once and shared across
                // policies, so every policy faces the identical population.
                let lanes = plan.effective_lanes();
                let lane_workloads: Vec<Vec<Workload>> = pool
                    .par_map((0..lanes).collect(), |_, lane| {
                        plan.suite.workloads(derive_cell_seed(plan.base_seed, lane as u64))
                    });
                let cells: Vec<(usize, usize)> = (0..plan.policies.len())
                    .flat_map(|p| (0..classes.count()).map(move |c| (p, c)))
                    .collect();
                let collect_metrics = options.collect_metrics;
                let outcomes: Vec<(Result<ClassTrajectory, SystemError>, Registry)> =
                    pool.par_map(cells, |_, (p, c)| {
                        let (lane, defects) = &classes.keys[c];
                        let work = || {
                            simulate_trajectory(
                                plan,
                                &plan.policies[p],
                                &lane_workloads[*lane],
                                defects,
                            )
                        };
                        if collect_metrics {
                            obs::collect(work)
                        } else {
                            (work(), Registry::new())
                        }
                    });
                let mut trajectories = Vec::with_capacity(outcomes.len());
                let mut metrics = Registry::new();
                for (outcome, registry) in outcomes {
                    trajectories.push(outcome?);
                    metrics.merge(&registry);
                }
                let fresh = (
                    trajectories,
                    0,
                    vec![FleetAccum::new(); plan.policies.len()],
                    vec![0u64; plan.policies.len()],
                    vec![Vec::new(); plan.policies.len()],
                    metrics,
                );
                if let Some(path) = options.checkpoint.as_deref() {
                    let _save = span!(Level::INFO, "fleet.checkpoint").entered();
                    save_checkpoint(
                        path,
                        &FleetCheckpoint {
                            magic: CHECKPOINT_MAGIC.to_string(),
                            version: CHECKPOINT_VERSION,
                            fingerprint: plan_fingerprint(plan),
                            trajectories: fresh.0.clone(),
                            completed_shards: Vec::new(),
                            accums: fresh.2.clone(),
                            total_missions: fresh.3.clone(),
                            details: fresh.4.clone(),
                            metrics: fresh.5.clone(),
                        },
                    );
                }
                fresh
            }
        };

    // Phase 2: stream device shards through the columnar replay, merging
    // each wave's partials in (shard, policy) order.
    let wave_shards = if options.checkpoint.is_some() {
        options.checkpoint_every_shards.max(1)
    } else {
        usize::MAX
    };
    while completed < total_shards {
        if options.stop_after_shards.is_some_and(|stop| completed >= stop) {
            return Ok(CampaignStatus::Paused { completed_shards: completed, total_shards });
        }
        let mut wave_end = completed.saturating_add(wave_shards).min(total_shards);
        if let Some(stop) = options.stop_after_shards {
            wave_end = wave_end.min(stop.max(completed + 1));
        }
        let _wave = span!(Level::INFO, "fleet.shards").entered();
        let cells: Vec<(usize, usize)> = (completed..wave_end)
            .flat_map(|s| (0..plan.policies.len()).map(move |p| (s, p)))
            .collect();
        let collect_metrics = options.collect_metrics;
        let results: Vec<ShardCell> = pool.par_map(cells, |_, (s, p)| {
            run_shard_cell(plan, &classes, &trajectories, p, s, collect_metrics)
        });
        for (cell, (_, p)) in results
            .into_iter()
            .zip((completed..wave_end).flat_map(|s| (0..plan.policies.len()).map(move |p| (s, p))))
        {
            accums[p].merge(&cell.accum);
            total_missions[p] += cell.total_missions;
            details[p].extend(cell.details);
            metrics.merge(&cell.metrics);
        }
        completed = wave_end;
        if let Some(path) = options.checkpoint.as_deref() {
            let _save = span!(Level::INFO, "fleet.checkpoint").entered();
            save_checkpoint(
                path,
                &FleetCheckpoint {
                    magic: CHECKPOINT_MAGIC.to_string(),
                    version: CHECKPOINT_VERSION,
                    fingerprint: plan_fingerprint(plan),
                    trajectories: trajectories.clone(),
                    completed_shards: (0..completed).collect(),
                    accums: accums.clone(),
                    total_missions: total_missions.clone(),
                    details: details.clone(),
                    metrics: metrics.clone(),
                },
            );
        }
    }

    let policies = plan
        .policies
        .iter()
        .enumerate()
        .map(|(p, spec)| {
            let count = classes.count();
            let simulated_missions =
                trajectories[p * count..(p + 1) * count].iter().map(|t| t.simulated_missions).sum();
            PolicyFleet {
                policy: spec.to_string(),
                stats: accums[p].stats(plan.horizon_years, plan.histogram_bins),
                survival: accums[p].survival(plan.horizon_years),
                classes: count,
                simulated_missions,
                total_missions: total_missions[p],
                devices: details[p].clone(),
            }
        })
        .collect();

    // The registry reaches the global accumulator only on completion:
    // a paused campaign must emit no metrics at all, so a stop/resume
    // pair folds exactly once — like the report itself (DESIGN.md §16).
    if options.collect_metrics {
        obs::global::fold(&metrics);
    }

    Ok(CampaignStatus::Complete(Box::new(FleetReport {
        base_seed: plan.base_seed,
        rows: plan.config.fabric.rows,
        cols: plan.config.fabric.cols,
        suite: plan.suite.name.clone(),
        devices: plan.devices,
        lanes: plan.effective_lanes(),
        detail_devices: plan.detail_devices,
        mission_years: plan.mission_years,
        horizon_years: plan.horizon_years,
        inject_faults: plan.inject_faults,
        policies,
    })))
}

/// Runs every (policy × device) cell of `plan`, sharded across `jobs`
/// workers (`0` = all cores, `1` = sequential), and aggregates per-policy
/// survival curves, MTTF and first-failure histograms. Like
/// [`run_sweep`](crate::sweep::run_sweep), the report is **byte-identical
/// for every worker count** (and every shard split — see
/// [`run_fleet_campaign`] for checkpoint/resume control).
///
/// # Errors
///
/// See [`run_fleet_campaign`].
///
/// # Panics
///
/// See [`run_fleet_campaign`].
pub fn run_fleet(plan: &FleetPlan, jobs: usize) -> Result<FleetReport, SystemError> {
    match run_fleet_campaign(plan, jobs, &CampaignOptions::default())? {
        CampaignStatus::Complete(report) => Ok(*report),
        CampaignStatus::Paused { .. } => unreachable!("no stop was requested"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cgra::Fabric;

    /// A one-benchmark mix keeps the closed loop fast in debug builds.
    fn mini_plan() -> FleetPlan {
        FleetPlan::new(7, Fabric::be())
            .suite(SuiteSpec::subset("crc", vec![1]))
            .devices(2)
            .mission_years(1.0)
            .horizon_years(30.0)
    }

    #[test]
    fn baseline_dies_at_its_analytic_lifetime() {
        let plan = mini_plan().policy(PolicySpec::Baseline);
        let report = run_fleet(&plan, 1).unwrap();
        let fleet = report.policy("baseline").unwrap();
        assert_eq!(fleet.devices.len(), 2);
        for device in &fleet.devices {
            // The corner FU runs in ~every execution, so the first failure
            // lands near the 3-year anchor and death follows within one
            // mission (the baseline has no second placement).
            let first = device.first_failure_years.expect("corner FU must fail");
            let death = device.death_years.expect("baseline cannot survive its corner");
            assert!((2.9..=3.5).contains(&first), "first failure at {first}");
            assert!(death >= first && death <= first + plan.mission_years + 1e-9);
            assert!(!device.failures.is_empty());
            assert!(
                device.simulated_missions < device.missions,
                "unchanged-mask missions must replay, not re-simulate"
            );
        }
        assert_eq!(fleet.stats.deaths, 2);
        assert_eq!(fleet.survival.points.last().unwrap().1, 0.0);
        assert_eq!(fleet.classes, 2, "per-device lanes mean per-device classes");
    }

    #[test]
    fn open_loop_never_retires_anyone() {
        let plan = mini_plan().policy(PolicySpec::Baseline).inject_faults(false);
        let report = run_fleet(&plan, 1).unwrap();
        let fleet = report.policy("baseline").unwrap();
        for device in &fleet.devices {
            assert_eq!(device.death_years, None, "open loop records failures only");
            assert!(device.first_failure_years.is_some());
        }
        assert_eq!(fleet.stats.deaths, 0);
        assert_eq!(fleet.stats.mttf_years, plan.horizon_years, "all censored at the horizon");
    }

    #[test]
    fn fleet_rejects_movement_specs_without_hardware() {
        let mut plan = mini_plan().policy(PolicySpec::rotation());
        plan.config.movement_hardware = false;
        let err = run_fleet(&plan, 1).unwrap_err();
        assert!(matches!(err, SystemError::Build(BuildError::MovementHardwareAbsent { .. })));
    }

    #[test]
    fn device_seeds_vary_but_device_zero_keeps_the_base() {
        let plan = mini_plan();
        assert_eq!(plan.device_seed(0), 7);
        assert_ne!(plan.device_seed(1), plan.device_seed(0));
    }

    #[test]
    fn shard_splits_never_change_the_report() {
        let plan = mini_plan().policy(PolicySpec::Baseline);
        let whole = run_fleet(&plan.clone().shard_devices(64), 1).unwrap();
        let singles = run_fleet(&plan.clone().shard_devices(1), 1).unwrap();
        // The split is not part of the artefact, so compare the bytes.
        assert_eq!(
            serde_json::to_string(&whole).unwrap(),
            serde_json::to_string(&singles).unwrap()
        );
    }

    #[test]
    fn lanes_collapse_devices_into_shared_classes() {
        let plan = mini_plan().policy(PolicySpec::Baseline).devices(4).lanes(1);
        let report = run_fleet(&plan, 1).unwrap();
        let fleet = report.policy("baseline").unwrap();
        assert_eq!(report.lanes, 1);
        assert_eq!(fleet.classes, 1);
        // One trajectory serves all four devices: only the representative
        // carries the simulation bill …
        assert!(fleet.devices[0].simulated_missions > 0);
        for device in &fleet.devices[1..] {
            assert_eq!(device.simulated_missions, 0);
            // … and every member reproduces its history exactly.
            assert_eq!(device.death_years, fleet.devices[0].death_years);
            assert_eq!(device.failures, fleet.devices[0].failures);
            assert_eq!(device.seed, fleet.devices[0].seed);
        }
        assert_eq!(fleet.simulated_missions, fleet.devices[0].simulated_missions);
    }

    #[test]
    fn class_map_forks_on_defects() {
        let plan = mini_plan().devices(4).lanes(1).defect(2, 0, 0).defect(2, 0, 0);
        let classes = ClassMap::build(&plan);
        assert_eq!(classes.count(), 2);
        assert_eq!(classes.class_of, vec![0, 0, 1, 0]);
        assert_eq!(classes.representatives, vec![0, 2]);
        assert_eq!(classes.keys[1].1, vec![(0, 0)], "duplicate defects deduplicate");
    }

    #[test]
    fn fingerprint_tracks_every_plan_knob() {
        let plan = mini_plan();
        assert_eq!(plan_fingerprint(&plan), plan_fingerprint(&plan.clone()));
        assert_ne!(plan_fingerprint(&plan), plan_fingerprint(&plan.clone().devices(3)));
        assert_ne!(plan_fingerprint(&plan), plan_fingerprint(&plan.clone().shard_devices(1)));
        assert_ne!(plan_fingerprint(&plan), plan_fingerprint(&plan.clone().defect(0, 0, 0)));
    }
}
